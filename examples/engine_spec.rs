//! The engine-facade API: run a checked-in, declarative `FlowSpec`
//! (JSON) through a long-lived `Engine` and watch the content-hash
//! keyed cache at work — a warm re-run executes zero passes, and
//! growing the experiment only computes the new cells.
//!
//! ```text
//! cargo run --release --example engine_spec [SPEC.json]
//! ```
//!
//! Without an argument the checked-in `examples/engine_spec.json` is
//! used. `--write-spec` regenerates that file from code (this is how it
//! was produced).

use wave_pipelining::prelude::*;

const CHECKED_IN: &str = include_str!("engine_spec.json");

/// The canonical spec behind `examples/engine_spec.json`: the paper's
/// default flow over three suite circuits, priced under all three
/// Table I technologies.
fn canonical_spec() -> FlowSpec {
    let mut spec = FlowSpec::new("engine-spec-demo")
        .with_pipeline(PipelineSpec::for_config(FlowConfig::default()))
        .circuit("SASC")
        .circuit("ADD32R")
        .circuit("CMP32");
    for technology in Technology::all() {
        spec = spec.technology(technology.cost_table());
    }
    spec
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--write-spec") {
        std::fs::write(
            "examples/engine_spec.json",
            canonical_spec().to_json() + "\n",
        )?;
        println!("wrote examples/engine_spec.json");
        return Ok(());
    }

    // 1. A flow experiment is *data*: pipeline + technologies +
    //    circuits, round-tripping through JSON.
    let text = match &arg {
        Some(path) => std::fs::read_to_string(path)?,
        None => CHECKED_IN.to_owned(),
    };
    let spec = FlowSpec::from_json(&text)?;
    println!(
        "spec `{}`: {} circuits × {} technologies, {} passes after map (hash {:#018x})",
        spec.name,
        spec.circuits.len(),
        spec.technologies.len(),
        spec.pipeline.passes.len() + 1,
        spec.content_hash(),
    );

    // 2. The engine validates the spec, resolves circuit names through
    //    the benchsuite registry, and sweeps the grid in parallel.
    let engine = Engine::new().with_resolver(benchsuite::build_mig);
    let run = engine.run(&spec)?;
    println!("\ncold run ({} cells):", run.cells.len());
    for cell in &run {
        let pipeline_run = cell.outcome.as_ref().expect("suite circuits verify");
        let price = pipeline_run
            .trace
            .last()
            .and_then(|p| p.priced.as_ref())
            .expect("grid cells are priced");
        println!(
            "  {:<8} @ {:<4} area {:>10.2} µm², energy {:>12.2} fJ{}",
            run.circuits[cell.circuit],
            cell.technology.map_or("—", |t| &run.technologies[t]),
            price.after.area,
            price.after.energy,
            if cell.cached { "  (cached)" } else { "" },
        );
    }
    println!(
        "  engine: {} misses, {} passes executed",
        run.stats.cache_misses, run.stats.passes_executed
    );

    // 3. Re-running the identical spec is pure cache: bit-identical
    //    results, zero passes executed.
    let warm = engine.run(&spec)?;
    println!(
        "\nwarm run: {} hits, {} misses, {} passes executed",
        warm.stats.cache_hits, warm.stats.cache_misses, warm.stats.passes_executed
    );
    assert_eq!(warm.stats.passes_executed, 0, "warm grid re-runs nothing");

    // 4. Growing the experiment only computes the new cells: one more
    //    circuit costs one row, not a full sweep.
    let grown = spec.clone().circuit("ALU16");
    let run = engine.run(&grown)?;
    println!(
        "grown run (+ALU16): {} hits, {} misses — only the new row computed",
        run.stats.cache_hits, run.stats.cache_misses
    );
    assert_eq!(run.stats.cache_misses as usize, grown.technologies.len());

    // 5. Malformed input is an error, never a panic.
    let err = FlowSpec::from_json("{\"not\": \"a spec\"}").unwrap_err();
    println!("\nmalformed JSON rejected: {err}");
    let err = engine
        .run(&FlowSpec::new("missing").circuit("NOT_A_BENCHMARK"))
        .unwrap_err();
    println!("unknown circuit rejected: {err}");

    Ok(())
}
