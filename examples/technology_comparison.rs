//! Technology comparison: run one benchmark from the suite through the
//! flow and print the full Table II-style row for SWD, QCA and NML,
//! plus the intermediate statistics of both algorithms.
//!
//! ```text
//! cargo run --release --example technology_comparison [BENCHMARK]
//! ```
//!
//! `BENCHMARK` defaults to `HAMMING`; any name from
//! `benchsuite::SUITE` works (try `MUL32`, `DES_AREA`, `CRC8x64`, …).

use wave_pipelining::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "HAMMING".to_owned());
    let spec = find_benchmark(&name).ok_or_else(|| {
        format!(
            "unknown benchmark `{name}`; known: {:?}",
            SUITE.iter().map(|s| s.name).collect::<Vec<_>>()
        )
    })?;
    let g = spec.build();
    println!("benchmark: {} — {}", spec.name, spec.description);
    println!("MIG: {g}\n");

    let result = run_flow(&g, FlowConfig::default())?;
    if let Some(fo) = result.fanout {
        println!(
            "fan-out restriction (k=3): {} FOGs inserted, {} components split, \
             {} consumers delayed, critical path {} → {} (+{:.0}%)",
            fo.fogs_inserted,
            fo.components_split,
            fo.delayed_consumers,
            fo.depth_before,
            fo.depth_after,
            fo.depth_increase() * 100.0
        );
    }
    if let Some(buf) = result.buffers {
        println!(
            "buffer insertion: {} balancing + {} padding buffers, final depth {}",
            buf.balancing_buffers, buf.padding_buffers, buf.depth
        );
    }
    println!(
        "netlist size: {} → {} ({:.2}x)\n",
        result.original.counts().priced_total(),
        result.pipelined.counts().priced_total(),
        result.size_ratio()
    );

    println!(
        "{:<5} {:>6} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "tech", "mode", "area", "power", "latency", "throughput", "T/A gain", "T/P gain"
    );
    for technology in Technology::all() {
        let row = compare(&result, &technology);
        for (mode, e) in [("orig", &row.original), ("wave", &row.pipelined)] {
            println!(
                "{:<5} {:>6} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
                technology.name,
                mode,
                format!("{:.2}", e.area),
                format!("{:.3}", e.power),
                format!("{:.3}", e.latency),
                format!("{:.1}", e.throughput),
                if mode == "wave" {
                    format!("{:.2}x", row.ta_gain())
                } else {
                    "—".into()
                },
                if mode == "wave" {
                    format!("{:.2}x", row.tp_gain())
                } else {
                    "—".into()
                },
            );
        }
    }
    Ok(())
}
