//! Wave interference demonstration: stream data waves through an
//! *unbalanced* netlist and watch them corrupt each other; then balance
//! it with Algorithm 1 and watch the same stream come out clean.
//!
//! This is the paper's core premise made executable: the rate at which
//! logic can propagate "depends not on the longest path delay but on
//! the difference between the longest and the shortest path delays".
//!
//! ```text
//! cargo run --example wave_simulation
//! ```

use wave_pipelining::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately skewed circuit: f = parity-ish mix where input `a`
    // reaches the output both directly (short path) and through a
    // 4-level chain (long path) — a path-length spread of 4.
    let mut n = Netlist::new("skewed");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let g1 = n.add_maj([a, b, c]);
    let g2 = n.add_maj([g1, b, c]);
    let g3 = n.add_maj([g2, b, c]);
    let g4 = n.add_maj([g3, a, a]); // reads `a` through a gap-4 edge
    n.add_output("f", g4);

    println!("unbalanced: {n}");
    println!(
        "balance check: {:?}\n",
        verify_balance(&n, None).err().map(|e| e.to_string())
    );

    // Alternate `a` every wave so a one-wave-late read is always wrong.
    let waves: Vec<Vec<bool>> = (0..10)
        .map(|i| vec![i % 2 == 0, i % 3 == 0, i % 4 < 2])
        .collect();

    let corrupted = WaveSimulator::new(&n).check_against_golden(&waves);
    println!("streaming 10 waves through the UNBALANCED netlist:");
    println!(
        "  corrupted waves: {corrupted:?}  ({} of {})",
        corrupted.len(),
        waves.len()
    );
    assert!(!corrupted.is_empty(), "skew must corrupt the stream");

    // Balance it with Algorithm 1.
    let mut balanced = n.clone();
    let stats = insert_buffers(&mut balanced);
    println!(
        "\nafter buffer insertion ({} buffers): {balanced}",
        stats.total()
    );
    let report = verify_balance(&balanced, None)?;
    println!(
        "balance check: OK — depth {}, {} waves in flight",
        report.depth, report.waves_in_flight
    );

    let corrupted = WaveSimulator::new(&balanced).check_against_golden(&waves);
    println!("\nstreaming the SAME 10 waves through the balanced netlist:");
    println!("  corrupted waves: {corrupted:?}");
    assert!(corrupted.is_empty());
    println!(
        "\none result every 3 clock phases instead of one every {} — a {:.1}x throughput gain.",
        report.depth,
        report.depth as f64 / 3.0
    );
    Ok(())
}
