//! The pass-pipeline API: assemble custom flow configurations, inspect
//! per-pass instrumentation, and evaluate a batch of circuits in
//! parallel.
//!
//! ```text
//! cargo run --release --example pass_pipeline
//! ```

use wave_pipelining::prelude::*;
use wavepipe::{BufferStrategy, DelayWeights, FlowPipeline};

fn main() {
    let g = find_benchmark("HAMMING").expect("suite benchmark").build();

    // 1. The paper's default flow (FO3 + BUF), as an explicit pipeline.
    //    Every run records wall time, component delta and depth change
    //    per pass.
    let default_flow = FlowPipeline::for_config(FlowConfig::default());
    let run = default_flow.run(&g).expect("flow verifies");
    println!("default flow on HAMMING:");
    print!("{}", run.trace_table());
    println!(
        "  → size ratio {:.2}×, {} waves in flight\n",
        run.result.size_ratio(),
        run.result.report.expect("verified").waves_in_flight
    );

    // 2. New scenarios are one-line pipeline edits. Retimed insertion:
    //    same depth, fewer buffers.
    let retimed = FlowPipeline::builder()
        .map(false)
        .restrict_fanout(3)
        .insert_buffers(BufferStrategy::Retimed) // ← the one line
        .verify(Some(3))
        .build()
        .expect("well-ordered")
        .run(&g)
        .expect("flow verifies");
    println!(
        "retimed insertion saves {} of {} buffers",
        run.result.buffers.expect("ran").total() - retimed.result.buffers.expect("ran").total(),
        run.result.buffers.expect("ran").total(),
    );

    // 3. Weighted (QCA-tailored) balancing — swap strategy and verifier.
    let weighted = FlowPipeline::builder()
        .map(true) // inverter-minimized mapping: INV is QCA's priciest cell
        .restrict_fanout(3)
        .insert_buffers(BufferStrategy::Weighted(DelayWeights::QCA))
        .verify_weighted(DelayWeights::QCA)
        .build()
        .expect("well-ordered")
        .run(&g)
        .expect("flow verifies");
    println!(
        "QCA-weighted balancing: {} buffers, weighted depth {}",
        weighted.weighted.expect("ran").buffers,
        weighted.weighted.expect("ran").weighted_depth,
    );

    // 4. Ill-ordered pipelines never build: §IV requires fan-out
    //    restriction before buffer insertion.
    let err = FlowPipeline::builder()
        .map(false)
        .insert_buffers(BufferStrategy::Asap)
        .restrict_fanout(3)
        .build()
        .unwrap_err();
    println!("ill-ordered pipeline rejected: {err}");

    // 5. FOG-k sweep over a batch of circuits, in parallel: four
    //    pipelines × N circuits, each suite run scheduled across all
    //    cores by run_batch.
    let graphs: Vec<mig::Mig> = ["SASC", "ADD32R", "ALU16", "CMP32"]
        .iter()
        .map(|name| find_benchmark(name).expect("suite benchmark").build())
        .collect();
    let refs: Vec<&mig::Mig> = graphs.iter().collect();
    println!("\nFOG-k sweep (4 circuits in parallel):");
    for k in 2..=5u32 {
        let pipeline = FlowPipeline::builder()
            .map(false)
            .restrict_fanout(k)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(k))
            .build()
            .expect("well-ordered");
        let ratios: Vec<f64> = pipeline
            .run_batch(&refs)
            .into_iter()
            .map(|outcome| outcome.expect("flow verifies").result.size_ratio())
            .collect();
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("  k={k}: mean size ratio {mean:.2}×");
    }

    // 6. The cost-model layer: attach a technology and every pass is
    //    priced (area / energy / cycle-time deltas in the trace).
    let priced = FlowPipeline::builder()
        .map(false)
        .restrict_fanout(3)
        .insert_buffers(BufferStrategy::Asap)
        .verify(Some(3))
        .with_cost_model(&Technology::qca())
        .build()
        .expect("well-ordered")
        .run(&g)
        .expect("flow verifies");
    println!("\npriced trace (QCA) on HAMMING:");
    print!("{}", priced.trace_table());

    // 7. The circuit × technology grid, through the engine facade: the
    //    experiment is a declarative FlowSpec (pipeline + technologies
    //    + circuit names), every (circuit, technology) cell is one task
    //    on the work-pulling scheduler, and the engine's content-hash
    //    keyed cache makes repeated or overlapping sweeps incremental
    //    (see examples/engine_spec.rs for the cache at work).
    let engine = Engine::new().with_resolver(benchsuite::build_mig);
    let mut spec = FlowSpec::new("pass-pipeline-grid");
    for name in ["SASC", "ADD32R", "ALU16", "CMP32"] {
        spec = spec.circuit(name);
    }
    for technology in Technology::all() {
        spec = spec.technology(technology.cost_table());
    }
    let grid = engine.run(&spec).expect("spec validates");
    println!("\ncircuit × technology grid ({} cells):", grid.cells.len());
    for cell in &grid {
        let run = cell.outcome.as_ref().expect("grid cell verifies");
        let final_price = run
            .trace
            .last()
            .and_then(|p| p.priced.as_ref())
            .expect("grid runs are priced");
        println!(
            "  {:<8} @ {:<4} area {:>12.2} µm², energy {:>12.2} fJ",
            grid.circuits[cell.circuit],
            cell.technology.map_or("—", |t| &grid.technologies[t]),
            final_price.after.area,
            final_price.after.energy,
        );
    }
}
