//! Defining a custom beyond-CMOS technology model and sweeping a design
//! decision: how does the QCA inverter cost change the picture?
//!
//! The paper's Table I prices a QCA inverter at 10× area / 7× delay /
//! 10× energy of a cell — by far the most expensive component. This
//! example clones the QCA model, sweeps the inverter cost down to 1×,
//! and shows how the wave-pipelined T/P gain responds (the cheap-buffer
//! vs expensive-inverter ratio is what drives QCA's power artifact).
//!
//! ```text
//! cargo run --release --example custom_technology
//! ```

use wave_pipelining::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = find_benchmark("HAMMING").expect("suite benchmark").build();
    let result = run_flow(&g, FlowConfig::default())?;

    println!("benchmark: {g}");
    println!(
        "mapped: {} MAJ, {} INV (original); +{} BUF, +{} FOG after the flow\n",
        result.original.counts().maj,
        result.original.counts().inv,
        result.pipelined.counts().buf,
        result.pipelined.counts().fog
    );

    println!(
        "{:<22} {:>10} {:>10} {:>9} {:>9}",
        "technology", "P orig", "P wave", "T/A gain", "T/P gain"
    );
    for inv_factor in [10.0, 7.0, 4.0, 1.0] {
        let mut custom = Technology::qca();
        custom.name = format!("QCA(inv×{inv_factor})");
        custom.inv.area = inv_factor;
        custom.inv.energy = inv_factor;
        // Delay stays at Table I's 7 — the phase weight models it.

        let row = compare(&result, &custom);
        println!(
            "{:<22} {:>10} {:>10} {:>8.2}x {:>8.2}x",
            custom.name,
            format!("{:.3}", row.original.power),
            format!("{:.3}", row.pipelined.power),
            row.ta_gain(),
            row.tp_gain()
        );
    }

    // A from-scratch hypothetical: a fast, uniform-cost magnonic node.
    let hypothetical = Technology {
        name: "HYPO".to_owned(),
        cell_area: tech::Area(0.001),
        cell_delay: tech::Delay(0.1),
        cell_energy: tech::Energy(1e-3),
        inv: tech::RelativeCost::uniform(1.0),
        maj: tech::RelativeCost::uniform(2.0),
        buf: tech::RelativeCost::uniform(1.0),
        fog: tech::RelativeCost::uniform(2.0),
        phase_weight: 2.0,
        output_sense_energy: tech::Energy(0.0),
    };
    let row = compare(&result, &hypothetical);
    println!(
        "{:<22} {:>10} {:>10} {:>8.2}x {:>8.2}x   (user-defined)",
        hypothetical.name,
        format!("{:.3}", row.original.power),
        format!("{:.3}", row.pipelined.power),
        row.ta_gain(),
        row.tp_gain()
    );
    Ok(())
}
