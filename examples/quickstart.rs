//! Quickstart: build a small MIG, enable wave pipelining, stream data
//! waves through it and evaluate the throughput gains on all three
//! beyond-CMOS technologies.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use wave_pipelining::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a 4-bit ripple-carry adder as a Majority-Inverter Graph.
    //    The full-adder carry is a single majority gate — this is why
    //    SWD/QCA/NML want MIG synthesis.
    let mut g = Mig::with_name("adder4");
    let a = g.add_inputs("a", 4);
    let b = g.add_inputs("b", 4);
    let mut carry = Signal::ZERO;
    for i in 0..4 {
        let (s, c) = g.add_full_adder(a[i], b[i], carry);
        g.add_output(format!("s{i}"), s);
        carry = c;
    }
    g.add_output("cout", carry);
    println!("MIG: {g}");

    // 2. Run the paper's flow: fan-out restriction to 3, then buffer
    //    insertion (Algorithm 1). The result is verified automatically.
    let result = run_flow(&g, FlowConfig::default())?;
    let report = result.report.expect("flow verifies its output");
    println!("original netlist:   {}", result.original);
    println!("wave-pipelined:     {}", result.pipelined);
    println!(
        "waves in flight:    {} (depth {} / 3 phases)",
        report.waves_in_flight, report.depth
    );

    // 3. Stream additions through the pipeline: one new operation every
    //    three clock phases, regardless of circuit depth.
    let additions: [(u8, u8); 5] = [(3, 4), (9, 9), (15, 1), (0, 0), (7, 8)];
    let waves: Vec<Vec<bool>> = additions
        .iter()
        .map(|&(x, y)| {
            (0..4)
                .map(|i| x >> i & 1 != 0)
                .chain((0..4).map(|i| y >> i & 1 != 0))
                .collect()
        })
        .collect();
    let run = WaveSimulator::new(&result.pipelined).run(&waves);
    for (&(x, y), out) in additions.iter().zip(&run.outputs) {
        let sum: u32 = out.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum();
        println!("wave: {x:>2} + {y:>2} = {sum}");
        assert_eq!(sum, x as u32 + y as u32);
    }

    // 4. Evaluate the trade-off on the three technologies of the paper.
    println!(
        "\n{:<5} {:>12} {:>12} {:>9} {:>9}",
        "tech", "T orig", "T wave", "T/A gain", "T/P gain"
    );
    for technology in Technology::all() {
        let row = compare(&result, &technology);
        println!(
            "{:<5} {:>12} {:>12} {:>8.2}x {:>8.2}x",
            row.technology,
            format!("{:.2}", row.original.throughput),
            format!("{:.2}", row.pipelined.throughput),
            row.ta_gain(),
            row.tp_gain()
        );
    }
    Ok(())
}
