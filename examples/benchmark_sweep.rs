//! Sweep a slice of the benchmark suite — plus the synthetic-generator
//! presets — through the flow and print a compact scoreboard: sizes,
//! depths, buffer/FOG overheads and the SWD gains — the bird's-eye
//! view behind Figs 5, 8 and 9.
//!
//! ```text
//! cargo run --release --example benchmark_sweep [N]
//! ```
//!
//! `N` limits how many suite benchmarks to run (default 12, smallest
//! first by original size; the full 37 take a few minutes in debug
//! builds). The `synth:*` preset names ride along regardless of `N` —
//! any `synth:family:seed:k=v` name works here, same as in a spec.

use wave_pipelining::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let limit: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(12);

    // Build everything cheap-ish first, sort by size, keep N, then
    // append the synthetic presets (resolved by the same registry).
    let mut built: Vec<_> = SUITE
        .iter()
        .filter(|s| !matches!(s.name, "RAND50K" | "MUL64" | "DIFFEQ1"))
        .map(|s| (s.name, s.build()))
        .collect();
    built.sort_by_key(|(_, g)| g.gate_count());
    built.truncate(limit);
    for name in benchsuite::synth::PRESETS {
        let g = benchsuite::build_mig(name).expect("presets resolve");
        built.push((name, g));
    }

    let swd = Technology::swd();
    println!(
        "{:<34} {:>8} {:>6} {:>8} {:>6} {:>7} {:>7} {:>9} {:>9}",
        "benchmark", "size", "depth", "size'", "depth'", "+BUF", "+FOG", "SWD T/A", "SWD T/P"
    );
    // One declarative pipeline spec, swept over the whole batch by the
    // engine on the work-pulling scheduler (cost-blind: one cell per
    // circuit; pricing happens post-hoc against SWD below).
    let engine = Engine::new();
    let pipeline = PipelineSpec::for_config(FlowConfig::default());
    let graphs: Vec<&Mig> = built.iter().map(|(_, g)| g).collect();
    let cells = engine.run_pipeline_grid(&pipeline, &graphs, &[])?;
    for ((name, _), cell) in built.iter().zip(cells) {
        let run = cell.outcome?;
        let result = &run.result;
        let (o, p) = (result.original.counts(), result.pipelined.counts());
        let row = compare(result, &swd);
        println!(
            "{:<34} {:>8} {:>6} {:>8} {:>6} {:>7} {:>7} {:>8.2}x {:>8.2}x",
            name,
            o.priced_total(),
            result.original.depth(),
            p.priced_total(),
            result.pipelined.depth(),
            p.buf,
            p.fog,
            row.ta_gain(),
            row.tp_gain()
        );
    }
    println!(
        "\n(size' and depth' are after fan-out restriction to 3 and buffer\n\
         insertion; gains are wave-pipelined vs original on Spin Wave Devices)"
    );
    Ok(())
}
