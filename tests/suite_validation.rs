//! Validation of the reconstructed 37-circuit benchmark suite: every
//! circuit builds deterministically, has sane structure, and the suite
//! as a whole spans the size/depth population the paper's figures need.

use wave_pipelining::prelude::*;

/// The three giants are exercised by the release-mode harness
/// (`repro_all`); skip them in debug-mode unit runs.
const GIANTS: [&str; 3] = ["MUL64", "DIFFEQ1", "RAND50K"];

fn non_giant_suite() -> Vec<(&'static str, Mig)> {
    SUITE
        .iter()
        .filter(|s| !GIANTS.contains(&s.name))
        .map(|s| (s.name, s.build()))
        .collect()
}

#[test]
fn all_non_giant_benchmarks_build_with_sane_structure() {
    for (name, g) in non_giant_suite() {
        assert!(g.gate_count() > 0, "{name}: empty");
        assert!(g.output_count() > 0, "{name}: no outputs");
        assert!(g.input_count() > 0, "{name}: no inputs");
        assert!(g.depth() >= 1, "{name}: zero depth");
        assert_eq!(g.name(), name);
        // No output may dangle on an unmapped node.
        for o in g.outputs() {
            let _ = g.node(o.signal.node());
        }
    }
}

#[test]
fn suite_spans_two_orders_of_magnitude_without_the_giants() {
    let sizes: Vec<usize> = non_giant_suite()
        .iter()
        .map(|(_, g)| g.gate_count())
        .collect();
    let min = *sizes.iter().min().expect("non-empty suite");
    let max = *sizes.iter().max().expect("non-empty suite");
    assert!(min < 500, "smallest benchmark {min}");
    assert!(max > 10_000, "largest non-giant benchmark {max}");
}

#[test]
fn suite_depth_population_matches_the_paper_regime() {
    // The paper's Fig 7 x-axis spans original critical paths of 6..201;
    // our population must cover shallow control (≤ 12) through deep
    // arithmetic (≥ 100).
    let depths: Vec<u32> = non_giant_suite().iter().map(|(_, g)| g.depth()).collect();
    assert!(depths.iter().any(|&d| d <= 12), "no shallow circuits");
    assert!(depths.iter().any(|&d| d >= 100), "no deep circuits");
    let shallow = depths.iter().filter(|&&d| d <= 20).count();
    assert!(
        shallow * 3 >= depths.len(),
        "control-profile share too small: {shallow}/{}",
        depths.len()
    );
}

#[test]
fn table2_benchmarks_profile_against_paper_rows() {
    // (name, paper size, paper depth): our synthetic stand-ins must be
    // within an order of magnitude on size and on the same side of the
    // shallow/deep divide.
    let rows = [
        ("SASC", 622usize, 6u32),
        ("DES_AREA", 4187, 22),
        ("MUL32", 9097, 36),
        ("HAMMING", 2072, 61),
        ("REVX", 7517, 143),
    ];
    for (name, paper_size, paper_depth) in rows {
        let g = find_benchmark(name).expect("table 2 name").build();
        let size = g.gate_count();
        assert!(
            size * 10 >= paper_size && size <= paper_size * 10,
            "{name}: size {size} vs paper {paper_size}"
        );
        // Depth: within an order of magnitude. Exact agreement is not
        // expected — the paper's netlists were depth-optimized MIGs
        // (our MUL32 is a true ripple array: depth ~124 vs paper 36),
        // and mapped depth also counts inverter levels. EXPERIMENTS.md
        // documents the per-name deviations.
        let depth = g.depth();
        assert!(
            depth * 10 >= paper_depth && depth <= paper_depth * 10,
            "{name}: depth {depth} vs paper {paper_depth}"
        );
    }
}

#[test]
fn every_benchmark_maps_to_a_netlist() {
    for (name, g) in non_giant_suite() {
        let n = netlist_from_mig(&g);
        assert_eq!(n.counts().maj, g.gate_count(), "{name}");
        assert!(n.depth() >= g.depth(), "{name}");
        // Inverter-minimized mapping never has more inverters.
        let opt = wavepipe::netlist_from_mig_min_inv(&g);
        assert!(
            opt.counts().inv <= n.counts().inv,
            "{name}: min-inv {} > plain {}",
            opt.counts().inv,
            n.counts().inv
        );
    }
}

#[test]
fn cone_analysis_runs_on_the_suite() {
    for (name, g) in non_giant_suite().into_iter().take(12) {
        let cones = mig::ConeAnalysis::new(&g);
        for pos in 0..g.output_count() {
            let support = cones.output_support(pos);
            assert!(
                support.len() <= g.input_count(),
                "{name}: support exceeds inputs"
            );
        }
    }
}

#[test]
#[ignore = "builds the three giant circuits; run with --ignored (or use the release harness)"]
fn giant_benchmarks_build() {
    for name in GIANTS {
        let g = find_benchmark(name).expect("giant in suite").build();
        assert!(g.gate_count() > 10_000, "{name}: {}", g.gate_count());
    }
}
