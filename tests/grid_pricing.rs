//! Golden tests for the cost-model layer: a `run_grid` sweep must price
//! exactly what the legacy post-hoc `compare()` path reports, and the
//! per-pass priced deltas must be invariant under every pass reordering
//! the pipeline builder permits.

use proptest::prelude::*;
use tech::{compare, evaluate, OperatingMode, Technology};
use wavepipe::{
    run_flow, BufferStrategy, FlowConfig, FlowContext, FlowPipeline, Pass, PassError, PricedCost,
};
use wavepipe_bench::harness::{build_suite, engine, evaluate_suite_grid, QUICK_SUBSET};

#[test]
fn grid_comparisons_match_post_hoc_compare_on_quick_suite() {
    // The acceptance golden: one parallel circuit × technology sweep
    // reproduces the Table II / Fig 9 comparison numbers the post-hoc
    // per-technology loop produced, exactly.
    let suite = build_suite(Some(&QUICK_SUBSET));
    let grid = evaluate_suite_grid(&engine(), &suite);
    let technologies = Technology::all();
    assert_eq!(grid.evaluated.len(), suite.len());
    for ((spec, g), (name, comparisons)) in suite.iter().zip(&grid.evaluated) {
        assert_eq!(spec.name, name);
        let legacy = run_flow(g, FlowConfig::default()).expect("legacy flow verifies");
        for (technology, gridded) in technologies.iter().zip(comparisons) {
            assert_eq!(
                compare(&legacy, technology),
                *gridded,
                "{} @ {}: grid diverged from post-hoc compare()",
                spec.name,
                technology.name
            );
        }
    }
}

#[test]
fn grid_priced_traces_match_post_hoc_evaluation_exactly() {
    let suite = build_suite(Some(&["SASC", "ADD32R", "CMP32"]));
    let grid = evaluate_suite_grid(&engine(), &suite);
    let technologies = Technology::all();
    for t in &grid.traces {
        let g = &suite
            .iter()
            .find(|(spec, _)| spec.name == t.circuit)
            .expect("trace names a suite circuit")
            .1;
        let technology = technologies
            .iter()
            .find(|tech| tech.name == t.technology)
            .expect("trace names a known technology");
        let legacy = run_flow(g, FlowConfig::default()).expect("legacy flow verifies");
        let label = format!("{} @ {}", t.circuit, t.technology);

        // After the map pass the working netlist IS the original
        // mapping, so its priced state must equal the post-hoc original
        // evaluation bit-for-bit.
        let map = t.trace.first().unwrap().priced.as_ref().unwrap();
        let original = evaluate(&legacy.original, technology, OperatingMode::Combinational);
        assert_eq!(map.after.area, original.area.value(), "{label}");
        assert_eq!(map.after.energy, original.energy.value(), "{label}");
        assert_eq!(map.after.latency, original.latency.value(), "{label}");

        // The final pass prices the wave-pipelined netlist.
        let last = t.trace.last().unwrap().priced.as_ref().unwrap();
        let pipelined = evaluate(&legacy.pipelined, technology, OperatingMode::WavePipelined);
        assert_eq!(last.after.area, pipelined.area.value(), "{label}");
        assert_eq!(last.after.energy, pipelined.energy.value(), "{label}");
        assert_eq!(last.after.latency, pipelined.latency.value(), "{label}");

        // The per-pass deltas telescope to the final price (up to float
        // re-association of the subtraction chain).
        let area_sum: f64 = t
            .trace
            .iter()
            .map(|p| p.priced.as_ref().unwrap().area_delta())
            .sum();
        let tolerance = 1e-9 * pipelined.area.value().max(1.0);
        assert!(
            (area_sum - pipelined.area.value()).abs() <= tolerance,
            "{label}: pass deltas sum to {area_sum}, netlist prices to {}",
            pipelined.area.value()
        );
    }
}

/// A transform-free analysis pass, insertable anywhere the builder
/// allows `PassKind::Other`.
struct NoopPass;

impl Pass for NoopPass {
    fn name(&self) -> String {
        "noop".to_owned()
    }
    fn run(&self, _ctx: &mut FlowContext<'_>) -> Result<(), PassError> {
        Ok(())
    }
}

/// The default flow's transform steps, for reordering variants.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Step {
    Map,
    Fanout,
    Buffers,
    Verify,
    Noop,
}

fn build_and_run(steps: &[Step], technology: &Technology, g: &mig::Mig) -> Vec<PricedCost> {
    let mut builder = FlowPipeline::builder().with_cost_model(technology);
    for step in steps {
        builder = match step {
            Step::Map => builder.map(false),
            Step::Fanout => builder.restrict_fanout(3),
            Step::Buffers => builder.insert_buffers(BufferStrategy::Asap),
            Step::Verify => builder.verify(Some(3)),
            Step::Noop => builder.pass(Box::new(NoopPass)),
        };
    }
    builder
        .build()
        .expect("builder-permitted ordering")
        .run(g)
        .expect("flow verifies")
        .trace
        .iter()
        .map(|p| p.priced.as_ref().expect("cost model configured").after)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pricing is a function of the netlist alone: any builder-permitted
    /// reordering of the default flow — analysis passes interleaved at
    /// arbitrary legal positions, the (idempotent) restriction pass
    /// duplicated — prices the final netlist identically on every
    /// technology.
    #[test]
    fn pricing_invariant_under_builder_permitted_reorderings(
        seed in 0u64..32,
        noop_positions in prop::collection::vec(1usize..5, 3),
        noop_count in 0usize..=3,
        duplicate_fanout in any::<bool>(),
    ) {
        let g = mig::random_mig(mig::RandomMigConfig {
            inputs: 6,
            outputs: 3,
            gates: 60,
            depth: 6,
            seed,
        });
        let canonical = [Step::Map, Step::Fanout, Step::Buffers, Step::Verify];

        let mut steps: Vec<Step> = canonical.to_vec();
        if duplicate_fanout {
            steps.insert(2, Step::Fanout); // FO3 twice: second finds nothing
        }
        for &p in noop_positions.iter().take(noop_count) {
            steps.insert(p.min(steps.len()), Step::Noop);
        }

        for technology in Technology::all() {
            let base = build_and_run(&canonical, &technology, &g);
            let variant = build_and_run(&steps, &technology, &g);
            // The final priced state is identical, bit for bit.
            prop_assert_eq!(
                base.last().unwrap(),
                variant.last().unwrap(),
                "{}: {:?} diverged from the canonical flow",
                technology.name,
                steps
            );
        }
    }
}
