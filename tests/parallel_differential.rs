//! The sharded differential engine is an *execution* knob, not a
//! *semantics* knob: for any block width and thread count,
//! [`wavepipe::differential::check_with`] must return the bit-identical
//! verdict — the same pattern budget on clean pairs, and the same
//! canonical counterexample (first divergence in block-then-output-
//! then-lane order) on broken ones.

use wavepipe::differential::{self, Verdict};
use wavepipe::{
    insert_buffers, netlist_from_mig, restrict_fanout, EquivalencePolicy, Netlist, SweepConfig,
};

const THREADS: [usize; 3] = [1, 2, 8];
const BLOCK_WORDS: [usize; 3] = [1, 3, 8];

/// A mid-sized circuit whose input count selects the policy's
/// exhaustive arm (all `2^n` patterns).
fn small_pair() -> (mig::Mig, Netlist) {
    let name = "synth:dag:77:depth=6,inputs=10,nodes=160,outputs=6";
    let graph = benchsuite::build_mig(name).expect("synth name resolves");
    let mut netlist = netlist_from_mig(&graph);
    restrict_fanout(&mut netlist, 3);
    insert_buffers(&mut netlist);
    (graph, netlist)
}

/// A wide circuit that forces the stratified-sampling arm.
fn sampled_pair() -> (mig::Mig, Netlist) {
    let name = "synth:dag:78:depth=7,inputs=30,nodes=240,outputs=8";
    let graph = benchsuite::build_mig(name).expect("synth name resolves");
    let mut netlist = netlist_from_mig(&graph);
    restrict_fanout(&mut netlist, 3);
    insert_buffers(&mut netlist);
    (graph, netlist)
}

/// Flip one output through an inverter — a single-output corruption
/// with a well-defined first divergence.
fn corrupt(netlist: &mut Netlist, output: usize) {
    let driver = netlist.outputs()[output].driver;
    let broken = netlist.add_inv(driver);
    netlist.set_output_driver(output, broken);
}

fn sweep_grid() -> Vec<SweepConfig> {
    let mut grid = Vec::new();
    for &threads in &THREADS {
        for &block_words in &BLOCK_WORDS {
            grid.push(
                SweepConfig::single_word()
                    .with_block_words(block_words)
                    .with_threads(threads),
            );
        }
    }
    grid
}

#[test]
fn exhaustive_verdicts_are_bit_identical_across_the_grid() {
    let (graph, clean) = small_pair();
    let policy = EquivalencePolicy::default();
    let reference = differential::check_with(&clean, &graph, &policy, &SweepConfig::single_word())
        .expect("interfaces match");
    assert!(matches!(
        reference,
        Verdict::Equivalent {
            exhaustive: true,
            ..
        }
    ));

    let (_, mut broken) = small_pair();
    corrupt(&mut broken, 3);
    let broken_reference =
        differential::check_with(&broken, &graph, &policy, &SweepConfig::single_word())
            .expect("interfaces match");
    let Verdict::Diverged(cex) = &broken_reference else {
        panic!("corrupted netlist must diverge");
    };
    assert_eq!(cex.output, 3, "corruption localizes to the flipped output");
    // The counterexample replays on both sides.
    assert_eq!(broken.eval(&cex.pattern)[cex.output], cex.actual);

    for sweep in sweep_grid() {
        assert_eq!(
            differential::check_with(&clean, &graph, &policy, &sweep).expect("interfaces match"),
            reference,
            "clean verdict drifted at {sweep:?}"
        );
        assert_eq!(
            differential::check_with(&broken, &graph, &policy, &sweep).expect("interfaces match"),
            broken_reference,
            "counterexample drifted at {sweep:?}"
        );
    }
}

#[test]
fn sampled_verdicts_are_bit_identical_across_the_grid() {
    let (graph, clean) = sampled_pair();
    // 30 inputs: always the sampled arm under the default ceiling.
    let policy = EquivalencePolicy::sampled(17, 0xFEED);
    let reference = differential::check_with(&clean, &graph, &policy, &SweepConfig::single_word())
        .expect("interfaces match");
    assert!(matches!(
        reference,
        Verdict::Equivalent {
            exhaustive: false,
            ..
        }
    ));

    let (_, mut broken) = sampled_pair();
    corrupt(&mut broken, 5);
    let broken_reference =
        differential::check_with(&broken, &graph, &policy, &SweepConfig::single_word())
            .expect("interfaces match");
    let Verdict::Diverged(cex) = &broken_reference else {
        panic!("corrupted netlist must diverge under sampling");
    };
    assert_eq!(cex.output, 5);

    for sweep in sweep_grid() {
        assert_eq!(
            differential::check_with(&clean, &graph, &policy, &sweep).expect("interfaces match"),
            reference,
            "clean verdict drifted at {sweep:?}"
        );
        assert_eq!(
            differential::check_with(&broken, &graph, &policy, &sweep).expect("interfaces match"),
            broken_reference,
            "counterexample drifted at {sweep:?}"
        );
    }
}

#[test]
fn the_environment_driven_path_matches_the_explicit_grid() {
    // `differential::check` resolves its SweepConfig from the
    // environment; whatever it resolves to, the verdict must equal the
    // single-word reference.
    let (graph, mut broken) = small_pair();
    corrupt(&mut broken, 0);
    let policy = EquivalencePolicy::default();
    let reference = differential::check_with(&broken, &graph, &policy, &SweepConfig::single_word())
        .expect("interfaces match");
    assert_eq!(
        differential::check(&broken, &graph, &policy).expect("interfaces match"),
        reference
    );
}
