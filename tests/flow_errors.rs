//! Integration coverage of the [`wavepipe::FlowError`] surface: every
//! user mistake — unknown benchmark names, ill-ordered pass lists,
//! cost-aware pipelines with nothing to price against, even custom
//! passes that wire combinational cycles — must come back as the right
//! error variant with a `source()` chain, never a panic.

use std::error::Error as _;

use wavepipe::{
    BufferStrategy, Engine, FlowError, FlowPipeline, FlowSpec, PipelineSpec, SpecError, SynthSpec,
};

fn engine() -> Engine {
    Engine::new().with_resolver(benchsuite::build_mig)
}

#[test]
fn unknown_benchmark_name_is_an_unknown_circuit_error() {
    let err = engine()
        .run(&FlowSpec::new("u").circuit("NOT_A_BENCHMARK"))
        .unwrap_err();
    match &err {
        FlowError::Spec(SpecError::UnknownCircuit(name)) => assert_eq!(name, "NOT_A_BENCHMARK"),
        other => panic!("wrong variant: {other:?}"),
    }
    assert!(err.to_string().contains("NOT_A_BENCHMARK"));
    assert!(err.source().is_some(), "spec errors chain their source");
}

#[test]
fn unknown_synth_family_and_malformed_synth_requests_are_spec_errors() {
    // A family the generator does not know: resolver returns None.
    let err = engine()
        .run(&FlowSpec::new("u").synthetic_circuit(SynthSpec::new("quantum", 1)))
        .unwrap_err();
    assert!(matches!(
        err,
        FlowError::Spec(SpecError::UnknownCircuit(name)) if name == "synth:quantum:1"
    ));

    // A malformed request never reaches the resolver.
    let err = engine()
        .run(&FlowSpec::new("m").synthetic_circuit(SynthSpec::new("DAG", 1)))
        .unwrap_err();
    assert!(matches!(err, FlowError::Spec(SpecError::Synthetic { .. })));
}

#[test]
fn ill_ordered_pass_list_is_a_pipeline_error() {
    let spec = FlowSpec::new("ill")
        .with_pipeline(
            PipelineSpec::map(false)
                .insert_buffers(BufferStrategy::Asap)
                .restrict_fanout(3),
        )
        .circuit("SASC");
    let err = engine().run(&spec).unwrap_err();
    assert!(matches!(
        err,
        FlowError::Pipeline(wavepipe::PipelineError::FanoutAfterBuffers)
    ));
    assert!(err.to_string().contains("invalid pipeline"));
}

#[test]
fn cost_aware_pipeline_without_technology_is_rejected_before_running() {
    let engine = engine();
    let spec = FlowSpec::new("blind")
        .with_pipeline(
            PipelineSpec::map(false)
                .restrict_fanout(3)
                .insert_buffers(BufferStrategy::CostAware),
        )
        .circuit("SASC");
    let err = engine.run(&spec).unwrap_err();
    assert!(matches!(
        err,
        FlowError::Spec(SpecError::CostAwareWithoutTechnology)
    ));
    assert_eq!(
        engine.stats().passes_executed,
        0,
        "rejected upfront: nothing may execute"
    );
}

#[test]
fn custom_pass_wiring_a_combinational_cycle_fails_the_run_not_the_process() {
    use wavepipe::{FlowContext, Pass, PassError};

    struct CyclePass;
    impl Pass for CyclePass {
        fn name(&self) -> String {
            "cycle".to_owned()
        }
        fn run(&self, ctx: &mut FlowContext<'_>) -> Result<(), PassError> {
            let netlist = ctx.netlist_mut();
            let input = netlist.inputs()[0];
            let b1 = netlist.add_buf(input);
            let b2 = netlist.add_buf(b1);
            netlist.component_mut(b1).fanins_mut()[0] = b2;
            Ok(())
        }
    }

    let g = benchsuite::build_mig("synth:dag:5:nodes=60").expect("synth circuit");
    let err = FlowPipeline::builder()
        .map(false)
        .pass(Box::new(CyclePass))
        .build()
        .expect("kind tags satisfy the builder")
        .run(&g)
        .map(|_| ())
        .unwrap_err();
    let err = FlowError::from(err);
    assert!(
        matches!(
            &err,
            FlowError::Pass(wavepipe::PassError::Netlist(
                wavepipe::NetlistError::CombinationalCycle(_)
            ))
        ),
        "{err:?}"
    );
    // Two-level source chain: FlowError → PassError → NetlistError.
    assert!(err.source().unwrap().source().is_some());
}

#[test]
fn per_cell_pass_failures_do_not_poison_a_sweep() {
    // An unbalanced verify-only pipeline fails each cell individually;
    // the sweep itself succeeds and reports per-cell outcomes.
    let engine = engine();
    let spec = FlowSpec::new("per-cell")
        .with_pipeline(PipelineSpec::map(false).verify(None))
        .synthetic_circuit(SynthSpec::new("dag", 3).param("nodes", 80))
        .synthetic_circuit(SynthSpec::new("adder", 3).param("width", 4));
    let run = engine.run(&spec).expect("sweep survives failing cells");
    assert_eq!(run.cells.len(), 2);
    for cell in &run {
        assert!(
            cell.outcome.is_err(),
            "unbalanced netlists cannot verify without buffer insertion"
        );
    }
}
