//! Capacity-bounded engine cache semantics: the cache is LRU — hits
//! refresh recency, filling past capacity evicts the least-recently-
//! used cell, and re-running an evicted cell re-executes its passes
//! (all confirmed through the [`wavepipe::EngineStats`] counters).

use wavepipe::{Engine, FlowSpec, SynthSpec};

fn engine(capacity: usize) -> Engine {
    Engine::new()
        .with_resolver(benchsuite::build_mig)
        .with_cache_capacity(capacity)
}

fn spec(seed: u64) -> FlowSpec {
    FlowSpec::new(format!("cell-{seed}"))
        .synthetic_circuit(SynthSpec::new("dag", seed).param("nodes", 60))
}

#[test]
fn filling_past_capacity_evicts_lru_and_evicted_cells_re_execute() {
    let engine = engine(2);

    engine.run(&spec(1)).unwrap(); // cache: [1]
    engine.run(&spec(2)).unwrap(); // cache: [1, 2]
    assert_eq!(engine.cached_cells(), 2);

    // Touch cell 1: it becomes the most recently used.
    let hit = engine.run(&spec(1)).unwrap();
    assert_eq!(hit.stats.cache_hits, 1);
    assert_eq!(hit.stats.passes_executed, 0);

    // Cell 3 fills past capacity → the LRU entry (2, not 1) goes.
    engine.run(&spec(3)).unwrap(); // cache: [1, 3]
    assert_eq!(engine.cached_cells(), 2);

    let survivor = engine.run(&spec(1)).unwrap();
    assert_eq!(
        survivor.stats.cache_hits, 1,
        "the recently-touched cell must survive the eviction"
    );
    assert_eq!(survivor.stats.passes_executed, 0);

    let evicted = engine.run(&spec(2)).unwrap();
    assert_eq!(evicted.stats.cache_hits, 0, "cell 2 was evicted");
    assert_eq!(evicted.stats.cache_misses, 1);
    assert!(
        evicted.stats.passes_executed > 0,
        "an evicted cell re-executes its passes"
    );
}

#[test]
fn eviction_is_bounded_under_a_long_sweep() {
    let engine = engine(3);
    for seed in 0..10 {
        engine.run(&spec(seed)).unwrap();
    }
    assert_eq!(engine.cached_cells(), 3, "capacity is a hard bound");
    let stats = engine.stats();
    assert_eq!(stats.cache_misses, 10);
    assert_eq!(stats.cache_hits, 0);

    // The three most recent seeds are resident; everything older is not.
    for seed in 7..10 {
        let run = engine.run(&spec(seed)).unwrap();
        assert_eq!(run.stats.cache_hits, 1, "seed {seed} should be resident");
    }
    let old = engine.run(&spec(0)).unwrap();
    assert_eq!(old.stats.cache_misses, 1, "seed 0 aged out");
}

#[test]
fn cumulative_counters_track_every_run() {
    let engine = engine(8);
    engine.run(&spec(1)).unwrap();
    engine.run(&spec(1)).unwrap();
    engine.run(&spec(2)).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
    assert!(stats.passes_executed >= 8, "two cold runs × four passes");

    engine.clear_cache();
    assert_eq!(engine.cached_cells(), 0);
    let after = engine.run(&spec(1)).unwrap();
    assert_eq!(after.stats.cache_misses, 1, "clear forces recomputation");
}
