//! Metamorphic differential verification over the synthetic-circuit
//! generator: hundreds of generated circuits stream through the engine
//! and every one is checked **differentially** against its source MIG
//! on the shared bit-parallel engine (`wavepipe::differential`):
//! exhaustively (all `2^n` patterns) for small input counts, seeded
//! stratified sampling beyond — plus word-level wave streaming on a
//! subsample (64 independent streams per run) and the structural
//! invariants each pass promises (fan-out bound, balanced depth),
//! across several pipeline configurations.
//!
//! The circuit population is derived deterministically from an index,
//! so a failure report like `synth:dag:137:depth=6,nodes=166` is a
//! complete reproduction recipe: `benchsuite::build_mig` on that name
//! rebuilds the exact netlist (see README, "Synthetic workloads &
//! testing guide").
//!
//! `SYNTH_METAMORPHIC_CASES` shrinks/grows the population (CI's smoke
//! jobs scale it; the default 256 — raised from 200 now that each case
//! checks thousands of patterns at 64 per netlist traversal — fits the
//! normal `cargo test` budget).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wave_pipelining::prelude::*;
use wavepipe::differential::{self, Verdict};
use wavepipe::{
    BufferStrategy, EquivalencePolicy, FlowConfig, FlowSpec, PipelineSpec, SynthSpec, WaveSimulator,
};

/// Number of generated circuits (override with
/// `SYNTH_METAMORPHIC_CASES=n`).
fn case_count() -> usize {
    std::env::var("SYNTH_METAMORPHIC_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// The per-case differential budget: exhaustive proof up to 2^14
/// patterns, 6 stratified 64-pattern rounds beyond — each case checks
/// at least 384 patterns where the pre-bit-parallel harness sampled 6.
fn case_policy(seed: u64) -> EquivalencePolicy {
    EquivalencePolicy {
        exhaustive_inputs: 14,
        rounds: 6,
        seed,
    }
}

/// Deterministic case `i` → a small synthetic circuit request spanning
/// all five generator families and a spread of parameter shapes.
fn synth_case(i: usize) -> SynthSpec {
    let seed = i as u64;
    match i % 5 {
        0 => {
            let spec = SynthSpec::new("dag", seed)
                .param("nodes", 40 + (seed * 7) % 180)
                .param("depth", 3 + seed % 7)
                .param("inputs", 4 + seed % 9)
                .param("outputs", 1 + seed % 5);
            if i.is_multiple_of(2) {
                spec.param("fanout", 3 + seed % 4)
            } else {
                spec
            }
        }
        1 => SynthSpec::new("adder", seed)
            .param("width", 1 + seed % 10)
            .param("chains", 1 + seed % 3),
        2 => SynthSpec::new("parity", seed)
            .param("width", 4 + seed % 20)
            .param("layers", 1 + seed % 3),
        3 => SynthSpec::new("majtree", seed)
            .param("width", 3 + seed % 22)
            .param("trees", 1 + seed % 4),
        _ => SynthSpec::new("compose", seed)
            .param("blocks", 1 + seed % 3)
            .param("mode", seed % 3)
            .param("width", 3 + seed % 6)
            .param("nodes", 20 + seed % 40),
    }
}

fn random_word_waves(inputs: usize, count: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..inputs).map(|_| rng.gen()).collect())
        .collect()
}

/// The core metamorphic sweep: every generated circuit through the
/// default flow (FO3 + BUF + verify), differentially checked against
/// its source MIG (exhaustively for ≤ 14 inputs), with per-pass
/// invariants and cache-key uniqueness across seeds.
#[test]
fn default_flow_preserves_function_on_generated_population() {
    let n = case_count();
    let engine = Engine::new().with_resolver(benchsuite::build_mig);
    let mut spec = FlowSpec::new("metamorphic");
    for i in 0..n {
        spec = spec.synthetic_circuit(synth_case(i));
    }
    let cold = engine.run(&spec).expect("population verifies");

    // Cache-key uniqueness: n distinct (family, seed, params) triples
    // must be n distinct cells — any collision would show as a hit.
    assert_eq!(cold.stats.cache_misses, n as u64);
    assert_eq!(cold.stats.cache_hits, 0);

    let mut proven_exhaustively = 0usize;
    for (ci, cell) in cold.iter().enumerate() {
        let name = &cold.circuits[ci];
        let run = cell
            .run()
            .unwrap_or_else(|| panic!("{name}: flow failed: {:?}", cell.outcome));
        let source = benchsuite::build_mig(name)
            .unwrap_or_else(|| panic!("{name}: registry must rebuild the circuit"));

        // Differential equivalence on the shared bit-parallel engine:
        // an exhaustive proof for ≤ 14 inputs, stratified sampling
        // beyond; a divergence comes back as a replayable pattern.
        let verdict = differential::check(
            &run.result.pipelined,
            &source,
            &case_policy(0xD1FF ^ ci as u64),
        )
        .unwrap_or_else(|e| panic!("{name}: differential check impossible: {e}"));
        match &verdict {
            Verdict::Equivalent {
                patterns,
                exhaustive,
            } => {
                if *exhaustive {
                    assert_eq!(*patterns, 1u64 << source.input_count(), "{name}");
                    proven_exhaustively += 1;
                } else {
                    assert!(*patterns >= 384, "{name}: budget too small ({patterns})");
                }
            }
            Verdict::Diverged(cex) => {
                panic!("{name}: pipelined netlist diverged from the generator output: {cex}")
            }
        }

        // Pass invariants: fan-out bound, balance, monotone size.
        assert!(
            run.result.pipelined.max_fanout() <= 3,
            "{name}: fan-out {} exceeds the FO3 bound",
            run.result.pipelined.max_fanout()
        );
        let report = run.result.report.as_ref().expect("verify pass ran");
        assert_eq!(
            report.depth,
            run.result.pipelined.depth(),
            "{name}: balance report disagrees with the netlist depth"
        );
        for pass in &run.trace {
            assert!(
                pass.depth_after >= pass.depth_before || pass.pass.starts_with("map"),
                "{name}: pass {} reduced depth",
                pass.pass
            );
            assert!(
                pass.counts_after.priced_total() >= pass.counts_before.priced_total(),
                "{name}: pass {} removed components",
                pass.pass
            );
        }
    }
    assert!(
        proven_exhaustively * 2 >= n,
        "most generated cases are small enough for exhaustive proofs \
         ({proven_exhaustively}/{n})"
    );

    // Determinism: a verbatim re-run is pure cache hits (identical
    // content-hash keys for identical (family, seed, params)).
    let warm = engine.run(&spec).expect("population verifies");
    assert_eq!(warm.stats.cache_hits, n as u64);
    assert_eq!(warm.stats.passes_executed, 0);
}

/// Every pipeline configuration must preserve the generated function —
/// the metamorphic relation is "same circuit, any flow ⇒ same I/O
/// behaviour" — and enforce its own fan-out bound. One configuration
/// additionally runs with the per-pass equivalence gate enabled, so the
/// engine-level self-verification toggle is exercised on the whole
/// subsample.
#[test]
fn alternative_pipelines_preserve_function_on_subsample() {
    let n = case_count();
    let engine = Engine::new().with_resolver(benchsuite::build_mig);
    let configs: [(&str, PipelineSpec, Option<u32>); 4] = [
        (
            "fo2-retimed",
            PipelineSpec::map(false)
                .restrict_fanout(2)
                .insert_buffers(BufferStrategy::Retimed)
                .verify(Some(2))
                // Self-verifying sweep: every pass boundary re-checks
                // equivalence with the source MIG.
                .gate_equivalence(EquivalencePolicy {
                    exhaustive_inputs: 10,
                    rounds: 2,
                    seed: 0x6A7E,
                }),
            Some(2),
        ),
        (
            "fo4-asap",
            PipelineSpec::map(false)
                .restrict_fanout(4)
                .insert_buffers(BufferStrategy::Asap)
                .verify(Some(4)),
            Some(4),
        ),
        (
            "buf-only",
            PipelineSpec::map(false)
                .insert_buffers(BufferStrategy::Asap)
                .verify(None),
            None,
        ),
        (
            "min-inverters",
            PipelineSpec::for_config(FlowConfig {
                minimize_inverters: true,
                ..FlowConfig::default()
            }),
            Some(3),
        ),
    ];

    for (label, pipeline, bound) in configs {
        let mut spec = FlowSpec::new(label).with_pipeline(pipeline);
        for i in (0..n).step_by(7) {
            spec = spec.synthetic_circuit(synth_case(i));
        }
        let swept = engine.run(&spec).expect("subsample verifies");
        for (ci, cell) in swept.iter().enumerate() {
            let name = &swept.circuits[ci];
            let run = cell
                .run()
                .unwrap_or_else(|| panic!("{label}/{name}: {:?}", cell.outcome));
            let source = benchsuite::build_mig(name).expect("registry rebuilds");
            let verdict =
                differential::check(&run.result.pipelined, &source, &case_policy(ci as u64))
                    .unwrap_or_else(|e| panic!("{label}/{name}: {e}"));
            assert!(
                verdict.holds(),
                "{label}/{name}: function not preserved: {verdict:?}"
            );
            if let Some(limit) = bound {
                assert!(
                    run.result.pipelined.max_fanout() <= limit,
                    "{label}/{name}: fan-out bound violated"
                );
            }
        }
    }
}

/// Exhaustive differential equivalence for every ≤ 16-input circuit of
/// the reconstructed benchmark suite (a superset of the bench harness's
/// quick subset), across all four pipeline configurations: all `2^n`
/// patterns, proven, per config.
#[test]
fn small_suite_circuits_are_exhaustively_equivalent_across_all_configs() {
    let engine = Engine::new().with_resolver(benchsuite::build_mig);
    let small: Vec<(&str, Mig)> = benchsuite::SUITE
        .iter()
        .map(|s| (s.name, s.build()))
        .filter(|(_, g)| g.input_count() <= 16)
        .collect();
    assert!(
        small.len() >= 3,
        "the suite should keep a few exhaustively-checkable circuits"
    );

    let configs: [(&str, PipelineSpec); 4] = [
        ("fo3-asap", PipelineSpec::default()),
        (
            "fo2-retimed",
            PipelineSpec::map(false)
                .restrict_fanout(2)
                .insert_buffers(BufferStrategy::Retimed)
                .verify(Some(2)),
        ),
        (
            "buf-only",
            PipelineSpec::map(false)
                .insert_buffers(BufferStrategy::Asap)
                .verify(None),
        ),
        (
            "min-inverters",
            PipelineSpec::for_config(FlowConfig {
                minimize_inverters: true,
                ..FlowConfig::default()
            }),
        ),
    ];
    let policy = EquivalencePolicy::exhaustive(16);

    for (label, pipeline) in configs {
        for (name, graph) in &small {
            let run = engine
                .run_graph(graph, &pipeline, None)
                .unwrap_or_else(|e| panic!("{label}/{name}: flow failed: {e}"));
            match differential::check(&run.result.pipelined, graph, &policy).unwrap() {
                Verdict::Equivalent {
                    exhaustive: true,
                    patterns,
                } => {
                    assert_eq!(patterns, 1u64 << graph.input_count(), "{label}/{name}");
                }
                other => panic!("{label}/{name}: expected an exhaustive proof, got {other:?}"),
            }
        }
    }
}

/// Word-level wave streaming on a subsample: 64 independent random
/// stimulus streams per circuit (one bit-parallel run), every wave of
/// every lane compared against the source MIG's bit-parallel
/// combinational function.
#[test]
fn wave_streaming_matches_the_source_mig_on_subsample() {
    let n = case_count();
    let engine = Engine::new().with_resolver(benchsuite::build_mig);
    let mut spec = FlowSpec::new("waves");
    for i in (0..n).step_by(11) {
        spec = spec.synthetic_circuit(synth_case(i));
    }
    let swept = engine.run(&spec).expect("subsample verifies");
    for (ci, cell) in swept.iter().enumerate() {
        let name = &swept.circuits[ci];
        let run = cell.run().expect("cell verified");
        let source = benchsuite::build_mig(name).expect("registry rebuilds");
        // 8 waves × 64 lanes = 512 streamed operations per circuit.
        let waves = random_word_waves(source.input_count(), 8, 0x3A3E ^ ci as u64);

        let streamed = WaveSimulator::new(&run.result.pipelined).run_words(&waves);
        let sim = mig::Simulator::new(&source);
        for (w, wave) in waves.iter().enumerate() {
            assert_eq!(
                streamed.outputs[w],
                sim.eval_words(wave),
                "{name}: wave {w} diverged from the source function"
            );
        }
    }
}

/// The rewrite-prefixed flow on a subsample plus the two families the
/// rewrites exist for (maximally-skewed `chain`, shared-context
/// `shared`). Kept separate from the main sweep because the rewrite
/// passes *intentionally* violate its monotone trace invariants
/// (`depth_after >= depth_before`, non-decreasing component counts) —
/// here the invariants point the other way:
///
/// * **equivalence** — the pipelined netlist still matches the *raw*
///   source MIG differentially (and the per-pass equivalence gate
///   re-checks every pass boundary, the rewrites included);
/// * **depth monotone** — `optimize_depth` never increases projected
///   depth, and strictly reduces it on skewed chains;
/// * **size monotone** — `optimize_size` never increases projected
///   gate count, and strictly reduces it on shared-context groups;
/// * **warm-cache determinism** — a verbatim re-run is pure cache hits,
///   i.e. the rewrite passes hash into the cache key like every other
///   pass.
#[test]
fn rewrite_prefixed_flow_preserves_function_and_improves_qor() {
    let n = case_count();
    let engine = Engine::new().with_resolver(benchsuite::build_mig);
    let pipeline = PipelineSpec::map(false)
        .optimize_depth(16)
        .optimize_size(16)
        .restrict_fanout(3)
        .insert_buffers(BufferStrategy::Asap)
        .verify(Some(3))
        .gate_equivalence(EquivalencePolicy {
            exhaustive_inputs: 10,
            rounds: 2,
            seed: 0x0E57,
        });

    let mut spec = FlowSpec::new("rewrite-metamorphic").with_pipeline(pipeline);
    for i in (0..n).step_by(7) {
        spec = spec.synthetic_circuit(synth_case(i));
    }
    let general = spec.circuits.len();
    for seed in 0..4u64 {
        spec = spec
            .synthetic_circuit(SynthSpec::new("chain", seed).param("length", 24 + seed * 8))
            .synthetic_circuit(
                SynthSpec::new("shared", seed)
                    .param("groups", 4 + seed * 3)
                    .param("width", 8 + seed),
            );
    }
    let total = spec.circuits.len();

    let cold = engine.run(&spec).expect("rewrite-prefixed sweep verifies");
    for (ci, cell) in cold.iter().enumerate() {
        let name = &cold.circuits[ci];
        let run = cell
            .run()
            .unwrap_or_else(|| panic!("{name}: flow failed: {:?}", cell.outcome));
        let source = benchsuite::build_mig(name).expect("registry rebuilds");

        let verdict = differential::check(
            &run.result.pipelined,
            &source,
            &case_policy(0x5E17 ^ ci as u64),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            verdict.holds(),
            "{name}: rewrites broke the function: {verdict:?}"
        );

        let stat = |pass: &str| {
            run.trace
                .iter()
                .find(|p| p.pass == pass)
                .unwrap_or_else(|| panic!("{name}: `{pass}` missing from the trace"))
        };
        let by_depth = stat("optimize_depth");
        assert!(
            by_depth.depth_after <= by_depth.depth_before,
            "{name}: optimize_depth deepened the graph ({} from {})",
            by_depth.depth_after,
            by_depth.depth_before
        );
        let by_size = stat("optimize_size");
        assert!(
            by_size.counts_after.maj <= by_size.counts_before.maj,
            "{name}: optimize_size grew the graph ({} from {})",
            by_size.counts_after.maj,
            by_size.counts_before.maj
        );
        // The QoR contract on the demonstrator families is strict.
        if name.starts_with("synth:chain:") {
            assert!(
                by_depth.depth_after < by_depth.depth_before,
                "{name}: a maximally-skewed chain must rebalance"
            );
        }
        if name.starts_with("synth:shared:") {
            assert!(
                by_size.counts_after.maj < by_size.counts_before.maj,
                "{name}: shared-context groups must collapse"
            );
        }
    }
    assert!(total > general, "the strict-family cases were swept");

    // Warm determinism: identical spec (rewrite rounds included) must
    // be a pure cache replay.
    let warm = engine.run(&spec).expect("warm re-run verifies");
    assert_eq!(warm.stats.cache_hits, total as u64);
    assert_eq!(warm.stats.passes_executed, 0);
}

/// The generator contract behind the cache: identical requests are
/// bit-identical netlists, and the canonical name embedded in the spec
/// is a complete reproduction recipe.
#[test]
fn generated_circuits_are_bit_identical_across_builds() {
    for i in (0..case_count()).step_by(13) {
        let synth = synth_case(i);
        let name = synth.name();
        let a = benchsuite::build_mig(&name).expect("synth name resolves");
        let b = benchsuite::build_mig(&name).expect("synth name resolves");
        assert_eq!(
            mig::write_mig(&a),
            mig::write_mig(&b),
            "{name}: generator must be deterministic"
        );
        assert_eq!(a.name(), name, "{name}: graph carries its canonical name");
    }
}
