//! Metamorphic differential verification over the synthetic-circuit
//! generator: hundreds of generated circuits stream through the engine
//! and every one is checked **differentially** against its source MIG
//! (combinational eval on sampled vectors, wave streaming on a subset)
//! plus the structural invariants each pass promises (fan-out bound,
//! balanced depth), across several pipeline configurations.
//!
//! The circuit population is derived deterministically from an index,
//! so a failure report like `synth:dag:137:depth=6,nodes=166` is a
//! complete reproduction recipe: `benchsuite::build_mig` on that name
//! rebuilds the exact netlist (see README, "Synthetic workloads &
//! testing guide").
//!
//! `SYNTH_METAMORPHIC_CASES` shrinks/grows the population (CI's smoke
//! job runs a small seed set in release mode; the default 200 meets the
//! PR's acceptance floor inside the normal `cargo test` budget).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wave_pipelining::prelude::*;
use wavepipe::{BufferStrategy, FlowConfig, FlowSpec, PipelineSpec, SynthSpec, WaveSimulator};

/// Number of generated circuits (≥ 200 by default, per the acceptance
/// criteria; override with `SYNTH_METAMORPHIC_CASES=n`).
fn case_count() -> usize {
    std::env::var("SYNTH_METAMORPHIC_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Deterministic case `i` → a small synthetic circuit request spanning
/// all five generator families and a spread of parameter shapes.
fn synth_case(i: usize) -> SynthSpec {
    let seed = i as u64;
    match i % 5 {
        0 => {
            let spec = SynthSpec::new("dag", seed)
                .param("nodes", 40 + (seed * 7) % 180)
                .param("depth", 3 + seed % 7)
                .param("inputs", 4 + seed % 9)
                .param("outputs", 1 + seed % 5);
            if i.is_multiple_of(2) {
                spec.param("fanout", 3 + seed % 4)
            } else {
                spec
            }
        }
        1 => SynthSpec::new("adder", seed)
            .param("width", 1 + seed % 10)
            .param("chains", 1 + seed % 3),
        2 => SynthSpec::new("parity", seed)
            .param("width", 4 + seed % 20)
            .param("layers", 1 + seed % 3),
        3 => SynthSpec::new("majtree", seed)
            .param("width", 3 + seed % 22)
            .param("trees", 1 + seed % 4),
        _ => SynthSpec::new("compose", seed)
            .param("blocks", 1 + seed % 3)
            .param("mode", seed % 3)
            .param("width", 3 + seed % 6)
            .param("nodes", 20 + seed % 40),
    }
}

fn sample_patterns(inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..inputs).map(|_| rng.gen()).collect())
        .collect()
}

/// The core metamorphic sweep: every generated circuit through the
/// default flow (FO3 + BUF + verify), checked against its source MIG,
/// with per-pass invariants and cache-key uniqueness across seeds.
#[test]
fn default_flow_preserves_function_on_generated_population() {
    let n = case_count();
    let engine = Engine::new().with_resolver(benchsuite::build_mig);
    let mut spec = FlowSpec::new("metamorphic");
    for i in 0..n {
        spec = spec.synthetic_circuit(synth_case(i));
    }
    let cold = engine.run(&spec).expect("population verifies");

    // Cache-key uniqueness: n distinct (family, seed, params) triples
    // must be n distinct cells — any collision would show as a hit.
    assert_eq!(cold.stats.cache_misses, n as u64);
    assert_eq!(cold.stats.cache_hits, 0);

    for (ci, cell) in cold.iter().enumerate() {
        let name = &cold.circuits[ci];
        let run = cell
            .run()
            .unwrap_or_else(|| panic!("{name}: flow failed: {:?}", cell.outcome));
        let source = benchsuite::build_mig(name)
            .unwrap_or_else(|| panic!("{name}: registry must rebuild the circuit"));

        // Differential equivalence: source MIG vs pipelined netlist.
        let sim = mig::Simulator::new(&source);
        for pattern in sample_patterns(source.input_count(), 6, 0xD1FF ^ ci as u64) {
            assert_eq!(
                sim.eval(&pattern),
                run.result.pipelined.eval(&pattern),
                "{name}: pipelined netlist diverged from the generator output"
            );
        }

        // Pass invariants: fan-out bound, balance, monotone size.
        assert!(
            run.result.pipelined.max_fanout() <= 3,
            "{name}: fan-out {} exceeds the FO3 bound",
            run.result.pipelined.max_fanout()
        );
        let report = run.result.report.as_ref().expect("verify pass ran");
        assert_eq!(
            report.depth,
            run.result.pipelined.depth(),
            "{name}: balance report disagrees with the netlist depth"
        );
        for pass in &run.trace {
            assert!(
                pass.depth_after >= pass.depth_before || pass.pass.starts_with("map"),
                "{name}: pass {} reduced depth",
                pass.pass
            );
            assert!(
                pass.counts_after.priced_total() >= pass.counts_before.priced_total(),
                "{name}: pass {} removed components",
                pass.pass
            );
        }
    }

    // Determinism: a verbatim re-run is pure cache hits (identical
    // content-hash keys for identical (family, seed, params)).
    let warm = engine.run(&spec).expect("population verifies");
    assert_eq!(warm.stats.cache_hits, n as u64);
    assert_eq!(warm.stats.passes_executed, 0);
}

/// Every pipeline configuration must preserve the generated function —
/// the metamorphic relation is "same circuit, any flow ⇒ same I/O
/// behaviour" — and enforce its own fan-out bound.
#[test]
fn alternative_pipelines_preserve_function_on_subsample() {
    let n = case_count();
    let engine = Engine::new().with_resolver(benchsuite::build_mig);
    let configs: [(&str, PipelineSpec, Option<u32>); 4] = [
        (
            "fo2-retimed",
            PipelineSpec::map(false)
                .restrict_fanout(2)
                .insert_buffers(BufferStrategy::Retimed)
                .verify(Some(2)),
            Some(2),
        ),
        (
            "fo4-asap",
            PipelineSpec::map(false)
                .restrict_fanout(4)
                .insert_buffers(BufferStrategy::Asap)
                .verify(Some(4)),
            Some(4),
        ),
        (
            "buf-only",
            PipelineSpec::map(false)
                .insert_buffers(BufferStrategy::Asap)
                .verify(None),
            None,
        ),
        (
            "min-inverters",
            PipelineSpec::for_config(FlowConfig {
                minimize_inverters: true,
                ..FlowConfig::default()
            }),
            Some(3),
        ),
    ];

    for (label, pipeline, bound) in configs {
        let mut spec = FlowSpec::new(label).with_pipeline(pipeline);
        for i in (0..n).step_by(7) {
            spec = spec.synthetic_circuit(synth_case(i));
        }
        let swept = engine.run(&spec).expect("subsample verifies");
        for (ci, cell) in swept.iter().enumerate() {
            let name = &swept.circuits[ci];
            let run = cell
                .run()
                .unwrap_or_else(|| panic!("{label}/{name}: {:?}", cell.outcome));
            let source = benchsuite::build_mig(name).expect("registry rebuilds");
            let sim = mig::Simulator::new(&source);
            for pattern in sample_patterns(source.input_count(), 4, ci as u64) {
                assert_eq!(
                    sim.eval(&pattern),
                    run.result.pipelined.eval(&pattern),
                    "{label}/{name}: function not preserved"
                );
            }
            if let Some(limit) = bound {
                assert!(
                    run.result.pipelined.max_fanout() <= limit,
                    "{label}/{name}: fan-out bound violated"
                );
            }
        }
    }
}

/// Wave-level differential check on a subsample: the balanced netlist
/// must stream waves coherently *and* the streamed outputs must equal
/// the source MIG's combinational function wave-for-wave.
#[test]
fn wave_streaming_matches_the_source_mig_on_subsample() {
    let n = case_count();
    let engine = Engine::new().with_resolver(benchsuite::build_mig);
    let mut spec = FlowSpec::new("waves");
    for i in (0..n).step_by(11) {
        spec = spec.synthetic_circuit(synth_case(i));
    }
    let swept = engine.run(&spec).expect("subsample verifies");
    for (ci, cell) in swept.iter().enumerate() {
        let name = &swept.circuits[ci];
        let run = cell.run().expect("cell verified");
        let source = benchsuite::build_mig(name).expect("registry rebuilds");
        let waves = sample_patterns(source.input_count(), 8, 0x3A3E ^ ci as u64);

        let streamed = WaveSimulator::new(&run.result.pipelined).run(&waves);
        let sim = mig::Simulator::new(&source);
        for (w, wave) in waves.iter().enumerate() {
            assert_eq!(
                streamed.outputs[w],
                sim.eval(wave),
                "{name}: wave {w} diverged from the source function"
            );
        }
    }
}

/// The generator contract behind the cache: identical requests are
/// bit-identical netlists, and the canonical name embedded in the spec
/// is a complete reproduction recipe.
#[test]
fn generated_circuits_are_bit_identical_across_builds() {
    for i in (0..case_count()).step_by(13) {
        let synth = synth_case(i);
        let name = synth.name();
        let a = benchsuite::build_mig(&name).expect("synth name resolves");
        let b = benchsuite::build_mig(&name).expect("synth name resolves");
        assert_eq!(
            mig::write_mig(&a),
            mig::write_mig(&b),
            "{name}: generator must be deterministic"
        );
        assert_eq!(a.name(), name, "{name}: graph carries its canonical name");
    }
}
