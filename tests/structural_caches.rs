//! Staleness coverage for [`wavepipe::StructuralCaches`] and the
//! `*_prepared` pass variants: a pass that primes the cached
//! topological order / levels / fan-out views and *then* mutates the
//! netlist must leave the following passes reading fresh views — the
//! `FlowContext::netlist_mut` invalidation contract the prepared
//! variants rely on.

use wavepipe::{
    differential, BufferStrategy, EquivalencePolicy, FlowContext, FlowPipeline, Netlist, Pass,
    PassError, StructuralCaches,
};

fn sample_mig(seed: u64) -> mig::Mig {
    mig::random_mig(mig::RandomMigConfig {
        inputs: 6,
        outputs: 3,
        gates: 60,
        depth: 6,
        seed,
    })
}

/// Primes every cached structural view, then widens the netlist (a new
/// high-fan-out cone off input 0), then asserts — still inside the same
/// pass — that the re-read views describe the mutated netlist.
struct PrimeThenMutatePass;

impl Pass for PrimeThenMutatePass {
    fn name(&self) -> String {
        "prime_then_mutate".to_owned()
    }

    fn run(&self, ctx: &mut FlowContext<'_>) -> Result<(), PassError> {
        // Prime all four cached views.
        let stale_topo = ctx.topo_order();
        let stale_levels = ctx.levels();
        let stale_edges = ctx.fanout_edges();
        let stale_counts = ctx.fanout_counts();
        let len_before = ctx.netlist().len();
        assert_eq!(stale_topo.len(), len_before);

        // Mutate: hang a 7-consumer cone off input 0 and rebind output
        // 0 so the cone is live. `netlist_mut` must invalidate.
        {
            let netlist = ctx.netlist_mut();
            let a = netlist.inputs()[0];
            let b = netlist.inputs()[1];
            let k0 = netlist.add_const(false);
            let mut last = a;
            for _ in 0..7 {
                last = netlist.add_maj([a, b, k0]);
            }
            netlist.set_output_driver(0, last);
        }
        let len_after = ctx.netlist().len();
        assert!(len_after > len_before, "the mutation grew the netlist");

        // The snapshots taken before the mutation still describe the
        // old structure (by design: a pass may keep reading them while
        // mutating)…
        assert_eq!(stale_topo.len(), len_before);
        assert_eq!(stale_levels.len(), len_before);
        assert_eq!(stale_edges.len(), len_before);
        assert_eq!(stale_counts.len(), len_before);

        // …but re-reading through the context yields fresh views of the
        // mutated netlist, bit-identical to from-scratch computation.
        let fresh_topo = ctx.topo_order();
        let fresh_levels = ctx.levels();
        let fresh_edges = ctx.fanout_edges();
        let fresh_counts = ctx.fanout_counts();
        assert_eq!(fresh_topo.len(), len_after);
        assert_eq!(*fresh_levels, ctx.netlist().levels());
        assert_eq!(*fresh_edges, ctx.netlist().fanout_edges());
        assert_eq!(*fresh_counts, ctx.netlist().fanout_counts());
        assert_eq!(ctx.depth(), ctx.netlist().depth());
        // Input 0 now drives the 7 new gates on top of its old uses.
        let a = ctx.netlist().inputs()[0];
        assert!(fresh_counts[a.index()] >= stale_counts[a.index()] + 7);
        Ok(())
    }
}

/// The downstream `*_prepared` passes (fan-out restriction and buffer
/// insertion both read the context's cached views) must see the
/// mutation: the final netlist bounds the *new* wide fan-out, balances,
/// and still computes the mutated function — pinned by an exhaustive
/// word-level comparison against a reference netlist that replays the
/// same mutation. (No equivalence gate here on purpose: the mutating
/// pass intentionally changes the function relative to the source MIG,
/// so a gate would rightly fail this flow.)
#[test]
fn prepared_pass_variants_see_fresh_views_after_mutation() {
    let g = sample_mig(3);
    let run = FlowPipeline::builder()
        .map(false)
        .pass(Box::new(PrimeThenMutatePass))
        .restrict_fanout(3)
        .insert_buffers(BufferStrategy::Asap)
        .verify(Some(3))
        .build()
        .unwrap()
        .run(&g)
        .expect("flow verifies on the mutated netlist");

    let pipelined = &run.result.pipelined;
    assert!(
        pipelined.max_fanout() <= 3,
        "restriction bounded the post-mutation fan-out (max {})",
        pipelined.max_fanout()
    );
    let report = run.result.report.expect("verify ran");
    assert_eq!(report.depth, pipelined.depth());

    // The flow's later passes preserved the *mutated* function (output
    // 0 is now the AND cone, not the original MIG's output 0): replay
    // the mutation on a plain mapped netlist and compare exhaustively.
    let mut reference = wavepipe::netlist_from_mig(&g);
    {
        let a = reference.inputs()[0];
        let b = reference.inputs()[1];
        let k0 = reference.add_const(false);
        let mut last = a;
        for _ in 0..7 {
            last = reference.add_maj([a, b, k0]);
        }
        reference.set_output_driver(0, last);
    }
    for block in 0..wavepipe::PatternBlock::block_count(6) {
        let patterns = wavepipe::PatternBlock::exhaustive(6, block);
        assert_eq!(
            pipelined.eval_words(patterns.words()),
            reference.eval_words(patterns.words()),
            "block {block}"
        );
    }
}

/// Direct staleness check on a standalone [`StructuralCaches`]: the
/// same cache object primes, invalidates, and re-primes fresh — and the
/// gated pipeline (which re-checks equivalence after every pass via the
/// differential engine) accepts a flow whose intermediate pass both
/// reads and mutates.
#[test]
fn standalone_caches_invalidate_and_gated_flow_stays_sound() {
    let mut n = Netlist::new("w");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let g1 = n.add_maj([a, b, c]);
    n.add_output("f", g1);

    let mut caches = StructuralCaches::default();
    let topo_before = caches.topo_order(&n);
    assert_eq!(topo_before.len(), n.len());

    let g2 = n.add_maj([g1, a, b]);
    n.set_output_driver(0, g2);
    caches.invalidate();
    assert_eq!(caches.topo_order(&n).len(), n.len());
    assert_eq!(caches.depth(&n), 2);
    assert_eq!(*caches.fanout_counts(&n), n.fanout_counts());

    // A gated flow over a sweep-style custom pass: the equivalence gate
    // (which itself runs on cached-view-free fresh state) passes at
    // every boundary.
    struct SweepPass;
    impl Pass for SweepPass {
        fn name(&self) -> String {
            "sweep".to_owned()
        }
        fn run(&self, ctx: &mut FlowContext<'_>) -> Result<(), PassError> {
            let _ = ctx.levels(); // prime
            let swept = ctx.netlist().sweep();
            *ctx.netlist_mut() = swept; // invalidate
            Ok(())
        }
    }
    let g = sample_mig(9);
    let run = FlowPipeline::builder()
        .map(false)
        .pass(Box::new(SweepPass))
        .restrict_fanout(3)
        .insert_buffers(BufferStrategy::Asap)
        .verify(Some(3))
        .gate_equivalence(EquivalencePolicy::default())
        .build()
        .unwrap()
        .run(&g)
        .expect("gated flow verifies");
    let verdict =
        differential::check(&run.result.pipelined, &g, &EquivalencePolicy::default()).unwrap();
    assert!(verdict.holds());
}
