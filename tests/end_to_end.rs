//! End-to-end integration tests: MIG construction → optimization →
//! mapping → fan-out restriction → buffer insertion → verification →
//! wave streaming, across the benchmark suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wave_pipelining::prelude::*;
use wavepipe::WaveSimulator;

/// Benchmarks small enough to run the full pipeline + simulation in a
/// debug-build test.
const SMALL: [&str; 10] = [
    "SASC", "ADD32R", "ADD32KS", "MUL8", "HAMMING", "CRC8x64", "ALU16", "CMP32", "DEC6", "MEDS32x8",
];

fn random_patterns(inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..inputs).map(|_| rng.gen()).collect())
        .collect()
}

#[test]
fn flow_preserves_function_on_small_suite() {
    for name in SMALL {
        let g = find_benchmark(name).expect("suite benchmark").build();
        let result = run_flow(&g, FlowConfig::default()).expect("flow verifies");
        let sim = mig::Simulator::new(&g);
        for pattern in random_patterns(g.input_count(), 24, 0xE2E) {
            assert_eq!(
                sim.eval(&pattern),
                result.pipelined.eval(&pattern),
                "{name}: pipelined netlist diverged from the MIG"
            );
        }
    }
}

#[test]
fn flow_satisfies_all_invariants_on_small_suite() {
    for name in SMALL {
        let g = find_benchmark(name).expect("suite benchmark").build();
        let result = run_flow(&g, FlowConfig::default()).expect("flow verifies");
        let report =
            verify_balance(&result.pipelined, Some(3)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.depth, result.pipelined.depth());
        assert!(result.pipelined.max_fanout() <= 3, "{name}");
        // Sizes are monotone: the flow only adds components.
        assert!(
            result.pipelined.counts().priced_total() >= result.original.counts().priced_total(),
            "{name}"
        );
        assert_eq!(
            result.pipelined.counts().maj,
            result.original.counts().maj,
            "{name}: the flow must not touch logic gates"
        );
        assert_eq!(
            result.pipelined.counts().inv,
            result.original.counts().inv,
            "{name}: the flow must not touch inverters"
        );
    }
}

#[test]
fn wave_streaming_is_coherent_on_small_suite() {
    for name in ["SASC", "MUL8", "ALU16", "DEC6", "MEDS32x8"] {
        let g = find_benchmark(name).expect("suite benchmark").build();
        let result = run_flow(&g, FlowConfig::default()).expect("flow verifies");
        let waves = random_patterns(g.input_count(), 20, 0x3A3E);
        let corrupted = WaveSimulator::new(&result.pipelined).check_against_golden(&waves);
        assert!(
            corrupted.is_empty(),
            "{name}: corrupted waves {corrupted:?}"
        );
    }
}

#[test]
fn optimization_then_flow_keeps_equivalence() {
    let g = find_benchmark("MUL8").expect("suite benchmark").build();
    let (opt, outcome) = mig::optimize_depth(&g, 8);
    assert!(outcome.after <= outcome.before);
    assert!(check_equivalence(&g, &opt).expect("same interface").holds());

    let result = run_flow(&opt, FlowConfig::default()).expect("flow verifies");
    let sim = mig::Simulator::new(&g);
    for pattern in random_patterns(g.input_count(), 32, 77) {
        assert_eq!(sim.eval(&pattern), result.pipelined.eval(&pattern));
    }
}

#[test]
fn every_fanout_limit_works_end_to_end() {
    let g = find_benchmark("SASC").expect("suite benchmark").build();
    for limit in 2..=5u32 {
        let result = run_flow(
            &g,
            FlowConfig {
                fanout_limit: Some(limit),
                insert_buffers: true,
                ..FlowConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("limit {limit}: {e}"));
        assert!(result.pipelined.max_fanout() <= limit);
        let waves = random_patterns(g.input_count(), 8, limit as u64);
        let corrupted = WaveSimulator::new(&result.pipelined).check_against_golden(&waves);
        assert!(corrupted.is_empty(), "limit {limit}");
    }
}

#[test]
fn weighted_balancing_composes_with_fanout_restriction() {
    use wavepipe::{insert_buffers_weighted, verify_weighted_balance, DelayWeights};
    let g = find_benchmark("HAMMING").expect("suite benchmark").build();
    let mut n = netlist_from_mig(&g);
    restrict_fanout(&mut n, 3);
    let golden = netlist_from_mig(&g);
    insert_buffers_weighted(&mut n, &DelayWeights::QCA).expect("QCA weights always divide");
    verify_weighted_balance(&n, &DelayWeights::QCA).expect("weighted invariants hold");
    for pattern in random_patterns(g.input_count(), 16, 5) {
        assert_eq!(golden.eval(&pattern), n.eval(&pattern));
    }
}

#[test]
fn netlist_io_roundtrips_after_the_flow() {
    let g = find_benchmark("SASC").expect("suite benchmark").build();
    let result = run_flow(&g, FlowConfig::default()).expect("flow verifies");
    let text = wavepipe::io::write_netlist(&result.pipelined);
    let parsed = wavepipe::io::parse_netlist(&text).expect("own output parses");
    assert_eq!(parsed.counts(), result.pipelined.counts());
    assert!(verify_balance(&parsed, Some(3)).is_ok());
    for pattern in random_patterns(g.input_count(), 8, 9) {
        assert_eq!(parsed.eval(&pattern), result.pipelined.eval(&pattern));
    }
}

#[test]
fn retimed_flow_is_equivalent_and_cheaper_or_equal() {
    for name in ["SASC", "HAMMING", "ALU16"] {
        let g = find_benchmark(name).expect("suite benchmark").build();
        let mut base = netlist_from_mig(&g);
        restrict_fanout(&mut base, 3);

        let mut asap = base.clone();
        let asap_stats = insert_buffers(&mut asap);
        let mut retimed = base;
        let retimed_stats = wavepipe::insert_buffers_retimed(&mut retimed);
        assert!(
            retimed_stats.total() <= asap_stats.total(),
            "{name}: retimed {} > asap {}",
            retimed_stats.total(),
            asap_stats.total()
        );
        assert!(verify_balance(&retimed, Some(3)).is_ok(), "{name}");
        for pattern in random_patterns(g.input_count(), 8, 11) {
            assert_eq!(asap.eval(&pattern), retimed.eval(&pattern), "{name}");
        }
    }
}
