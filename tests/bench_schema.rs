//! Golden test pinning the `BENCH_*.json` schemas (field names and
//! shapes). The repro tooling that tracks the performance trajectory
//! across PRs parses these records; a silent field rename would strand
//! it, so any schema change must consciously update this test.

use serde::Value;
use wavepipe::EngineStats;
use wavepipe_bench::record::{
    BenchRecord, EditPoint, ExhaustivePoint, GridPoint, IncrementalPoint, IncrementalRecord,
    LatencySummary, LoadPhase, PassSummary, PassThroughput, QorCell, QorCircuit, QorRecord,
    ScalingPoint, ScalingRecord, ServeRecord, ServeTotals, StageRecord, VerifyPoint, VerifyRecord,
    WidePoint, WideRecord,
};

/// Sorted top-level keys of a JSON object value.
fn keys(value: &Value) -> Vec<String> {
    let mut keys: Vec<String> = value
        .as_object()
        .expect("object")
        .iter()
        .map(|(k, _)| k.clone())
        .collect();
    keys.sort();
    keys
}

fn to_value<T: serde::Serialize>(record: &T) -> Value {
    serde_json::from_str(&serde_json::to_string(record).expect("serialize"))
        .expect("own output parses")
}

const ENGINE_KEYS: [&str; 8] = [
    "cache_hits",
    "cache_misses",
    "cones_recomputed",
    "cones_reused",
    "disk_hits",
    "disk_misses",
    "evictions",
    "passes_executed",
];

#[test]
fn bench_pr3_record_schema_is_pinned() {
    let record = BenchRecord {
        stages: [(
            "grid_sweep".to_owned(),
            StageRecord {
                wall_ms: 1.5,
                engine: EngineStats::default(),
            },
        )]
        .into_iter()
        .collect(),
        engine_totals: EngineStats::default(),
        cached_cells: 3,
        passes: vec![PassSummary {
            technology: "SWD".to_owned(),
            pass: "map".to_owned(),
            micros: 10,
            area_delta: 0.0,
            energy_delta: 0.0,
            cycle_time_delta: 0.0,
        }],
    };
    let value = to_value(&record);
    assert_eq!(
        keys(&value),
        ["cached_cells", "engine_totals", "passes", "stages"]
    );
    let stages = value.as_object().unwrap();
    let stage = serde::field(stages, "stages")
        .and_then(|s| serde::field(s.as_object().unwrap(), "grid_sweep"))
        .unwrap();
    assert_eq!(keys(stage), ["engine", "wall_ms"]);
    assert_eq!(
        keys(serde::field(stage.as_object().unwrap(), "engine").unwrap()),
        ENGINE_KEYS
    );
    let passes = serde::field(stages, "passes").unwrap().as_array().unwrap();
    assert_eq!(
        keys(&passes[0]),
        [
            "area_delta",
            "cycle_time_delta",
            "energy_delta",
            "micros",
            "pass",
            "technology"
        ]
    );
}

#[test]
fn bench_pr4_record_schema_is_pinned() {
    let record = ScalingRecord {
        pipeline: vec!["map".to_owned()],
        points: vec![ScalingPoint {
            name: "synth:dag:1".to_owned(),
            target_nodes: 100,
            gates: 100,
            mapped_size: 120,
            pipelined_size: 500,
            depth: 9,
            cold_wall_ms: 1.0,
            warm_wall_ms: 0.1,
            cold: EngineStats::default(),
            warm: EngineStats::default(),
            passes: vec![PassThroughput {
                pass: "map".to_owned(),
                micros: 5,
                nodes_per_sec: 1e6,
            }],
        }],
        engine_totals: EngineStats::default(),
        cached_cells: 1,
    };
    let value = to_value(&record);
    assert_eq!(
        keys(&value),
        ["cached_cells", "engine_totals", "pipeline", "points"]
    );
    let point = &serde::field(value.as_object().unwrap(), "points")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(
        keys(point),
        [
            "cold",
            "cold_wall_ms",
            "depth",
            "gates",
            "mapped_size",
            "name",
            "passes",
            "pipelined_size",
            "target_nodes",
            "warm",
            "warm_wall_ms"
        ]
    );
    let pass = &serde::field(point.as_object().unwrap(), "passes")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(keys(pass), ["micros", "nodes_per_sec", "pass"]);
}

#[test]
fn bench_pr5_record_schema_is_pinned() {
    let record = VerifyRecord {
        pipeline: vec!["map".to_owned()],
        points: vec![VerifyPoint {
            name: "synth:dag:1".to_owned(),
            target_nodes: 100,
            inputs: 34,
            pipelined_size: 500,
            scalar_patterns_per_sec: 1e4,
            word_patterns_per_sec: 5e5,
            speedup: 50.0,
        }],
        exhaustive: vec![ExhaustivePoint {
            inputs: 12,
            patterns: 4096,
            wall_ms: 3.5,
            holds: true,
        }],
    };
    let value = to_value(&record);
    assert_eq!(keys(&value), ["exhaustive", "pipeline", "points"]);
    let point = &serde::field(value.as_object().unwrap(), "points")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(
        keys(point),
        [
            "inputs",
            "name",
            "pipelined_size",
            "scalar_patterns_per_sec",
            "speedup",
            "target_nodes",
            "word_patterns_per_sec"
        ]
    );
    let proof = &serde::field(value.as_object().unwrap(), "exhaustive")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(keys(proof), ["holds", "inputs", "patterns", "wall_ms"]);
}

#[test]
fn bench_pr6_record_schema_is_pinned() {
    let record = WideRecord {
        pipeline: vec!["map".to_owned()],
        block_words: 8,
        points: vec![WidePoint {
            name: "synth:dag:1".to_owned(),
            target_nodes: 100_000,
            inputs: 2032,
            pipelined_size: 680_000,
            arena_slots: 190_000,
            legacy_word_patterns_per_sec: 1.3e4,
            wide_patterns_per_sec: 2.0e5,
            wide_speedup: 15.4,
        }],
        grid_circuit: "synth:dag:1".to_owned(),
        grid: vec![GridPoint {
            block_words: 8,
            threads: 2,
            patterns_per_sec: 1e7,
        }],
    };
    let value = to_value(&record);
    assert_eq!(
        keys(&value),
        ["block_words", "grid", "grid_circuit", "pipeline", "points"]
    );
    let point = &serde::field(value.as_object().unwrap(), "points")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(
        keys(point),
        [
            "arena_slots",
            "inputs",
            "legacy_word_patterns_per_sec",
            "name",
            "pipelined_size",
            "target_nodes",
            "wide_patterns_per_sec",
            "wide_speedup"
        ]
    );
    let cell = &serde::field(value.as_object().unwrap(), "grid")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(keys(cell), ["block_words", "patterns_per_sec", "threads"]);
}

#[test]
fn bench_pr7_record_schema_is_pinned() {
    let record = IncrementalRecord {
        pipeline: vec!["map".to_owned()],
        points: vec![IncrementalPoint {
            name: "synth:dag:1".to_owned(),
            target_nodes: 10_000,
            gates: 9_800,
            outputs: 64,
            unique_cones: 64,
            cold_wall_ms: 900.0,
            warm_wall_ms: 0.2,
            disk_wall_ms: Some(5.0),
            edit_wall_ms: 30.0,
            edit_speedup: 30.0,
            dirty_cone_fraction: 1.0 / 64.0,
            cold: EngineStats::default(),
            warm: EngineStats::default(),
            edits: vec![EditPoint {
                edit: "rewire o3 -> maj(1, !2, 4)".to_owned(),
                wall_ms: 30.0,
                dirty_cones: 1,
                reused_cones: 63,
                dirty_fraction: 1.0 / 64.0,
                dirty_bands: 1,
            }],
        }],
        engine_totals: EngineStats::default(),
    };
    let value = to_value(&record);
    assert_eq!(keys(&value), ["engine_totals", "pipeline", "points"]);
    assert_eq!(
        keys(serde::field(value.as_object().unwrap(), "engine_totals").unwrap()),
        ENGINE_KEYS
    );
    let point = &serde::field(value.as_object().unwrap(), "points")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(
        keys(point),
        [
            "cold",
            "cold_wall_ms",
            "dirty_cone_fraction",
            "disk_wall_ms",
            "edit_speedup",
            "edit_wall_ms",
            "edits",
            "gates",
            "name",
            "outputs",
            "target_nodes",
            "unique_cones",
            "warm",
            "warm_wall_ms"
        ]
    );
    let edit = &serde::field(point.as_object().unwrap(), "edits")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(
        keys(edit),
        [
            "dirty_bands",
            "dirty_cones",
            "dirty_fraction",
            "edit",
            "reused_cones",
            "wall_ms"
        ]
    );
}

#[test]
fn bench_pr9_record_schema_is_pinned() {
    let record = ServeRecord {
        protocol_version: 1,
        workers: 4,
        queue_depth: 256,
        client_queue: 1024,
        shed_slow_clients: true,
        phases: vec![LoadPhase {
            name: "coalesce_burst".to_owned(),
            clients: 100,
            pipelined: 10,
            requests: 1000,
            completed: 1000,
            failed: 0,
            distinct_specs: 1,
            wall_ms: 190.0,
            requests_per_sec: 5200.0,
            latency: LatencySummary {
                count: 1000,
                min_ms: 90.0,
                mean_ms: 130.0,
                p50_ms: 128.0,
                p95_ms: 162.0,
                p99_ms: 176.0,
                max_ms: 177.0,
            },
            executed: 8,
            coalesced: 992,
            cache_hits: 7,
            cache_misses: 1,
        }],
        server: ServeTotals {
            requests: 2000,
            completed: 2000,
            failed: 0,
            rejected: 0,
            coalesced: 1052,
            executed: 948,
            cells_streamed: 2000,
            cells_shed: 0,
            clients: 206,
        },
        engine_totals: EngineStats::default(),
    };
    let value = to_value(&record);
    assert_eq!(
        keys(&value),
        [
            "client_queue",
            "engine_totals",
            "phases",
            "protocol_version",
            "queue_depth",
            "server",
            "shed_slow_clients",
            "workers"
        ]
    );
    assert_eq!(
        keys(serde::field(value.as_object().unwrap(), "engine_totals").unwrap()),
        ENGINE_KEYS
    );
    let phase = &serde::field(value.as_object().unwrap(), "phases")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(
        keys(phase),
        [
            "cache_hits",
            "cache_misses",
            "clients",
            "coalesced",
            "completed",
            "distinct_specs",
            "executed",
            "failed",
            "latency",
            "name",
            "pipelined",
            "requests",
            "requests_per_sec",
            "wall_ms"
        ]
    );
    assert_eq!(
        keys(serde::field(phase.as_object().unwrap(), "latency").unwrap()),
        ["count", "max_ms", "mean_ms", "min_ms", "p50_ms", "p95_ms", "p99_ms"]
    );
    assert_eq!(
        keys(serde::field(value.as_object().unwrap(), "server").unwrap()),
        [
            "cells_shed",
            "cells_streamed",
            "clients",
            "coalesced",
            "completed",
            "executed",
            "failed",
            "rejected",
            "requests"
        ]
    );
}

#[test]
fn bench_pr10_record_schema_is_pinned() {
    let record = QorRecord {
        raw_pipeline: vec!["map".to_owned()],
        opt_pipeline: vec!["optimize_depth".to_owned(), "map".to_owned()],
        equivalence_gated: true,
        circuits: vec![QorCircuit {
            name: "synth:chain:1:length=64".to_owned(),
            family: "chain".to_owned(),
            raw_gates: 63,
            raw_depth: 63,
            opt_gates: 96,
            opt_depth: 15,
            depth_gain: 4.2,
            gate_gain: 0.66,
            rewrite_micros: 500,
        }],
        cells: vec![QorCell {
            circuit: "synth:chain:1:length=64".to_owned(),
            technology: "SWD".to_owned(),
            raw_size: 400,
            opt_size: 300,
            raw_wave_depth: 70,
            opt_wave_depth: 20,
            raw_area: 400.0,
            opt_area: 300.0,
            raw_cycle_time: 70.0,
            opt_cycle_time: 20.0,
        }],
        engine_totals: EngineStats::default(),
        warm: EngineStats::default(),
    };
    let value = to_value(&record);
    assert_eq!(
        keys(&value),
        [
            "cells",
            "circuits",
            "engine_totals",
            "equivalence_gated",
            "opt_pipeline",
            "raw_pipeline",
            "warm"
        ]
    );
    assert_eq!(
        keys(serde::field(value.as_object().unwrap(), "engine_totals").unwrap()),
        ENGINE_KEYS
    );
    let circuit = &serde::field(value.as_object().unwrap(), "circuits")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(
        keys(circuit),
        [
            "depth_gain",
            "family",
            "gate_gain",
            "name",
            "opt_depth",
            "opt_gates",
            "raw_depth",
            "raw_gates",
            "rewrite_micros"
        ]
    );
    let cell = &serde::field(value.as_object().unwrap(), "cells")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(
        keys(cell),
        [
            "circuit",
            "opt_area",
            "opt_cycle_time",
            "opt_size",
            "opt_wave_depth",
            "raw_area",
            "raw_cycle_time",
            "raw_size",
            "raw_wave_depth",
            "technology"
        ]
    );
}

#[test]
fn lint_report_schema_is_pinned() {
    let mut netlist = wavepipe::Netlist::new("hot");
    let a = netlist.add_input("a");
    for k in 0..4 {
        let i = netlist.add_inv(a);
        netlist.add_output(format!("o{k}"), i);
    }
    let report = wavepipe::LintReport::new(
        Some(3),
        vec![wavepipe::lint::SubjectReport {
            subject: "hot".to_owned(),
            diagnostics: wavepipe::lint_netlist(&netlist, Some(3)),
        }],
    );
    let value = to_value(&report);
    assert_eq!(
        keys(&value),
        ["fanout_limit", "schema_version", "subjects", "totals"]
    );
    assert_eq!(
        serde::field(value.as_object().unwrap(), "schema_version")
            .unwrap()
            .as_f64(),
        Some(f64::from(wavepipe::lint::LINT_SCHEMA_VERSION))
    );
    let subject = &serde::field(value.as_object().unwrap(), "subjects")
        .unwrap()
        .as_array()
        .unwrap()[0];
    assert_eq!(keys(subject), ["diagnostics", "subject"]);
    let diagnostic = &serde::field(subject.as_object().unwrap(), "diagnostics")
        .unwrap()
        .as_array()
        .unwrap()[0];
    // `provenance` is optional (omitted when unset); the WP003 finding
    // above names the hot component, so it is present here.
    assert_eq!(
        keys(diagnostic),
        [
            "category",
            "code",
            "message",
            "provenance",
            "severity",
            "subject"
        ]
    );
    assert_eq!(
        keys(serde::field(value.as_object().unwrap(), "totals").unwrap()),
        ["errors", "infos", "warnings"]
    );
    // A report with no configured fan-out limit omits the field.
    let bare = wavepipe::LintReport::new(None, Vec::new());
    assert_eq!(
        keys(&to_value(&bare)),
        ["schema_version", "subjects", "totals"]
    );
}

/// The `wavecheck --json --out` artifact (regenerated by CI's
/// lint-smoke job) must parse with the pinned report shape and carry
/// zero error-severity findings.
#[test]
fn generated_lint_report_parses_clean() {
    let path = "results/LINT.json";
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("{path} not generated in this checkout; skipping");
        return;
    };
    let value: Value = serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(
        keys(&value),
        ["fanout_limit", "schema_version", "subjects", "totals"],
        "{path} drifted from the schema"
    );
    let totals = serde::field(value.as_object().unwrap(), "totals").unwrap();
    assert_eq!(
        serde::field(totals.as_object().unwrap(), "errors")
            .unwrap()
            .as_f64(),
        Some(0.0),
        "{path}: the checked-in flows must lint clean"
    );
}

/// Generated artifacts must match the pinned schema too. Most of
/// `results/` is gitignored (the binaries regenerate it;
/// `BENCH_pr6.json`, `BENCH_pr7.json`, `BENCH_pr9.json` and
/// `BENCH_pr10.json` are committed as perf baselines), so absent files
/// are skipped — CI's smoke jobs run the `scaling` /
/// `verify_throughput` / `eco` / `qor` binaries (and the
/// `wavepipe-serve`/`wavepipe-load` pair) first and then this test,
/// which is what keeps `results/BENCH_pr4.json`–`BENCH_pr10.json`
/// generation from rotting relative to the record types.
#[test]
fn generated_bench_records_parse_with_the_pinned_shape() {
    for (path, top, has_engine_totals) in [
        (
            "results/BENCH_pr3.json",
            vec!["cached_cells", "engine_totals", "passes", "stages"],
            true,
        ),
        (
            "results/BENCH_pr4.json",
            vec!["cached_cells", "engine_totals", "pipeline", "points"],
            true,
        ),
        (
            "results/BENCH_pr5.json",
            vec!["exhaustive", "pipeline", "points"],
            false,
        ),
        (
            "results/BENCH_pr6.json",
            vec!["block_words", "grid", "grid_circuit", "pipeline", "points"],
            false,
        ),
        (
            "results/BENCH_pr7.json",
            vec!["engine_totals", "pipeline", "points"],
            true,
        ),
        (
            "results/BENCH_pr9.json",
            vec![
                "client_queue",
                "engine_totals",
                "phases",
                "protocol_version",
                "queue_depth",
                "server",
                "shed_slow_clients",
                "workers",
            ],
            true,
        ),
        (
            "results/BENCH_pr10.json",
            vec![
                "cells",
                "circuits",
                "engine_totals",
                "equivalence_gated",
                "opt_pipeline",
                "raw_pipeline",
                "warm",
            ],
            true,
        ),
    ] {
        let Ok(text) = std::fs::read_to_string(path) else {
            eprintln!("{path} not generated in this checkout; skipping");
            continue;
        };
        let value: Value = serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!(keys(&value), top[..], "{path} drifted from the schema");
        if has_engine_totals {
            assert_eq!(
                keys(serde::field(value.as_object().unwrap(), "engine_totals").unwrap()),
                ENGINE_KEYS,
                "{path}"
            );
        }
    }
}
