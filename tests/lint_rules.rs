//! Golden, metamorphic and property tests of the static lint engine.
//!
//! Three layers of evidence that the `wavecheck` rules are trustworthy:
//!
//! * **golden** — hand-built known-bad netlists/graphs/specs produce
//!   exactly the expected rule codes;
//! * **agreement** — every quick-suite circuit that passes dynamic
//!   differential equivalence gating also lints clean (zero
//!   error-severity diagnostics), so the static legality rules and the
//!   simulation-based verifier never disagree on good flows;
//! * **metamorphic** — injecting a single timing gap (one extra buffer
//!   on one fan-in edge) into a legal pipelined netlist preserves
//!   *function* (differential equivalence still holds) but breaks
//!   *wave legality*, and the path-balance rule flags it without any
//!   simulation — exactly the class of bug sampling can never catch.

use proptest::prelude::*;
use wavepipe::differential::{self};
use wavepipe::lint::{LintContext, LintDriver, Severity};
use wavepipe::{
    lint_mig, lint_netlist, lint_spec, BufferStrategy, ComponentKind, CostModel, CostTable, Engine,
    EquivalencePolicy, FlowError, FlowPipeline, FlowSpec, Netlist, Pass, PassError, PipelineSpec,
};
use wavepipe_bench::harness::QUICK_SUBSET;

/// The §IV fan-out bound every test flow uses (the paper's default).
const LIMIT: u32 = 3;

fn codes(diagnostics: &[wavepipe::Diagnostic]) -> Vec<&str> {
    let mut codes: Vec<&str> = diagnostics.iter().map(|d| d.code.as_str()).collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

fn error_codes(diagnostics: &[wavepipe::Diagnostic]) -> Vec<&str> {
    let mut codes: Vec<&str> = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code.as_str())
        .collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

#[test]
fn wp001_flags_an_unbalanced_path() {
    let mut n = Netlist::new("unbalanced");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let i1 = n.add_inv(a); // level 1
    let i2 = n.add_inv(i1); // level 2
    let m = n.add_maj([i2, b, c]); // level 3: b and c edges span 3
    n.add_output("o", m);
    let diagnostics = lint_netlist(&n, None);
    assert!(
        error_codes(&diagnostics).contains(&"WP001"),
        "{diagnostics:?}"
    );
}

#[test]
fn wp002_flags_misaligned_outputs() {
    let mut n = Netlist::new("misaligned");
    let a = n.add_input("a");
    let i = n.add_inv(a); // level 1
    n.add_output("deep", i);
    n.add_output("shallow", a); // level 0
    let diagnostics = lint_netlist(&n, None);
    assert!(
        error_codes(&diagnostics).contains(&"WP002"),
        "{diagnostics:?}"
    );
}

#[test]
fn wp003_flags_a_fanout_over_the_limit() {
    let mut n = Netlist::new("hot");
    let a = n.add_input("a");
    for k in 0..4 {
        let i = n.add_inv(a);
        n.add_output(format!("o{k}"), i);
    }
    let with_limit = lint_netlist(&n, Some(3));
    assert!(
        error_codes(&with_limit).contains(&"WP003"),
        "{with_limit:?}"
    );
    // Without a configured limit the rule has nothing to check against.
    let without = lint_netlist(&n, None);
    assert!(!codes(&without).contains(&"WP003"), "{without:?}");
}

#[test]
fn wp004_flags_a_combinational_cycle() {
    let mut n = Netlist::new("cyclic");
    let a = n.add_input("a");
    let b1 = n.add_buf(a);
    let b2 = n.add_buf(b1);
    n.component_mut(b1).fanins_mut()[0] = b2;
    n.add_output("o", b2);
    let diagnostics = lint_netlist(&n, Some(LIMIT));
    assert!(
        error_codes(&diagnostics).contains(&"WP004"),
        "{diagnostics:?}"
    );
}

#[test]
fn wp005_flags_out_of_range_references_without_panicking() {
    let mut n = Netlist::new("malformed");
    let a = n.add_input("a");
    let b = n.add_buf(a);
    n.add_output("o", b);
    n.component_mut(b).fanins_mut()[0] = wavepipe::CompId::from_index(999);
    // The full driver must survive the malformed arena (the traversal
    // helpers bail out) and still report the structural finding.
    let diagnostics = lint_netlist(&n, Some(LIMIT));
    assert!(
        error_codes(&diagnostics).contains(&"WP005"),
        "{diagnostics:?}"
    );
}

#[test]
fn wp006_and_wp007_flag_dead_and_redundant_cells() {
    let mut n = Netlist::new("hygiene");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let i1 = n.add_inv(a);
    let i2 = n.add_inv(i1); // INV-of-INV: WP007
    n.add_output("o", i2);
    // Balanced (all fan-ins level 0) but driving nothing: WP006 only.
    let _dead = n.add_maj([a, b, c]);
    let diagnostics = lint_netlist(&n, None);
    let found = codes(&diagnostics);
    assert!(found.contains(&"WP006"), "{diagnostics:?}");
    assert!(found.contains(&"WP007"), "{diagnostics:?}");
    // Hygiene findings are warnings — they never fail a gated flow.
    assert!(error_codes(&diagnostics).is_empty(), "{diagnostics:?}");
}

#[test]
fn mig003_flags_dead_gates() {
    let mut g = mig::Mig::new();
    let a = g.add_input("a");
    let b = g.add_input("b");
    let c = g.add_input("c");
    let used = g.add_maj(a, b, c);
    let _dead = g.add_maj(a, b, !c);
    g.add_output("o", used);
    let diagnostics = lint_mig(&g);
    assert!(codes(&diagnostics).contains(&"MIG003"), "{diagnostics:?}");
}

#[test]
fn rewritten_graphs_lint_clean_of_every_mig_rule() {
    // `wavecheck --optimize` lints the rewritten MIG instead of the
    // source graph, attesting the flow's actual mapping input. That
    // only attests anything if the rewrites preserve hygiene: the
    // collapse driver re-normalizes every gate through `add_maj` (so
    // zero `MIG001` axiom-reducible gates and zero `MIG002` strash
    // duplicates survive `optimize_size`) and both drivers end in
    // `cleanup()` (so collapsed structure leaves no `MIG003` dead gates
    // and `MIG004` topological order holds).
    for name in [
        "synth:chain:21:length=48",
        "synth:shared:22:groups=12,width=12",
        "synth:dag:23:nodes=200",
        "SASC",
    ] {
        let g = benchsuite::build_mig(name).expect("registry circuit");
        let (by_depth, _) = mig::optimize_depth(&g, 16);
        let optimized = mig::optimize_size(&by_depth, 16);
        let diagnostics = lint_mig(&optimized);
        assert!(
            diagnostics.is_empty(),
            "{name}: rewritten graph is not hygienic: {:?}",
            codes(&diagnostics)
        );
    }
}

#[test]
fn spec001_flags_transforms_without_verification() {
    let spec = FlowSpec::new("no-verify")
        .with_pipeline(PipelineSpec::map(false).restrict_fanout(LIMIT))
        .circuit("SASC");
    let diagnostics = lint_spec(&spec);
    assert!(codes(&diagnostics).contains(&"SPEC001"), "{diagnostics:?}");

    let mismatch = FlowSpec::new("mismatch")
        .with_pipeline(
            PipelineSpec::map(false)
                .restrict_fanout(2)
                .insert_buffers(BufferStrategy::Asap)
                .verify(Some(4)),
        )
        .circuit("SASC");
    let diagnostics = lint_spec(&mismatch);
    assert!(codes(&diagnostics).contains(&"SPEC001"), "{diagnostics:?}");
}

#[test]
fn spec003_flags_duplicate_circuits() {
    let spec = FlowSpec::new("dupes").circuit("SASC").circuit("SASC");
    let diagnostics = lint_spec(&spec);
    assert!(codes(&diagnostics).contains(&"SPEC003"), "{diagnostics:?}");
}

/// A technology whose phase delay cannot time a wave — the spec-lint
/// error case the engine must reject before running anything.
struct BrokenTech;

impl CostModel for BrokenTech {
    fn cost_name(&self) -> &str {
        "BROKEN"
    }
    fn area_of(&self, _: ComponentKind) -> f64 {
        1.0
    }
    fn delay_of(&self, _: ComponentKind) -> f64 {
        1.0
    }
    fn energy_of(&self, _: ComponentKind) -> f64 {
        1.0
    }
    fn phase_delay(&self) -> f64 {
        0.0
    }
    fn output_sense_energy(&self) -> f64 {
        0.0
    }
}

#[test]
fn engine_rejects_a_spec_with_an_untimeable_technology() {
    let spec = FlowSpec::new("broken-tech")
        .technology(CostTable::from_model(&BrokenTech))
        .circuit("SASC");
    let err = Engine::new()
        .with_resolver(benchsuite::build_mig)
        .run(&spec)
        .unwrap_err();
    match err {
        FlowError::Lint(diagnostics) => {
            assert!(codes(&diagnostics).contains(&"SPEC002"), "{diagnostics:?}");
            assert!(diagnostics.iter().all(|d| d.severity == Severity::Error));
        }
        other => panic!("expected FlowError::Lint, got {other}"),
    }
}

/// Static/dynamic agreement: every quick-suite circuit that passes
/// per-pass differential equivalence gating also lints with zero
/// error-severity diagnostics.
#[test]
fn quick_suite_agreement_with_the_differential_engine() {
    let pipeline = FlowPipeline::builder()
        .map(false)
        .restrict_fanout(LIMIT)
        .insert_buffers(BufferStrategy::Asap)
        .verify(Some(LIMIT))
        .gate_equivalence(EquivalencePolicy::default())
        .gate_lints()
        .build()
        .expect("well-ordered pipeline");
    for name in QUICK_SUBSET {
        let g = benchsuite::build_mig(name).expect("registry circuit");
        let run = pipeline
            .run(&g)
            .unwrap_or_else(|e| panic!("{name}: gated flow failed: {e}"));
        let diagnostics = lint_netlist(&run.result.pipelined, Some(LIMIT));
        assert!(
            error_codes(&diagnostics).is_empty(),
            "{name}: equivalence-verified flow output must lint clean, got {:?}",
            error_codes(&diagnostics)
        );
    }
}

/// Metamorphic gap injection: one extra buffer on one fan-in edge of a
/// legal pipelined netlist preserves function but breaks wave timing.
/// Differential equivalence (the dynamic check) still holds; only the
/// static path-balance rule catches the illegality.
#[test]
fn gap_injection_is_caught_statically_not_dynamically() {
    let g = benchsuite::build_mig("SASC").expect("registry circuit");
    let run = FlowPipeline::builder()
        .map(false)
        .restrict_fanout(LIMIT)
        .insert_buffers(BufferStrategy::Asap)
        .verify(Some(LIMIT))
        .build()
        .expect("well-ordered pipeline")
        .run(&g)
        .expect("SASC flows");
    let mut mutated = run.result.pipelined.clone();

    // Find a component with a non-constant fan-in and stretch that one
    // edge by a buffer: the path through it now arrives one phase late.
    let target = mutated
        .ids()
        .find(|&id| {
            let c = mutated.component(id);
            c.kind() == ComponentKind::Maj
                && c.fanins()
                    .iter()
                    .any(|&f| mutated.component(f).kind() != ComponentKind::Const)
        })
        .expect("a MAJ gate with a non-const fan-in exists");
    let slot = mutated
        .component(target)
        .fanins()
        .iter()
        .position(|&f| mutated.component(f).kind() != ComponentKind::Const)
        .expect("checked above");
    let fanin = mutated.component(target).fanins()[slot];
    let gap = mutated.add_buf(fanin);
    mutated.component_mut(target).fanins_mut()[slot] = gap;

    // Dynamic view: still functionally equivalent to the source MIG.
    let verdict = differential::check(&mutated, &g, &EquivalencePolicy::default())
        .expect("interfaces still match");
    assert!(verdict.holds(), "a buffer never changes logic function");

    // Static view: the path-balance rule flags the gap, zero simulation.
    let diagnostics = lint_netlist(&mutated, Some(LIMIT));
    assert!(
        error_codes(&diagnostics).contains(&"WP001"),
        "gap injection must trip WP001, got {:?}",
        codes(&diagnostics)
    );
}

/// A custom pass that stretches one fan-in edge by a buffer after
/// balancing — functionally harmless, wave-illegal.
struct GapPass;

impl Pass for GapPass {
    fn name(&self) -> String {
        "inject_gap".to_owned()
    }

    fn run(&self, ctx: &mut wavepipe::FlowContext<'_>) -> Result<(), PassError> {
        let netlist = ctx.netlist_mut();
        let (target, slot) = netlist
            .ids()
            .find_map(|id| {
                let c = netlist.component(id);
                if c.kind() != ComponentKind::Maj {
                    return None;
                }
                c.fanins()
                    .iter()
                    .position(|&f| netlist.component(f).kind() != ComponentKind::Const)
                    .map(|slot| (id, slot))
            })
            .expect("a MAJ gate with a non-const fan-in exists after mapping");
        let fanin = netlist.component(target).fanins()[slot];
        let gap = netlist.add_buf(fanin);
        netlist.component_mut(target).fanins_mut()[slot] = gap;
        Ok(())
    }
}

#[test]
fn lint_gate_names_the_pass_that_broke_legality() {
    let g = benchsuite::build_mig("SASC").expect("registry circuit");
    let err = FlowPipeline::builder()
        .map(false)
        .restrict_fanout(LIMIT)
        .insert_buffers(BufferStrategy::Asap)
        .pass(Box::new(GapPass))
        .gate_lints()
        .build()
        .expect("well-ordered pipeline")
        .run(&g)
        .unwrap_err();
    match err {
        PassError::Lint(failure) => {
            assert_eq!(failure.pass, "inject_gap");
            assert!(
                failure.diagnostics.iter().any(|d| d.code == "WP001"),
                "{failure}"
            );
        }
        other => panic!("expected PassError::Lint, got {other}"),
    }
}

#[test]
fn lint_report_round_trips_subject_diagnostics() {
    let mut n = Netlist::new("hot");
    let a = n.add_input("a");
    for k in 0..4 {
        let i = n.add_inv(a);
        n.add_output(format!("o{k}"), i);
    }
    let report = wavepipe::LintReport::new(
        Some(3),
        vec![wavepipe::lint::SubjectReport {
            subject: "hot".to_owned(),
            diagnostics: lint_netlist(&n, Some(3)),
        }],
    );
    assert!(!report.is_clean());
    assert!(report.totals.errors >= 1);
    let rendered = serde_json::to_string_pretty(&report).expect("serializes");
    assert!(rendered.contains("\"WP003\""), "{rendered}");
}

/// PassStats must keep flowing when the lint gate is enabled and clean.
#[test]
fn clean_flow_with_lint_gate_keeps_its_trace() {
    let g = benchsuite::build_mig("SASC").expect("registry circuit");
    let run = FlowPipeline::builder()
        .map(false)
        .restrict_fanout(LIMIT)
        .insert_buffers(BufferStrategy::Asap)
        .verify(Some(LIMIT))
        .gate_lints()
        .build()
        .expect("well-ordered pipeline")
        .run(&g)
        .expect("clean flow passes the gate");
    let names: Vec<&str> = run.trace.iter().map(|s| s.pass.as_str()).collect();
    assert_eq!(names.len(), 4, "{names:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every synthetic family, any seed: the default flow's output
    /// carries zero error-severity diagnostics.
    #[test]
    fn synthetic_flows_lint_clean(family in 0..benchsuite::synth::FAMILIES.len(), seed in 0u64..200) {
        let name = format!("synth:{}:{}", benchsuite::synth::FAMILIES[family], seed);
        let g = benchsuite::build_mig(&name).expect("synth grammar");
        let run = FlowPipeline::builder()
            .map(false)
            .restrict_fanout(LIMIT)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(LIMIT))
            .gate_lints()
            .build()
            .expect("well-ordered pipeline")
            .run(&g)
            .unwrap_or_else(|e| panic!("{name}: flow failed: {e}"));
        let diagnostics = lint_netlist(&run.result.pipelined, Some(LIMIT));
        prop_assert!(
            error_codes(&diagnostics).is_empty(),
            "{}: {:?}",
            name,
            error_codes(&diagnostics)
        );
        // MIG hygiene on the generated source graph never errors either.
        let ctx = LintContext::new().with_graph(&g);
        let graph_diagnostics = LintDriver::all().run(&ctx);
        prop_assert!(
            graph_diagnostics.iter().all(|d| d.severity != Severity::Error),
            "{}: {:?}",
            name,
            codes(&graph_diagnostics)
        );
    }
}
