//! Property test: [`wavepipe::Netlist::eval_words`] is *exactly* 64
//! independent scalar `eval` calls, on randomly-parameterized `synth:*`
//! netlists — raw-mapped and after the full enablement flow — and the
//! [`mig::PatternBlock`] packer round-trips arbitrary pattern sets.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavepipe::{
    insert_buffers, netlist_from_mig, restrict_fanout, Netlist, NetlistFunction, PatternBlock,
    WordFunction,
};

/// A deterministic random `synth:*` circuit drawn from all five
/// generator families.
fn synth_netlist(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let family = ["dag", "adder", "parity", "majtree", "compose"][(seed % 5) as usize];
    let name = match family {
        "dag" => format!(
            "synth:dag:{seed}:depth={},inputs={},nodes={},outputs={}",
            3 + seed % 6,
            3 + seed % 10,
            30 + seed % 120,
            1 + seed % 4
        ),
        "adder" => format!("synth:adder:{seed}:width={}", 1 + seed % 8),
        "parity" => format!("synth:parity:{seed}:width={}", 4 + seed % 16),
        "majtree" => format!("synth:majtree:{seed}:width={}", 3 + seed % 16),
        _ => format!(
            "synth:compose:{seed}:blocks={},width={}",
            1 + seed % 3,
            3 + seed % 5
        ),
    };
    let graph = benchsuite::build_mig(&name).expect("synth name resolves");
    let mut netlist = netlist_from_mig(&graph);
    // Half the cases go through the full flow, so word evaluation is
    // exercised on FOG/BUF-bearing netlists too.
    if rng.gen() {
        restrict_fanout(&mut netlist, 2 + (seed % 4) as u32);
        insert_buffers(&mut netlist);
    }
    netlist
}

fn random_patterns(inputs: usize, count: usize, rng: &mut StdRng) -> Vec<Vec<bool>> {
    (0..count)
        .map(|_| (0..inputs).map(|_| rng.gen()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `eval_words` on one packed block ≡ 64 independent `eval` calls.
    #[test]
    fn eval_words_is_64_scalar_evals(seed in 0u64..1_000_000) {
        let netlist = synth_netlist(seed);
        let inputs = netlist.inputs().len();
        let mut rng = StdRng::seed_from_u64(!seed);
        let patterns = random_patterns(inputs, 64, &mut rng);
        let block = PatternBlock::pack(&patterns);
        prop_assert_eq!(block.lanes(), 64);

        let words = netlist.eval_words(block.words());
        for (lane, pattern) in patterns.iter().enumerate() {
            let scalar = netlist.eval(pattern);
            for (o, &bit) in scalar.iter().enumerate() {
                prop_assert_eq!(
                    bit,
                    words[o] >> lane & 1 != 0,
                    "lane {}, output {}", lane, o
                );
            }
        }
    }

    /// The prepared evaluator ([`NetlistFunction`]) agrees with the
    /// one-shot path across repeated blocks — scratch reuse leaks no
    /// state between blocks.
    #[test]
    fn prepared_evaluator_matches_one_shot_eval_words(seed in 0u64..1_000_000) {
        let netlist = synth_netlist(seed);
        let inputs = netlist.inputs().len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB17);
        let mut function = NetlistFunction::new(&netlist).expect("flow netlists are acyclic");
        for round in 0..3 {
            let words: Vec<u64> = (0..inputs).map(|_| rng.gen()).collect();
            prop_assert_eq!(
                function.eval_block(&words),
                netlist.eval_words(&words),
                "round {}", round
            );
        }
    }

    /// Wide evaluation is exactly `width` independent 64-lane blocks,
    /// which (with `eval_words_is_64_scalar_evals`) closes the chain
    /// N-word ≡ N × 64-lane ≡ scalar: every divergence any sweep could
    /// observe is independent of the block width it ran at.
    #[test]
    fn eval_wide_is_width_independent_word_evals(
        seed in 0u64..1_000_000,
        width in 1usize..=9,
    ) {
        let netlist = synth_netlist(seed);
        let inputs = netlist.inputs().len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51DE);
        let pattern: Vec<u64> = (0..inputs * width).map(|_| rng.gen()).collect();

        let wide = netlist.eval_wide(&pattern, width);
        let mut function = NetlistFunction::new(&netlist).expect("flow netlists are acyclic");
        prop_assert_eq!(
            &function.eval_wide(&pattern, width),
            &wide,
            "prepared and one-shot wide paths must agree"
        );
        for j in 0..width {
            let block: Vec<u64> = (0..inputs).map(|i| pattern[i * width + j]).collect();
            let narrow = netlist.eval_words(&block);
            for (o, &word) in narrow.iter().enumerate() {
                prop_assert_eq!(
                    word,
                    wide[o * width + j],
                    "width {}, block {}, output {}", width, j, o
                );
            }
        }
    }

    /// Packing is the inverse of unpacking for partial blocks too.
    #[test]
    fn pattern_block_round_trips(seed in 0u64..1_000_000, lanes in 1usize..=64, width in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let patterns = random_patterns(width, lanes, &mut rng);
        let block = PatternBlock::pack(&patterns);
        prop_assert_eq!(block.lanes(), lanes);
        prop_assert_eq!(block.inputs(), width);
        prop_assert_eq!(block.lane_mask().count_ones() as usize, lanes);
        for (lane, pattern) in patterns.iter().enumerate() {
            prop_assert_eq!(&block.pattern(lane), pattern);
        }
    }
}
