//! Golden tests for the pass-pipeline refactor: the default
//! [`FlowPipeline`] must be *result-equivalent* to the legacy 4-call
//! flow sequence, the parallel batch driver must be a pure
//! parallelization, and the pipeline builder must enforce pass
//! ordering.

use proptest::prelude::*;
use wave_pipelining::prelude::*;
use wavepipe::{insert_buffers, verify_balance, BufferStrategy, FlowPipeline, PipelineError};
use wavepipe_bench::harness::{build_suite, QUICK_SUBSET};

/// The pre-refactor `run_flow` body, inlined as the golden reference:
/// map → restrict fan-out (3) → insert buffers → verify.
fn legacy_default_flow(g: &mig::Mig) -> (Netlist, Netlist, wavepipe::BalanceReport) {
    let original = netlist_from_mig(g);
    let mut pipelined = original.clone();
    restrict_fanout(&mut pipelined, 3);
    insert_buffers(&mut pipelined);
    let report = verify_balance(&pipelined, Some(3)).expect("legacy flow verifies");
    (original, pipelined, report)
}

#[test]
fn default_pipeline_is_result_equivalent_to_legacy_flow_on_quick_suite() {
    let suite = build_suite(Some(&QUICK_SUBSET));
    let pipeline = FlowPipeline::for_config(FlowConfig::default());
    for (spec, g) in &suite {
        let (golden_original, golden_pipelined, golden_report) = legacy_default_flow(g);
        let run = pipeline.run(g).expect("pipeline verifies");

        // Identical KindCounts…
        assert_eq!(
            run.result.original.counts(),
            golden_original.counts(),
            "{}: original counts diverged",
            spec.name
        );
        assert_eq!(
            run.result.pipelined.counts(),
            golden_pipelined.counts(),
            "{}: pipelined counts diverged",
            spec.name
        );
        // …identical depth…
        assert_eq!(
            run.result.pipelined.depth(),
            golden_pipelined.depth(),
            "{}: depth diverged",
            spec.name
        );
        // …and an identical BalanceReport.
        assert_eq!(
            run.result.report,
            Some(golden_report),
            "{}: balance report diverged",
            spec.name
        );

        // run_flow (the thin wrapper) agrees too.
        let wrapped = run_flow(g, FlowConfig::default()).expect("wrapper verifies");
        assert_eq!(wrapped.pipelined.counts(), golden_pipelined.counts());
        assert_eq!(wrapped.report, run.result.report);
    }
}

#[test]
fn batch_driver_matches_sequential_wrapper_on_quick_suite() {
    let suite = build_suite(Some(&QUICK_SUBSET));
    let graphs: Vec<&mig::Mig> = suite.iter().map(|(_, g)| g).collect();
    let batch = wavepipe::run_flow_batch(&graphs, FlowConfig::default());
    assert_eq!(batch.len(), suite.len());
    for ((spec, g), outcome) in suite.iter().zip(batch) {
        let parallel = outcome.expect("batch flow verifies");
        let serial = run_flow(g, FlowConfig::default()).expect("serial flow verifies");
        assert_eq!(
            parallel.pipelined.counts(),
            serial.pipelined.counts(),
            "{}",
            spec.name
        );
        assert_eq!(parallel.pipelined.depth(), serial.pipelined.depth());
        assert_eq!(parallel.report, serial.report);
    }
}

#[test]
fn traces_account_for_every_inserted_component() {
    let suite = build_suite(Some(&["SASC", "CMP32"]));
    let pipeline = FlowPipeline::for_config(FlowConfig::default());
    for (spec, g) in &suite {
        let run = pipeline.run(g).expect("pipeline verifies");
        let total_added: usize = run.trace.iter().map(|p| p.added.priced_total()).sum();
        assert_eq!(
            total_added,
            run.result.pipelined.counts().priced_total(),
            "{}: trace deltas must sum to the final size (mapping included)",
            spec.name
        );
        let last = run.trace.last().expect("non-empty trace");
        assert_eq!(last.depth_after, run.result.pipelined.depth());
    }
}

/// Mirror of the builder's pass-kind categories, for the order
/// property test.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Step {
    Map,
    Fanout,
    Buffers,
    Verify,
}

fn apply(builder: wavepipe::FlowPipelineBuilder, step: Step) -> wavepipe::FlowPipelineBuilder {
    match step {
        Step::Map => builder.map(false),
        Step::Fanout => builder.restrict_fanout(3),
        Step::Buffers => builder.insert_buffers(BufferStrategy::Asap),
        Step::Verify => builder.verify(Some(3)),
    }
}

/// Independent re-statement of the ordering rules the builder promises.
fn is_valid_order(steps: &[Step]) -> bool {
    if steps.first() != Some(&Step::Map) {
        return false;
    }
    if steps[1..].contains(&Step::Map) {
        return false;
    }
    let first_buffer = steps.iter().position(|s| *s == Step::Buffers);
    let last_fanout = steps.iter().rposition(|s| *s == Step::Fanout);
    if let (Some(buffer), Some(fanout)) = (first_buffer, last_fanout) {
        if fanout > buffer {
            return false;
        }
    }
    if let Some(first_verify) = steps.iter().position(|s| *s == Step::Verify) {
        if steps[first_verify..]
            .iter()
            .any(|s| matches!(s, Step::Map | Step::Fanout | Step::Buffers))
        {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// For *any* random pass sequence, the builder accepts it exactly
    /// when the ordering rules hold — in particular, fan-out
    /// restriction placed after buffer insertion is always rejected.
    #[test]
    fn builder_accepts_exactly_the_well_ordered_pipelines(
        raw in prop::collection::vec(0usize..4, 1),
        tail in prop::collection::vec(0usize..4, 4),
        len in 1usize..=5,
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .chain(&tail)
            .take(len)
            .map(|&i| [Step::Map, Step::Fanout, Step::Buffers, Step::Verify][i])
            .collect();
        let mut builder = FlowPipeline::builder();
        for &step in &steps {
            builder = apply(builder, step);
        }
        match builder.build() {
            Ok(_) => prop_assert!(
                is_valid_order(&steps),
                "builder accepted ill-ordered {steps:?}"
            ),
            Err(e) => {
                prop_assert!(
                    !is_valid_order(&steps),
                    "builder rejected well-ordered {steps:?}: {e}"
                );
                // The §IV rule specifically maps to its own error.
                if let Some(first_buffer) = steps.iter().position(|s| *s == Step::Buffers) {
                    let fanout_after = steps
                        .iter()
                        .rposition(|s| *s == Step::Fanout)
                        .is_some_and(|i| i > first_buffer);
                    if steps.first() == Some(&Step::Map)
                        && !steps[1..].contains(&Step::Map)
                        && fanout_after
                        && steps.iter().all(|s| *s != Step::Verify)
                    {
                        prop_assert_eq!(e, PipelineError::FanoutAfterBuffers);
                    }
                }
            }
        }
    }

    /// A well-ordered pipeline with buffers + verification always runs
    /// to a verified result on random MIGs.
    #[test]
    fn well_ordered_pipelines_run_and_verify(seed in 0u64..200) {
        let g = mig::random_mig(mig::RandomMigConfig {
            inputs: 6,
            outputs: 3,
            gates: 80,
            depth: 6,
            seed,
        });
        let run = FlowPipeline::builder()
            .map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(3))
            .build()
            .expect("well-ordered")
            .run(&g)
            .expect("verifies");
        prop_assert!(run.result.report.is_some());
        prop_assert!(run.result.pipelined.max_fanout() <= 3);
    }
}
