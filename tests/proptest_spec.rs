//! Property test: any valid [`wavepipe::FlowSpec`] round-trips through
//! JSON **bit-identically** — equal spec, equal content hash, equal
//! serialized text — including the `CircuitSpec::Synthetic` variant and
//! the Table I technology tables.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tech::Technology;
use wavepipe::{
    BufferStrategy, DelayWeights, EquivalencePolicy, FlowSpec, PipelineSpec, SynthSpec,
};

/// Builds a deterministic, structurally-arbitrary spec from one seed:
/// random pass list (order not necessarily buildable — serialization
/// must not care), random Table I technology subset, and a mix of
/// named / inline / synthetic circuits.
fn spec_from_seed(seed: u64) -> FlowSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pipeline = PipelineSpec::map(rng.gen());
    for _ in 0..rng.gen_range(0..6) {
        pipeline = match rng.gen_range(0..7u32) {
            0 => pipeline.restrict_fanout(rng.gen_range(2..=5)),
            1 => pipeline.restrict_fanout_cost_aware(),
            2 => pipeline.insert_buffers(match rng.gen_range(0..4u32) {
                0 => BufferStrategy::Asap,
                1 => BufferStrategy::Retimed,
                2 => BufferStrategy::CostAware,
                _ => BufferStrategy::Weighted(DelayWeights::QCA),
            }),
            3 => pipeline.verify(if rng.gen() {
                Some(rng.gen_range(2..=5))
            } else {
                None
            }),
            4 => pipeline.verify_weighted(DelayWeights::QCA),
            5 => pipeline.verify_cost_aware(None),
            _ => pipeline.check_fanout_bound(rng.gen_range(2..=5)),
        };
    }
    // A third of the specs carry the per-pass equivalence gate, so its
    // serialized form (and its omitted-when-off form) both round-trip.
    if rng.gen_range(0..3u32) == 0 {
        pipeline = pipeline.gate_equivalence(EquivalencePolicy {
            exhaustive_inputs: rng.gen_range(0..=20),
            rounds: rng.gen_range(0..512),
            seed: rng.gen(),
        });
    }

    let mut spec = FlowSpec::new(format!("prop-{seed}")).with_pipeline(pipeline);
    // Table I technology tables — any subset, in any order.
    let mut technologies = Technology::all();
    for i in (1..technologies.len()).rev() {
        technologies.swap(i, rng.gen_range(0..=i));
    }
    for technology in technologies.iter().take(rng.gen_range(0..=3)) {
        spec = spec.technology(technology.cost_table());
    }

    for c in 0..rng.gen_range(1..5u32) {
        spec = match rng.gen_range(0..3u32) {
            0 => spec.circuit(format!("NAME_{seed}_{c}")),
            1 => {
                let mut g = mig::Mig::with_name(format!("inline_{seed}_{c}"));
                let a = g.add_input("a");
                let b = g.add_input("b");
                let cin = g.add_input("cin");
                let (s, carry) = g.add_full_adder(a, b, cin);
                g.add_output("s", s.complement_if(rng.gen()));
                g.add_output("c", carry);
                spec.inline_circuit(format!("inline_{seed}_{c}"), &g)
            }
            _ => {
                let family =
                    ["dag", "adder", "parity", "majtree", "compose"][rng.gen_range(0..5usize)];
                let mut synth = SynthSpec::new(family, rng.gen());
                for key in ["nodes", "depth", "width", "fanout", "mode"]
                    .iter()
                    .take(rng.gen_range(0..=4))
                {
                    synth = synth.param(*key, rng.gen_range(0..1_000_000));
                }
                spec.synthetic_circuit(synth)
            }
        };
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_flow_spec_round_trips_bit_identically(seed in 0u64..1_000_000_000) {
        let spec = spec_from_seed(seed);
        let json = spec.to_json();
        let back = FlowSpec::from_json(&json).expect("own serialization parses");
        prop_assert_eq!(&spec, &back, "structural equality");
        prop_assert_eq!(
            spec.content_hash(),
            back.content_hash(),
            "cache identity is preserved"
        );
        prop_assert_eq!(
            json,
            back.to_json(),
            "serialized text is bit-identical after a round trip"
        );
    }

    #[test]
    fn synthetic_entries_keep_their_canonical_names(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut synth = SynthSpec::new("dag", rng.gen());
        for key in ["b", "a", "c", "a"] {
            synth = synth.param(key, rng.gen_range(0..100));
        }
        let spec = FlowSpec::new("canon").synthetic_circuit(synth.clone());
        prop_assert!(spec.validate().is_ok());
        let back = FlowSpec::from_json(&spec.to_json()).unwrap();
        match &back.circuits[0] {
            wavepipe::CircuitSpec::Synthetic(s) => {
                prop_assert_eq!(s.name(), synth.name(), "canonical name survives");
            }
            other => prop_assert!(false, "wrong variant back: {:?}", other),
        }
    }
}
