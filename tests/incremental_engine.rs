//! Integration tests on the incremental (ECO) engine: random edit
//! scripts must leave the session bit-identical to a cold engine
//! recomputing the edited graph, `ConePartition::refresh` must agree
//! with a from-scratch re-analysis after any append-only mutation, the
//! composed merged-netlist fan-out must match a full arena scan (the
//! release-mode twin of the splice's `debug_assert`), and a damaged
//! disk store — truncated, version-bumped or checksum-corrupted — must
//! fall back to recomputation and then repair itself.

use std::fs;

use mig::cone::ConePartition;
use mig::{Mig, NodeId, Signal};
use proptest::prelude::*;
use wavepipe::{
    persist, BufferStrategy, Engine, EngineEdit, EquivalencePolicy, FlowConfig, PipelineSpec,
};

fn pipeline() -> PipelineSpec {
    PipelineSpec::map(false)
        .restrict_fanout(3)
        .insert_buffers(BufferStrategy::Asap)
        .verify(Some(3))
}

fn sample(seed: u64) -> Mig {
    mig::random_mig(mig::RandomMigConfig {
        inputs: 6,
        outputs: 5,
        gates: 80,
        depth: 7,
        seed,
    })
}

/// splitmix64, for deterministic node picking inside a proptest case.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic signal over an existing non-constant node.
fn pick_signal(graph: &Mig, state: &mut u64) -> Signal {
    let index = 1 + (splitmix(state) as usize % (graph.node_count() - 1));
    Signal::new(NodeId::from_index(index), splitmix(state) & 1 == 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any script of gate grafts, output rewires, dead logic and
    /// output removals leaves the incrementally-spliced result
    /// bit-identical to a cold engine recomputing the edited graph.
    /// Every intermediate run carries the differential gate, so a
    /// functionally-diverging splice fails the unwrap immediately.
    #[test]
    fn random_edit_scripts_match_a_cold_recompute(
        seed in 0u64..200,
        ops in proptest::collection::vec((0u8..4, any::<u64>()), 4),
        len in 1usize..5,
    ) {
        let engine = Engine::new();
        let mut session = engine
            .incremental(sample(seed), pipeline())
            .with_verification(EquivalencePolicy::default());
        let mut last = session.run().unwrap();
        for &(op, op_seed) in &ops[..len.min(ops.len())] {
            let mut state = op_seed;
            let outputs = session.graph().output_count();
            match op {
                // Graft a gate and point an existing output at it.
                0 | 1 => {
                    let (a, b, c) = {
                        let g = session.graph();
                        (
                            pick_signal(g, &mut state),
                            pick_signal(g, &mut state),
                            pick_signal(g, &mut state),
                        )
                    };
                    let gate = session
                        .apply(EngineEdit::AddGate { a, b, c, output: None })
                        .unwrap()
                        .unwrap();
                    session
                        .apply(EngineEdit::RewireOutput {
                            position: splitmix(&mut state) as usize % outputs,
                            signal: gate,
                        })
                        .unwrap();
                }
                // Dead logic: a gate nothing observes.
                2 => {
                    let (a, b, c) = {
                        let g = session.graph();
                        (
                            pick_signal(g, &mut state),
                            pick_signal(g, &mut state),
                            pick_signal(g, &mut state),
                        )
                    };
                    session
                        .apply(EngineEdit::AddGate { a, b, c, output: None })
                        .unwrap();
                }
                // Drop an output (keeping the session non-empty).
                _ => {
                    if outputs > 2 {
                        session
                            .apply(EngineEdit::RemoveOutput {
                                position: splitmix(&mut state) as usize % outputs,
                            })
                            .unwrap();
                    }
                }
            }
            last = session.run().unwrap();
        }
        let reference = Engine::new()
            .incremental(session.graph().clone(), pipeline())
            .run()
            .unwrap();
        prop_assert_eq!(
            persist::run_to_json(&last.run),
            persist::run_to_json(&reference.run),
            "incremental splice diverged from a cold recompute"
        );
    }

    /// After any append-only mutation (grafted gates, rewired outputs,
    /// new outputs), refreshing a stale partition yields exactly what a
    /// from-scratch analysis of the mutated graph yields.
    #[test]
    fn refresh_matches_a_full_reanalysis(seed in 0u64..500, extra in 1usize..6) {
        let mut g = sample(seed);
        let stale = ConePartition::with_band_width(&g, 4);
        let mut state = seed ^ 0xECC0;
        for k in 0..extra {
            let a = pick_signal(&g, &mut state);
            let b = pick_signal(&g, &mut state);
            let c = pick_signal(&g, &mut state);
            let gate = g.add_maj(a, b, c);
            if k % 2 == 0 {
                let position = splitmix(&mut state) as usize % g.output_count();
                g.set_output_signal(position, gate);
            } else {
                g.add_output(format!("eco{k}"), gate);
            }
        }
        let refreshed = stale.refresh(&g);
        let full = ConePartition::with_band_width(&g, 4);
        prop_assert_eq!(refreshed.cones().len(), full.cones().len());
        for (r, f) in refreshed.cones().iter().zip(full.cones()) {
            prop_assert_eq!(r.hash, f.hash, "cone {} hash", f.output);
            prop_assert_eq!(r.gates, f.gates, "cone {} gate count", f.output);
            prop_assert_eq!(r.root, f.root);
            prop_assert_eq!(r.output, f.output);
        }
        prop_assert_eq!(refreshed.band_hashes(), full.band_hashes());
    }
}

/// The merged report's max fan-out is *composed* from cached per-region
/// summaries, never measured on the merged arena — this pins the
/// composition to a full scan in release builds too (the splice itself
/// only `debug_assert`s it), both on a cold run and across an edit
/// where clean-cone summaries come from the session cache.
#[test]
fn composed_max_fanout_matches_a_merged_scan() {
    let engine = Engine::new();
    let mut session =
        engine.incremental(sample(7), PipelineSpec::for_config(FlowConfig::default()));
    let cold = session.run().unwrap();
    let report = cold
        .run
        .result
        .report
        .as_ref()
        .expect("default flow balances");
    assert_eq!(report.max_fanout, cold.run.result.pipelined.max_fanout());

    let mut state = 0xFA11;
    let (a, b, c) = {
        let g = session.graph();
        (
            pick_signal(g, &mut state),
            pick_signal(g, &mut state),
            pick_signal(g, &mut state),
        )
    };
    let gate = session
        .apply(EngineEdit::AddGate {
            a,
            b,
            c,
            output: None,
        })
        .unwrap()
        .unwrap();
    session
        .apply(EngineEdit::RewireOutput {
            position: 0,
            signal: gate,
        })
        .unwrap();
    let edited = session.run().unwrap();
    assert!(edited.cones_reused > 0, "edit must reuse clean cones");
    let report = edited
        .run
        .result
        .report
        .as_ref()
        .expect("edited flow balances");
    assert_eq!(report.max_fanout, edited.run.result.pipelined.max_fanout());
}

/// Every way an on-disk entry can rot — truncation mid-JSON, a format
/// version from a different build, a checksum that no longer matches
/// the payload — must read as a clean miss: the engine recomputes,
/// produces a bit-identical result, and write-through repairs the
/// store so the *next* process is served from disk again.
#[test]
fn damaged_disk_stores_fall_back_and_self_repair() {
    type Corruptor = fn(&str) -> String;
    let modes: [(&str, Corruptor); 3] = [
        ("truncated", |s| s[..s.len() / 2].to_owned()),
        ("version-bumped", |s| {
            s.replacen("\"version\":1", "\"version\":999", 1)
        }),
        ("checksum-corrupted", |s| {
            s.replacen("\"checksum\":", "\"checksum\":9", 1)
        }),
    ];
    for (mode, corrupt) in modes {
        let dir = std::env::temp_dir().join(format!("wavepipe-eco-{mode}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let writer = Engine::new().with_disk_cache(&dir);
        let cold = writer.incremental(sample(9), pipeline()).run().unwrap();

        let mut damaged = 0;
        for entry in fs::read_dir(&dir).expect("store populated") {
            let path = entry.unwrap().path();
            let text = fs::read_to_string(&path).unwrap();
            let rotten = corrupt(&text);
            assert_ne!(text, rotten, "{mode}: corruption must change the entry");
            fs::write(&path, rotten).unwrap();
            damaged += 1;
        }
        assert!(damaged > 0, "{mode}: the cold run wrote disk entries");

        let fallback = Engine::new().with_disk_cache(&dir);
        let recomputed = fallback.incremental(sample(9), pipeline()).run().unwrap();
        assert_eq!(
            fallback.stats().disk_hits,
            0,
            "{mode}: nothing rotten served"
        );
        assert!(
            fallback.stats().passes_executed > 0,
            "{mode}: the fallback run recomputed"
        );
        assert_eq!(
            persist::run_to_json(&cold.run),
            persist::run_to_json(&recomputed.run),
            "{mode}: fallback result must be bit-identical"
        );

        let repaired = Engine::new().with_disk_cache(&dir);
        let served = repaired.incremental(sample(9), pipeline()).run().unwrap();
        assert!(
            served.spliced_reused,
            "{mode}: write-through repaired the store"
        );
        assert_eq!(repaired.stats().passes_executed, 0, "{mode}");
        assert!(repaired.stats().disk_hits >= 1, "{mode}");
        let _ = fs::remove_dir_all(&dir);
    }
}
