//! Black-box coverage for [`WaveSimulator::check_against_golden`] (and
//! its word-level sibling), previously only exercised inside the
//! `wavesim` module: exact mismatch indices on a known-faulty wave
//! stream, scalar/word agreement, and the clean-after-balancing
//! contract.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavepipe::{insert_buffers, netlist_from_mig, Netlist, WaveSimulator};

/// The canonical unbalanced netlist: `g4` reads input `a` through a
/// gap-4 edge, so at the moment `g4` computes wave `w`, `a` already
/// stores wave `w + 1` — a one-wave-late read.
fn skewed_netlist() -> Netlist {
    let mut n = Netlist::new("skew");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let g1 = n.add_maj([a, b, c]);
    let g2 = n.add_maj([g1, b, c]);
    let g3 = n.add_maj([g2, b, c]);
    let g4 = n.add_maj([g3, a, a]); // = `a`, read through a gap-4 edge
    n.add_output("f", g4);
    n
}

/// Waves whose `a` bit alternates every wave, so a one-wave-late read
/// of `a` always differs from the golden value.
fn alternating_waves(count: usize) -> Vec<Vec<bool>> {
    (0..count)
        .map(|i| vec![i % 2 == 0, i % 2 == 1, i % 4 < 2])
        .collect()
}

#[test]
fn golden_mismatch_indices_are_exact_on_a_known_faulty_stream() {
    let n = skewed_netlist();
    let sim = WaveSimulator::new(&n);
    let waves = alternating_waves(16);
    let corrupted = sim.check_against_golden(&waves);

    // The reported indices must be exactly the waves whose streamed
    // output differs from the combinational golden model — recomputed
    // here from first principles via the run itself.
    let run = sim.run(&waves);
    let expected: Vec<usize> = waves
        .iter()
        .enumerate()
        .filter(|(i, w)| run.outputs[*i] != n.eval(w))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(corrupted, expected);
    assert!(!corrupted.is_empty(), "the gap-4 edge must corrupt waves");

    // `f` computes `a` one wave late; since `a` alternates, every wave
    // with a successor is corrupted. Only the tail of the stream (where
    // inputs hold their last value) can escape.
    for w in 0..waves.len() - 1 {
        assert!(corrupted.contains(&w), "wave {w} reads a(w+1) != a(w)");
    }

    // After balancing, the same stream is clean.
    let mut balanced = skewed_netlist();
    insert_buffers(&mut balanced);
    assert!(WaveSimulator::new(&balanced)
        .check_against_golden(&waves)
        .is_empty());
}

#[test]
fn word_level_and_scalar_golden_checks_agree() {
    let n = skewed_netlist();
    let sim = WaveSimulator::new(&n);
    let waves = alternating_waves(12);

    // Broadcast the scalar stream into all 64 lanes: the word-level
    // check must flag exactly the same wave indices.
    let packed: Vec<Vec<u64>> = waves
        .iter()
        .map(|w| w.iter().map(|&b| if b { !0u64 } else { 0 }).collect())
        .collect();
    assert_eq!(
        sim.check_against_golden_words(&packed),
        sim.check_against_golden(&waves)
    );
}

#[test]
fn balanced_flow_netlist_streams_64_random_lanes_clean() {
    // A mapped + balanced MIG passes the word-level golden check on 64
    // independent random stimulus streams at once.
    let g = mig::random_mig(mig::RandomMigConfig {
        inputs: 8,
        outputs: 4,
        gates: 150,
        depth: 9,
        seed: 23,
    });
    let mut n = netlist_from_mig(&g);
    wavepipe::restrict_fanout(&mut n, 3);
    insert_buffers(&mut n);

    let mut rng = StdRng::seed_from_u64(77);
    let waves: Vec<Vec<u64>> = (0..10)
        .map(|_| (0..8).map(|_| rng.gen()).collect())
        .collect();
    let sim = WaveSimulator::new(&n);
    assert!(sim.check_against_golden_words(&waves).is_empty());

    // And per-wave word outputs equal the bit-parallel golden model.
    let run = sim.run_words(&waves);
    for (w, wave) in waves.iter().enumerate() {
        assert_eq!(run.outputs[w], n.eval_words(wave));
    }
}
