//! Multi-threaded hammer tests for the shared-engine service paths:
//! many threads (and TCP clients) pounding one [`Engine`] must produce
//! bit-identical results to solo runs, balance their per-run stats
//! against the cumulative counters, coalesce identical in-flight specs
//! to a single pipeline execution, and survive a panicking request
//! without bricking service for anyone else.

use std::sync::{Arc, Barrier};

use wavepipe::{persist, Engine, FlowSpec, SynthSpec};
use wavepipe_serve::{Client, Coalescer, Event, Request, ServeConfig, Server};

fn dag(seed: u64, nodes: u64) -> FlowSpec {
    FlowSpec::new("hammer").synthetic_circuit(
        SynthSpec::new("dag", seed)
            .param("nodes", nodes)
            .param("depth", 10),
    )
}

fn engine() -> Engine {
    Engine::new().with_resolver(benchsuite::build_mig)
}

/// Zeroes every `micros` wall-time field — the only nondeterministic
/// part of a serialized run.
fn scrub_micros(value: &mut serde::Value) {
    match value {
        serde::Value::Object(entries) => {
            for (key, field) in entries.iter_mut() {
                if key == "micros" {
                    *field = serde::Value::UInt(0);
                } else {
                    scrub_micros(field);
                }
            }
        }
        serde::Value::Array(items) => items.iter_mut().for_each(scrub_micros),
        _ => {}
    }
}

/// The canonical JSON of a run's single pipelined cell (wall times
/// scrubbed) — the bit-identical comparison key.
fn cell_json(run: &wavepipe::EngineRun) -> String {
    assert_eq!(run.cells.len(), 1);
    let text = persist::run_to_json(run.cells[0].run().expect("cell verifies"));
    let mut value: serde::Value = serde_json::from_str(&text).expect("own output parses");
    scrub_micros(&mut value);
    serde_json::to_string(&value).expect("render")
}

#[test]
fn hammered_engine_matches_solo_and_balances_stats() {
    let pool: Vec<FlowSpec> = (0..4).map(|i| dag(900 + i, 300 + 40 * i)).collect();

    // Solo references: each spec on its own fresh engine.
    let solo: Vec<String> = pool
        .iter()
        .map(|spec| cell_json(&engine().run(spec).expect("solo run verifies")))
        .collect();

    // Hammer: 8 threads x 4 specs on ONE shared engine, every thread
    // starting its sweep at a different offset so identical specs race.
    let shared = Arc::new(engine());
    let barrier = Arc::new(Barrier::new(8));
    let runs: Vec<(usize, wavepipe::EngineRun)> = (0..8)
        .map(|t| {
            let (shared, barrier, pool) = (shared.clone(), barrier.clone(), pool.clone());
            std::thread::spawn(move || {
                barrier.wait();
                (0..pool.len())
                    .map(|i| {
                        let which = (t + i) % pool.len();
                        (
                            which,
                            shared.run(&pool[which]).expect("hammer run verifies"),
                        )
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flat_map(|h| h.join().expect("hammer thread"))
        .collect();

    // Bit-identical to solo, regardless of which thread computed the
    // cell and which was served from cache.
    for (which, run) in &runs {
        assert_eq!(
            cell_json(run),
            solo[*which],
            "spec {which} diverged under concurrency"
        );
    }

    // Stats balance: the engine was fresh, so summing the exact per-run
    // tallies over all 32 runs must reproduce the cumulative counters
    // (cone counters never move in plain grid runs).
    let cumulative = shared.stats();
    let sum = |pick: fn(&wavepipe::EngineStats) -> u64| -> u64 {
        runs.iter().map(|(_, run)| pick(&run.stats)).sum()
    };
    assert_eq!(sum(|s| s.cache_hits), cumulative.cache_hits);
    assert_eq!(sum(|s| s.cache_misses), cumulative.cache_misses);
    assert_eq!(sum(|s| s.passes_executed), cumulative.passes_executed);
    assert_eq!(sum(|s| s.disk_hits), cumulative.disk_hits);
    assert_eq!(sum(|s| s.disk_misses), cumulative.disk_misses);
    assert_eq!(sum(|s| s.evictions), cumulative.evictions);
    assert_eq!(sum(|s| s.cache_hits + s.cache_misses), 32, "one per run");
}

#[test]
fn coalesced_specs_execute_exactly_once_per_key() {
    // 16 threads, 4 distinct specs, 4 threads per spec, all released
    // together through a coalescer over one shared engine: the pipeline
    // must execute exactly once per distinct spec (in-flight arrivals
    // coalesce, later arrivals hit the cache — either way, one miss).
    let shared = Arc::new(engine());
    let coalescer = Arc::new(Coalescer::<Arc<wavepipe::EngineRun>>::new());
    let pool: Vec<FlowSpec> = (0..4).map(|i| dag(7_000 + i, 400)).collect();
    let barrier = Arc::new(Barrier::new(16));
    let handles: Vec<_> = (0..16)
        .map(|t| {
            let (shared, coalescer, barrier) = (shared.clone(), coalescer.clone(), barrier.clone());
            let spec = pool[t % pool.len()].clone();
            std::thread::spawn(move || {
                barrier.wait();
                let (run, _) = coalescer.run(spec.content_hash(), || {
                    Arc::new(shared.run(&spec).expect("coalesced run verifies"))
                });
                (t % 4, cell_json(&run))
            })
        })
        .collect();
    let results: Vec<(usize, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let stats = shared.stats();
    assert_eq!(
        stats.cache_misses, 4,
        "each distinct spec executed exactly once: {stats:?}"
    );
    assert_eq!(coalescer.executed() + coalescer.coalesced(), 16);
    for which in 0..4 {
        let of_key: Vec<&String> = results
            .iter()
            .filter(|(w, _)| *w == which)
            .map(|(_, json)| json)
            .collect();
        assert_eq!(of_key.len(), 4);
        assert!(
            of_key.windows(2).all(|w| w[0] == w[1]),
            "spec {which}: coalesced callers saw different results"
        );
    }
}

#[test]
fn tcp_burst_coalesces_and_streams_identical_cells() {
    let shared = Arc::new(engine());
    let config = ServeConfig {
        workers: 4,
        queue_depth: 64,
        client_queue: 64,
        shed_slow_clients: false,
    };
    let server = Server::start(shared.clone(), "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let spec = dag(0xBEEF, 600);
    let barrier = Arc::new(Barrier::new(12));
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let (barrier, spec) = (barrier.clone(), spec.clone());
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                client.send(&Request::Run { id: i, spec }).expect("send");
                client.collect_run(i).expect("terminal event")
            })
        })
        .collect();
    let mut payloads = Vec::new();
    for handle in handles {
        let (cells, done) = handle.join().expect("burst client");
        assert!(matches!(done, Event::Done { failed: 0, .. }), "{done:?}");
        assert_eq!(cells.len(), 1, "exactly one streamed cell (unshed)");
        match &cells[0] {
            Event::Cell {
                ok: true,
                depth,
                waves_in_flight,
                max_fanout,
                components,
                passes,
                ..
            } => payloads.push((*depth, *waves_in_flight, *max_fanout, *components, *passes)),
            other => panic!("expected a verified cell, got {other:?}"),
        }
    }
    assert!(
        payloads.windows(2).all(|w| w[0] == w[1]),
        "clients saw different cell payloads: {payloads:?}"
    );

    let metrics = server.shutdown();
    assert_eq!(metrics.completed, 12);
    assert_eq!(metrics.executed + metrics.coalesced, 12);
    assert_eq!(
        metrics.engine.cache_misses, 1,
        "the burst must collapse to a single pipeline execution"
    );

    // And the shared engine's cached cell is bit-identical to a solo
    // run of the same spec on a fresh engine.
    let served = shared.run(&spec).expect("cache re-serve");
    assert_eq!(served.stats.cache_hits, 1);
    assert_eq!(
        cell_json(&served),
        cell_json(&engine().run(&spec).expect("solo")),
        "served result diverged from solo"
    );
}

#[test]
fn panicking_request_does_not_brick_serving_for_other_clients() {
    // A resolver bug that panics mid-request must cost only that
    // request: the worker catches the unwind, the client gets a
    // terminal error event, and every other connection keeps being
    // served by the recovered engine.
    let booby_trapped = Engine::new().with_resolver(|name: &str| {
        if name == "BOOM" {
            panic!("injected resolver bug");
        }
        benchsuite::build_mig(name)
    });
    let config = ServeConfig {
        workers: 2,
        queue_depth: 16,
        client_queue: 64,
        shed_slow_clients: false,
    };
    let server = Server::start(Arc::new(booby_trapped), "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let mut victim = Client::connect(addr).expect("connect victim");
    victim
        .send(&Request::Run {
            id: 1,
            spec: FlowSpec::new("boom").circuit("BOOM"),
        })
        .expect("send panicking request");
    let (_, terminal) = victim.collect_run(1).expect("terminal event, not a hang");
    assert!(
        matches!(terminal, Event::Error { .. }),
        "panicking request must surface as an error: {terminal:?}"
    );

    // The same connection and a fresh one both still serve real work.
    victim
        .send(&Request::Run {
            id: 2,
            spec: dag(42, 200),
        })
        .expect("send follow-up");
    let (_, done) = victim.collect_run(2).expect("follow-up completes");
    assert!(matches!(done, Event::Done { failed: 0, .. }), "{done:?}");
    let mut fresh = Client::connect(addr).expect("connect fresh");
    fresh
        .send(&Request::Run {
            id: 3,
            spec: dag(43, 200),
        })
        .expect("send on fresh connection");
    let (_, done) = fresh.collect_run(3).expect("fresh connection served");
    assert!(matches!(done, Event::Done { failed: 0, .. }), "{done:?}");

    let metrics = server.shutdown();
    assert_eq!(metrics.failed, 1, "exactly the booby-trapped request");
    assert_eq!(metrics.completed, 2);
}
