//! Property-based tests on the wave-pipelining transforms: for *any*
//! mapped random MIG, fan-out restriction bounds fan-out, buffer
//! insertion balances, both preserve function, and the balanced result
//! streams waves coherently.

use proptest::prelude::*;
use wave_pipelining::prelude::*;
use wavepipe::{verify_weighted_balance, DelayWeights, WaveSimulator};

fn mig_config() -> impl Strategy<Value = mig::RandomMigConfig> {
    (3usize..10, 1usize..5, 2u32..9, 0u64..500).prop_flat_map(|(inputs, outputs, depth, seed)| {
        (depth as usize + 5..120).prop_map(move |gates| mig::RandomMigConfig {
            inputs,
            outputs,
            gates,
            depth,
            seed,
        })
    })
}

fn patterns(inputs: usize, seed: u64) -> Vec<Vec<bool>> {
    (0..12u64)
        .map(|k| {
            (0..inputs)
                .map(|i| (seed ^ k.wrapping_mul(0x9E37)).rotate_left(i as u32 * 3) & 1 != 0)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn buffer_insertion_balances_any_netlist(config in mig_config()) {
        let g = mig::random_mig(config);
        let mut n = netlist_from_mig(&g);
        let golden = n.clone();
        let stats = insert_buffers(&mut n);
        let report = verify_balance(&n, None).expect("balanced after insertion");
        prop_assert_eq!(report.depth, stats.depth);
        for p in patterns(config.inputs, config.seed) {
            prop_assert_eq!(golden.eval(&p), n.eval(&p));
        }
    }

    #[test]
    fn fanout_restriction_bounds_any_netlist(
        config in mig_config(),
        limit in 2u32..6,
    ) {
        let g = mig::random_mig(config);
        let mut n = netlist_from_mig(&g);
        let golden = n.clone();
        let stats = restrict_fanout(&mut n, limit);
        prop_assert!(n.max_fanout() <= limit);
        prop_assert!(stats.depth_after >= stats.depth_before);
        for p in patterns(config.inputs, config.seed ^ 1) {
            prop_assert_eq!(golden.eval(&p), n.eval(&p));
        }
    }

    #[test]
    fn full_flow_always_verifies(config in mig_config(), limit in 2u32..6) {
        let g = mig::random_mig(config);
        let result = run_flow(
            &g,
            FlowConfig { fanout_limit: Some(limit), insert_buffers: true, ..FlowConfig::default() },
        ).expect("flow verifies on any input");
        prop_assert!(result.pipelined.max_fanout() <= limit);
        prop_assert!(result.report.is_some());
    }

    #[test]
    fn balanced_netlists_stream_coherently(config in mig_config()) {
        let g = mig::random_mig(config);
        let result = run_flow(&g, FlowConfig::default()).expect("flow verifies");
        let waves = patterns(config.inputs, config.seed ^ 2);
        let corrupted = WaveSimulator::new(&result.pipelined).check_against_golden(&waves);
        prop_assert!(corrupted.is_empty(), "corrupted: {:?}", corrupted);
    }

    #[test]
    fn buffer_count_is_exactly_the_gap_sum(config in mig_config()) {
        // Shared chains make the total equal Σ_u max(0, maxreq(u) − ℓ(u));
        // the retiming cost model computes that sum independently.
        let g = mig::random_mig(config);
        let n = netlist_from_mig(&g);
        let schedule = wavepipe::schedule_levels(&n);
        let mut inserted = n.clone();
        let stats = insert_buffers(&mut inserted);
        prop_assert_eq!(
            wavepipe::LevelSchedule::buffer_cost(&n, &schedule.asap),
            stats.total() as u64
        );
    }

    #[test]
    fn retiming_never_increases_buffers(config in mig_config()) {
        let g = mig::random_mig(config);
        let n = netlist_from_mig(&g);
        let mut asap = n.clone();
        let a = insert_buffers(&mut asap);
        let mut retimed = n;
        let r = wavepipe::insert_buffers_retimed(&mut retimed);
        prop_assert!(r.total() <= a.total());
        prop_assert!(verify_balance(&retimed, None).is_ok());
    }

    #[test]
    fn weighted_unit_equals_plain(config in mig_config()) {
        let g = mig::random_mig(config);
        let n = netlist_from_mig(&g);
        let mut plain = n.clone();
        let p = insert_buffers(&mut plain);
        let mut weighted = n;
        let w = wavepipe::insert_buffers_weighted(&mut weighted, &DelayWeights::UNIT)
            .expect("unit weights always divide");
        prop_assert_eq!(w.buffers, p.total());
        prop_assert_eq!(w.weighted_depth, p.depth);
    }

    #[test]
    fn weighted_qca_balances_any_netlist(config in mig_config()) {
        let g = mig::random_mig(config);
        let mut n = netlist_from_mig(&g);
        let golden = n.clone();
        wavepipe::insert_buffers_weighted(&mut n, &DelayWeights::QCA)
            .expect("buf weight 1 always divides");
        verify_weighted_balance(&n, &DelayWeights::QCA).expect("weighted invariants");
        for p in patterns(config.inputs, config.seed ^ 3) {
            prop_assert_eq!(golden.eval(&p), n.eval(&p));
        }
    }

    #[test]
    fn netlist_text_roundtrip(config in mig_config()) {
        let g = mig::random_mig(config);
        let mut n = netlist_from_mig(&g);
        restrict_fanout(&mut n, 3);
        insert_buffers(&mut n);
        let parsed = wavepipe::io::parse_netlist(&wavepipe::io::write_netlist(&n))
            .expect("own output parses");
        prop_assert_eq!(parsed.counts(), n.counts());
        for p in patterns(config.inputs, config.seed ^ 4) {
            prop_assert_eq!(parsed.eval(&p), n.eval(&p));
        }
    }
}
