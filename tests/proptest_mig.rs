//! Property-based tests on the MIG substrate: construction invariants,
//! axiom soundness under simulation, optimization safety and format
//! round-trips, over randomly generated graphs.

use proptest::prelude::*;
use wave_pipelining::prelude::*;

/// Strategy: a random-MIG configuration small enough for exhaustive or
/// heavy random checking.
fn mig_config() -> impl Strategy<Value = mig::RandomMigConfig> {
    (3usize..10, 1usize..6, 1u32..10, 0u64..1000).prop_flat_map(|(inputs, outputs, depth, seed)| {
        let min_gates = depth as usize;
        (min_gates.max(5)..150).prop_map(move |gates| mig::RandomMigConfig {
            inputs,
            outputs,
            gates,
            depth,
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_graphs_have_requested_shape(config in mig_config()) {
        let g = mig::random_mig(config);
        prop_assert_eq!(g.depth(), config.depth);
        prop_assert_eq!(g.input_count(), config.inputs);
        prop_assert_eq!(g.output_count(), config.outputs);
        prop_assert!(g.gate_count() <= config.gates);
    }

    #[test]
    fn structural_hashing_never_stores_duplicate_gates(config in mig_config()) {
        let g = mig::random_mig(config);
        let mut seen = std::collections::HashSet::new();
        for id in g.gate_ids() {
            let mig::Node::Majority(fanins) = g.node(id) else { unreachable!() };
            prop_assert!(seen.insert(*fanins), "duplicate gate {:?}", fanins);
            // Canonical form: sorted fan-ins, at most one complemented.
            prop_assert!(fanins.windows(2).all(|w| w[0] < w[1]));
            let ncompl = fanins.iter().filter(|s| s.is_complement()).count();
            prop_assert!(ncompl <= 1, "self-duality violated: {:?}", fanins);
        }
    }

    #[test]
    fn cleanup_preserves_function(config in mig_config()) {
        let g = mig::random_mig(config);
        let cleaned = g.cleanup();
        prop_assert!(cleaned.gate_count() <= g.gate_count());
        prop_assert!(check_equivalence(&g, &cleaned).unwrap().holds());
    }

    #[test]
    fn depth_optimization_is_safe(config in mig_config()) {
        let g = mig::random_mig(config);
        let (opt, outcome) = optimize_depth(&g, 4);
        prop_assert!(outcome.after <= outcome.before);
        prop_assert_eq!(opt.depth(), outcome.after);
        prop_assert!(check_equivalence(&g, &opt).unwrap().holds());
    }

    #[test]
    fn size_optimization_is_safe(config in mig_config()) {
        let g = mig::random_mig(config);
        let opt = optimize_size(&g, 4);
        prop_assert!(opt.gate_count() <= g.gate_count());
        prop_assert!(check_equivalence(&g, &opt).unwrap().holds());
    }

    #[test]
    fn text_format_roundtrips(config in mig_config()) {
        let g = mig::random_mig(config);
        let text = mig::write_mig(&g);
        let parsed = mig::parse_mig(&text).expect("own output parses");
        prop_assert!(check_equivalence(&g, &parsed).unwrap().holds());
        prop_assert_eq!(parsed.gate_count(), g.gate_count(), "write_mig emits every gate");
    }

    #[test]
    fn word_simulation_matches_scalar(config in mig_config(), word in any::<u64>()) {
        let g = mig::random_mig(config);
        let sim = mig::Simulator::new(&g);
        // Derive per-input words deterministically from `word`.
        let inputs: Vec<u64> = (0..g.input_count())
            .map(|i| word.rotate_left(i as u32 * 7).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let word_out = sim.eval_words(&inputs);
        for bit in [0usize, 13, 63] {
            let scalar: Vec<bool> = inputs.iter().map(|w| w >> bit & 1 != 0).collect();
            let out = sim.eval(&scalar);
            for (o, w) in out.iter().zip(&word_out) {
                prop_assert_eq!(*o, w >> bit & 1 != 0);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The majority axioms, checked semantically on arbitrary operand
    /// triples drawn from a small constructed graph.
    #[test]
    fn majority_axioms_hold_semantically(
        sel in prop::collection::vec(0usize..6, 3),
        compl in prop::collection::vec(any::<bool>(), 3),
    ) {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 4);
        let pool: Vec<Signal> = vec![
            ins[0], ins[1], ins[2], ins[3], Signal::ZERO, Signal::ONE,
        ];
        let a = pool[sel[0]].complement_if(compl[0]);
        let b = pool[sel[1]].complement_if(compl[1]);
        let c = pool[sel[2]].complement_if(compl[2]);
        let m = g.add_maj(a, b, c);
        let dual = g.add_maj(!a, !b, !c);
        prop_assert_eq!(dual, !m, "self-duality");

        g.add_output("m", m);
        let sim = mig::Simulator::new(&g);
        for p in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|i| p >> i & 1 != 0).collect();
            let val = |s: Signal| -> bool {
                let base = match s.node().index() {
                    0 => false,
                    i => bits[i - 1],
                };
                base ^ s.is_complement()
            };
            let expect = (val(a) as u8 + val(b) as u8 + val(c) as u8) >= 2;
            prop_assert_eq!(sim.eval(&bits)[0], expect);
        }
    }
}
