//! Acceptance tests for the engine-facade redesign: `FlowSpec` JSON
//! round-trips, spec validation rejects malformed experiments, and
//! `Engine`-driven runs are bit-identical to the legacy
//! `run_flow`/`run_grid` paths — with a warm-cache re-run performing
//! **zero pass executions** (pinned via the engine's `PassStats`-derived
//! counters) while returning identical results.

use tech::Technology;
use wave_pipelining::prelude::*;
use wavepipe::{BufferStrategy, CostTable, FlowPipeline, PipelineError, SpecError};
use wavepipe_bench::harness::{build_suite, QUICK_SUBSET};

fn suite_engine() -> Engine {
    Engine::new().with_resolver(benchsuite::build_mig)
}

fn tables() -> Vec<CostTable> {
    Technology::all()
        .iter()
        .map(Technology::cost_table)
        .collect()
}

fn quick_spec(name: &str) -> FlowSpec {
    let mut spec = FlowSpec::new(name);
    for bench in QUICK_SUBSET {
        spec = spec.circuit(bench);
    }
    for table in tables() {
        spec = spec.technology(table);
    }
    spec
}

#[test]
fn spec_with_real_technologies_round_trips_through_json() {
    let spec = quick_spec("round-trip");
    let back = FlowSpec::from_json(&spec.to_json()).expect("round-trips");
    assert_eq!(spec, back);
    assert_eq!(spec.content_hash(), back.content_hash());
    // The Table I constants survive exactly (shortest-round-trip float
    // formatting), so the cache identity is preserved across the trip.
    for (a, b) in spec.technologies.iter().zip(&back.technologies) {
        assert_eq!(a.content_hash(), b.content_hash());
    }
}

#[test]
fn checked_in_example_spec_parses_and_validates() {
    let text =
        std::fs::read_to_string("examples/engine_spec.json").expect("checked-in spec exists");
    let spec = FlowSpec::from_json(&text).expect("parses");
    spec.validate().expect("validates");
    assert_eq!(spec.technologies.len(), 3);
    // And its technologies are literally the Table I models.
    for (table, technology) in spec.technologies.iter().zip(Technology::all()) {
        assert_eq!(table.content_hash(), technology.content_hash());
    }
}

#[test]
fn spec_validation_rejects_bad_experiments() {
    let engine = suite_engine();
    assert_eq!(
        FlowSpec::new("empty").validate(),
        Err(SpecError::EmptyCircuits)
    );
    assert!(matches!(
        engine.run(&FlowSpec::new("dup").circuit("SASC").circuit("SASC")),
        Err(FlowError::Spec(SpecError::DuplicateCircuit(_)))
    ));
    assert!(matches!(
        engine.run(&FlowSpec::new("unknown").circuit("NOT_A_BENCHMARK")),
        Err(FlowError::Spec(SpecError::UnknownCircuit(_)))
    ));
    assert!(matches!(
        engine.run(
            &FlowSpec::new("k6")
                .with_pipeline(PipelineSpec::map(false).restrict_fanout(6))
                .circuit("SASC")
        ),
        Err(FlowError::Spec(SpecError::FanoutLimitOutOfRange(6)))
    ));
    assert!(matches!(
        engine.run(
            &FlowSpec::new("ill")
                .with_pipeline(
                    PipelineSpec::map(false)
                        .insert_buffers(BufferStrategy::Asap)
                        .restrict_fanout(3)
                )
                .circuit("SASC")
        ),
        Err(FlowError::Pipeline(PipelineError::FanoutAfterBuffers))
    ));
}

#[test]
fn engine_runs_are_bit_identical_to_run_flow_on_the_suite() {
    // The legacy wrapper and the spec-driven engine must agree exactly,
    // circuit by circuit.
    let engine = suite_engine();
    let suite = build_suite(Some(&QUICK_SUBSET));
    let spec = {
        let mut spec = FlowSpec::new("golden");
        for (bench, _) in &suite {
            spec = spec.circuit(bench.name); // suite order
        }
        spec // cost-blind: run_flow is cost-blind too
    };
    let run = engine.run(&spec).expect("suite verifies");
    assert_eq!(run.circuits.len(), suite.len());
    for cell in &run {
        let (bench, g) = &suite[cell.circuit];
        assert_eq!(bench.name, run.circuits[cell.circuit]);
        let engine_result = &cell.outcome.as_ref().expect("verifies").result;
        let legacy = run_flow(g, FlowConfig::default()).expect("legacy verifies");
        assert_eq!(
            engine_result.original.counts(),
            legacy.original.counts(),
            "{}",
            bench.name
        );
        assert_eq!(
            engine_result.pipelined.counts(),
            legacy.pipelined.counts(),
            "{}",
            bench.name
        );
        assert_eq!(
            engine_result.pipelined.depth(),
            legacy.pipelined.depth(),
            "{}",
            bench.name
        );
        assert_eq!(engine_result.report, legacy.report, "{}", bench.name);
        assert_eq!(engine_result.fanout, legacy.fanout, "{}", bench.name);
        assert_eq!(engine_result.buffers, legacy.buffers, "{}", bench.name);
    }
}

#[test]
fn engine_grid_is_bit_identical_to_run_grid_on_the_suite() {
    // The legacy grid driver (itself a thin uncached-engine wrapper)
    // and a cached spec-driven sweep must price every cell identically.
    let engine = suite_engine();
    let suite = build_suite(Some(&QUICK_SUBSET));
    let graphs: Vec<&Mig> = suite.iter().map(|(_, g)| g).collect();
    let models = tables();

    let legacy = FlowPipeline::for_config(FlowConfig::default()).run_grid(&graphs, &models);
    let spec = {
        let mut spec = FlowSpec::new("grid-golden");
        for (bench, _) in &suite {
            spec = spec.circuit(bench.name); // suite order
        }
        for table in models.clone() {
            spec = spec.technology(table);
        }
        spec
    };
    let run = engine.run(&spec).expect("suite verifies");

    assert_eq!(legacy.len(), run.cells.len());
    for (old, new) in legacy.iter().zip(&run) {
        assert_eq!(old.circuit, new.circuit);
        assert_eq!(Some(old.model), new.technology);
        let old_run = old.outcome.as_ref().expect("legacy verifies");
        let new_run = new.outcome.as_ref().expect("engine verifies");
        let label = format!(
            "{} @ {}",
            run.circuits[new.circuit],
            models[old.model].name()
        );
        assert_eq!(
            old_run.result.pipelined.counts(),
            new_run.result.pipelined.counts(),
            "{label}"
        );
        assert_eq!(old_run.result.report, new_run.result.report, "{label}");
        // Priced trace states are bit-identical floats.
        for (a, b) in old_run.trace.iter().zip(&new_run.trace) {
            assert_eq!(a.priced, b.priced, "{label}: {}", a.pass);
        }
    }
}

#[test]
fn warm_cache_grid_rerun_executes_zero_passes_and_matches_exactly() {
    // The acceptance criterion: a warm-cache re-run of the same grid
    // performs zero pass executions (PassStats-derived counter) while
    // returning identical results.
    let engine = suite_engine();
    let spec = quick_spec("warm-grid");
    let cold = engine.run(&spec).expect("suite verifies");
    assert_eq!(
        cold.stats.cache_misses as usize,
        cold.cells.len(),
        "cold run computes every cell"
    );
    assert!(cold.stats.passes_executed > 0);

    let warm = engine.run(&spec).expect("suite verifies");
    assert_eq!(warm.stats.passes_executed, 0, "zero pass executions");
    assert_eq!(warm.stats.cache_hits as usize, warm.cells.len());
    assert_eq!(warm.stats.cache_misses, 0);
    for (a, b) in cold.iter().zip(&warm) {
        assert!(b.cached);
        let (a, b) = (
            a.outcome.as_ref().expect("verifies"),
            b.outcome.as_ref().expect("verifies"),
        );
        // Identical results down to the instrumentation (shared cells).
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.result.report, b.result.report);
        assert_eq!(a.result.pipelined.counts(), b.result.pipelined.counts());
    }

    // Editing one technology invalidates exactly one grid column.
    let mut edited = spec.clone();
    let mut qca = Technology::qca();
    qca.cell_area.0 *= 2.0;
    edited.technologies[1] = qca.cost_table();
    let partial = engine.run(&edited).expect("suite verifies");
    assert_eq!(
        partial.stats.cache_misses as usize,
        QUICK_SUBSET.len(),
        "only the edited technology's column recomputes"
    );
    assert_eq!(
        partial.stats.cache_hits as usize,
        QUICK_SUBSET.len() * 2,
        "the untouched columns are served from cache"
    );
}

#[test]
fn streaming_delivers_every_cell_of_a_suite_sweep() {
    let engine = suite_engine();
    let spec = quick_spec("streamed");
    let seen = std::sync::Mutex::new(0usize);
    let run = engine
        .run_streaming(&spec, |cell| {
            assert!(cell.outcome.is_ok());
            *seen.lock().unwrap() += 1;
        })
        .expect("suite verifies");
    assert_eq!(*seen.lock().unwrap(), run.cells.len());
    assert_eq!(run.cells.len(), QUICK_SUBSET.len() * 3);
}
