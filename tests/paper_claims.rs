//! The paper's quantitative claims, asserted as integration tests on a
//! representative suite subset. Absolute values differ (our benchmarks
//! are synthetic reconstructions — DESIGN.md substitution 1), so these
//! tests pin the *orderings and regimes* that constitute the paper's
//! findings; EXPERIMENTS.md records the measured-vs-paper numbers.

use tech::Technology;
use wavepipe_bench::harness::{
    build_suite, engine, evaluate_suite, fig5_fit, fig5_points, fig7_rows, fig8_data, fig9_data,
    QUICK_SUBSET,
};

fn quick() -> Vec<(&'static benchsuite::BenchmarkSpec, mig::Mig)> {
    build_suite(Some(&QUICK_SUBSET))
}

#[test]
fn claim_fig5_buffer_count_follows_a_power_law() {
    let points = fig5_points(&engine(), &quick());
    let fit = fig5_fit(&points);
    // Paper: B(s) = 7.95·s^0.9. Claim: a power law with near-linear
    // exponent and a decent log–log fit.
    // The 8-circuit quick subset is flatter than the full 37 (the
    // repro_all harness measures ~s^1.1 there); accept the broad
    // power-law regime here.
    assert!(
        fit.exponent > 0.25 && fit.exponent < 1.7,
        "exponent {} out of the power-law regime",
        fit.exponent
    );
    // R² on 8 heterogeneous circuits is weak by construction; the
    // full-suite fit (repro_all, EXPERIMENTS.md) is the meaningful one.
    assert!(fit.r_squared > 0.0, "R² {}", fit.r_squared);
}

#[test]
fn claim_fig5_buffers_are_a_multiple_of_size() {
    // Paper: "the number of buffers inserted ranged from 2× to 4× the
    // original netlist size" on average. Claim the same order.
    let points = fig5_points(&engine(), &quick());
    let ratios: Vec<f64> = points
        .iter()
        .map(|p| p.buffers as f64 / p.size as f64)
        .collect();
    let mean = tech::mean(&ratios);
    assert!(
        (1.0..12.0).contains(&mean),
        "mean buffer/size ratio {mean} out of regime"
    );
}

#[test]
fn claim_fig7_critical_path_increase_is_monotone_in_the_restriction() {
    // Paper: +140 %, +57 %, +36 %, +26 % for k = 2, 3, 4, 5.
    let rows = fig7_rows(&engine(), &quick());
    let avg = |i: usize| tech::mean(&rows.iter().map(|r| r.increase[i]).collect::<Vec<_>>());
    let (k2, k3, k4, k5) = (avg(0), avg(1), avg(2), avg(3));
    assert!(k2 > k3 && k3 > k4 && k4 >= k5, "{k2} {k3} {k4} {k5}");
    assert!(k2 > 0.3, "k=2 must hurt substantially, got {k2}");
    assert!(k5 < 0.5, "k=5 must hurt mildly, got {k5}");
}

#[test]
fn claim_fig8_combined_flow_dominates_individual_passes() {
    let d = fig8_data(&engine(), &quick());
    // Observation (a): FOx+BUF inserts more than either alone.
    for i in 0..4 {
        assert!(d.combined[i] > d.buf_only);
        assert!(d.combined[i] > d.fo_only[i]);
    }
    // Observation (c): the best case is still a multiple-x blow-up.
    let best = d.combined.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(best > 3.0, "best combined ratio {best} (paper: ~4.91×)");
}

#[test]
fn claim_fig8_fog_count_is_independent_of_buffering() {
    // Observation (b), exact.
    let d = fig8_data(&engine(), &quick());
    for i in 0..4 {
        assert!((d.fog_share[i] - d.combined_fog_share[i]).abs() < 1e-12);
    }
}

#[test]
fn claim_fig9_gain_orderings() {
    let evaluated = evaluate_suite(&engine(), &quick());
    let f9 = fig9_data(&evaluated);
    let by_name = |n: &str| f9.iter().find(|f| f.technology == n).unwrap().clone();
    let (swd, qca, nml) = (by_name("SWD"), by_name("QCA"), by_name("NML"));

    // Paper T/P ordering: SWD (23) > QCA (13) > NML (5).
    assert!(swd.tp_mean > qca.tp_mean && qca.tp_mean > nml.tp_mean);
    // Paper T/A ordering: QCA (8) > SWD (5) > NML (3).
    assert!(qca.ta_mean > swd.ta_mean && swd.ta_mean > nml.ta_mean);
    // All gains exceed 1 on a realistic suite.
    for f in &f9 {
        assert!(f.ta_mean > 1.0 && f.tp_mean > 1.0, "{:?}", f.technology);
    }
}

#[test]
fn claim_wave_pipelined_throughput_is_constant_per_technology() {
    // Table II: the WP throughput column is a single number per
    // technology (793.65 / 83333.33 / 16.67 MOPS), independent of the
    // benchmark.
    let evaluated = evaluate_suite(&engine(), &build_suite(Some(&["SASC", "MUL8", "HAMMING"])));
    let expect = [793.65, 83333.33, 16.67];
    for (_, comparisons) in &evaluated {
        for (c, e) in comparisons.iter().zip(expect) {
            assert!(
                (c.pipelined.throughput.value() - e).abs() / e < 1e-3,
                "{}: {} vs {e}",
                c.technology,
                c.pipelined.throughput
            );
        }
    }
}

#[test]
fn claim_power_artifact_swd_drops_nml_rises() {
    // §V: "the calculated power metric for SWD and QCA technologies
    // tends to decrease for the wave pipelined benchmarks … an
    // increase of power in the case of NML".
    let evaluated = evaluate_suite(&engine(), &quick());
    let mut swd_strict_drops = 0;
    let mut nml_rises = 0;
    for (name, comparisons) in &evaluated {
        let swd = &comparisons[0];
        let nml = &comparisons[2];
        // SWD energy is sense-amplifier-bound (essentially constant per
        // circuit: added buffers cost 1.44e-8 fJ each against fJ-scale
        // sense energy), so power never increases materially; it
        // strictly drops whenever the flow stretched the critical path.
        assert!(
            swd.pipelined.power.value() <= swd.original.power.value() * (1.0 + 1e-4),
            "{name}: SWD power rose"
        );
        if swd.pipelined.power.value() < swd.original.power.value() * (1.0 - 1e-4) {
            swd_strict_drops += 1;
        }
        if nml.pipelined.power.value() > nml.original.power.value() {
            nml_rises += 1;
        }
    }
    let n = evaluated.len();
    assert!(
        swd_strict_drops * 2 >= n,
        "SWD power strictly dropped on only {swd_strict_drops}/{n}"
    );
    assert!(nml_rises >= n - 1, "NML power rose on {nml_rises}/{n}");
}

#[test]
fn claim_deeper_originals_gain_more() {
    // Table II trend: T/P gain grows with original depth (SASC 3.00 →
    // DIFFEQ1 94.00 for SWD).
    let suite = build_suite(Some(&["SASC", "HAMMING", "CRC8x64"]));
    let evaluated = evaluate_suite(&engine(), &suite);
    let swd = Technology::swd();
    let mut rows: Vec<(u32, f64)> = evaluated
        .iter()
        .map(|(_, c)| (c[0].original.depth, c[0].tp_gain()))
        .collect();
    rows.sort_by_key(|r| r.0);
    assert!(
        rows.windows(2).all(|w| w[0].1 <= w[1].1),
        "gains not monotone in depth: {rows:?} ({})",
        swd.name
    );
}
