//! # wave-pipelining — umbrella crate
//!
//! Reproduction of *Zografos et al., "Wave Pipelining for
//! Majority-based Beyond-CMOS Technologies", DATE 2017*. This crate
//! re-exports the four library crates of the workspace so examples and
//! downstream users need a single dependency:
//!
//! * [`mig`] — Majority-Inverter Graph substrate (construction,
//!   optimization, simulation, I/O).
//! * [`wavepipe`] — the paper's contribution: buffer insertion
//!   (Algorithm 1), fan-out restriction (§IV), balance verification and
//!   the three-phase wave simulator — fronted by the [`wavepipe::Engine`]
//!   facade, which runs declarative [`wavepipe::FlowSpec`]s with a
//!   content-hash keyed result cache.
//! * [`tech`] — SWD/QCA/NML technology models (Table I) and the
//!   area/power/throughput metrics engine (Table II, Fig 9).
//! * [`benchsuite`] — the reconstructed 37-circuit benchmark suite.
//!
//! ## Quickstart
//!
//! ```
//! use wave_pipelining::prelude::*;
//!
//! # fn main() -> Result<(), wavepipe::BalanceError> {
//! // 1. Build (or load) a MIG.
//! let mut g = Mig::new();
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let cin = g.add_input("cin");
//! let (sum, cout) = g.add_full_adder(a, b, cin);
//! g.add_output("sum", sum);
//! g.add_output("cout", cout);
//!
//! // 2. Enable wave pipelining: fan-out restriction to 3 + balancing.
//! let result = run_flow(&g, FlowConfig::default())?;
//!
//! // 3. Evaluate on a beyond-CMOS technology.
//! let row = compare(&result, &Technology::swd());
//! assert!(row.pipelined.throughput.value() >= row.original.throughput.value());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the
//! `wavepipe-bench` crate for the table/figure regeneration harness.

#![warn(missing_docs)]

pub use benchsuite;
pub use mig;
pub use tech;
pub use wavepipe;

/// Convenient re-exports of the items almost every user needs.
pub mod prelude {
    pub use benchsuite::{find as find_benchmark, SUITE};
    pub use mig::{check_equivalence, optimize_depth, optimize_size, Mig, Signal};
    pub use tech::{compare, evaluate, CostModel, OperatingMode, Technology};
    pub use wavepipe::{
        insert_buffers, netlist_from_mig, restrict_fanout, run_flow, verify_balance, Engine,
        FlowConfig, FlowError, FlowSpec, Netlist, PipelineSpec, WaveSimulator,
    };
}
