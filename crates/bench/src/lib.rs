//! # wavepipe-bench — experiment harness
//!
//! Regenerates every table and figure of the DATE'17 wave-pipelining
//! paper from the reconstructed benchmark suite:
//!
//! | Paper artifact | Binary | Driver |
//! |---|---|---|
//! | Table I (technology constants) | `table1` | [`tech::Technology`] |
//! | Fig 5 (buffers vs size, power fit) | `fig5` | [`harness::fig5_points`] |
//! | Fig 7 (critical path vs fan-out limit) | `fig7` | [`harness::fig7_rows`] |
//! | Fig 8 (normalized component counts) | `fig8` | [`harness::fig8_data`] |
//! | Fig 9 (T/A and T/P gains) | `fig9` | [`harness::fig9_data`] |
//! | Table II (per-benchmark metrics) | `table2` | [`harness::table2_rows`] |
//! | Retiming ablation (beyond paper) | `ablation_retiming` | [`harness::retiming_ablation`] |
//! | Everything, to `results/` | `repro_all` | all of the above |
//!
//! Every driver runs its suite through the pass pipeline's **parallel
//! batch driver** (one task per circuit across all cores), and
//! `repro_all` additionally writes the per-pass instrumentation trace
//! (wall time, component delta, depth change per pass per benchmark)
//! from [`harness::flow_traces`] to `results/flow_trace.{txt,json}`.
//!
//! Criterion performance benches for the two algorithms live under
//! `benches/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fit;
pub mod harness;

pub use fit::{fit_power_law, PowerLaw};
