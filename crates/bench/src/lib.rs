//! # wavepipe-bench — experiment harness
//!
//! Regenerates every table and figure of the DATE'17 wave-pipelining
//! paper from the reconstructed benchmark suite:
//!
//! | Paper artifact | Binary | Driver |
//! |---|---|---|
//! | Table I (technology constants) | `table1` | [`tech::Technology`] / [`tech::CostModel`] |
//! | Fig 5 (buffers vs size, power fit) | `fig5` | [`harness::fig5_points`] |
//! | Fig 7 (critical path vs fan-out limit) | `fig7` | [`harness::fig7_rows`] |
//! | Fig 8 (normalized component counts) | `fig8` | [`harness::fig8_data`] |
//! | Fig 9 (T/A and T/P gains) | `fig9` | [`harness::fig9_data`] |
//! | Table II (per-benchmark metrics) | `table2` | [`harness::table2_from_grid`] |
//! | Retiming ablation (beyond paper) | `ablation_retiming` | [`harness::retiming_ablation`] |
//! | Scaling sweep, 10²..10⁵ synthetic nodes (beyond paper) | `scaling` | [`record::ScalingRecord`] |
//! | Everything, to `results/` | `repro_all` | all of the above |
//!
//! Every driver expresses its flow configuration as a declarative
//! [`wavepipe::PipelineSpec`] and runs it through a **shared, cached
//! [`wavepipe::Engine`]** ([`harness::engine`]: `benchsuite` registry
//! resolver + content-hash keyed result cache). Grid sweeps run on the
//! work-pulling parallel scheduler, and overlapping experiments share
//! cells — Fig 8's BUF-only column is Fig 5's sweep re-served from
//! cache. `repro_all` additionally writes the per-(circuit, technology,
//! pass) **priced** traces (wall time, component delta, depth change,
//! area/energy/cycle-time deltas) to `results/flow_trace.{txt,json}`,
//! and a machine-readable `results/BENCH_pr3.json` (wall time **and
//! engine cache hit/miss/pass counters** per sweep, per-pass priced
//! deltas per technology) so the performance trajectory is tracked
//! across PRs. The `scaling` binary sweeps the synthetic `dag` family
//! from 10² to 10⁵ nodes and records per-pass throughput plus cold/warm
//! cache-hit curves in `results/BENCH_pr4.json`; both record schemas
//! live in [`record`] and are pinned by the golden schema test.
//!
//! Criterion performance benches for the two algorithms live under
//! `benches/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fit;
pub mod harness;
pub mod record;

pub use fit::{fit_power_law, PowerLaw};
