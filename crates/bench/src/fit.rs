//! Least-squares power-law fitting for Fig 5's buffer-count trend.
//!
//! The paper fits `B(s) = 7.95 · s^0.9` to the (circuit size, buffers
//! added) scatter; we fit the same model by linear regression in
//! log–log space.

/// A fitted power law `y = coefficient · x^exponent`.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerLaw {
    /// Multiplicative coefficient (the paper reports 7.95).
    pub coefficient: f64,
    /// Exponent (the paper reports 0.9).
    pub exponent: f64,
    /// Coefficient of determination of the log–log regression.
    pub r_squared: f64,
}

impl PowerLaw {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.coefficient * x.powf(self.exponent)
    }
}

/// Fits `y = a · x^k` to strictly positive samples.
///
/// # Panics
///
/// Panics if fewer than two samples are given or any sample is
/// non-positive (a power law is only defined on positive data).
pub fn fit_power_law(samples: &[(f64, f64)]) -> PowerLaw {
    assert!(samples.len() >= 2, "need at least two samples to fit");
    let logs: Vec<(f64, f64)> = samples
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "power-law samples must be positive");
            (x.ln(), y.ln())
        })
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let exponent = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - exponent * sx) / n;

    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|p| (p.1 - (intercept + exponent * p.0)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };

    PowerLaw {
        coefficient: intercept.exp(),
        exponent,
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_is_recovered() {
        let samples: Vec<(f64, f64)> = (1..50)
            .map(|i| {
                let x = i as f64 * 10.0;
                (x, 7.95 * x.powf(0.9))
            })
            .collect();
        let fit = fit_power_law(&samples);
        assert!((fit.coefficient - 7.95).abs() < 1e-9);
        assert!((fit.exponent - 0.9).abs() < 1e-12);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn noisy_data_still_fits_close() {
        let samples: Vec<(f64, f64)> = (1..100)
            .map(|i| {
                let x = i as f64 * 37.0;
                let noise = 1.0 + 0.1 * ((i * 2654435761u64 as usize % 17) as f64 / 17.0 - 0.5);
                (x, 3.0 * x.powf(1.1) * noise)
            })
            .collect();
        let fit = fit_power_law(&samples);
        assert!(
            (fit.exponent - 1.1).abs() < 0.05,
            "exponent {}",
            fit.exponent
        );
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn predict_inverts_fit() {
        let law = PowerLaw {
            coefficient: 2.0,
            exponent: 0.5,
            r_squared: 1.0,
        };
        assert!((law.predict(100.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn one_sample_panics() {
        fit_power_law(&[(1.0, 1.0)]);
    }
}
