//! Regenerates Fig 7: critical-path increase after fan-out restriction
//! to k = 2..5 (paper averages: +140 %, +57 %, +36 %, +26 %).
//!
//! Pass `--quick` to run on the 8-benchmark subset instead of all 37.

use wavepipe_bench::harness::{build_suite, engine, fig7_rows, QUICK_SUBSET};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let engine = engine();
    let suite = build_suite(quick.then_some(&QUICK_SUBSET[..]));

    println!("Fig 7 — critical-path increase after fan-out restriction");
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "orig CP", "k=2", "k=3", "k=4", "k=5"
    );
    let mut rows = fig7_rows(&engine, &suite);
    rows.sort_by_key(|r| r.original_depth);
    let mut per_k = vec![Vec::new(); 4];
    for r in &rows {
        println!(
            "{:<12} {:>10} {:>7.0}% {:>7.0}% {:>7.0}% {:>7.0}%",
            r.name,
            r.original_depth,
            r.increase[0] * 100.0,
            r.increase[1] * 100.0,
            r.increase[2] * 100.0,
            r.increase[3] * 100.0
        );
        for (i, &inc) in r.increase.iter().enumerate() {
            per_k[i].push(inc);
        }
    }
    println!(
        "\naverage: k=2 {:+.0}%, k=3 {:+.0}%, k=4 {:+.0}%, k=5 {:+.0}%",
        tech::mean(&per_k[0]) * 100.0,
        tech::mean(&per_k[1]) * 100.0,
        tech::mean(&per_k[2]) * 100.0,
        tech::mean(&per_k[3]) * 100.0
    );
    println!("paper:   k=2 +140%, k=3 +57%, k=4 +36%, k=5 +26%");
}
