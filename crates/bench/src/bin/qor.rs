//! Logic-optimization QoR benchmark: the raw reference flow vs the
//! rewrite-prefixed flow (`optimize_depth` + `optimize_size` before
//! mapping), swept over the skew/share synthetic families plus a suite
//! subset, across every technology, on one shared cached engine. Writes
//! `results/BENCH_pr10.json` (shape: [`QorRecord`]).
//!
//! ```text
//! cargo run --release -p wavepipe-bench --bin qor [-- --max-nodes N]
//! ```
//!
//! Both flows run under a per-pass equivalence gate, so every measured
//! cell is also a differential proof that the rewrites (and everything
//! after them) preserved the source function. The run asserts the QoR
//! contract of the rewrite kernels — at least 2× depth reduction on the
//! maximally-skewed `chain` family, gate-count reduction on the
//! shared-context `shared` family — and that a warm re-run of both
//! grids is a pure cache hit (zero passes), i.e. the rewrite passes
//! participate in the engine's content-hash cache key like every other
//! pass. `--max-nodes` skips circuits above N gates (CI smoke).

use std::fs;
use std::path::Path;

use tech::Technology;
use wavepipe::{EquivalencePolicy, FlowConfig, PipelineSpec};
use wavepipe_bench::harness::engine;
use wavepipe_bench::record::{QorCell, QorCircuit, QorRecord};

/// Rewrite-round budget: enough for the deepest chain in the sweep to
/// reach its balanced form.
const MAX_ROUNDS: usize = 64;

/// The sweep: skewed chains (the depth-rewrite demonstrator),
/// shared-context collapse groups (the size-rewrite demonstrator), the
/// other synthetic families, and two hand-written suite circuits.
const CIRCUITS: [&str; 11] = [
    "synth:chain:1:length=64",
    "synth:chain:2:chains=2,length=128",
    "synth:chain:3:length=256",
    "synth:shared:4:groups=24,width=16",
    "synth:shared:5:groups=64,width=24",
    "synth:adder:6:width=16",
    "synth:parity:7:width=32",
    "synth:majtree:8:width=81",
    "synth:dag:9:nodes=400",
    "SASC",
    "HAMMING",
];

/// `synth:<family>:…` → family; registry names → `suite`.
fn family_of(name: &str) -> String {
    name.strip_prefix("synth:")
        .and_then(|rest| rest.split(':').next())
        .unwrap_or("suite")
        .to_owned()
}

fn main() {
    let mut max_nodes = usize::MAX;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-nodes" => {
                max_nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-nodes takes an integer");
            }
            other => panic!("unknown argument `{other}` (try --max-nodes N)"),
        }
    }

    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results/");
    let engine = engine();
    let technologies = Technology::all();
    let tables: Vec<tech::CostTable> = technologies.iter().map(Technology::cost_table).collect();

    let policy = EquivalencePolicy::default();
    let raw = PipelineSpec::for_config(FlowConfig::default()).gate_equivalence(policy);
    // The rewrite-prefixed flow: identical netlist passes, with the two
    // cost-blind MIG rewrites leading (build() slots `map` in after
    // them).
    let mut opt = PipelineSpec::map(raw.minimize_inverters)
        .optimize_depth(MAX_ROUNDS)
        .optimize_size(MAX_ROUNDS)
        .gate_equivalence(policy);
    opt.passes.extend(raw.passes.iter().cloned());

    let graphs: Vec<mig::Mig> = CIRCUITS
        .iter()
        .filter_map(|name| {
            let g = benchsuite::build_mig(name).unwrap_or_else(|| panic!("unknown circuit {name}"));
            (g.gate_count() <= max_nodes).then_some(g)
        })
        .collect();
    assert!(!graphs.is_empty(), "--max-nodes filtered out every circuit");
    let graph_refs: Vec<&mig::Mig> = graphs.iter().collect();

    let raw_cells = engine
        .run_pipeline_grid(&raw, &graph_refs, &tables)
        .expect("raw pipeline spec is well-formed");
    let opt_cells = engine
        .run_pipeline_grid(&opt, &graph_refs, &tables)
        .expect("rewrite pipeline spec is well-formed");

    // Warm re-run of both grids: the rewrite passes are part of the
    // pipeline content hash, so everything must come back from cache.
    let before = engine.stats();
    engine
        .run_pipeline_grid(&raw, &graph_refs, &tables)
        .expect("warm raw grid");
    engine
        .run_pipeline_grid(&opt, &graph_refs, &tables)
        .expect("warm rewrite grid");
    let warm = engine.stats().since(&before);
    assert_eq!(
        warm.passes_executed, 0,
        "warm re-run of both grids must execute zero passes"
    );

    let techs_n = technologies.len();
    let cell_run = |cells: &[wavepipe::EngineCell], ci: usize, ti: usize| {
        cells[ci * techs_n + ti]
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{} @ {}: flow failed: {e}", graphs[ci].name(), ti))
            .clone()
    };

    let mut circuits = Vec::with_capacity(graphs.len());
    let mut cells = Vec::with_capacity(graphs.len() * techs_n);
    println!(
        "{:<40} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "circuit", "gates", "gates'", "depth", "depth'", "d-gain", "g-gain"
    );
    for (ci, g) in graphs.iter().enumerate() {
        // The rewrites are cost-blind, so the MIG-level QoR is read off
        // the first technology's cell.
        let opt_run = cell_run(&opt_cells, ci, 0);
        let rewrites: Vec<&wavepipe::PassStats> = opt_run
            .trace
            .iter()
            .filter(|p| p.pass.starts_with("optimize_"))
            .collect();
        let last = rewrites.last().expect("the rewrite prefix is traced");
        let (raw_gates, raw_depth) = (g.gate_count(), g.depth());
        let (opt_gates, opt_depth) = (last.counts_after.maj, last.depth_after);
        let point = QorCircuit {
            name: g.name().to_owned(),
            family: family_of(g.name()),
            raw_gates,
            raw_depth,
            opt_gates,
            opt_depth,
            depth_gain: raw_depth as f64 / opt_depth.max(1) as f64,
            gate_gain: raw_gates as f64 / opt_gates.max(1) as f64,
            rewrite_micros: rewrites.iter().map(|p| p.micros).sum(),
        };
        println!(
            "{:<40} {:>7} {:>7} {:>7} {:>7} {:>7.2} {:>7.2}",
            point.name,
            point.raw_gates,
            point.opt_gates,
            point.raw_depth,
            point.opt_depth,
            point.depth_gain,
            point.gate_gain
        );
        // The QoR contract the rewrite kernels exist to deliver.
        match point.family.as_str() {
            "chain" => assert!(
                point.depth_gain >= 2.0,
                "{}: skewed chains must at least halve in depth (got {:.2}×)",
                point.name,
                point.depth_gain
            ),
            "shared" => assert!(
                point.opt_gates < point.raw_gates,
                "{}: shared-context groups must lose gates ({} from {})",
                point.name,
                point.opt_gates,
                point.raw_gates
            ),
            _ => {}
        }
        circuits.push(point);

        for (ti, technology) in technologies.iter().enumerate() {
            let raw_run = cell_run(&raw_cells, ci, ti);
            let opt_run = cell_run(&opt_cells, ci, ti);
            let priced = |run: &wavepipe::PipelineRun| {
                let p = run
                    .trace
                    .last()
                    .and_then(|s| s.priced.as_ref())
                    .expect("priced grid cells trace costs");
                (p.after.area, p.after.latency)
            };
            let (raw_area, raw_cycle_time) = priced(&raw_run);
            let (opt_area, opt_cycle_time) = priced(&opt_run);
            cells.push(QorCell {
                circuit: g.name().to_owned(),
                technology: technology.name.clone(),
                raw_size: raw_run.result.pipelined_counts().priced_total(),
                opt_size: opt_run.result.pipelined_counts().priced_total(),
                raw_wave_depth: raw_run.result.pipelined.depth(),
                opt_wave_depth: opt_run.result.pipelined.depth(),
                raw_area,
                opt_area,
                raw_cycle_time,
                opt_cycle_time,
            });
        }
    }

    let record = QorRecord {
        raw_pipeline: raw.build().expect("well-ordered").pass_names(),
        opt_pipeline: opt.build().expect("well-ordered").pass_names(),
        equivalence_gated: true,
        circuits,
        cells,
        engine_totals: engine.stats(),
        warm,
    };
    fs::write(
        out_dir.join("BENCH_pr10.json"),
        serde_json::to_string_pretty(&record).expect("serialize"),
    )
    .expect("write BENCH_pr10.json");
    println!(
        "\nqor record: results/BENCH_pr10.json ({} circuits × {} technologies, warm passes: {})",
        record.circuits.len(),
        technologies.len(),
        record.warm.passes_executed
    );
}
