//! `wavepipe-load` — latency-percentile load generator for the daemon.
//!
//! Replays thousands of concurrent synthetic sweep requests against a
//! live `wavepipe-serve` and records client-observed latency
//! percentiles (p50/p95/p99), throughput, and coalesce/cache-hit rates
//! into `results/BENCH_pr9.json` (shape:
//! [`wavepipe_bench::record::ServeRecord`], pinned by the golden
//! schema test). Two phases:
//!
//! 1. **`coalesce_burst`** — every client pipelines the *same* spec,
//!    so `clients × pipelined` identical requests are in flight at
//!    once. The daemon must answer all of them out of **one** pipeline
//!    execution (coalesced while in flight, cache hits after); the
//!    generator asserts the engine missed exactly once.
//! 2. **`distinct_sweep`** — requests cycle through a pool of distinct
//!    synthetic specs, measuring mixed cold/warm behavior; the engine
//!    must miss exactly once per distinct spec.
//!
//! ```text
//! cargo run --release -p wavepipe-bench --bin wavepipe-load -- \
//!     --addr 127.0.0.1:7117 --out results/BENCH_pr9.json --shutdown
//! ```
//!
//! `--quick` shrinks the run for CI smoke jobs. The generator assumes
//! it is the daemon's only traffic source while it runs (the
//! before/after counter deltas are not otherwise attributable).

use std::collections::HashMap;
use std::time::Instant;

use wavepipe::{FlowSpec, SynthSpec};
use wavepipe_bench::record::{LatencySummary, LoadPhase, ServeRecord, ServeTotals};
use wavepipe_serve::protocol::PROTOCOL_VERSION;
use wavepipe_serve::{Client, Control, Event, Request, ServeConfig, ServeMetrics};

fn dag_spec(experiment: &str, seed: u64, nodes: u64, depth: u64) -> FlowSpec {
    FlowSpec::new(experiment).synthetic_circuit(
        SynthSpec::new("dag", seed)
            .param("nodes", nodes)
            .param("depth", depth),
    )
}

fn fetch_stats(addr: &str) -> (ServeConfig, ServeMetrics) {
    let mut client = Client::connect(addr).expect("connect for stats");
    client
        .send(&Request::Control {
            id: 0,
            control: Control::Stats,
        })
        .expect("send stats");
    loop {
        if let Event::Stats {
            config, metrics, ..
        } = client.read_event().expect("stats answer")
        {
            return (config, metrics);
        }
    }
}

fn summarize(mut samples: Vec<f64>) -> LatencySummary {
    samples.sort_by(f64::total_cmp);
    let percentile = |q: f64| -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples[((samples.len() as f64 - 1.0) * q).round() as usize]
    };
    LatencySummary {
        count: samples.len() as u64,
        min_ms: samples.first().copied().unwrap_or(0.0),
        mean_ms: if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        },
        p50_ms: percentile(0.50),
        p95_ms: percentile(0.95),
        p99_ms: percentile(0.99),
        max_ms: samples.last().copied().unwrap_or(0.0),
    }
}

/// Runs one phase: `clients` connections, each pipelining its whole
/// request list up front (so every request of the phase is in flight
/// concurrently), then collecting terminal events and per-request
/// send-to-terminal latency. `spec_for(client, slot)` names the spec of
/// each request.
fn run_phase(
    name: &str,
    addr: &str,
    clients: usize,
    pipelined: usize,
    distinct_specs: usize,
    spec_for: impl Fn(usize, usize) -> FlowSpec,
) -> LoadPhase {
    let (_, before) = fetch_stats(addr);
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_owned();
            let specs: Vec<FlowSpec> = (0..pipelined).map(|s| spec_for(c, s)).collect();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect load client");
                let mut sent: HashMap<u64, Instant> = HashMap::new();
                for (i, spec) in specs.into_iter().enumerate() {
                    let id = i as u64 + 1;
                    client.send(&Request::Run { id, spec }).expect("send run");
                    sent.insert(id, Instant::now());
                }
                let mut latencies = Vec::with_capacity(sent.len());
                let (mut completed, mut failed) = (0u64, 0u64);
                while !sent.is_empty() {
                    let event = client.read_event().expect("terminal events for every run");
                    if !event.is_terminal() {
                        continue;
                    }
                    let Some(at) = sent.remove(&event.id()) else {
                        continue;
                    };
                    latencies.push(at.elapsed().as_secs_f64() * 1000.0);
                    match event {
                        Event::Done { .. } => completed += 1,
                        _ => failed += 1,
                    }
                }
                (latencies, completed, failed)
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(clients * pipelined);
    let (mut completed, mut failed) = (0u64, 0u64);
    for handle in handles {
        let (l, c, f) = handle.join().expect("load client thread");
        latencies.extend(l);
        completed += c;
        failed += f;
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    let (_, after) = fetch_stats(addr);

    let requests = (clients * pipelined) as u64;
    LoadPhase {
        name: name.to_owned(),
        clients,
        pipelined,
        requests,
        completed,
        failed,
        distinct_specs,
        wall_ms,
        requests_per_sec: requests as f64 / (wall_ms / 1000.0),
        latency: summarize(latencies),
        executed: after.executed - before.executed,
        coalesced: after.coalesced - before.coalesced,
        cache_hits: after.engine.cache_hits - before.engine.cache_hits,
        cache_misses: after.engine.cache_misses - before.engine.cache_misses,
    }
}

fn print_phase(phase: &LoadPhase) {
    println!(
        "{:<16} {:>6} req ({:>3} distinct) {:>6} ok {:>4} fail  \
         p50 {:>8.2} ms  p95 {:>8.2} ms  p99 {:>8.2} ms  {:>8.0} req/s  \
         {} executed / {} coalesced, engine {} hits / {} misses",
        phase.name,
        phase.requests,
        phase.distinct_specs,
        phase.completed,
        phase.failed,
        phase.latency.p50_ms,
        phase.latency.p95_ms,
        phase.latency.p99_ms,
        phase.requests_per_sec,
        phase.executed,
        phase.coalesced,
        phase.cache_hits,
        phase.cache_misses,
    );
}

fn main() {
    let mut addr = "127.0.0.1:7117".to_owned();
    let mut clients = 100usize;
    let mut pipelined = 10usize;
    let mut sweep_specs = 8usize;
    let mut burst_nodes = 20_000u64;
    let mut out: Option<String> = None;
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} takes a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--clients" => clients = value("--clients").parse().expect("--clients N"),
            "--pipelined" => pipelined = value("--pipelined").parse().expect("--pipelined N"),
            "--sweep-specs" => {
                sweep_specs = value("--sweep-specs").parse().expect("--sweep-specs N");
            }
            "--burst-nodes" => {
                burst_nodes = value("--burst-nodes").parse().expect("--burst-nodes N");
            }
            "--out" => out = Some(value("--out")),
            "--shutdown" => shutdown = true,
            "--quick" => {
                clients = 8;
                pipelined = 4;
                sweep_specs = 3;
                burst_nodes = 600;
            }
            other => panic!(
                "unknown argument `{other}` (try --addr HOST:PORT --clients N \
                 --pipelined N --sweep-specs N --burst-nodes N --out PATH \
                 --shutdown --quick)"
            ),
        }
    }
    let sweep_specs = sweep_specs.max(1);

    println!(
        "loading {addr}: {clients} clients x {pipelined} pipelined = {} concurrent requests",
        clients * pipelined
    );

    // Phase 1: every request is the same spec — one pipeline execution
    // must serve them all (coalesced in flight, cache hits after).
    let burst_spec = dag_spec("load-burst", 0xB0057, burst_nodes, 16);
    let burst = run_phase("coalesce_burst", &addr, clients, pipelined, 1, |_, _| {
        burst_spec.clone()
    });
    print_phase(&burst);
    assert_eq!(burst.failed, 0, "burst requests must all verify");
    assert_eq!(
        burst.cache_misses, 1,
        "identical in-flight specs must coalesce to a single pipeline execution"
    );

    // Phase 2: requests cycle through a pool of distinct specs — mixed
    // cold/warm latency; exactly one miss per distinct spec.
    let pool: Vec<FlowSpec> = (0..sweep_specs)
        .map(|i| {
            dag_spec(
                "load-sweep",
                0x5EED_0000 + i as u64,
                800 + 150 * i as u64,
                12,
            )
        })
        .collect();
    let sweep = run_phase(
        "distinct_sweep",
        &addr,
        clients,
        pipelined,
        pool.len(),
        |c, s| pool[(c * pipelined + s) % pool.len()].clone(),
    );
    print_phase(&sweep);
    assert_eq!(sweep.failed, 0, "sweep requests must all verify");
    assert_eq!(
        sweep.cache_misses,
        pool.len() as u64,
        "each distinct spec must execute exactly once"
    );

    let (config, totals) = fetch_stats(&addr);
    let record = ServeRecord {
        protocol_version: PROTOCOL_VERSION,
        workers: config.workers,
        queue_depth: config.queue_depth,
        client_queue: config.client_queue,
        shed_slow_clients: config.shed_slow_clients,
        phases: vec![burst, sweep],
        server: ServeTotals {
            requests: totals.requests,
            completed: totals.completed,
            failed: totals.failed,
            rejected: totals.rejected,
            coalesced: totals.coalesced,
            executed: totals.executed,
            cells_streamed: totals.cells_streamed,
            cells_shed: totals.cells_shed,
            clients: totals.clients,
        },
        engine_totals: totals.engine,
    };
    if let Some(path) = &out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(
            path,
            serde_json::to_string_pretty(&record).expect("serialize"),
        )
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("serve record: {path} ({} phases)", record.phases.len());
    }

    if shutdown {
        let mut client = Client::connect(&addr).expect("connect for shutdown");
        client
            .send(&Request::Control {
                id: 0,
                control: Control::Shutdown,
            })
            .expect("send shutdown");
        loop {
            match client.read_event_eof().expect("shutdown ack") {
                Some(Event::ShuttingDown { .. }) | None => break,
                Some(_) => continue,
            }
        }
        println!("daemon acknowledged shutdown");
    }
}
