//! Scaling benchmark over the synthetic `dag` family: sweeps the
//! node-count axis from 10² to 10⁷ through the paper's default flow
//! (FO3 + BUF + verify) on a cached engine, and writes the
//! node-count vs throughput and cache-hit curves to
//! `results/BENCH_pr4.json` (shape: [`ScalingRecord`]).
//!
//! ```text
//! cargo run --release -p wavepipe-bench --bin scaling [-- --max-nodes N]
//! ```
//!
//! Every point is one `synth:dag:<seed>:depth=…,nodes=…` circuit built
//! through the registry (the same canonical names a
//! `CircuitSpec::Synthetic` spec resolves to), run **cold** (cache
//! miss: generator + every pass executes) and then **warm** (pure
//! cache hit: zero passes) on the same engine — the warm column is the
//! cache-hit curve the engine's result cache buys at each scale.
//! `--max-nodes` truncates the sweep (CI runs the smallest point to
//! keep the record format alive without paying for 10⁵).

use std::fs;
use std::path::Path;
use std::time::Instant;

use wavepipe::{FlowConfig, FlowSpec, PipelineSpec, SynthSpec};
use wavepipe_bench::harness::engine;
use wavepipe_bench::record::{PassThroughput, ScalingPoint, ScalingRecord};

/// The sweep axis: Fig 5's 10²..10⁵ node-count span, log-spaced, with
/// depth growing like mapped-netlist depth does — extended to 10⁶ and
/// 10⁷ now that the flat-arena evaluation core sustains that scale.
const SWEEP: [(usize, u64); 9] = [
    (100, 8),
    (300, 10),
    (1_000, 12),
    (3_000, 14),
    (10_000, 16),
    (30_000, 20),
    (100_000, 24),
    (1_000_000, 28),
    (10_000_000, 32),
];

fn main() {
    let mut max_nodes = usize::MAX;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-nodes" => {
                max_nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-nodes takes an integer");
            }
            other => panic!("unknown argument `{other}` (try --max-nodes N)"),
        }
    }

    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results/");
    let engine = engine();
    let pipeline = PipelineSpec::for_config(FlowConfig::default());

    let mut points = Vec::new();
    println!(
        "{:<44} {:>9} {:>9} {:>10} {:>10} {:>12}",
        "circuit", "gates", "size'", "cold ms", "warm ms", "map nodes/s"
    );
    for (i, (nodes, depth)) in SWEEP.iter().enumerate() {
        if *nodes > max_nodes {
            continue;
        }
        // The generator caps ports at 4096 — pass the cap explicitly so
        // the canonical name states what is actually generated.
        let synth = SynthSpec::new("dag", 0x5CA1_E000 + i as u64)
            .param("nodes", *nodes as u64)
            .param("depth", *depth)
            .param("inputs", (32 + nodes / 50).min(4_096) as u64)
            .param("outputs", (16 + nodes / 100).min(4_096) as u64);
        let name = synth.name();
        let spec = FlowSpec::new("scaling").synthetic_circuit(synth);

        let before = engine.stats();
        let started = Instant::now();
        let cold_run = engine.run(&spec).expect("scaling spec verifies");
        let cold_wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        let cold = engine.stats().since(&before);

        let before = engine.stats();
        let started = Instant::now();
        let warm_run = engine.run(&spec).expect("scaling spec verifies");
        let warm_wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        let warm = engine.stats().since(&before);
        assert_eq!(
            warm.passes_executed, 0,
            "{name}: warm re-run must be a pure cache hit"
        );
        drop(warm_run);

        let run = cold_run.cells[0].run().expect("cell verified");
        // One MAJ cell per MIG gate in the mapped netlist, so the gate
        // count comes off the run instead of generating the graph a
        // second time just to measure it.
        let gates = run.result.original_counts().maj;
        let passes: Vec<PassThroughput> = run
            .trace
            .iter()
            .map(|p| PassThroughput {
                pass: p.pass.clone(),
                micros: p.micros,
                nodes_per_sec: if p.micros == 0 {
                    0.0
                } else {
                    p.counts_after.priced_total() as f64 * 1e6 / p.micros as f64
                },
            })
            .collect();
        let point = ScalingPoint {
            name: name.clone(),
            target_nodes: *nodes,
            gates,
            mapped_size: run.result.original_counts().priced_total(),
            pipelined_size: run.result.pipelined_counts().priced_total(),
            depth: run.result.pipelined.depth(),
            cold_wall_ms,
            warm_wall_ms,
            cold,
            warm,
            passes,
        };
        println!(
            "{:<44} {:>9} {:>9} {:>10.1} {:>10.3} {:>12.0}",
            point.name,
            point.gates,
            point.pipelined_size,
            point.cold_wall_ms,
            point.warm_wall_ms,
            point.passes.first().map_or(0.0, |p| p.nodes_per_sec)
        );
        points.push(point);
    }
    assert!(!points.is_empty(), "--max-nodes filtered out every point");

    // No-regression floor: the flow must stay near-linear in circuit
    // size all the way up the sweep. Per-component cold cost at the
    // largest point may not exceed 10x the 10^4-node reference —
    // cache-pressure growth is expected, complexity blowups are not.
    if let Some(reference) = points.iter().find(|p| p.target_nodes >= 10_000) {
        let last = points.last().expect("non-empty");
        if last.target_nodes > reference.target_nodes {
            let ref_per = reference.cold_wall_ms / reference.pipelined_size as f64;
            let last_per = last.cold_wall_ms / last.pipelined_size as f64;
            assert!(
                last_per <= ref_per * 10.0,
                "per-component cold cost regressed: {:.4} ms/kc at {} nodes vs {:.4} ms/kc at {}",
                last_per * 1000.0,
                last.target_nodes,
                ref_per * 1000.0,
                reference.target_nodes
            );
        }
    }

    let record = ScalingRecord {
        pipeline: pipeline
            .build()
            .expect("default pipeline is well-ordered")
            .pass_names(),
        points,
        engine_totals: engine.stats(),
        cached_cells: engine.cached_cells(),
    };
    fs::write(
        out_dir.join("BENCH_pr4.json"),
        serde_json::to_string_pretty(&record).expect("serialize"),
    )
    .expect("write BENCH_pr4.json");
    println!(
        "\nscaling record: results/BENCH_pr4.json ({} points, engine: {} hits / {} misses)",
        record.points.len(),
        record.engine_totals.cache_hits,
        record.engine_totals.cache_misses
    );
}
