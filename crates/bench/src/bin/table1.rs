//! Regenerates Table I: technology cell and gate parameters.

use tech::Technology;

fn main() {
    println!("Table I — Technology cell and gate parameters");
    println!("(paper values; relative costs per component kind)\n");
    for t in Technology::all() {
        println!("{} cell:", t.name);
        println!("  area   = {:.6} µm²", t.cell_area.value());
        println!("  delay  = {} ns", t.cell_delay.value());
        println!("  energy = {:e} fJ", t.cell_energy.value());
        println!(
            "  {:>8} {:>6} {:>6} {:>6} {:>6}",
            "relative", "INV", "MAJ", "BUF", "FOG"
        );
        println!(
            "  {:>8} {:>6} {:>6} {:>6} {:>6}",
            "area", t.inv.area, t.maj.area, t.buf.area, t.fog.area
        );
        println!(
            "  {:>8} {:>6} {:>6} {:>6} {:>6}",
            "delay", t.inv.delay, t.maj.delay, t.buf.delay, t.fog.delay
        );
        println!(
            "  {:>8} {:>6} {:>6} {:>6} {:>6}",
            "energy", t.inv.energy, t.maj.energy, t.buf.energy, t.fog.energy
        );
        println!(
            "  model knobs: phase = {:.4} ns ({}× cell delay), sense energy/output = {} fJ\n",
            t.phase_delay().value(),
            t.phase_weight,
            t.output_sense_energy.value()
        );
    }
}
