//! Regenerates Table I: technology cell and gate parameters, plus the
//! absolute per-component pricing each technology's [`tech::CostModel`]
//! hands the flow (the `CostTable` the grid driver sweeps).

use tech::{CostModel, Technology};
use wavepipe::ComponentKind;

fn main() {
    println!("Table I — Technology cell and gate parameters");
    println!("(paper values; relative costs per component kind)\n");
    for t in Technology::all() {
        println!("{} cell:", t.name);
        println!("  area   = {:.6} µm²", t.cell_area.value());
        println!("  delay  = {} ns", t.cell_delay.value());
        println!("  energy = {:e} fJ", t.cell_energy.value());
        println!(
            "  {:>8} {:>6} {:>6} {:>6} {:>6}",
            "relative", "INV", "MAJ", "BUF", "FOG"
        );
        println!(
            "  {:>8} {:>6} {:>6} {:>6} {:>6}",
            "area", t.inv.area, t.maj.area, t.buf.area, t.fog.area
        );
        println!(
            "  {:>8} {:>6} {:>6} {:>6} {:>6}",
            "delay", t.inv.delay, t.maj.delay, t.buf.delay, t.fog.delay
        );
        println!(
            "  {:>8} {:>6} {:>6} {:>6} {:>6}",
            "energy", t.inv.energy, t.maj.energy, t.buf.energy, t.fog.energy
        );
        println!(
            "  model knobs: phase = {:.4} ns ({}× cell delay), sense energy/output = {} fJ",
            t.phase_delay().value(),
            t.phase_weight,
            t.output_sense_energy.value()
        );
        println!(
            "  engine cache identity: {:#018x} (content hash of the cost table)",
            t.content_hash()
        );

        // The absolute pricing the flow's cost-model layer sees.
        let table = t.cost_table();
        println!("  cost table (absolute, per component):");
        println!(
            "  {:>10} {:>12} {:>12} {:>12} {:>7}",
            "kind", "area µm²", "delay ns", "energy fJ", "phases"
        );
        for kind in [
            ComponentKind::Maj,
            ComponentKind::Inv,
            ComponentKind::Buf,
            ComponentKind::Fog,
        ] {
            println!(
                "  {:>10} {:>12.6} {:>12.6} {:>12.4e} {:>7}",
                kind.to_string(),
                table.area_of(kind),
                table.delay_of(kind),
                table.energy_of(kind),
                table.phase_occupancy(kind)
            );
        }
        println!();
    }
}
