//! `wavepipe-serve` — the engine daemon.
//!
//! Binds a TCP listener, wires the `benchsuite` registry in as the
//! circuit resolver, and serves newline-delimited JSON `FlowSpec`
//! requests from any number of concurrent clients over one shared,
//! cached engine (see the `wavepipe-serve` crate docs for the wire
//! protocol and threading model). Runs until a client sends the
//! `shutdown` control, then drains in-flight work and exits 0.
//!
//! ```text
//! cargo run --release -p wavepipe-bench --bin wavepipe-serve -- \
//!     --addr 127.0.0.1:7117 --workers 8 --cache-dir /tmp/wp-disk
//! ```
//!
//! Every flag also has a `WAVEPIPE_SERVE_*` environment form (flags
//! win): `WORKERS`, `QUEUE`, `CLIENT_QUEUE`, `SHED`.

use std::sync::Arc;

use wavepipe::Engine;
use wavepipe_serve::{ServeConfig, Server};

fn main() {
    let mut addr = "127.0.0.1:7117".to_owned();
    let mut config = ServeConfig::from_env();
    let mut cache_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} takes a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => config.workers = value("--workers").parse().expect("--workers N"),
            "--queue" => config.queue_depth = value("--queue").parse().expect("--queue N"),
            "--client-queue" => {
                config.client_queue = value("--client-queue").parse().expect("--client-queue N");
            }
            "--no-shed" => config.shed_slow_clients = false,
            "--cache-dir" => cache_dir = Some(value("--cache-dir")),
            other => panic!(
                "unknown argument `{other}` (try --addr HOST:PORT --workers N \
                 --queue N --client-queue N --no-shed --cache-dir PATH)"
            ),
        }
    }
    config.workers = config.workers.max(1);
    config.queue_depth = config.queue_depth.max(1);
    config.client_queue = config.client_queue.max(1);

    let mut engine = Engine::new().with_resolver(benchsuite::build_mig);
    if let Some(dir) = &cache_dir {
        engine = engine.with_disk_cache(dir);
    }
    let server = Server::start(Arc::new(engine), &addr, config).expect("bind the listen address");
    // The exact line CI's serve-smoke job (and any wrapper script)
    // waits for before pointing load at the daemon.
    println!("wavepipe-serve listening on {}", server.local_addr());
    println!(
        "workers={} queue={} client_queue={} shed={} cache_dir={}",
        config.workers,
        config.queue_depth,
        config.client_queue,
        config.shed_slow_clients,
        cache_dir.as_deref().unwrap_or("-"),
    );

    server.wait_shutdown_requested();
    println!("shutdown requested; draining");
    let metrics = server.shutdown();
    println!(
        "served {} requests from {} clients: {} completed, {} failed, {} rejected, \
         {} executed + {} coalesced; engine {} hits / {} misses; \
         {} cells streamed ({} shed)",
        metrics.requests,
        metrics.clients,
        metrics.completed,
        metrics.failed,
        metrics.rejected,
        metrics.executed,
        metrics.coalesced,
        metrics.engine.cache_hits,
        metrics.engine.cache_misses,
        metrics.cells_streamed,
        metrics.cells_shed,
    );
}
