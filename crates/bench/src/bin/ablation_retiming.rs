//! Ablation beyond the paper: buffer count under ASAP levels
//! (Algorithm 1 as published) vs slack-aware retimed levels.
//!
//! Pass `--quick` to run on the 8-benchmark subset instead of all 37.

use wavepipe_bench::harness::{build_suite, engine, retiming_ablation, QUICK_SUBSET};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let engine = engine();
    let suite = build_suite(quick.then_some(&QUICK_SUBSET[..]));

    println!("Retiming ablation — buffers inserted (FO3 first, then balancing)\n");
    println!(
        "{:<12} {:>12} {:>12} {:>9}",
        "benchmark", "ASAP", "retimed", "saving"
    );
    let rows = retiming_ablation(&engine, &suite);
    let mut savings = Vec::new();
    for r in &rows {
        println!(
            "{:<12} {:>12} {:>12} {:>8.1}%",
            r.name,
            r.asap_buffers,
            r.retimed_buffers,
            r.saving() * 100.0
        );
        savings.push(r.saving());
    }
    println!(
        "\naverage saving: {:.1}% (retiming never increases the count; the\n\
         paper fixes ASAP levels, assuming depth-optimized input)",
        tech::mean(&savings) * 100.0
    );
}
