//! Regenerates Table II: per-benchmark depth/size/area/power/throughput
//! and T/A, T/P gains, original vs wave-pipelined, for SWD, QCA and NML
//! over the paper's seven selected benchmarks — all technologies from
//! **one** circuit × technology grid sweep (the suite used to be built
//! and run once per technology).

use tech::BenchmarkRow;
use wavepipe_bench::harness::{build_suite, engine, evaluate_suite_grid, table2_from_grid};

/// The paper's published rows for reference: (name, depth orig, depth
/// wp, size orig, size wp) — identical across technologies.
const PAPER_STRUCTURE: [(&str, u32, u32, usize, usize); 7] = [
    ("SASC", 6, 9, 622, 1885),
    ("DES_AREA", 22, 38, 4187, 13325),
    ("MUL32", 36, 58, 9097, 18998),
    ("HAMMING", 61, 96, 2072, 11523),
    ("MUL64", 109, 135, 25773, 139914),
    ("REVX", 143, 225, 7517, 34911),
    ("DIFFEQ1", 219, 282, 17726, 306937),
];

fn main() {
    println!("Table II — summary of benchmarking results (FO3 + BUF)\n");
    let engine = engine();
    let suite = build_suite(Some(&benchsuite::TABLE2_SELECTION));
    let grid = evaluate_suite_grid(&engine, &suite);
    for (technology, rows) in table2_from_grid(&grid) {
        println!("--- {technology} ---");
        println!("{}", BenchmarkRow::table_header());
        for row in rows {
            println!("{}", row.to_table_line());
        }
        println!();
    }

    println!("paper structural columns for comparison (identical across technologies):");
    println!(
        "{:<12} {:>6} {:>6} {:>8} {:>8}",
        "benchmark", "D.org", "D.wp", "S.org", "S.wp"
    );
    for (name, d0, d1, s0, s1) in PAPER_STRUCTURE {
        println!("{name:<12} {d0:>6} {d1:>6} {s0:>8} {s1:>8}");
    }
    println!(
        "\nNote: benchmark circuits are synthetic reconstructions of the same\n\
         profile (DESIGN.md substitution 1); compare trends, not absolute\n\
         values. EXPERIMENTS.md records the paper-vs-measured comparison."
    );
}
