//! Regenerates Fig 5: balancing buffers added vs original netlist size,
//! with the power-law fit (paper: B(s) = 7.95 · s^0.9).
//!
//! Pass `--quick` to run on the 8-benchmark subset instead of all 37.

use wavepipe_bench::harness::{build_suite, engine, fig5_fit, fig5_points, QUICK_SUBSET};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let engine = engine();
    let suite = build_suite(quick.then_some(&QUICK_SUBSET[..]));

    println!("Fig 5 — balancing buffers added vs original netlist size");
    println!("{:<12} {:>10} {:>12}", "benchmark", "size", "buffers");
    let mut points = fig5_points(&engine, &suite);
    points.sort_by_key(|p| p.size);
    for p in &points {
        println!("{:<12} {:>10} {:>12}", p.name, p.size, p.buffers);
    }

    let fit = fig5_fit(&points);
    println!(
        "\nfit:   B(s) = {:.2} · s^{:.3}   (R² = {:.4} in log–log space)",
        fit.coefficient, fit.exponent, fit.r_squared
    );
    println!("paper: B(s) = 7.95 · s^0.900");
    let ratios: Vec<f64> = points
        .iter()
        .filter(|p| p.buffers > 0)
        .map(|p| p.buffers as f64 / p.size as f64)
        .collect();
    println!(
        "buffers / original size: min {:.2}×, mean {:.2}×, max {:.2}× (paper: 2–4× on average)",
        ratios.iter().cloned().fold(f64::INFINITY, f64::min),
        tech::mean(&ratios),
        ratios.iter().cloned().fold(0.0, f64::max)
    );
}
