//! Persistence smoke test: proves the on-disk result cache survives a
//! process boundary. Run it **twice** with the same `--dir`, in two
//! separate processes:
//!
//! ```text
//! cargo run --release -p wavepipe-bench --bin persist_smoke -- --dir /tmp/wp-disk
//! cargo run --release -p wavepipe-bench --bin persist_smoke -- --dir /tmp/wp-disk
//! ```
//!
//! Both invocations sweep the quick suite over the full circuit ×
//! technology grid through a disk-backed engine. The first run
//! populates the cache (and asserts it actually missed); any later run
//! must be served *entirely* from the disk tier — at least one disk
//! hit and **zero passes executed** — or the process exits non-zero.
//! CI uses exactly this pair to pin cross-process persistence.

use std::path::PathBuf;

use wavepipe_bench::harness::{build_suite, engine, evaluate_suite_grid, QUICK_SUBSET};

fn main() {
    let mut dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => dir = Some(PathBuf::from(args.next().expect("--dir takes a path"))),
            other => panic!("unknown argument `{other}` (try --dir PATH)"),
        }
    }
    let dir = dir.expect("persist_smoke requires --dir PATH");
    let cold = !dir.exists();

    let engine = engine().with_disk_cache(&dir);
    let suite = build_suite(Some(&QUICK_SUBSET));
    let grid = evaluate_suite_grid(&engine, &suite);
    let stats = engine.stats();
    println!(
        "swept {} circuits x {} technologies ({}): {} passes executed, disk {} hits / {} misses",
        suite.len(),
        grid.technologies.len(),
        if cold { "cold store" } else { "warm store" },
        stats.passes_executed,
        stats.disk_hits,
        stats.disk_misses,
    );

    if cold {
        assert!(
            stats.passes_executed > 0 && stats.disk_misses > 0,
            "first run against an empty store must execute the flow"
        );
        println!("populated {}", dir.display());
    } else {
        assert!(
            stats.disk_hits > 0,
            "warm store must serve at least one disk hit"
        );
        assert_eq!(
            stats.passes_executed, 0,
            "warm store must re-serve the whole sweep without executing a pass"
        );
        println!("re-served from {} with zero passes", dir.display());
    }
}
