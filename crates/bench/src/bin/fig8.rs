//! Regenerates Fig 8: normalized netlist size after BUF, FOk and
//! FOk+BUF, averaged over the suite (paper: BUF 3.81×; FO2..5
//! 2.48/1.61/1.35/1.25× with FOG shares .55/.26/.17/.13;
//! FOx+BUF 9.74/6.21/5.30/4.91×).
//!
//! The five flow configurations are five declarative pipeline specs
//! swept through the shared cached engine (each sweep parallel on the
//! work-pulling scheduler; the BUF-only column re-serves Fig 5's cells
//! when run after it, e.g. in `repro_all`).
//!
//! Pass `--quick` to run on the 8-benchmark subset instead of all 37.

use wavepipe_bench::harness::{build_suite, engine, fig8_data, QUICK_SUBSET};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let engine = engine();
    let suite = build_suite(quick.then_some(&QUICK_SUBSET[..]));
    let d = fig8_data(&engine, &suite);

    println!(
        "Fig 8 — normalized component counts (averaged over {} benchmarks)\n",
        suite.len()
    );
    println!(
        "{:<12} {:>10} {:>12} {:>10}",
        "config", "measured", "FOG share", "paper"
    );
    println!(
        "{:<12} {:>9.2}× {:>12} {:>10}",
        "original", 1.0, "—", "1.00×"
    );
    println!(
        "{:<12} {:>9.2}× {:>12} {:>10}",
        "BUF", d.buf_only, "—", "3.81×"
    );
    let paper_fo = ["2.48×(.55)", "1.61×(.26)", "1.35×(.17)", "1.25×(.13)"];
    let paper_combined = ["9.74×", "6.21×", "5.30×", "4.91×"];
    for (i, k) in (2..=5).enumerate() {
        println!(
            "{:<12} {:>9.2}× {:>11.2} {:>10}",
            format!("FO{k}"),
            d.fo_only[i],
            d.fog_share[i],
            paper_fo[i]
        );
    }
    for (i, k) in (2..=5).enumerate() {
        println!(
            "{:<12} {:>9.2}× {:>11.2} {:>10}",
            format!("FO{k}+BUF"),
            d.combined[i],
            d.combined_fog_share[i],
            paper_combined[i]
        );
    }
    println!("\nobservation (b) check — FOG share independent of BUF:");
    for i in 0..4 {
        assert!(
            (d.fog_share[i] - d.combined_fog_share[i]).abs() < 1e-9,
            "violated at k={}",
            i + 2
        );
    }
    println!("  holds exactly on every configuration.");
}
