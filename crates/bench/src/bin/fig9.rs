//! Regenerates Fig 9: normalized T/A and T/P gains per technology,
//! averaged over the suite (paper: T/A 5× SWD, 8× QCA, 3× NML;
//! T/P 23× SWD, 13× QCA, 5× NML).
//!
//! Pass `--quick` to run on the 8-benchmark subset instead of all 37.

use wavepipe_bench::harness::{build_suite, engine, evaluate_suite, fig9_data, QUICK_SUBSET};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let engine = engine();
    let suite = build_suite(quick.then_some(&QUICK_SUBSET[..]));
    let evaluated = evaluate_suite(&engine, &suite);

    println!(
        "Fig 9 — normalized T/A and T/P gains (FO3+BUF, averaged over {} benchmarks)\n",
        suite.len()
    );
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "tech", "T/A mean", "T/P mean", "T/A geomean", "T/P geomean", "paper (T/A, T/P)"
    );
    let paper = [("SWD", 5.0, 23.0), ("QCA", 8.0, 13.0), ("NML", 3.0, 5.0)];
    for (f, (pname, pta, ptp)) in fig9_data(&evaluated).iter().zip(paper) {
        assert_eq!(f.technology, pname);
        println!(
            "{:<6} {:>9.2}× {:>9.2}× {:>11.2}× {:>11.2}× {:>8}×, {}×",
            f.technology, f.ta_mean, f.tp_mean, f.ta_geomean, f.tp_geomean, pta, ptp
        );
    }

    println!("\nper-benchmark gains:");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "SWD T/A", "SWD T/P", "QCA T/A", "QCA T/P", "NML T/A", "NML T/P"
    );
    for (name, comparisons) in &evaluated {
        print!("{name:<12}");
        for c in comparisons {
            print!(" {:>8.2}×{:>8.2}×", c.ta_gain(), c.tp_gain());
        }
        println!();
    }
}
