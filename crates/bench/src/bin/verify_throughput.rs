//! Verification-throughput benchmark: scalar vs bit-parallel
//! differential checking over the synthetic `dag` family, 10² to 10⁵
//! nodes, plus the exhaustive-input ceiling curve — written to
//! `results/BENCH_pr5.json` (shape: [`VerifyRecord`]).
//!
//! ```text
//! cargo run --release -p wavepipe-bench --bin verify_throughput [-- --max-nodes N]
//! ```
//!
//! Each point runs the paper's default flow (FO3 + BUF + verify) on a
//! `synth:dag` circuit and measures equivalence-checking throughput on
//! the *pipelined* netlist two ways: the scalar baseline
//! (`Netlist::eval`, one pattern per traversal, topological order
//! recomputed per call — the pre-bit-parallel behaviour) and the word
//! path (`NetlistFunction`, 64 patterns per traversal, order and
//! scratch prepared once). The run **asserts** the word path's
//! advantage — ≥ 4× everywhere and ≥ 20× from 10⁴ nodes up — so a
//! regression (e.g. a reintroduced per-call clone or recomputation in
//! the evaluation hot path) fails the bench instead of silently
//! flattening the curve.
//!
//! The second sweep times exhaustive differential proofs
//! (`differential::check`, all `2^n` patterns) at growing input counts,
//! mapping out how far the "prove it, don't sample it" ceiling
//! practically reaches. `--max-nodes` truncates both sweeps (CI runs
//! the smallest sizes to keep the record format alive).

use std::fs;
use std::path::Path;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavepipe::differential::{self, Verdict};
use wavepipe::{EquivalencePolicy, FlowConfig, FlowSpec, NetlistFunction, PipelineSpec, SynthSpec};
use wavepipe_bench::harness::engine;
use wavepipe_bench::record::{ExhaustivePoint, VerifyPoint, VerifyRecord};

/// The throughput sweep axis: 10²..10⁵ target nodes.
const SWEEP: [(usize, u64); 5] = [
    (100, 8),
    (1_000, 12),
    (10_000, 16),
    (30_000, 20),
    (100_000, 24),
];

/// Input counts of the exhaustive-ceiling curve (each is one full
/// `2^n`-pattern proof on a ~400-node circuit).
const EXHAUSTIVE_INPUTS: [usize; 5] = [8, 10, 12, 14, 16];

/// Runs `work` (which reports how many patterns it evaluated) until at
/// least ~60 ms have elapsed; returns patterns per second.
fn measure(mut work: impl FnMut() -> u64) -> f64 {
    let started = Instant::now();
    let mut patterns = 0u64;
    while patterns == 0 || started.elapsed() < Duration::from_millis(60) {
        patterns += work();
    }
    patterns as f64 / started.elapsed().as_secs_f64()
}

fn main() {
    let mut max_nodes = usize::MAX;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-nodes" => {
                max_nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-nodes takes an integer");
            }
            other => panic!("unknown argument `{other}` (try --max-nodes N)"),
        }
    }

    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results/");
    let engine = engine();
    let pipeline = PipelineSpec::for_config(FlowConfig::default());

    let mut points = Vec::new();
    println!(
        "{:<48} {:>8} {:>14} {:>14} {:>9}",
        "circuit", "size'", "scalar pat/s", "word pat/s", "speedup"
    );
    for (i, (nodes, depth)) in SWEEP.iter().enumerate() {
        if *nodes > max_nodes {
            continue;
        }
        let synth = SynthSpec::new("dag", 0x7E51_F000 + i as u64)
            .param("nodes", *nodes as u64)
            .param("depth", *depth)
            .param("inputs", (32 + nodes / 50) as u64)
            .param("outputs", (16 + nodes / 100) as u64);
        let name = synth.name();
        let run = engine
            .run(&FlowSpec::new("verify-throughput").synthetic_circuit(synth))
            .expect("sweep spec verifies")
            .cells
            .remove(0)
            .outcome
            .expect("cell verifies");
        let netlist = &run.result.pipelined;
        let inputs = netlist.inputs().len();

        // One shared random pattern pool, scalar and packed views.
        let mut rng = StdRng::seed_from_u64(0xBEA7 + i as u64);
        let scalar_patterns: Vec<Vec<bool>> = (0..64)
            .map(|_| (0..inputs).map(|_| rng.gen()).collect())
            .collect();
        let word_blocks: Vec<Vec<u64>> = (0..16)
            .map(|_| (0..inputs).map(|_| rng.gen()).collect())
            .collect();

        // Scalar baseline: one full netlist traversal per pattern.
        let mut next = 0usize;
        let scalar_pps = measure(|| {
            let pattern = &scalar_patterns[next % scalar_patterns.len()];
            next += 1;
            std::hint::black_box(netlist.eval(pattern));
            1
        });

        // Word path: 64 patterns per traversal, prepared evaluator.
        let mut function = NetlistFunction::new(netlist).expect("flow output is acyclic");
        let mut next_block = 0usize;
        let word_pps = measure(|| {
            let block = &word_blocks[next_block % word_blocks.len()];
            next_block += 1;
            std::hint::black_box(function.eval_words(block));
            64
        });

        let speedup = word_pps / scalar_pps;
        let point = VerifyPoint {
            name: name.clone(),
            target_nodes: *nodes,
            inputs,
            pipelined_size: run.result.pipelined_counts().priced_total(),
            scalar_patterns_per_sec: scalar_pps,
            word_patterns_per_sec: word_pps,
            speedup,
        };
        println!(
            "{:<48} {:>8} {:>14.0} {:>14.0} {:>8.1}x",
            point.name, point.pipelined_size, scalar_pps, word_pps, speedup
        );

        // No-regression pins (the PR's acceptance floor): the word path
        // must stay ≥ 4× the scalar baseline everywhere and ≥ 20× from
        // 10⁴ nodes up.
        assert!(
            speedup >= 4.0,
            "{name}: word path only {speedup:.1}x over scalar — hot-path regression"
        );
        if *nodes >= 10_000 {
            assert!(
                speedup >= 20.0,
                "{name}: {speedup:.1}x at {nodes} nodes is below the 20x floor"
            );
        }
        points.push(point);
    }
    assert!(!points.is_empty(), "--max-nodes filtered out every point");

    // Exhaustive-ceiling curve: full 2^n proofs at growing n. In the
    // CI configuration (tiny --max-nodes) only the cheapest proofs run.
    let mut exhaustive = Vec::new();
    println!("\n{:<8} {:>12} {:>12}", "inputs", "patterns", "wall ms");
    for (i, n_inputs) in EXHAUSTIVE_INPUTS.into_iter().enumerate() {
        if max_nodes < 1_000 && n_inputs > 10 {
            continue;
        }
        let synth = SynthSpec::new("dag", 0xE0_0000 + i as u64)
            .param("nodes", 400)
            .param("depth", 10)
            .param("inputs", n_inputs as u64)
            .param("outputs", 8);
        let name = synth.name();
        let run = engine
            .run(&FlowSpec::new("verify-exhaustive").synthetic_circuit(synth))
            .expect("exhaustive spec verifies")
            .cells
            .remove(0)
            .outcome
            .expect("cell verifies");
        let source = benchsuite::build_mig(&name).expect("registry rebuilds");
        let policy = EquivalencePolicy::exhaustive(n_inputs as u32);

        let started = Instant::now();
        let verdict =
            differential::check(&run.result.pipelined, &source, &policy).expect("interfaces match");
        let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        let holds = matches!(
            verdict,
            Verdict::Equivalent {
                exhaustive: true,
                ..
            }
        );
        assert!(holds, "{name}: exhaustive differential proof failed");
        println!("{:<8} {:>12} {:>12.2}", n_inputs, 1u64 << n_inputs, wall_ms);
        exhaustive.push(ExhaustivePoint {
            inputs: n_inputs,
            patterns: 1u64 << n_inputs,
            wall_ms,
            holds,
        });
    }

    let record = VerifyRecord {
        pipeline: pipeline
            .build()
            .expect("default pipeline is well-ordered")
            .pass_names(),
        points,
        exhaustive,
    };
    fs::write(
        out_dir.join("BENCH_pr5.json"),
        serde_json::to_string_pretty(&record).expect("serialize"),
    )
    .expect("write BENCH_pr5.json");
    println!(
        "\nverification record: results/BENCH_pr5.json ({} throughput points, {} exhaustive proofs)",
        record.points.len(),
        record.exhaustive.len()
    );
}
