//! Verification-throughput benchmark: scalar vs bit-parallel vs
//! flat-arena wide-block differential checking over the synthetic `dag`
//! family, 10² to 10⁶ nodes, plus the exhaustive-input ceiling curve
//! and the block-width × thread-count sharded-check grid — written to
//! `results/BENCH_pr5.json` (shape: [`VerifyRecord`]) and
//! `results/BENCH_pr6.json` (shape: [`WideRecord`]).
//!
//! ```text
//! cargo run --release -p wavepipe-bench --bin verify_throughput [-- --max-nodes N]
//! ```
//!
//! Each point runs the paper's default flow (FO3 + BUF + verify) on a
//! `synth:dag` circuit and measures equivalence-checking throughput on
//! the *pipelined* netlist three ways:
//!
//! * the scalar baseline (`Netlist::eval`, one pattern per traversal);
//! * the PR5 word kernel (`Netlist::eval_words_prepared`, 64 patterns
//!   per traversal over the component-order layout) — the BENCH_pr5
//!   curve;
//! * the flat arena at the default block width
//!   (`NetlistFunction::eval_wide`, `64 * block_words` patterns per
//!   walk over the topo-contiguous copy-elided layout).
//!
//! The run **asserts** the floors: word ≥ 4× scalar everywhere (≥ 20×
//! from 10⁴ nodes), and the arena's wide path ≥ 4× the PR5 word kernel
//! from 10⁵ nodes up — a regression in the evaluation hot path fails
//! the bench instead of silently flattening a curve.
//!
//! The grid sweep re-checks one circuit differentially under every
//! (block width, thread count) combination through the sharded engine —
//! same verdict by construction, throughput recorded per cell. The
//! exhaustive sweep times full `2^n` differential proofs at growing
//! input counts. `--max-nodes` truncates everything (CI runs the
//! smallest sizes to keep both record formats alive).

use std::fs;
use std::path::Path;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavepipe::differential::{self, Verdict};
use wavepipe::{
    EquivalencePolicy, EvalArena, FlowConfig, FlowSpec, NetlistFunction, PipelineSpec, SweepConfig,
    SynthSpec, DEFAULT_BLOCK_WORDS,
};
use wavepipe_bench::harness::engine;
use wavepipe_bench::record::{
    ExhaustivePoint, GridPoint, VerifyPoint, VerifyRecord, WidePoint, WideRecord,
};

/// The throughput sweep axis: 10²..10⁶ target nodes. Points past 10⁵
/// feed only the wide (BENCH_pr6) curve; the BENCH_pr5 scalar-vs-word
/// curve keeps its original 10²..10⁵ span.
const SWEEP: [(usize, u64); 6] = [
    (100, 8),
    (1_000, 12),
    (10_000, 16),
    (30_000, 20),
    (100_000, 24),
    (1_000_000, 28),
];

/// Largest node count of the BENCH_pr5 scalar-vs-word curve.
const PR5_MAX_NODES: usize = 100_000;

/// Input counts of the exhaustive-ceiling curve (each is one full
/// `2^n`-pattern proof on a ~400-node circuit).
const EXHAUSTIVE_INPUTS: [usize; 5] = [8, 10, 12, 14, 16];

/// The sharded-check grid axes.
const GRID_BLOCK_WORDS: [usize; 4] = [1, 2, 4, 8];
const GRID_THREADS: [usize; 3] = [1, 2, 4];

/// Runs `work` (which reports how many patterns it evaluated) in three
/// rounds of ≥ 60 ms / ≥ 3 calls each and returns the best round's
/// patterns per second — the floor asserts gate the build, so one
/// scheduler hiccup in a single short window must not fail the bench.
fn measure(mut work: impl FnMut() -> u64) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..3 {
        let started = Instant::now();
        let mut patterns = 0u64;
        let mut calls = 0u32;
        while calls < 3 || started.elapsed() < Duration::from_millis(60) {
            patterns += work();
            calls += 1;
        }
        best = best.max(patterns as f64 / started.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut max_nodes = usize::MAX;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-nodes" => {
                max_nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-nodes takes an integer");
            }
            other => panic!("unknown argument `{other}` (try --max-nodes N)"),
        }
    }

    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results/");
    let engine = engine();
    let pipeline = PipelineSpec::for_config(FlowConfig::default());
    let pass_names = pipeline
        .build()
        .expect("default pipeline is well-ordered")
        .pass_names();

    let mut points = Vec::new();
    let mut wide_points = Vec::new();
    let mut grid_circuit = None;
    println!(
        "{:<48} {:>9} {:>13} {:>13} {:>13} {:>8} {:>8}",
        "circuit", "size'", "scalar pat/s", "word pat/s", "wide pat/s", "w/s", "wide/w"
    );
    for (i, (nodes, depth)) in SWEEP.iter().enumerate() {
        if *nodes > max_nodes {
            continue;
        }
        let synth = SynthSpec::new("dag", 0x7E51_F000 + i as u64)
            .param("nodes", *nodes as u64)
            .param("depth", *depth)
            .param("inputs", (32 + nodes / 50).min(4_096) as u64)
            .param("outputs", (16 + nodes / 100).min(4_096) as u64);
        let name = synth.name();
        let run = engine
            .run(&FlowSpec::new("verify-throughput").synthetic_circuit(synth))
            .expect("sweep spec verifies")
            .cells
            .remove(0)
            .outcome
            .expect("cell verifies");
        let netlist = &run.result.pipelined;
        let inputs = netlist.inputs().len();
        let pipelined_size = run.result.pipelined_counts().priced_total();

        // One shared random pattern pool; wide blocks are views of it.
        let width = DEFAULT_BLOCK_WORDS;
        let mut rng = StdRng::seed_from_u64(0xBEA7 + i as u64);
        let scalar_patterns: Vec<Vec<bool>> = (0..64)
            .map(|_| (0..inputs).map(|_| rng.gen()).collect())
            .collect();
        let word_blocks: Vec<Vec<u64>> = (0..16)
            .map(|_| (0..inputs * width).map(|_| rng.gen()).collect())
            .collect();

        // PR5 word kernel: 64 patterns per traversal of the component
        // order — kept verbatim as the baseline the arena must beat.
        let order = netlist.try_topo_order().expect("flow output is acyclic");
        let mut legacy_values = vec![0u64; netlist.len()];
        let mut next_block = 0usize;
        let legacy_pps = measure(|| {
            let block = &word_blocks[next_block % word_blocks.len()];
            next_block += 1;
            std::hint::black_box(netlist.eval_words_prepared(
                &block[..inputs],
                &order,
                &mut legacy_values,
            ));
            64
        });
        drop(legacy_values);

        // Flat arena, default block width.
        let arena = EvalArena::try_new(netlist).expect("flow output is acyclic");
        let mut function = NetlistFunction::new(netlist).expect("flow output is acyclic");
        let mut next_block = 0usize;
        let wide_pps = measure(|| {
            let block = &word_blocks[next_block % word_blocks.len()];
            next_block += 1;
            std::hint::black_box(function.eval_wide(block, width));
            64 * width as u64
        });
        let wide_speedup = wide_pps / legacy_pps;

        // Scalar baseline (BENCH_pr5 curve only — pointless at 10⁶).
        let scalar_pps = if *nodes <= PR5_MAX_NODES {
            let mut next = 0usize;
            measure(|| {
                let pattern = &scalar_patterns[next % scalar_patterns.len()];
                next += 1;
                std::hint::black_box(netlist.eval(pattern));
                1
            })
        } else {
            0.0
        };

        let speedup = if scalar_pps > 0.0 {
            legacy_pps / scalar_pps
        } else {
            0.0
        };
        println!(
            "{:<48} {:>9} {:>13.0} {:>13.0} {:>13.0} {:>7.1}x {:>7.1}x",
            name, pipelined_size, scalar_pps, legacy_pps, wide_pps, speedup, wide_speedup
        );

        if *nodes <= PR5_MAX_NODES {
            // No-regression pins of the PR5 curve: the word path must
            // stay ≥ 4× the scalar baseline everywhere and ≥ 20× from
            // 10⁴ nodes up.
            assert!(
                speedup >= 4.0,
                "{name}: word path only {speedup:.1}x over scalar — hot-path regression"
            );
            if *nodes >= 10_000 {
                assert!(
                    speedup >= 20.0,
                    "{name}: {speedup:.1}x at {nodes} nodes is below the 20x floor"
                );
            }
            points.push(VerifyPoint {
                name: name.clone(),
                target_nodes: *nodes,
                inputs,
                pipelined_size,
                scalar_patterns_per_sec: scalar_pps,
                word_patterns_per_sec: legacy_pps,
                speedup,
            });
        }

        // No-regression pins of the PR6 curve: the arena's wide path
        // must never fall behind the PR5 word kernel, and must clear
        // 4× from 10⁵ nodes up (where cache-line reuse pays off).
        assert!(
            wide_speedup >= 1.0,
            "{name}: wide path {wide_speedup:.2}x slower than the PR5 word kernel"
        );
        if *nodes >= 100_000 {
            assert!(
                wide_speedup >= 4.0,
                "{name}: wide path only {wide_speedup:.1}x over the PR5 word kernel at {nodes} nodes (floor: 4x)"
            );
        }
        wide_points.push(WidePoint {
            name: name.clone(),
            target_nodes: *nodes,
            inputs,
            pipelined_size,
            arena_slots: arena.len(),
            legacy_word_patterns_per_sec: legacy_pps,
            wide_patterns_per_sec: wide_pps,
            wide_speedup,
        });
        grid_circuit = Some(name);
    }
    assert!(
        !wide_points.is_empty(),
        "--max-nodes filtered out every point"
    );

    // Block-width × thread-count grid: the full sharded differential
    // check (netlist vs source MIG, stratified sampling) on the largest
    // circuit that ran. Every cell computes the identical verdict — the
    // knobs move only the throughput.
    let grid_circuit = grid_circuit.expect("at least one sweep point ran");
    let source = benchsuite::build_mig(&grid_circuit).expect("registry rebuilds");
    let run = engine
        .run(&FlowSpec::new("verify-grid").circuit(&grid_circuit))
        .expect("grid spec verifies")
        .cells
        .remove(0)
        .outcome
        .expect("cell verifies");
    let netlist = &run.result.pipelined;
    let rounds = 64u64;
    let policy = EquivalencePolicy::sampled(rounds as usize, 0x9D06);
    let mut grid = Vec::new();
    println!("\n{:<12} {:>8} {:>14}", "block_words", "threads", "pat/s");
    for &block_words in &GRID_BLOCK_WORDS {
        for &threads in &GRID_THREADS {
            let sweep = SweepConfig::single_word()
                .with_block_words(block_words)
                .with_threads(threads);
            let pps = measure(|| {
                let verdict = differential::check_with(netlist, &source, &policy, &sweep)
                    .expect("interfaces match");
                assert!(verdict.holds(), "grid circuit must verify");
                rounds * 64
            });
            println!("{:<12} {:>8} {:>14.0}", block_words, threads, pps);
            grid.push(GridPoint {
                block_words,
                threads,
                patterns_per_sec: pps,
            });
        }
    }

    // Exhaustive-ceiling curve: full 2^n proofs at growing n. In the
    // CI configuration (tiny --max-nodes) only the cheapest proofs run.
    let mut exhaustive = Vec::new();
    println!("\n{:<8} {:>12} {:>12}", "inputs", "patterns", "wall ms");
    for (i, n_inputs) in EXHAUSTIVE_INPUTS.into_iter().enumerate() {
        if max_nodes < 1_000 && n_inputs > 10 {
            continue;
        }
        let synth = SynthSpec::new("dag", 0xE0_0000 + i as u64)
            .param("nodes", 400)
            .param("depth", 10)
            .param("inputs", n_inputs as u64)
            .param("outputs", 8);
        let name = synth.name();
        let run = engine
            .run(&FlowSpec::new("verify-exhaustive").synthetic_circuit(synth))
            .expect("exhaustive spec verifies")
            .cells
            .remove(0)
            .outcome
            .expect("cell verifies");
        let source = benchsuite::build_mig(&name).expect("registry rebuilds");
        let policy = EquivalencePolicy::exhaustive(n_inputs as u32);

        let started = Instant::now();
        let verdict =
            differential::check(&run.result.pipelined, &source, &policy).expect("interfaces match");
        let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        let holds = matches!(
            verdict,
            Verdict::Equivalent {
                exhaustive: true,
                ..
            }
        );
        assert!(holds, "{name}: exhaustive differential proof failed");
        println!("{:<8} {:>12} {:>12.2}", n_inputs, 1u64 << n_inputs, wall_ms);
        exhaustive.push(ExhaustivePoint {
            inputs: n_inputs,
            patterns: 1u64 << n_inputs,
            wall_ms,
            holds,
        });
    }

    let record = VerifyRecord {
        pipeline: pass_names.clone(),
        points,
        exhaustive,
    };
    fs::write(
        out_dir.join("BENCH_pr5.json"),
        serde_json::to_string_pretty(&record).expect("serialize"),
    )
    .expect("write BENCH_pr5.json");

    let wide_record = WideRecord {
        pipeline: pass_names,
        block_words: DEFAULT_BLOCK_WORDS,
        points: wide_points,
        grid_circuit,
        grid,
    };
    fs::write(
        out_dir.join("BENCH_pr6.json"),
        serde_json::to_string_pretty(&wide_record).expect("serialize"),
    )
    .expect("write BENCH_pr6.json");
    println!(
        "\nverification records: results/BENCH_pr5.json ({} points, {} proofs), results/BENCH_pr6.json ({} points, {} grid cells)",
        record.points.len(),
        record.exhaustive.len(),
        wide_record.points.len(),
        wide_record.grid.len()
    );
}
