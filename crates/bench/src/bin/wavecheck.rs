//! `wavecheck` — static wave-pipelining legality analyzer and lint
//! driver over the benchmark registry.
//!
//! ```text
//! cargo run --release -p wavepipe-bench --bin wavecheck -- \
//!     [NAME ...] [--quick] [--suite] [--presets] [--spec FILE] \
//!     [--fanout-limit K] [--optimize] [--json] [--out FILE]
//! ```
//!
//! Every positional `NAME` is resolved through the `benchsuite`
//! registry (paper benchmarks and the `synth:` grammar alike). For each
//! circuit the tool:
//!
//! 1. lints the source MIG (`MIG0xx` hygiene rules),
//! 2. runs the paper's default flow (map → FO-k → BUF → verify) with
//!    per-pass lint gating enabled, and
//! 3. statically re-checks the pipelined netlist against every `WP0xx`
//!    legality rule — no simulation involved.
//!
//! `--optimize` prefixes the flow with the MIG rewrite passes
//! (`optimize_depth` then `optimize_size`) and lints the *rewritten*
//! MIG — the flow's actual mapping input — instead of the raw source
//! graph, so the report demonstrates the rewrites leave the graph
//! hygienic (in particular, `optimize_size` clears `MIG001` reducible
//! gates wherever the collapse applies).
//!
//! `--spec FILE` additionally lints a [`wavepipe::FlowSpec`] JSON file
//! with the `SPEC0xx` rules (the same check the engine runs before a
//! sweep). `--quick` selects the 8-circuit quick subset, `--suite` the
//! full 37-circuit suite, `--presets` the ready-made `synth:` presets;
//! with no selection at all, `--quick` is implied.
//!
//! Output is a human listing by default or a
//! [`wavepipe::LintReport`] JSON document with `--json`; `--out FILE`
//! writes the JSON report to a file as well (CI keeps
//! `results/LINT.json` this way). Exit status: `0` when no
//! error-severity diagnostic was found and every flow ran, `1`
//! otherwise, `2` on usage errors.

use std::fs;
use std::process::ExitCode;

use wavepipe::{BufferStrategy, FlowPipeline, FlowSpec, LintReport, PassError};
use wavepipe_bench::harness::QUICK_SUBSET;

/// The §IV fan-out bound checked when `--fanout-limit` is not given
/// (the paper's default, matching [`wavepipe::FlowConfig::default`]).
const DEFAULT_FANOUT_LIMIT: u32 = 3;

/// Rewrite-round budget of the `--optimize` prefix.
const REWRITE_ROUNDS: usize = 16;

fn usage(code: u8) -> ExitCode {
    eprintln!(
        "usage: wavecheck [NAME ...] [--quick] [--suite] [--presets] \
         [--spec FILE] [--fanout-limit K] [--optimize] [--json] [--out FILE]"
    );
    ExitCode::from(code)
}

fn main() -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut spec_paths: Vec<String> = Vec::new();
    let mut fanout_limit = DEFAULT_FANOUT_LIMIT;
    let mut optimize = false;
    let mut json = false;
    let mut out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => names.extend(QUICK_SUBSET.iter().map(|n| n.to_string())),
            "--suite" => names.extend(benchsuite::SUITE.iter().map(|s| s.name.to_string())),
            "--presets" => names.extend(benchsuite::synth::PRESETS.iter().map(|n| n.to_string())),
            "--spec" => match args.next() {
                Some(path) => spec_paths.push(path),
                None => return usage(2),
            },
            "--fanout-limit" => match args.next().and_then(|v| v.parse().ok()) {
                Some(k) => fanout_limit = k,
                None => return usage(2),
            },
            "--optimize" => optimize = true,
            "--json" => json = true,
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => return usage(2),
            },
            "--help" | "-h" => return usage(0),
            other if other.starts_with('-') => {
                eprintln!("wavecheck: unknown flag `{other}`");
                return usage(2);
            }
            name => names.push(name.to_owned()),
        }
    }
    if names.is_empty() && spec_paths.is_empty() {
        names.extend(QUICK_SUBSET.iter().map(|n| n.to_string()));
    }
    names.dedup();

    let mut builder = FlowPipeline::builder();
    if optimize {
        builder = builder
            .optimize_depth(REWRITE_ROUNDS)
            .optimize_size(REWRITE_ROUNDS);
    }
    let pipeline = builder
        .map(false)
        .restrict_fanout(fanout_limit)
        .insert_buffers(BufferStrategy::Asap)
        .verify(Some(fanout_limit))
        .gate_lints()
        .build()
        .expect("default wavecheck pipeline is well-ordered");

    let mut subjects = Vec::new();
    let mut flow_failures = 0usize;

    for path in &spec_paths {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("wavecheck: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let spec = match FlowSpec::from_json(&text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("wavecheck: {path}: not a flow spec: {e}");
                return ExitCode::from(2);
            }
        };
        subjects.push(wavepipe::lint::SubjectReport {
            subject: path.clone(),
            diagnostics: wavepipe::lint_spec(&spec),
        });
    }

    for name in &names {
        let Some(graph) = benchsuite::build_mig(name) else {
            eprintln!("wavecheck: unknown circuit `{name}`");
            return ExitCode::from(2);
        };
        // With --optimize the flow maps the rewritten graph, so that is
        // the MIG whose hygiene the report should attest.
        let linted = if optimize {
            let (by_depth, _) = mig::optimize_depth(&graph, REWRITE_ROUNDS);
            mig::optimize_size(&by_depth, REWRITE_ROUNDS)
        } else {
            graph.clone()
        };
        let mut diagnostics = wavepipe::lint_mig(&linted);
        match pipeline.run(&graph) {
            Ok(run) => {
                diagnostics.extend(wavepipe::lint_netlist(
                    &run.result.pipelined,
                    Some(fanout_limit),
                ));
            }
            // The per-pass gate already names the offending pass and
            // rules — surface its findings instead of a bare error.
            Err(PassError::Lint(failure)) => {
                eprintln!(
                    "wavecheck: {name}: lint gate tripped after `{}`",
                    failure.pass
                );
                diagnostics.extend(failure.diagnostics);
            }
            Err(e) => {
                eprintln!("wavecheck: {name}: flow failed: {e}");
                flow_failures += 1;
            }
        }
        diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
        subjects.push(wavepipe::lint::SubjectReport {
            subject: name.clone(),
            diagnostics,
        });
    }

    let report = LintReport::new(Some(fanout_limit), subjects);
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Some(path) = &out {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).expect("create report directory");
            }
        }
        fs::write(path, &rendered).expect("write report");
    }

    if json {
        println!("{rendered}");
    } else {
        for subject in &report.subjects {
            if subject.diagnostics.is_empty() {
                println!("{:<48} clean", subject.subject);
                continue;
            }
            let totals = wavepipe::lint::LintTotals::of(&subject.diagnostics);
            println!(
                "{:<48} {} error(s), {} warning(s)",
                subject.subject, totals.errors, totals.warnings
            );
            for d in &subject.diagnostics {
                println!("  {d}");
            }
        }
        println!(
            "\nwavecheck: {} subject(s), {} error(s), {} warning(s), {} info(s){}",
            report.subjects.len(),
            report.totals.errors,
            report.totals.warnings,
            report.totals.infos,
            if flow_failures > 0 {
                format!(", {flow_failures} flow failure(s)")
            } else {
                String::new()
            }
        );
    }

    if report.is_clean() && flow_failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
