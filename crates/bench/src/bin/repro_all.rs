//! Runs every experiment and writes the results (text + JSON) under
//! `results/`. This is the one-shot reproduction entry point:
//!
//! ```text
//! cargo run --release -p wavepipe-bench --bin repro_all
//! ```
//!
//! Every experiment drives the **same long-lived [`wavepipe::Engine`]**
//! (suite-registry resolver, content-hash keyed result cache), so
//! overlapping sweeps share work: Fig 8's BUF-only column is served
//! from Fig 5's cells, the retiming ablation's ASAP arm from the
//! inverter ablation's reference arm. The multi-technology experiments
//! (Fig 9, Table II) come from **one** circuit × technology grid sweep;
//! its priced per-(circuit, tech, pass) traces land in
//! `results/flow_trace.{txt,json}` and the aggregate record — wall time
//! **and engine cache hit/miss/pass counters per sweep** — in
//! `results/BENCH_pr3.json`.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::time::Instant;

use tech::BenchmarkRow;
use wavepipe::Engine;
use wavepipe_bench::harness::{
    build_suite, engine, evaluate_suite_grid, fig5_fit, fig5_points, fig7_rows, fig8_data,
    fig9_data, inverter_ablation, retiming_ablation, table2_from_grid,
};
use wavepipe_bench::record::{BenchRecord, PassSummary, StageRecord};

/// Times one stage and captures the engine-counter delta it caused.
fn staged<T>(
    stages: &mut BTreeMap<String, StageRecord>,
    engine: &Engine,
    name: &str,
    run: impl FnOnce() -> T,
) -> T {
    let before = engine.stats();
    let started = Instant::now();
    let out = run();
    stages.insert(
        name.to_owned(),
        StageRecord {
            wall_ms: started.elapsed().as_secs_f64() * 1000.0,
            engine: engine.stats().since(&before),
        },
    );
    out
}

fn main() {
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results/");
    let engine = engine();
    let mut stages: BTreeMap<String, StageRecord> = BTreeMap::new();

    let suite = staged(&mut stages, &engine, "build_suite", || build_suite(None));
    println!("built {} benchmarks", suite.len());

    // The circuit × technology grid: one cached engine sweep feeds the
    // priced traces, Fig 9 and Table II.
    let grid = staged(&mut stages, &engine, "grid_sweep", || {
        evaluate_suite_grid(&engine, &suite)
    });

    let mut trace_txt = String::new();
    let mut pass_totals: BTreeMap<(String, String), PassSummary> = BTreeMap::new();
    for t in &grid.traces {
        trace_txt.push_str(&format!("--- {} @ {} ---\n", t.circuit, t.technology));
        for pass in &t.trace {
            trace_txt.push_str(&pass.to_string());
            trace_txt.push('\n');
            let entry = pass_totals
                .entry((t.technology.clone(), pass.pass.clone()))
                .or_insert_with(|| PassSummary {
                    technology: t.technology.clone(),
                    pass: pass.pass.clone(),
                    micros: 0,
                    area_delta: 0.0,
                    energy_delta: 0.0,
                    cycle_time_delta: 0.0,
                });
            entry.micros += pass.micros;
            if let Some(priced) = &pass.priced {
                entry.area_delta += priced.area_delta();
                entry.energy_delta += priced.energy_delta();
                entry.cycle_time_delta += priced.latency_delta();
            }
        }
        trace_txt.push('\n');
    }
    // Engine cone/cache telemetry header — the sweep above is exactly
    // the work the incremental engine's tiers deduplicate, so the trace
    // leads with what was reused vs recomputed.
    let s = engine.stats();
    trace_txt.insert_str(
        0,
        &format!(
            "=== engine: {} cache hits / {} misses, {} passes executed, \
             cones {} reused / {} recomputed, disk {} hits / {} misses, \
             {} evictions ===\n\n",
            s.cache_hits,
            s.cache_misses,
            s.passes_executed,
            s.cones_reused,
            s.cones_recomputed,
            s.disk_hits,
            s.disk_misses,
            s.evictions
        ),
    );
    fs::write(out_dir.join("flow_trace.txt"), &trace_txt).expect("write flow trace");
    fs::write(
        out_dir.join("flow_trace.json"),
        serde_json::to_string_pretty(&grid.traces).expect("serialize"),
    )
    .expect("write flow_trace.json");
    println!("flow passes (suite totals, priced):");
    for ((technology, pass), s) in &pass_totals {
        println!(
            "  {technology:<4} {pass:<24} {:>9.1} ms  Δarea {:>12.1} µm², Δenergy {:>12.1} fJ",
            s.micros as f64 / 1000.0,
            s.area_delta,
            s.energy_delta
        );
    }

    // Fig 5.
    let (points, fit) = staged(&mut stages, &engine, "fig5", || {
        let points = fig5_points(&engine, &suite);
        let fit = fig5_fit(&points);
        (points, fit)
    });
    let mut fig5_txt = String::from("benchmark,size,buffers\n");
    for p in &points {
        fig5_txt.push_str(&format!("{},{},{}\n", p.name, p.size, p.buffers));
    }
    fig5_txt.push_str(&format!(
        "# fit: B(s) = {:.3} * s^{:.3} (R2 {:.4}); paper: 7.95 * s^0.9\n",
        fit.coefficient, fit.exponent, fit.r_squared
    ));
    fs::write(out_dir.join("fig5.csv"), &fig5_txt).expect("write fig5");
    fs::write(
        out_dir.join("fig5.json"),
        serde_json::to_string_pretty(&(&points, &fit)).expect("serialize"),
    )
    .expect("write fig5.json");
    println!(
        "fig5: fit B(s) = {:.2} * s^{:.3}",
        fit.coefficient, fit.exponent
    );

    // Fig 7.
    let rows = staged(&mut stages, &engine, "fig7", || fig7_rows(&engine, &suite));
    let mut fig7_txt = String::from("benchmark,orig_cp,k2,k3,k4,k5\n");
    for r in &rows {
        fig7_txt.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3},{:.3}\n",
            r.name, r.original_depth, r.increase[0], r.increase[1], r.increase[2], r.increase[3]
        ));
    }
    let avgs: Vec<f64> = (0..4)
        .map(|i| tech::mean(&rows.iter().map(|r| r.increase[i]).collect::<Vec<_>>()))
        .collect();
    fig7_txt.push_str(&format!(
        "# averages: {:.3},{:.3},{:.3},{:.3}; paper: 1.40,0.57,0.36,0.26\n",
        avgs[0], avgs[1], avgs[2], avgs[3]
    ));
    fs::write(out_dir.join("fig7.csv"), &fig7_txt).expect("write fig7");
    println!(
        "fig7: average CP increase {:.0}%/{:.0}%/{:.0}%/{:.0}% for k=2..5",
        avgs[0] * 100.0,
        avgs[1] * 100.0,
        avgs[2] * 100.0,
        avgs[3] * 100.0
    );

    // Fig 8 (five declarative configs; BUF-only re-served from fig5's
    // cache cells).
    let f8 = staged(&mut stages, &engine, "fig8", || fig8_data(&engine, &suite));
    fs::write(
        out_dir.join("fig8.json"),
        serde_json::to_string_pretty(&f8).expect("serialize"),
    )
    .expect("write fig8");
    println!(
        "fig8: BUF {:.2}x; FO2..5 {:.2}/{:.2}/{:.2}/{:.2}x; FOx+BUF {:.2}/{:.2}/{:.2}/{:.2}x",
        f8.buf_only,
        f8.fo_only[0],
        f8.fo_only[1],
        f8.fo_only[2],
        f8.fo_only[3],
        f8.combined[0],
        f8.combined[1],
        f8.combined[2],
        f8.combined[3]
    );

    // Fig 9 + Table II — both read off the grid sweep above.
    let f9 = fig9_data(&grid.evaluated);
    fs::write(
        out_dir.join("fig9.json"),
        serde_json::to_string_pretty(&f9).expect("serialize"),
    )
    .expect("write fig9");
    for f in &f9 {
        println!(
            "fig9 {}: T/A {:.2}x (paper {}), T/P {:.2}x (paper {})",
            f.technology,
            f.ta_mean,
            match f.technology.as_str() {
                "SWD" => 5,
                "QCA" => 8,
                _ => 3,
            },
            f.tp_mean,
            match f.technology.as_str() {
                "SWD" => 23,
                "QCA" => 13,
                _ => 5,
            }
        );
    }

    let mut table2_txt = String::new();
    for (technology, rows) in table2_from_grid(&grid) {
        table2_txt.push_str(&format!("--- {technology} ---\n"));
        table2_txt.push_str(&BenchmarkRow::table_header());
        table2_txt.push('\n');
        for row in rows {
            table2_txt.push_str(&row.to_table_line());
            table2_txt.push('\n');
        }
        table2_txt.push('\n');
    }
    fs::write(out_dir.join("table2.txt"), &table2_txt).expect("write table2");
    println!("table2: written to results/table2.txt");

    // Ablations (the retiming ASAP arm hits the inverter ablation's
    // reference cells).
    let ablation = staged(&mut stages, &engine, "ablation_retiming", || {
        retiming_ablation(&engine, &suite)
    });
    fs::write(
        out_dir.join("ablation_retiming.json"),
        serde_json::to_string_pretty(&ablation).expect("serialize"),
    )
    .expect("write ablation");
    let avg_saving = tech::mean(&ablation.iter().map(|r| r.saving()).collect::<Vec<_>>()) * 100.0;
    println!("ablation: retiming saves {avg_saving:.1}% buffers on average");

    let inv = staged(&mut stages, &engine, "ablation_inverters", || {
        inverter_ablation(&engine, &suite)
    });
    fs::write(
        out_dir.join("ablation_inverters.json"),
        serde_json::to_string_pretty(&inv).expect("serialize"),
    )
    .expect("write inverter ablation");
    let avg_inv = tech::mean(&inv.iter().map(|r| r.inv_saving()).collect::<Vec<_>>()) * 100.0;
    println!("ablation: polarity search removes {avg_inv:.1}% of inverters on average");

    // Machine-readable perf-trajectory record.
    let totals = engine.stats();
    let record = BenchRecord {
        stages,
        engine_totals: totals,
        cached_cells: engine.cached_cells(),
        passes: pass_totals.into_values().collect(),
    };
    fs::write(
        out_dir.join("BENCH_pr3.json"),
        serde_json::to_string_pretty(&record).expect("serialize"),
    )
    .expect("write BENCH_pr3.json");
    println!(
        "perf record: results/BENCH_pr3.json (engine: {} hits / {} misses / {} passes, {} cells cached)",
        totals.cache_hits, totals.cache_misses, totals.passes_executed, engine.cached_cells()
    );

    println!("\nall results written to {}", out_dir.display());
}
