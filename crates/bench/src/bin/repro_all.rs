//! Runs every experiment and writes the results (text + JSON) under
//! `results/`. This is the one-shot reproduction entry point:
//!
//! ```text
//! cargo run --release -p wavepipe-bench --bin repro_all
//! ```
//!
//! The multi-technology experiments (Fig 9, Table II) come from **one**
//! circuit × technology grid sweep (`FlowPipeline::run_grid`); its
//! priced per-(circuit, tech, pass) traces land in
//! `results/flow_trace.{txt,json}` and the aggregate wall-time /
//! priced-delta record in `results/BENCH_pr2.json`.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::time::Instant;

use tech::BenchmarkRow;
use wavepipe_bench::harness::{
    build_suite, evaluate_suite_grid, fig5_fit, fig5_points, fig7_rows, fig8_data, fig9_data,
    inverter_ablation, retiming_ablation, table2_from_grid,
};

/// Aggregate of one pass across every circuit of the suite, per
/// technology — the machine-readable perf-trajectory record.
#[derive(serde::Serialize)]
struct PassSummary {
    technology: String,
    pass: String,
    micros: u64,
    area_delta: f64,
    energy_delta: f64,
    cycle_time_delta: f64,
}

#[derive(serde::Serialize)]
struct BenchRecord {
    /// Wall time of each experiment stage, milliseconds.
    wall_ms: BTreeMap<String, f64>,
    /// Per-(technology, pass) priced deltas summed over the suite.
    passes: Vec<PassSummary>,
}

fn main() {
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results/");
    let mut wall_ms: BTreeMap<String, f64> = BTreeMap::new();
    let mut timed = |name: &str, started: Instant| {
        wall_ms.insert(name.to_owned(), started.elapsed().as_secs_f64() * 1000.0);
    };

    let started = Instant::now();
    let suite = build_suite(None);
    timed("build_suite", started);
    println!("built {} benchmarks", suite.len());

    // The circuit × technology grid: one parallel sweep feeds the
    // priced traces, Fig 9 and Table II.
    let started = Instant::now();
    let grid = evaluate_suite_grid(&suite);
    timed("grid_sweep", started);

    let mut trace_txt = String::new();
    let mut pass_totals: BTreeMap<(String, String), PassSummary> = BTreeMap::new();
    for t in &grid.traces {
        trace_txt.push_str(&format!("--- {} @ {} ---\n", t.circuit, t.technology));
        for pass in &t.trace {
            trace_txt.push_str(&pass.to_string());
            trace_txt.push('\n');
            let entry = pass_totals
                .entry((t.technology.clone(), pass.pass.clone()))
                .or_insert_with(|| PassSummary {
                    technology: t.technology.clone(),
                    pass: pass.pass.clone(),
                    micros: 0,
                    area_delta: 0.0,
                    energy_delta: 0.0,
                    cycle_time_delta: 0.0,
                });
            entry.micros += pass.micros;
            if let Some(priced) = &pass.priced {
                entry.area_delta += priced.area_delta();
                entry.energy_delta += priced.energy_delta();
                entry.cycle_time_delta += priced.latency_delta();
            }
        }
        trace_txt.push('\n');
    }
    fs::write(out_dir.join("flow_trace.txt"), &trace_txt).expect("write flow trace");
    fs::write(
        out_dir.join("flow_trace.json"),
        serde_json::to_string_pretty(&grid.traces).expect("serialize"),
    )
    .expect("write flow_trace.json");
    println!("flow passes (suite totals, priced):");
    for ((technology, pass), s) in &pass_totals {
        println!(
            "  {technology:<4} {pass:<24} {:>9.1} ms  Δarea {:>12.1} µm², Δenergy {:>12.1} fJ",
            s.micros as f64 / 1000.0,
            s.area_delta,
            s.energy_delta
        );
    }

    // Fig 5.
    let started = Instant::now();
    let points = fig5_points(&suite);
    let fit = fig5_fit(&points);
    timed("fig5", started);
    let mut fig5_txt = String::from("benchmark,size,buffers\n");
    for p in &points {
        fig5_txt.push_str(&format!("{},{},{}\n", p.name, p.size, p.buffers));
    }
    fig5_txt.push_str(&format!(
        "# fit: B(s) = {:.3} * s^{:.3} (R2 {:.4}); paper: 7.95 * s^0.9\n",
        fit.coefficient, fit.exponent, fit.r_squared
    ));
    fs::write(out_dir.join("fig5.csv"), &fig5_txt).expect("write fig5");
    fs::write(
        out_dir.join("fig5.json"),
        serde_json::to_string_pretty(&(&points, &fit)).expect("serialize"),
    )
    .expect("write fig5.json");
    println!(
        "fig5: fit B(s) = {:.2} * s^{:.3}",
        fit.coefficient, fit.exponent
    );

    // Fig 7.
    let started = Instant::now();
    let rows = fig7_rows(&suite);
    timed("fig7", started);
    let mut fig7_txt = String::from("benchmark,orig_cp,k2,k3,k4,k5\n");
    for r in &rows {
        fig7_txt.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3},{:.3}\n",
            r.name, r.original_depth, r.increase[0], r.increase[1], r.increase[2], r.increase[3]
        ));
    }
    let avgs: Vec<f64> = (0..4)
        .map(|i| tech::mean(&rows.iter().map(|r| r.increase[i]).collect::<Vec<_>>()))
        .collect();
    fig7_txt.push_str(&format!(
        "# averages: {:.3},{:.3},{:.3},{:.3}; paper: 1.40,0.57,0.36,0.26\n",
        avgs[0], avgs[1], avgs[2], avgs[3]
    ));
    fs::write(out_dir.join("fig7.csv"), &fig7_txt).expect("write fig7");
    println!(
        "fig7: average CP increase {:.0}%/{:.0}%/{:.0}%/{:.0}% for k=2..5",
        avgs[0] * 100.0,
        avgs[1] * 100.0,
        avgs[2] * 100.0,
        avgs[3] * 100.0
    );

    // Fig 8 (configuration × circuit grid).
    let started = Instant::now();
    let f8 = fig8_data(&suite);
    timed("fig8", started);
    fs::write(
        out_dir.join("fig8.json"),
        serde_json::to_string_pretty(&f8).expect("serialize"),
    )
    .expect("write fig8");
    println!(
        "fig8: BUF {:.2}x; FO2..5 {:.2}/{:.2}/{:.2}/{:.2}x; FOx+BUF {:.2}/{:.2}/{:.2}/{:.2}x",
        f8.buf_only,
        f8.fo_only[0],
        f8.fo_only[1],
        f8.fo_only[2],
        f8.fo_only[3],
        f8.combined[0],
        f8.combined[1],
        f8.combined[2],
        f8.combined[3]
    );

    // Fig 9 + Table II — both read off the grid sweep above.
    let f9 = fig9_data(&grid.evaluated);
    fs::write(
        out_dir.join("fig9.json"),
        serde_json::to_string_pretty(&f9).expect("serialize"),
    )
    .expect("write fig9");
    for f in &f9 {
        println!(
            "fig9 {}: T/A {:.2}x (paper {}), T/P {:.2}x (paper {})",
            f.technology,
            f.ta_mean,
            match f.technology.as_str() {
                "SWD" => 5,
                "QCA" => 8,
                _ => 3,
            },
            f.tp_mean,
            match f.technology.as_str() {
                "SWD" => 23,
                "QCA" => 13,
                _ => 5,
            }
        );
    }

    let mut table2_txt = String::new();
    for (technology, rows) in table2_from_grid(&grid) {
        table2_txt.push_str(&format!("--- {technology} ---\n"));
        table2_txt.push_str(&BenchmarkRow::table_header());
        table2_txt.push('\n');
        for row in rows {
            table2_txt.push_str(&row.to_table_line());
            table2_txt.push('\n');
        }
        table2_txt.push('\n');
    }
    fs::write(out_dir.join("table2.txt"), &table2_txt).expect("write table2");
    println!("table2: written to results/table2.txt");

    // Ablation.
    let started = Instant::now();
    let ablation = retiming_ablation(&suite);
    timed("ablation_retiming", started);
    fs::write(
        out_dir.join("ablation_retiming.json"),
        serde_json::to_string_pretty(&ablation).expect("serialize"),
    )
    .expect("write ablation");
    let avg_saving = tech::mean(&ablation.iter().map(|r| r.saving()).collect::<Vec<_>>()) * 100.0;
    println!("ablation: retiming saves {avg_saving:.1}% buffers on average");

    let started = Instant::now();
    let inv = inverter_ablation(&suite);
    timed("ablation_inverters", started);
    fs::write(
        out_dir.join("ablation_inverters.json"),
        serde_json::to_string_pretty(&inv).expect("serialize"),
    )
    .expect("write inverter ablation");
    let avg_inv = tech::mean(&inv.iter().map(|r| r.inv_saving()).collect::<Vec<_>>()) * 100.0;
    println!("ablation: polarity search removes {avg_inv:.1}% of inverters on average");

    // Machine-readable perf-trajectory record.
    let record = BenchRecord {
        wall_ms,
        passes: pass_totals.into_values().collect(),
    };
    fs::write(
        out_dir.join("BENCH_pr2.json"),
        serde_json::to_string_pretty(&record).expect("serialize"),
    )
    .expect("write BENCH_pr2.json");
    println!("perf record: written to results/BENCH_pr2.json");

    println!("\nall results written to {}", out_dir.display());
}
