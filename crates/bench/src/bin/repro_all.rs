//! Runs every experiment and writes the results (text + JSON) under
//! `results/`. This is the one-shot reproduction entry point:
//!
//! ```text
//! cargo run --release -p wavepipe-bench --bin repro_all
//! ```

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use tech::{BenchmarkRow, Technology};
use wavepipe_bench::harness::{
    build_suite, evaluate_suite_traced, fig5_fit, fig5_points, fig7_rows, fig8_data, fig9_data,
    inverter_ablation, retiming_ablation, table2_rows,
};

fn main() {
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results/");
    let suite = build_suite(None);
    println!("built {} benchmarks", suite.len());

    // Per-pass instrumentation: run the default pipeline over the whole
    // suite through the parallel batch driver and record every pass's
    // wall time, component delta and depth change.
    // One default-flow suite run feeds both the trace files here and
    // the Fig 9 / Table II evaluation further down.
    let (evaluated, traces) = evaluate_suite_traced(&suite);
    let mut trace_txt = String::new();
    let mut total_micros: BTreeMap<String, u64> = BTreeMap::new();
    let mut total_added: BTreeMap<String, usize> = BTreeMap::new();
    for (name, trace) in &traces {
        trace_txt.push_str(&format!("--- {name} ---\n"));
        for pass in trace {
            trace_txt.push_str(&pass.to_string());
            trace_txt.push('\n');
            *total_micros.entry(pass.pass.clone()).or_default() += pass.micros;
            *total_added.entry(pass.pass.clone()).or_default() += pass.added.priced_total();
        }
        trace_txt.push('\n');
    }
    fs::write(out_dir.join("flow_trace.txt"), &trace_txt).expect("write flow trace");
    fs::write(
        out_dir.join("flow_trace.json"),
        serde_json::to_string_pretty(&traces).expect("serialize"),
    )
    .expect("write flow_trace.json");
    println!("flow passes (suite totals):");
    for (pass, micros) in &total_micros {
        println!(
            "  {pass:<24} {:>9.1} ms  +{} components",
            *micros as f64 / 1000.0,
            total_added[pass]
        );
    }

    // Fig 5.
    let points = fig5_points(&suite);
    let fit = fig5_fit(&points);
    let mut fig5_txt = String::from("benchmark,size,buffers\n");
    for p in &points {
        fig5_txt.push_str(&format!("{},{},{}\n", p.name, p.size, p.buffers));
    }
    fig5_txt.push_str(&format!(
        "# fit: B(s) = {:.3} * s^{:.3} (R2 {:.4}); paper: 7.95 * s^0.9\n",
        fit.coefficient, fit.exponent, fit.r_squared
    ));
    fs::write(out_dir.join("fig5.csv"), &fig5_txt).expect("write fig5");
    fs::write(
        out_dir.join("fig5.json"),
        serde_json::to_string_pretty(&(&points, &fit)).expect("serialize"),
    )
    .expect("write fig5.json");
    println!(
        "fig5: fit B(s) = {:.2} * s^{:.3}",
        fit.coefficient, fit.exponent
    );

    // Fig 7.
    let rows = fig7_rows(&suite);
    let mut fig7_txt = String::from("benchmark,orig_cp,k2,k3,k4,k5\n");
    for r in &rows {
        fig7_txt.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3},{:.3}\n",
            r.name, r.original_depth, r.increase[0], r.increase[1], r.increase[2], r.increase[3]
        ));
    }
    let avgs: Vec<f64> = (0..4)
        .map(|i| tech::mean(&rows.iter().map(|r| r.increase[i]).collect::<Vec<_>>()))
        .collect();
    fig7_txt.push_str(&format!(
        "# averages: {:.3},{:.3},{:.3},{:.3}; paper: 1.40,0.57,0.36,0.26\n",
        avgs[0], avgs[1], avgs[2], avgs[3]
    ));
    fs::write(out_dir.join("fig7.csv"), &fig7_txt).expect("write fig7");
    println!(
        "fig7: average CP increase {:.0}%/{:.0}%/{:.0}%/{:.0}% for k=2..5",
        avgs[0] * 100.0,
        avgs[1] * 100.0,
        avgs[2] * 100.0,
        avgs[3] * 100.0
    );

    // Fig 8.
    let f8 = fig8_data(&suite);
    fs::write(
        out_dir.join("fig8.json"),
        serde_json::to_string_pretty(&f8).expect("serialize"),
    )
    .expect("write fig8");
    println!(
        "fig8: BUF {:.2}x; FO2..5 {:.2}/{:.2}/{:.2}/{:.2}x; FOx+BUF {:.2}/{:.2}/{:.2}/{:.2}x",
        f8.buf_only,
        f8.fo_only[0],
        f8.fo_only[1],
        f8.fo_only[2],
        f8.fo_only[3],
        f8.combined[0],
        f8.combined[1],
        f8.combined[2],
        f8.combined[3]
    );

    // Fig 9 + Table II.
    let f9 = fig9_data(&evaluated);
    fs::write(
        out_dir.join("fig9.json"),
        serde_json::to_string_pretty(&f9).expect("serialize"),
    )
    .expect("write fig9");
    for f in &f9 {
        println!(
            "fig9 {}: T/A {:.2}x (paper {}), T/P {:.2}x (paper {})",
            f.technology,
            f.ta_mean,
            match f.technology.as_str() {
                "SWD" => 5,
                "QCA" => 8,
                _ => 3,
            },
            f.tp_mean,
            match f.technology.as_str() {
                "SWD" => 23,
                "QCA" => 13,
                _ => 5,
            }
        );
    }

    let mut table2_txt = String::new();
    for technology in Technology::all() {
        table2_txt.push_str(&format!("--- {} ---\n", technology.name));
        table2_txt.push_str(&BenchmarkRow::table_header());
        table2_txt.push('\n');
        for row in table2_rows(&technology) {
            table2_txt.push_str(&row.to_table_line());
            table2_txt.push('\n');
        }
        table2_txt.push('\n');
    }
    fs::write(out_dir.join("table2.txt"), &table2_txt).expect("write table2");
    println!("table2: written to results/table2.txt");

    // Ablation.
    let ablation = retiming_ablation(&suite);
    fs::write(
        out_dir.join("ablation_retiming.json"),
        serde_json::to_string_pretty(&ablation).expect("serialize"),
    )
    .expect("write ablation");
    let avg_saving = tech::mean(&ablation.iter().map(|r| r.saving()).collect::<Vec<_>>()) * 100.0;
    println!("ablation: retiming saves {avg_saving:.1}% buffers on average");

    let inv = inverter_ablation(&suite);
    fs::write(
        out_dir.join("ablation_inverters.json"),
        serde_json::to_string_pretty(&inv).expect("serialize"),
    )
    .expect("write inverter ablation");
    let avg_inv = tech::mean(&inv.iter().map(|r| r.inv_saving()).collect::<Vec<_>>()) * 100.0;
    println!("ablation: polarity search removes {avg_inv:.1}% of inverters on average");

    println!("\nall results written to {}", out_dir.display());
}
