//! Ablation beyond the paper (its reference \[20\]): reference mapping vs
//! inversion-minimized mapping, priced on QCA where an inverter costs
//! 10× a cell's area and energy.
//!
//! Pass `--quick` to run on the 8-benchmark subset instead of all 37.

use wavepipe_bench::harness::{build_suite, engine, inverter_ablation, QUICK_SUBSET};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let engine = engine();
    let suite = build_suite(quick.then_some(&QUICK_SUBSET[..]));

    println!("Inversion-minimization ablation (QCA pricing, FO3+BUF)\n");
    println!(
        "{:<12} {:>10} {:>10} {:>9} {:>14} {:>14}",
        "benchmark", "INV plain", "INV min", "saving", "QCA area (µm²)", "min area (µm²)"
    );
    let rows = inverter_ablation(&engine, &suite);
    let mut savings = Vec::new();
    for r in &rows {
        println!(
            "{:<12} {:>10} {:>10} {:>8.1}% {:>14.3} {:>14.3}",
            r.name,
            r.plain_inv,
            r.min_inv,
            r.inv_saving() * 100.0,
            r.plain_qca_area,
            r.min_qca_area
        );
        savings.push(r.inv_saving());
    }
    println!(
        "\naverage inverter saving: {:.1}% (polarity local search at mapping\n\
         time; the paper's reference [20] attacks the same cost inside the MIG)",
        tech::mean(&savings) * 100.0
    );
}
