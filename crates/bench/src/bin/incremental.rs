//! Incremental (ECO) engine benchmark over the synthetic `dag` family:
//! opens an incremental session per sweep point, measures the cold
//! run (every output cone executes), the warm re-run (one
//! `spliced`-scope lookup), a fresh-process re-serve from the disk
//! tier (smallest point only — write-through JSON of big spliced runs
//! would dominate edit timing above that), and a seeded ECO edit
//! sequence where each single-gate rewire must re-execute only its own
//! dirty cone. Writes `results/BENCH_pr7.json` (shape:
//! [`IncrementalRecord`]).
//!
//! ```text
//! cargo run --release -p wavepipe-bench --bin eco [-- --max-nodes N]
//! ```
//!
//! No-regression floors baked in: the warm re-run executes zero
//! passes, every rewire dirties exactly one cone, the incremental
//! re-run after a single-gate edit is bit-identical
//! (`persist::run_to_json`) to a cold engine recomputing the edited
//! graph, and at 10⁵ nodes and up the edit re-run is at least 10×
//! faster than the cold run.

use std::fs;
use std::path::Path;
use std::time::Instant;

use mig::{Mig, NodeId, Signal};
use wavepipe::{persist, Engine, EquivalencePolicy, FlowConfig, PipelineSpec, SynthSpec};
use wavepipe_bench::record::{EditPoint, IncrementalPoint, IncrementalRecord};

/// The sweep axis: the 10⁴..10⁶ span of the scaling sweep. Depth is
/// held shallow on purpose — deep DAGs make every output cone reach
/// nearly the whole graph, so the "dirty region" of a one-gate edit
/// converges on the full design and the sweep would measure cone
/// overlap, not incrementality. Output count stays flat (64 cones) so
/// the dirty-cone fraction of a one-gate edit is comparable across
/// sizes.
const SWEEP: [(usize, u64); 3] = [(10_000, 16), (100_000, 16), (1_000_000, 18)];

/// Seeded ECO edits per point.
const EDITS: usize = 4;

/// splitmix64 — deterministic node picking without threading a rand
/// generator through the sweep.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic signal over an existing node (gates and inputs,
/// never the constant), complemented on odd draws.
fn pick_signal(graph: &Mig, state: &mut u64) -> Signal {
    let index = 1 + (splitmix(state) as usize % (graph.node_count() - 1));
    Signal::new(NodeId::from_index(index), splitmix(state) & 1 == 1)
}

fn main() {
    let mut max_nodes = usize::MAX;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-nodes" => {
                max_nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-nodes takes an integer");
            }
            other => panic!("unknown argument `{other}` (try --max-nodes N)"),
        }
    }

    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results/");
    let engine = Engine::new();
    // Full default-policy per-cone verification: it is the expensive,
    // cacheable part of the flow, i.e. exactly the work an ECO re-run
    // legitimately skips for clean cones.
    let pipeline = PipelineSpec::for_config(FlowConfig::default())
        .gate_equivalence(EquivalencePolicy::default());

    let mut points = Vec::new();
    println!(
        "{:<44} {:>9} {:>8} {:>10} {:>9} {:>9} {:>10} {:>8}",
        "circuit", "gates", "cones", "cold ms", "warm ms", "disk ms", "edit ms", "speedup"
    );
    for (i, (nodes, depth)) in SWEEP.iter().enumerate() {
        if *nodes > max_nodes {
            continue;
        }
        let synth = SynthSpec::new("dag", 0xEC0_0000 + i as u64)
            .param("nodes", *nodes as u64)
            .param("depth", *depth)
            .param("inputs", (32 + nodes / 50).min(4_096) as u64)
            .param("outputs", 64);
        let name = synth.name();
        let graph = benchsuite::build_mig(&name).expect("synth name resolves");
        let gates = graph.gate_count();
        let outputs = graph.output_count();
        let mut session = engine.incremental(graph, pipeline.clone());

        let before = engine.stats();
        let started = Instant::now();
        let cold_run = session.run().expect("cold incremental run verifies");
        let cold_wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        let cold = engine.stats().since(&before);
        assert!(
            !cold_run.spliced_reused,
            "{name}: cold run found a warm cache"
        );
        let unique_cones = cold_run.unique_cones;

        let before = engine.stats();
        let started = Instant::now();
        let warm_run = session.run().expect("warm incremental run verifies");
        let warm_wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        let warm = engine.stats().since(&before);
        assert!(
            warm_run.spliced_reused && warm.passes_executed == 0,
            "{name}: warm re-run must be one spliced-scope cache hit"
        );
        assert_eq!(
            persist::run_to_json(&cold_run.run),
            persist::run_to_json(&warm_run.run),
            "{name}: warm re-run must be bit-identical to the cold run"
        );

        // The disk tier is exercised at the smallest point only:
        // write-through JSON of megacomponent spliced runs is exactly
        // the latency the memory tier exists to hide.
        let disk_wall_ms = (i == 0).then(|| {
            let dir = std::env::temp_dir().join("wavepipe-bench-pr7-disk");
            let _ = fs::remove_dir_all(&dir);
            let writer = Engine::new().with_disk_cache(&dir);
            let populate = writer
                .incremental(session.graph().clone(), pipeline.clone())
                .run()
                .expect("disk populate run verifies");
            let reader = Engine::new().with_disk_cache(&dir);
            let mut served = reader.incremental(session.graph().clone(), pipeline.clone());
            let before = reader.stats();
            let started = Instant::now();
            let outcome = served.run().expect("disk-served run verifies");
            let wall = started.elapsed().as_secs_f64() * 1000.0;
            let delta = reader.stats().since(&before);
            assert!(
                outcome.spliced_reused && delta.passes_executed == 0 && delta.disk_hits >= 1,
                "{name}: fresh engine must re-serve the run from disk with zero passes"
            );
            assert_eq!(
                persist::run_to_json(&populate.run),
                persist::run_to_json(&outcome.run),
                "{name}: disk-served run must be bit-identical"
            );
            let _ = fs::remove_dir_all(&dir);
            wall
        });

        // Seeded ECO loop: each step grafts one dead majority gate onto
        // existing signals and rewires one primary output to it — a
        // one-gate edit that must dirty exactly one cone.
        let mut seed = 0xD1E7_0000 + i as u64;
        let mut edits = Vec::new();
        let mut last_edit = None;
        for step in 0..EDITS {
            let position = (step * 17 + 3) % outputs;
            let (a, b, c) = {
                let g = session.graph();
                (
                    pick_signal(g, &mut seed),
                    pick_signal(g, &mut seed),
                    pick_signal(g, &mut seed),
                )
            };
            let gate = session
                .apply(wavepipe::EngineEdit::AddGate {
                    a,
                    b,
                    c,
                    output: None,
                })
                .expect("gate fanins exist")
                .expect("AddGate returns the new signal");
            session
                .apply(wavepipe::EngineEdit::RewireOutput {
                    position,
                    signal: gate,
                })
                .expect("output position exists");

            let before = engine.stats();
            let started = Instant::now();
            let outcome = session.run().expect("incremental edit run verifies");
            let wall = started.elapsed().as_secs_f64() * 1000.0;
            let delta = engine.stats().since(&before);
            assert!(
                !outcome.spliced_reused && outcome.cones_recomputed == 1,
                "{name}: a one-gate rewire must re-execute exactly one cone \
                 (recomputed {})",
                outcome.cones_recomputed
            );
            assert_eq!(
                delta.cones_recomputed, 1,
                "{name}: engine telemetry must agree with the outcome"
            );
            edits.push(EditPoint {
                edit: format!(
                    "rewire o{position} -> maj({}{}, {}{}, {}{})",
                    if a.is_complement() { "!" } else { "" },
                    a.node().index(),
                    if b.is_complement() { "!" } else { "" },
                    b.node().index(),
                    if c.is_complement() { "!" } else { "" },
                    c.node().index(),
                ),
                wall_ms: wall,
                dirty_cones: outcome.cones_recomputed,
                reused_cones: outcome.cones_reused,
                dirty_fraction: outcome.dirty_fraction(),
                dirty_bands: outcome.dirty_bands.as_ref().map_or(0, Vec::len),
            });
            last_edit = Some(outcome);
        }

        // Bit-identity floor: the final edited state, recomputed cold
        // by a fresh engine, must match the incrementally-spliced run
        // byte for byte. Skipped at 10⁶ — the reference cold run alone
        // would double the point's cost without changing the check.
        if *nodes <= 100_000 {
            let reference = Engine::new()
                .incremental(session.graph().clone(), pipeline.clone())
                .run()
                .expect("reference cold run verifies");
            assert_eq!(
                persist::run_to_json(&reference.run),
                persist::run_to_json(&last_edit.as_ref().expect("EDITS > 0").run),
                "{name}: incremental edit result must be bit-identical to a cold recompute"
            );
        }

        let edit_wall_ms = edits.iter().map(|e| e.wall_ms).sum::<f64>() / edits.len() as f64;
        let edit_speedup = cold_wall_ms / edit_wall_ms;
        if *nodes >= 100_000 {
            // Floor on the *fastest* edit: a single scheduler stall on
            // one re-run must not fail a structural guarantee the other
            // edits demonstrate.
            let best_ms = edits
                .iter()
                .map(|e| e.wall_ms)
                .fold(f64::INFINITY, f64::min);
            assert!(
                cold_wall_ms / best_ms >= 10.0,
                "{name}: one-gate edit must be >=10x faster than cold \
                 (best {:.1}x, mean {edit_speedup:.1}x)",
                cold_wall_ms / best_ms
            );
        }
        let dirty_cone_fraction =
            edits.iter().map(|e| e.dirty_fraction).sum::<f64>() / edits.len() as f64;

        let point = IncrementalPoint {
            name: name.clone(),
            target_nodes: *nodes,
            gates,
            outputs,
            unique_cones,
            cold_wall_ms,
            warm_wall_ms,
            disk_wall_ms,
            edit_wall_ms,
            edit_speedup,
            dirty_cone_fraction,
            cold,
            warm,
            edits,
        };
        println!(
            "{:<44} {:>9} {:>8} {:>10.1} {:>9.3} {:>9} {:>10.2} {:>7.1}x",
            point.name,
            point.gates,
            point.unique_cones,
            point.cold_wall_ms,
            point.warm_wall_ms,
            point
                .disk_wall_ms
                .map_or("-".into(), |ms| format!("{ms:.2}")),
            point.edit_wall_ms,
            point.edit_speedup,
        );
        points.push(point);
    }
    assert!(!points.is_empty(), "--max-nodes filtered out every point");

    let record = IncrementalRecord {
        pipeline: pipeline
            .build()
            .expect("default pipeline is well-ordered")
            .pass_names(),
        points,
        engine_totals: engine.stats(),
    };
    fs::write(
        out_dir.join("BENCH_pr7.json"),
        serde_json::to_string_pretty(&record).expect("serialize"),
    )
    .expect("write BENCH_pr7.json");
    println!(
        "\nincremental record: results/BENCH_pr7.json ({} points, engine: {} reused / {} recomputed cones)",
        record.points.len(),
        record.engine_totals.cones_reused,
        record.engine_totals.cones_recomputed
    );
}
