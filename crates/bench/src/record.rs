//! Machine-readable `BENCH_*.json` record shapes.
//!
//! Every reproduction run leaves a perf-trajectory record under
//! `results/`: `repro_all` writes a [`BenchRecord`] (`BENCH_pr3.json`),
//! the `scaling` binary a [`ScalingRecord`] (`BENCH_pr4.json`), the
//! `verify_throughput` binary a [`VerifyRecord`] (`BENCH_pr5.json`)
//! plus a [`WideRecord`] (`BENCH_pr6.json`: flat-arena wide-block
//! throughput and the block-width × thread-count grid), the
//! `wavepipe-load` generator a [`ServeRecord`] (`BENCH_pr9.json`:
//! daemon latency percentiles, throughput, and coalesce/cache rates),
//! and the `qor` binary a [`QorRecord`] (`BENCH_pr10.json`:
//! raw-vs-rewritten logic-optimization QoR across technologies).
//! The structs live here — not inside the binaries — so the schema is
//! a *library contract*: the golden test `tests/bench_schema.rs` pins
//! the exact field names and shapes, and any repro-tooling-breaking
//! rename fails CI instead of silently producing unreadable records.

use std::collections::BTreeMap;

use wavepipe::EngineStats;

/// Aggregate of one pass across every circuit of the suite, per
/// technology.
#[derive(Clone, Debug, serde::Serialize)]
pub struct PassSummary {
    /// Technology name.
    pub technology: String,
    /// Pass name.
    pub pass: String,
    /// Summed wall time, microseconds.
    pub micros: u64,
    /// Summed priced area delta.
    pub area_delta: f64,
    /// Summed priced energy delta.
    pub energy_delta: f64,
    /// Summed priced cycle-time delta.
    pub cycle_time_delta: f64,
}

/// One experiment stage: wall time plus the engine counters it moved.
#[derive(Clone, Debug, serde::Serialize)]
pub struct StageRecord {
    /// Wall time of the stage, milliseconds.
    pub wall_ms: f64,
    /// Engine cache/execution counters for this stage alone.
    pub engine: EngineStats,
}

/// The `BENCH_pr3.json` shape: the full-reproduction perf record.
#[derive(Clone, Debug, serde::Serialize)]
pub struct BenchRecord {
    /// Per-stage wall time and engine cache hit/miss/pass counters.
    pub stages: BTreeMap<String, StageRecord>,
    /// Cumulative engine counters over the whole reproduction run.
    pub engine_totals: EngineStats,
    /// Cells resident in the engine cache at the end of the run.
    pub cached_cells: usize,
    /// Per-(technology, pass) priced deltas summed over the suite.
    pub passes: Vec<PassSummary>,
}

/// Per-pass throughput at one scaling point.
#[derive(Clone, Debug, serde::Serialize)]
pub struct PassThroughput {
    /// Pass name.
    pub pass: String,
    /// Wall time of the pass on this circuit, microseconds.
    pub micros: u64,
    /// Components the pass processed per second of its own wall time
    /// (the pass's post-state size over its wall time).
    pub nodes_per_sec: f64,
}

/// One point of the `scaling` sweep: a synthetic circuit at one target
/// node count, run cold and then warm on the same engine.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ScalingPoint {
    /// Canonical `synth:*` circuit name.
    pub name: String,
    /// Target node count of the sweep axis.
    pub target_nodes: usize,
    /// Gates actually generated.
    pub gates: usize,
    /// Mapped-netlist priced size (what the passes consume).
    pub mapped_size: usize,
    /// Final wave-pipelined netlist size.
    pub pipelined_size: usize,
    /// Circuit depth after the flow.
    pub depth: u32,
    /// Wall time of the cold (cache-miss) run, milliseconds.
    pub cold_wall_ms: f64,
    /// Wall time of the warm (cache-hit) re-run, milliseconds.
    pub warm_wall_ms: f64,
    /// Engine counter deltas of the cold run.
    pub cold: EngineStats,
    /// Engine counter deltas of the warm run — the cache-hit curve.
    pub warm: EngineStats,
    /// Per-pass wall time and throughput (cold run).
    pub passes: Vec<PassThroughput>,
}

/// The `BENCH_pr4.json` shape: node-count vs throughput and cache-hit
/// curves over the synthetic `dag` family.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ScalingRecord {
    /// The pipeline swept (canonical pass names).
    pub pipeline: Vec<String>,
    /// One point per target node count, ascending.
    pub points: Vec<ScalingPoint>,
    /// Cumulative engine counters over the whole sweep.
    pub engine_totals: EngineStats,
    /// Cells resident in the engine cache at the end.
    pub cached_cells: usize,
}

/// Scalar-vs-word verification throughput at one scaling point of the
/// `verify_throughput` sweep.
#[derive(Clone, Debug, serde::Serialize)]
pub struct VerifyPoint {
    /// Canonical `synth:*` circuit name.
    pub name: String,
    /// Target node count of the sweep axis.
    pub target_nodes: usize,
    /// Primary inputs of the circuit.
    pub inputs: usize,
    /// Final wave-pipelined netlist size (what evaluation traverses).
    pub pipelined_size: usize,
    /// Patterns per second through the scalar `Netlist::eval` baseline.
    pub scalar_patterns_per_sec: f64,
    /// Patterns per second through the bit-parallel block evaluator.
    pub word_patterns_per_sec: f64,
    /// `word_patterns_per_sec / scalar_patterns_per_sec`.
    pub speedup: f64,
}

/// Wall time of one exhaustive differential proof (all `2^inputs`
/// patterns) — the exhaustive-input ceiling curve.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ExhaustivePoint {
    /// Primary inputs of the checked circuit.
    pub inputs: usize,
    /// Patterns proven (`2^inputs`).
    pub patterns: u64,
    /// Wall time of the proof, milliseconds.
    pub wall_ms: f64,
    /// Whether the proof held (it must — recorded for auditability).
    pub holds: bool,
}

/// The `BENCH_pr5.json` shape: scalar-vs-word verification throughput
/// over the synthetic `dag` family plus the exhaustive-ceiling curve.
#[derive(Clone, Debug, serde::Serialize)]
pub struct VerifyRecord {
    /// The pipeline the verified netlists came from (canonical pass
    /// names).
    pub pipeline: Vec<String>,
    /// One point per target node count, ascending.
    pub points: Vec<VerifyPoint>,
    /// Exhaustive differential proofs: input count vs wall time.
    pub exhaustive: Vec<ExhaustivePoint>,
}

/// Legacy-word-kernel vs flat-arena wide-block throughput at one node
/// count of the `verify_throughput` wide sweep.
#[derive(Clone, Debug, serde::Serialize)]
pub struct WidePoint {
    /// Canonical `synth:*` circuit name.
    pub name: String,
    /// Target node count of the sweep axis.
    pub target_nodes: usize,
    /// Primary inputs of the circuit.
    pub inputs: usize,
    /// Final wave-pipelined netlist size (components).
    pub pipelined_size: usize,
    /// Evaluation slots after the arena's copy elision.
    pub arena_slots: usize,
    /// Patterns per second through the PR5 word kernel
    /// (`Netlist::eval_words_prepared`, one 64-lane word per node) —
    /// the BENCH_pr5 curve this PR must beat.
    pub legacy_word_patterns_per_sec: f64,
    /// Patterns per second through the flat arena at the default block
    /// width.
    pub wide_patterns_per_sec: f64,
    /// `wide_patterns_per_sec / legacy_word_patterns_per_sec`.
    pub wide_speedup: f64,
}

/// Sharded differential-check throughput at one (block width, thread
/// count) cell of the grid.
#[derive(Clone, Debug, serde::Serialize)]
pub struct GridPoint {
    /// Words per pattern block (`SweepConfig::block_words`).
    pub block_words: usize,
    /// Worker threads (`SweepConfig::threads`).
    pub threads: usize,
    /// Patterns per second through `differential::check_with` on the
    /// grid circuit.
    pub patterns_per_sec: f64,
}

/// The `BENCH_pr6.json` shape: flat-arena wide-block verification
/// throughput (vs the PR5 word kernel) over the synthetic `dag` family,
/// plus the block-width × thread-count sharded-check grid.
#[derive(Clone, Debug, serde::Serialize)]
pub struct WideRecord {
    /// The pipeline the measured netlists came from (canonical pass
    /// names).
    pub pipeline: Vec<String>,
    /// Default block width the wide column used.
    pub block_words: usize,
    /// One point per target node count, ascending.
    pub points: Vec<WidePoint>,
    /// Canonical name of the circuit the grid was measured on.
    pub grid_circuit: String,
    /// Sharded-check throughput per (block width, thread count) cell.
    pub grid: Vec<GridPoint>,
}

/// One seeded ECO edit of the `incremental` sweep: the edit applied,
/// the wall time of the incremental re-run it triggered, and how much
/// of the circuit was actually dirty.
#[derive(Clone, Debug, serde::Serialize)]
pub struct EditPoint {
    /// Human-readable description of the edit.
    pub edit: String,
    /// Wall time of the incremental re-run after the edit, milliseconds.
    pub wall_ms: f64,
    /// Unique cones the re-run had to execute.
    pub dirty_cones: u64,
    /// Unique cones spliced from cache.
    pub reused_cones: u64,
    /// `dirty_cones / unique_cones` of the re-run.
    pub dirty_fraction: f64,
    /// Level bands whose subhash the edit changed.
    pub dirty_bands: usize,
}

/// One point of the `incremental` sweep: a synthetic circuit at one
/// target node count, run cold, warm (memory), warm (fresh process +
/// disk) and through a seeded ECO edit sequence on the same engine.
#[derive(Clone, Debug, serde::Serialize)]
pub struct IncrementalPoint {
    /// Canonical `synth:*` circuit name.
    pub name: String,
    /// Target node count of the sweep axis.
    pub target_nodes: usize,
    /// Gates actually generated.
    pub gates: usize,
    /// Primary outputs (= cones).
    pub outputs: usize,
    /// Distinct cone content hashes among them.
    pub unique_cones: usize,
    /// Wall time of the cold run (every cone executes), milliseconds.
    pub cold_wall_ms: f64,
    /// Wall time of the warm re-run on the same engine (one
    /// spliced-scope lookup, zero passes), milliseconds.
    pub warm_wall_ms: f64,
    /// Wall time of a fresh engine re-serving the run from the disk
    /// tier, milliseconds — `null` at sizes where the disk tier is not
    /// exercised.
    pub disk_wall_ms: Option<f64>,
    /// Mean wall time of the post-edit incremental re-runs,
    /// milliseconds.
    pub edit_wall_ms: f64,
    /// `cold_wall_ms / edit_wall_ms` — what cone-level caching buys an
    /// ECO loop at this scale.
    pub edit_speedup: f64,
    /// Mean dirty-cone fraction across the edit sequence.
    pub dirty_cone_fraction: f64,
    /// Engine counter deltas of the cold run.
    pub cold: EngineStats,
    /// Engine counter deltas of the warm re-run.
    pub warm: EngineStats,
    /// The seeded edit sequence, in application order.
    pub edits: Vec<EditPoint>,
}

/// The `BENCH_pr7.json` shape: incremental (ECO) engine latency —
/// cold vs warm-memory vs warm-disk vs per-edit re-runs over the
/// synthetic `dag` family.
#[derive(Clone, Debug, serde::Serialize)]
pub struct IncrementalRecord {
    /// The pipeline swept (canonical pass names).
    pub pipeline: Vec<String>,
    /// One point per target node count, ascending.
    pub points: Vec<IncrementalPoint>,
    /// Cumulative engine counters over the whole sweep.
    pub engine_totals: EngineStats,
}

/// Request-latency percentiles of one load phase, milliseconds
/// (send-to-terminal-event, measured at the client).
#[derive(Clone, Debug, serde::Serialize)]
pub struct LatencySummary {
    /// Latency samples the percentiles are computed over.
    pub count: u64,
    /// Fastest request.
    pub min_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
}

/// One phase of the `wavepipe-load` run against a live daemon.
#[derive(Clone, Debug, serde::Serialize)]
pub struct LoadPhase {
    /// Phase name (`coalesce_burst`, `distinct_sweep`, ...).
    pub name: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests pipelined per connection (all outstanding at once, so
    /// `clients * pipelined` requests are concurrently in flight).
    pub pipelined: usize,
    /// Requests sent.
    pub requests: u64,
    /// Requests that came back `done`.
    pub completed: u64,
    /// Requests that came back `error`.
    pub failed: u64,
    /// Distinct spec content hashes among the requests.
    pub distinct_specs: usize,
    /// Wall time of the phase (first send to last terminal event).
    pub wall_ms: f64,
    /// `requests / wall seconds`.
    pub requests_per_sec: f64,
    /// Client-observed latency percentiles.
    pub latency: LatencySummary,
    /// Pipeline executions the phase triggered (server counter delta).
    pub executed: u64,
    /// Requests served by joining an identical in-flight execution.
    pub coalesced: u64,
    /// Engine memory-cache hits the phase produced.
    pub cache_hits: u64,
    /// Engine memory-cache misses the phase produced.
    pub cache_misses: u64,
}

/// Final daemon counters, as reported over the wire at the end of the
/// load run (mirror of the protocol's `ServeMetrics`, minus the engine
/// block that lands in [`ServeRecord::engine_totals`]).
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServeTotals {
    /// Run requests accepted off the wire.
    pub requests: u64,
    /// Runs that finished with a `done` event.
    pub completed: u64,
    /// Runs that finished with an `error` event.
    pub failed: u64,
    /// Runs rejected because the daemon was draining.
    pub rejected: u64,
    /// Runs served by joining an identical in-flight execution.
    pub coalesced: u64,
    /// Runs that actually executed on the engine.
    pub executed: u64,
    /// Streaming cell events delivered (or attempted).
    pub cells_streamed: u64,
    /// Streaming cell events dropped on slow clients.
    pub cells_shed: u64,
    /// Client connections accepted.
    pub clients: u64,
}

/// MIG-level QoR of one circuit under the rewrite prefix. The rewrite
/// passes are cost-blind, so this table is technology-independent.
#[derive(Clone, Debug, serde::Serialize)]
pub struct QorCircuit {
    /// Circuit name (canonical `synth:*` or registry name).
    pub name: String,
    /// Synthetic family (`chain`, `shared`, …) or `suite`.
    pub family: String,
    /// MIG majority gates before rewriting.
    pub raw_gates: usize,
    /// MIG depth before rewriting.
    pub raw_depth: u32,
    /// MIG majority gates after the rewrite prefix.
    pub opt_gates: usize,
    /// MIG depth after the rewrite prefix.
    pub opt_depth: u32,
    /// `raw_depth / opt_depth` — the depth-rewrite gain.
    pub depth_gain: f64,
    /// `raw_gates / opt_gates` — the size-rewrite gain.
    pub gate_gain: f64,
    /// Summed wall time of the rewrite passes, microseconds.
    pub rewrite_micros: u64,
}

/// Final-netlist QoR of one (circuit, technology) cell: the raw flow
/// vs the rewrite-prefixed flow, after the full wave-pipelining
/// pipeline.
#[derive(Clone, Debug, serde::Serialize)]
pub struct QorCell {
    /// Circuit name.
    pub circuit: String,
    /// Technology name.
    pub technology: String,
    /// Priced component count of the raw pipelined netlist.
    pub raw_size: usize,
    /// Priced component count of the rewritten pipelined netlist.
    pub opt_size: usize,
    /// Wave depth (balanced levels) of the raw flow.
    pub raw_wave_depth: u32,
    /// Wave depth of the rewritten flow.
    pub opt_wave_depth: u32,
    /// Priced area of the raw pipelined netlist.
    pub raw_area: f64,
    /// Priced area of the rewritten pipelined netlist.
    pub opt_area: f64,
    /// Priced cycle time (latency) of the raw pipelined netlist.
    pub raw_cycle_time: f64,
    /// Priced cycle time of the rewritten pipelined netlist.
    pub opt_cycle_time: f64,
}

/// The `BENCH_pr10.json` shape: logic-optimization QoR — the raw
/// reference flow vs the rewrite-prefixed flow over the skew/share
/// synthetic families and a suite subset, across technologies, with
/// every rewritten cell equivalence-gated against its source MIG.
#[derive(Clone, Debug, serde::Serialize)]
pub struct QorRecord {
    /// Canonical pass names of the raw (reference) pipeline.
    pub raw_pipeline: Vec<String>,
    /// Canonical pass names of the rewrite-prefixed pipeline.
    pub opt_pipeline: Vec<String>,
    /// Whether both flows ran under a per-pass equivalence gate (they
    /// must — recorded for auditability).
    pub equivalence_gated: bool,
    /// Technology-independent MIG-level QoR, one row per circuit.
    pub circuits: Vec<QorCircuit>,
    /// Final-netlist QoR per (circuit, technology), circuit-major.
    pub cells: Vec<QorCell>,
    /// Cumulative engine counters over the whole sweep.
    pub engine_totals: EngineStats,
    /// Engine counter deltas of the warm re-run of both grids — the
    /// rewritten pipeline must be a pure cache hit (zero passes).
    pub warm: EngineStats,
}

/// The `BENCH_pr9.json` shape: service-mode latency percentiles,
/// throughput, and coalesce/cache-hit rates under concurrent
/// multi-client load.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServeRecord {
    /// Wire protocol version the run spoke.
    pub protocol_version: u64,
    /// Daemon worker threads.
    pub workers: usize,
    /// Daemon job-queue bound.
    pub queue_depth: usize,
    /// Per-client outbound-queue bound.
    pub client_queue: usize,
    /// Whether slow clients shed streaming cell events.
    pub shed_slow_clients: bool,
    /// The load phases, in execution order.
    pub phases: Vec<LoadPhase>,
    /// Final daemon counters.
    pub server: ServeTotals,
    /// Final cumulative engine counters.
    pub engine_totals: EngineStats,
}
