//! Suite-level experiment drivers: one function per paper table/figure,
//! shared by the regenerator binaries and the integration tests.

use benchsuite::BenchmarkSpec;
use mig::Mig;
use tech::{compare, BenchmarkRow, Technology};
use wavepipe::{
    insert_buffers, netlist_from_mig, restrict_fanout, run_flow, FlowConfig, Netlist,
};

use crate::fit::{fit_power_law, PowerLaw};

/// Builds the whole suite (or the named subset) once.
pub fn build_suite(subset: Option<&[&str]>) -> Vec<(&'static BenchmarkSpec, Mig)> {
    benchsuite::SUITE
        .iter()
        .filter(|s| subset.map_or(true, |names| names.contains(&s.name)))
        .map(|s| (s, s.build()))
        .collect()
}

/// A smaller deterministic subset for quick runs and perf benches
/// (spans 3 families, a few hundred to a few thousand gates).
pub const QUICK_SUBSET: [&str; 8] = [
    "SASC", "ADD32R", "MUL16", "HAMMING", "CRC8x64", "ALU16", "CMP32", "DES_AREA",
];

/// One Fig 5 sample: buffers inserted by BUF alone vs original size.
#[derive(Clone, Debug)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Fig5Point {
    /// Benchmark name.
    pub name: String,
    /// Original mapped-netlist size (priced components).
    pub size: usize,
    /// Buffers inserted by buffer insertion alone.
    pub buffers: usize,
}

/// Runs buffer insertion alone over the given circuits (Fig 5).
pub fn fig5_points(suite: &[(&'static BenchmarkSpec, Mig)]) -> Vec<Fig5Point> {
    suite
        .iter()
        .map(|(spec, g)| {
            let mut n = netlist_from_mig(g);
            let size = n.counts().priced_total();
            let stats = insert_buffers(&mut n);
            Fig5Point {
                name: spec.name.to_owned(),
                size,
                buffers: stats.total(),
            }
        })
        .collect()
}

/// Fits the Fig 5 power law to the sample points.
pub fn fig5_fit(points: &[Fig5Point]) -> PowerLaw {
    let samples: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.buffers > 0)
        .map(|p| (p.size as f64, p.buffers as f64))
        .collect();
    fit_power_law(&samples)
}

/// One Fig 7 row: critical-path increase per fan-out restriction.
#[derive(Clone, Debug)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Fig7Row {
    /// Benchmark name.
    pub name: String,
    /// Original critical-path length (mapped netlist).
    pub original_depth: u32,
    /// Relative depth increase for k = 2, 3, 4, 5 (e.g. 1.4 = +140 %).
    pub increase: [f64; 4],
}

/// Runs fan-out restriction alone for k ∈ {2,3,4,5} (Fig 7).
pub fn fig7_rows(suite: &[(&'static BenchmarkSpec, Mig)]) -> Vec<Fig7Row> {
    suite
        .iter()
        .map(|(spec, g)| {
            let base = netlist_from_mig(g);
            let mut increase = [0.0; 4];
            for (i, k) in (2..=5u32).enumerate() {
                let mut n = base.clone();
                let stats = restrict_fanout(&mut n, k);
                increase[i] = stats.depth_increase();
            }
            Fig7Row {
                name: spec.name.to_owned(),
                original_depth: base.depth(),
                increase,
            }
        })
        .collect()
}

/// Fig 8 aggregate: normalized component counts averaged over the suite.
#[derive(Clone, Debug)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Fig8Data {
    /// Normalized size after buffer insertion alone (paper: 3.81).
    pub buf_only: f64,
    /// Normalized size after FOk alone, k = 2..5 (paper: 2.48, 1.61,
    /// 1.35, 1.25).
    pub fo_only: [f64; 4],
    /// FOG share of the FOk-alone size (paper: .55, .26, .17, .13).
    pub fog_share: [f64; 4],
    /// Normalized size after FOk + BUF (paper: 9.74, 6.21, 5.30, 4.91).
    pub combined: [f64; 4],
    /// FOG share after FOk + BUF — equal to `fog_share` (paper
    /// observation (b): FOG count is independent of buffer insertion).
    pub combined_fog_share: [f64; 4],
}

/// Runs BUF, FOk and FOk+BUF over the suite and averages normalized
/// sizes (Fig 8).
pub fn fig8_data(suite: &[(&'static BenchmarkSpec, Mig)]) -> Fig8Data {
    let mut buf_ratios = Vec::new();
    let mut fo_ratios = vec![Vec::new(); 4];
    let mut fog_shares = vec![Vec::new(); 4];
    let mut combined_ratios = vec![Vec::new(); 4];
    let mut combined_fog = vec![Vec::new(); 4];

    for (_, g) in suite {
        let base = netlist_from_mig(g);
        let orig = base.counts().priced_total() as f64;

        let mut buf_net = base.clone();
        insert_buffers(&mut buf_net);
        buf_ratios.push(buf_net.counts().priced_total() as f64 / orig);

        for (i, k) in (2..=5u32).enumerate() {
            let mut fo_net = base.clone();
            restrict_fanout(&mut fo_net, k);
            let c = fo_net.counts();
            fo_ratios[i].push(c.priced_total() as f64 / orig);
            fog_shares[i].push(c.fog as f64 / orig);

            let mut full = fo_net;
            insert_buffers(&mut full);
            let c = full.counts();
            combined_ratios[i].push(c.priced_total() as f64 / orig);
            combined_fog[i].push(c.fog as f64 / orig);
        }
    }

    let avg = |v: &[f64]| tech::mean(v);
    Fig8Data {
        buf_only: avg(&buf_ratios),
        fo_only: std::array::from_fn(|i| avg(&fo_ratios[i])),
        fog_share: std::array::from_fn(|i| avg(&fog_shares[i])),
        combined: std::array::from_fn(|i| avg(&combined_ratios[i])),
        combined_fog_share: std::array::from_fn(|i| avg(&combined_fog[i])),
    }
}

/// Fig 9 aggregate: T/A and T/P gains per technology, averaged over the
/// suite (both arithmetic mean, as the paper reports, and geometric
/// mean, the fairer average for ratios).
#[derive(Clone, Debug)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Fig9Data {
    /// Technology name.
    pub technology: String,
    /// Arithmetic-mean T/A gain (paper: 5× SWD, 8× QCA, 3× NML).
    pub ta_mean: f64,
    /// Arithmetic-mean T/P gain (paper: 23× SWD, 13× QCA, 5× NML).
    pub tp_mean: f64,
    /// Geometric-mean T/A gain.
    pub ta_geomean: f64,
    /// Geometric-mean T/P gain.
    pub tp_geomean: f64,
}

/// Runs the full flow (FO3 + BUF, the paper's §V configuration) once
/// and evaluates all three technologies (Fig 9 + Table II source data).
pub fn evaluate_suite(
    suite: &[(&'static BenchmarkSpec, Mig)],
) -> Vec<(String, Vec<tech::Comparison>)> {
    let technologies = Technology::all();
    suite
        .iter()
        .map(|(spec, g)| {
            let flow = run_flow(g, FlowConfig::default())
                .unwrap_or_else(|e| panic!("{}: flow verification failed: {e}", spec.name));
            let comparisons = technologies.iter().map(|t| compare(&flow, t)).collect();
            (spec.name.to_owned(), comparisons)
        })
        .collect()
}

/// Aggregates [`evaluate_suite`] output into Fig 9 bars.
pub fn fig9_data(evaluated: &[(String, Vec<tech::Comparison>)]) -> Vec<Fig9Data> {
    let technologies = Technology::all();
    technologies
        .iter()
        .enumerate()
        .map(|(ti, t)| {
            let ta: Vec<f64> = evaluated.iter().map(|(_, c)| c[ti].ta_gain()).collect();
            let tp: Vec<f64> = evaluated.iter().map(|(_, c)| c[ti].tp_gain()).collect();
            Fig9Data {
                technology: t.name.clone(),
                ta_mean: tech::mean(&ta),
                tp_mean: tech::mean(&tp),
                ta_geomean: tech::geometric_mean(&ta),
                tp_geomean: tech::geometric_mean(&tp),
            }
        })
        .collect()
}

/// Table II rows for one technology over the paper's seven selected
/// benchmarks.
pub fn table2_rows(technology: &Technology) -> Vec<BenchmarkRow> {
    benchsuite::TABLE2_SELECTION
        .iter()
        .map(|name| {
            let spec = benchsuite::find(name).expect("Table II names are in the suite");
            let flow = run_flow(&spec.build(), FlowConfig::default())
                .unwrap_or_else(|e| panic!("{name}: flow verification failed: {e}"));
            BenchmarkRow {
                benchmark: (*name).to_owned(),
                comparison: compare(&flow, technology),
            }
        })
        .collect()
}

/// Ablation: ASAP vs retimed buffer insertion over the suite.
#[derive(Clone, Debug)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct RetimingAblation {
    /// Benchmark name.
    pub name: String,
    /// Buffers inserted against ASAP levels (the paper's Algorithm 1).
    pub asap_buffers: usize,
    /// Buffers inserted against hill-climbed levels.
    pub retimed_buffers: usize,
}

impl RetimingAblation {
    /// Fraction of buffers saved by retiming.
    pub fn saving(&self) -> f64 {
        if self.asap_buffers == 0 {
            0.0
        } else {
            1.0 - self.retimed_buffers as f64 / self.asap_buffers as f64
        }
    }
}

/// Runs the retiming ablation (FO3 first, then both insertion variants).
pub fn retiming_ablation(suite: &[(&'static BenchmarkSpec, Mig)]) -> Vec<RetimingAblation> {
    suite
        .iter()
        .map(|(spec, g)| {
            let mut base: Netlist = netlist_from_mig(g);
            restrict_fanout(&mut base, 3);

            let mut asap = base.clone();
            let asap_stats = insert_buffers(&mut asap);
            let mut retimed = base;
            let retimed_stats = wavepipe::insert_buffers_retimed(&mut retimed);
            RetimingAblation {
                name: spec.name.to_owned(),
                asap_buffers: asap_stats.total(),
                retimed_buffers: retimed_stats.total(),
            }
        })
        .collect()
}

/// Ablation: reference mapping vs inversion-minimized mapping, priced
/// on QCA (where the inverter is 10×/7×/10× a cell).
#[derive(Clone, Debug)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct InverterAblation {
    /// Benchmark name.
    pub name: String,
    /// Inverters under the reference mapping.
    pub plain_inv: usize,
    /// Inverters under the polarity local search.
    pub min_inv: usize,
    /// QCA wave-pipelined area under the reference mapping (µm²).
    pub plain_qca_area: f64,
    /// QCA wave-pipelined area under the minimized mapping (µm²).
    pub min_qca_area: f64,
}

impl InverterAblation {
    /// Fraction of inverters removed.
    pub fn inv_saving(&self) -> f64 {
        if self.plain_inv == 0 {
            0.0
        } else {
            1.0 - self.min_inv as f64 / self.plain_inv as f64
        }
    }
}

/// Runs the inversion-minimization ablation over the given circuits.
pub fn inverter_ablation(suite: &[(&'static BenchmarkSpec, Mig)]) -> Vec<InverterAblation> {
    let qca = Technology::qca();
    suite
        .iter()
        .map(|(spec, g)| {
            let plain = run_flow(g, FlowConfig::default()).expect("flow verifies");
            let min = run_flow(
                g,
                FlowConfig {
                    minimize_inverters: true,
                    ..FlowConfig::default()
                },
            )
            .expect("flow verifies");
            InverterAblation {
                name: spec.name.to_owned(),
                plain_inv: plain.original.counts().inv,
                min_inv: min.original.counts().inv,
                plain_qca_area: tech::evaluate(
                    &plain.pipelined,
                    &qca,
                    tech::OperatingMode::WavePipelined,
                )
                .area
                .value(),
                min_qca_area: tech::evaluate(
                    &min.pipelined,
                    &qca,
                    tech::OperatingMode::WavePipelined,
                )
                .area
                .value(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_suite() -> Vec<(&'static BenchmarkSpec, Mig)> {
        build_suite(Some(&QUICK_SUBSET))
    }

    #[test]
    fn fig5_buffers_grow_with_size() {
        let suite = quick_suite();
        let points = fig5_points(&suite);
        assert_eq!(points.len(), QUICK_SUBSET.len());
        let fit = fig5_fit(&points);
        assert!(fit.exponent > 0.0, "buffers must grow with size");
    }

    #[test]
    fn fig7_k2_dominates_k5() {
        let suite = quick_suite();
        for row in fig7_rows(&suite) {
            assert!(
                row.increase[0] >= row.increase[3],
                "{}: k=2 increase {} < k=5 increase {}",
                row.name,
                row.increase[0],
                row.increase[3]
            );
        }
    }

    #[test]
    fn fig8_orderings_match_the_paper() {
        let suite = quick_suite();
        let d = fig8_data(&suite);
        assert!(d.buf_only > 1.0);
        // FO ratios fall as the limit loosens.
        assert!(d.fo_only[0] > d.fo_only[1]);
        assert!(d.fo_only[1] > d.fo_only[2]);
        assert!(d.fo_only[2] > d.fo_only[3]);
        // Combined dominates both individual passes.
        for i in 0..4 {
            assert!(d.combined[i] > d.buf_only.max(d.fo_only[i]));
            // Observation (b): FOG count independent of BUF.
            assert!((d.fog_share[i] - d.combined_fog_share[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn fig9_gains_exceed_one_on_deep_suites() {
        let suite = build_suite(Some(&["MUL16", "HAMMING", "CRC8x64"]));
        let evaluated = evaluate_suite(&suite);
        for f in fig9_data(&evaluated) {
            assert!(f.ta_mean > 1.0, "{}: T/A {}", f.technology, f.ta_mean);
            assert!(f.tp_mean > 1.0, "{}: T/P {}", f.technology, f.tp_mean);
        }
    }

    #[test]
    fn inverter_ablation_never_loses() {
        let suite = quick_suite();
        for row in inverter_ablation(&suite) {
            assert!(
                row.min_inv <= row.plain_inv,
                "{}: min-inv {} > plain {}",
                row.name,
                row.min_inv,
                row.plain_inv
            );
        }
    }

    #[test]
    fn retiming_never_loses() {
        let suite = quick_suite();
        for row in retiming_ablation(&suite) {
            assert!(
                row.retimed_buffers <= row.asap_buffers,
                "{}: retimed {} > asap {}",
                row.name,
                row.retimed_buffers,
                row.asap_buffers
            );
            assert!(row.saving() >= 0.0);
        }
    }
}
