//! Suite-level experiment drivers: one function per paper table/figure,
//! shared by the regenerator binaries and the integration tests.
//!
//! Since the engine-facade redesign every driver expresses its flow
//! configuration as a declarative [`wavepipe::PipelineSpec`] and runs
//! it through a shared, long-lived [`Engine`] ([`engine`] wires the
//! `benchsuite` registry in as the circuit resolver). The engine sweeps
//! each circuit × technology grid on the work-pulling parallel
//! scheduler and keeps a content-hash keyed result cache, so the
//! experiments of one reproduction run *share work*: Fig 8's BUF-only
//! column is Fig 5's sweep re-served from cache, the retiming
//! ablation's ASAP arm is the inverter ablation's reference arm, and a
//! re-run of any driver on the same engine recomputes nothing
//! ([`Engine::stats`] exposes the hit/miss/pass counters `repro_all`
//! records in `BENCH_pr3.json`).
//!
//! The multi-technology experiments (Fig 9, Table II) still come back
//! as Table II comparisons plus per-(circuit, technology, pass)
//! **priced** instrumentation traces (wall time, component delta, depth
//! change, area/energy/cycle-time deltas under that technology's
//! [`tech::CostModel`]).

use std::sync::Arc;

use benchsuite::BenchmarkSpec;
use mig::Mig;
use rayon::prelude::*;
use tech::{BenchmarkRow, CostTable, Technology};
use wavepipe::{BufferStrategy, Engine, FlowConfig, PassStats, PipelineRun, PipelineSpec};

use crate::fit::{fit_power_law, PowerLaw};

/// The engine every harness driver shares: the `benchsuite` registry as
/// circuit resolver, unbounded result cache. Keep one alive across
/// experiments — overlapping sweeps then only recompute changed cells.
pub fn engine() -> Engine {
    Engine::new().with_resolver(benchsuite::build_mig)
}

/// Builds the whole suite (or the named subset) once, generating the
/// circuits in parallel.
pub fn build_suite(subset: Option<&[&str]>) -> Vec<(&'static BenchmarkSpec, Mig)> {
    let specs: Vec<&'static BenchmarkSpec> = benchsuite::SUITE
        .iter()
        .filter(|s| subset.is_none_or(|names| names.contains(&s.name)))
        .collect();
    specs.par_iter().map(|spec| (*spec, spec.build())).collect()
}

/// A smaller deterministic subset for quick runs and perf benches
/// (spans 3 families, a few hundred to a few thousand gates).
pub const QUICK_SUBSET: [&str; 8] = [
    "SASC", "ADD32R", "MUL16", "HAMMING", "CRC8x64", "ALU16", "CMP32", "DES_AREA",
];

/// Runs one declarative pipeline spec over every circuit of `suite`
/// (cost-blind, cached), panicking with the benchmark name if any run
/// fails (suite circuits are known to verify).
fn run_spec_over(
    engine: &Engine,
    pipeline: &PipelineSpec,
    suite: &[(&'static BenchmarkSpec, Mig)],
) -> Vec<Arc<PipelineRun>> {
    let graphs: Vec<&Mig> = suite.iter().map(|(_, g)| g).collect();
    engine
        .run_pipeline_grid(pipeline, &graphs, &[])
        .unwrap_or_else(|e| panic!("harness pipeline spec rejected: {e}"))
        .into_iter()
        .zip(suite)
        .map(|(cell, (spec, _))| {
            cell.outcome
                .unwrap_or_else(|e| panic!("{}: flow failed: {e}", spec.name))
        })
        .collect()
}

/// The priced per-pass instrumentation of one (circuit, technology)
/// grid cell.
#[derive(Clone, Debug, serde::Serialize)]
pub struct PricedTrace {
    /// Benchmark name.
    pub circuit: String,
    /// Technology the cell ran under.
    pub technology: String,
    /// Per-pass instrumentation, priced under that technology.
    pub trace: Vec<PassStats>,
}

/// Everything one circuit × technology grid sweep produced.
#[derive(Clone, Debug)]
pub struct GridEvaluation {
    /// The technologies of the sweep, in [`Technology::all`] order.
    pub technologies: Vec<Technology>,
    /// Per-circuit comparisons, one per technology (Fig 9 / Table II
    /// source data), in suite order.
    pub evaluated: Vec<(String, Vec<tech::Comparison>)>,
    /// Per-(circuit, technology) priced traces, circuit-major.
    pub traces: Vec<PricedTrace>,
}

/// Runs the paper's default flow (FO3 + BUF) over the full circuit ×
/// technology grid in one cached engine sweep: every (circuit,
/// technology) cell is one task on the work-pulling scheduler, carries
/// that technology's cost model through the pipeline, and comes back as
/// a Table II comparison plus a priced per-pass trace. Panics with the
/// cell coordinates if any run fails (suite circuits are known to
/// verify).
///
/// Note the deliberate tradeoff: the default pipeline is cost-blind, so
/// each circuit's three cells recompute the same transformation on a
/// cold cache and only the pricing differs — in exchange for per-cell
/// cost threading, which is what lets cost-aware pipelines legitimately
/// produce *different* netlists per technology through the same driver.
/// On a warm engine the whole sweep is pure cache hits.
pub fn evaluate_suite_grid(
    engine: &Engine,
    suite: &[(&'static BenchmarkSpec, Mig)],
) -> GridEvaluation {
    let technologies = Technology::all();
    let tables: Vec<CostTable> = technologies.iter().map(Technology::cost_table).collect();
    let pipeline = PipelineSpec::for_config(FlowConfig::default());
    let graphs: Vec<&Mig> = suite.iter().map(|(_, g)| g).collect();
    let cells = engine
        .run_pipeline_grid(&pipeline, &graphs, &tables)
        .unwrap_or_else(|e| panic!("grid pipeline spec rejected: {e}"));

    let mut evaluated: Vec<(String, Vec<tech::Comparison>)> = suite
        .iter()
        .map(|(spec, _)| (spec.name.to_owned(), Vec::with_capacity(technologies.len())))
        .collect();
    let mut traces = Vec::with_capacity(cells.len());
    for cell in cells {
        let spec = suite[cell.circuit].0;
        let ti = cell.technology.expect("priced grid cells carry a model");
        let technology = &technologies[ti];
        let run = cell
            .outcome
            .unwrap_or_else(|e| panic!("{} @ {}: flow failed: {e}", spec.name, technology.name));
        evaluated[cell.circuit]
            .1
            .push(tech::compare_with_table(&run.result, &tables[ti]));
        traces.push(PricedTrace {
            circuit: spec.name.to_owned(),
            technology: technology.name.clone(),
            trace: run.trace.clone(),
        });
    }
    GridEvaluation {
        technologies,
        evaluated,
        traces,
    }
}

/// One Fig 5 sample: buffers inserted by BUF alone vs original size.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Fig5Point {
    /// Benchmark name.
    pub name: String,
    /// Original mapped-netlist size (priced components).
    pub size: usize,
    /// Buffers inserted by buffer insertion alone.
    pub buffers: usize,
}

/// Runs buffer insertion alone over the given circuits (Fig 5) — the
/// BUF-only spec through the cached engine.
pub fn fig5_points(engine: &Engine, suite: &[(&'static BenchmarkSpec, Mig)]) -> Vec<Fig5Point> {
    let pipeline = PipelineSpec::map(false).insert_buffers(BufferStrategy::Asap);
    run_spec_over(engine, &pipeline, suite)
        .into_iter()
        .zip(suite)
        .map(|(run, (spec, _))| Fig5Point {
            name: spec.name.to_owned(),
            size: run.result.original_counts().priced_total(),
            buffers: run.result.buffers.expect("insertion pass ran").total(),
        })
        .collect()
}

/// Fits the Fig 5 power law to the sample points.
pub fn fig5_fit(points: &[Fig5Point]) -> PowerLaw {
    let samples: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.buffers > 0)
        .map(|p| (p.size as f64, p.buffers as f64))
        .collect();
    fit_power_law(&samples)
}

/// One Fig 7 row: critical-path increase per fan-out restriction.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Fig7Row {
    /// Benchmark name.
    pub name: String,
    /// Original critical-path length (mapped netlist).
    pub original_depth: u32,
    /// Relative depth increase for k = 2, 3, 4, 5 (e.g. 1.4 = +140 %).
    pub increase: [f64; 4],
}

/// Runs fan-out restriction alone for k ∈ {2,3,4,5} (Fig 7): four
/// FOk-only specs, each over the whole suite through the engine.
pub fn fig7_rows(engine: &Engine, suite: &[(&'static BenchmarkSpec, Mig)]) -> Vec<Fig7Row> {
    // Keep only the small Copy stats per run — the netlists of one
    // sweep are dropped (or cached) before the next sweep starts.
    let sweeps: Vec<Vec<wavepipe::FanoutRestriction>> = (2..=5u32)
        .map(|k| {
            let pipeline = PipelineSpec::map(false).restrict_fanout(k);
            run_spec_over(engine, &pipeline, suite)
                .into_iter()
                .map(|run| run.result.fanout.expect("restriction pass ran"))
                .collect()
        })
        .collect();
    suite
        .iter()
        .enumerate()
        .map(|(i, (spec, _))| Fig7Row {
            name: spec.name.to_owned(),
            original_depth: sweeps[0][i].depth_before,
            increase: std::array::from_fn(|k_index| sweeps[k_index][i].depth_increase()),
        })
        .collect()
}

/// Fig 8 aggregate: normalized component counts averaged over the suite.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Fig8Data {
    /// Normalized size after buffer insertion alone (paper: 3.81).
    pub buf_only: f64,
    /// Normalized size after FOk alone, k = 2..5 (paper: 2.48, 1.61,
    /// 1.35, 1.25).
    pub fo_only: [f64; 4],
    /// FOG share of the FOk-alone size (paper: .55, .26, .17, .13).
    pub fog_share: [f64; 4],
    /// Normalized size after FOk + BUF (paper: 9.74, 6.21, 5.30, 4.91).
    pub combined: [f64; 4],
    /// FOG share after FOk + BUF — equal to `fog_share` (paper
    /// observation (b): FOG count is independent of buffer insertion).
    pub combined_fog_share: [f64; 4],
}

/// Per-circuit Fig 8 sample.
struct Fig8Sample {
    buf_ratio: f64,
    fo_ratio: [f64; 4],
    fog_share: [f64; 4],
    combined_ratio: [f64; 4],
    combined_fog: [f64; 4],
}

/// Runs BUF and FOk+BUF over the suite and averages normalized sizes
/// (Fig 8). The five flow configurations are five declarative specs
/// swept through the engine; the BUF-only spec is the same cells Fig 5
/// runs, so on a shared engine one of the two is free. The FOk-*only*
/// numbers are not re-run — they are read off the combined run's
/// per-pass trace, whose `counts_after` for the restriction pass is
/// exactly the FOk-only netlist.
pub fn fig8_data(engine: &Engine, suite: &[(&'static BenchmarkSpec, Mig)]) -> Fig8Data {
    let buf_only = PipelineSpec::map(false).insert_buffers(BufferStrategy::Asap);
    let per_k: Vec<PipelineSpec> = (2..=5u32)
        .map(|k| {
            PipelineSpec::map(false)
                .restrict_fanout(k)
                .insert_buffers(BufferStrategy::Asap)
        })
        .collect();
    let runs: Vec<Vec<Arc<PipelineRun>>> = std::iter::once(&buf_only)
        .chain(per_k.iter())
        .map(|pipeline| run_spec_over(engine, pipeline, suite))
        .collect();

    let samples: Vec<Fig8Sample> = suite
        .iter()
        .enumerate()
        .map(|(ci, _)| {
            let buf = &runs[0][ci];
            let orig = buf.result.original_counts().priced_total() as f64;
            let mut sample = Fig8Sample {
                buf_ratio: buf.result.pipelined_counts().priced_total() as f64 / orig,
                fo_ratio: [0.0; 4],
                fog_share: [0.0; 4],
                combined_ratio: [0.0; 4],
                combined_fog: [0.0; 4],
            };
            for i in 0..per_k.len() {
                let full = &runs[1 + i][ci];
                // The netlist right after the restriction pass *is* the
                // FOk-only result; its counts are in the trace.
                let c = full
                    .trace
                    .iter()
                    .find(|p| p.pass.starts_with("fanout_restriction"))
                    .expect("combined pipeline restricts fan-out")
                    .counts_after;
                sample.fo_ratio[i] = c.priced_total() as f64 / orig;
                sample.fog_share[i] = c.fog as f64 / orig;

                let c = full.result.pipelined_counts();
                sample.combined_ratio[i] = c.priced_total() as f64 / orig;
                sample.combined_fog[i] = c.fog as f64 / orig;
            }
            sample
        })
        .collect();

    let avg = |pick: &dyn Fn(&Fig8Sample) -> f64| {
        tech::mean(&samples.iter().map(pick).collect::<Vec<_>>())
    };
    Fig8Data {
        buf_only: avg(&|s| s.buf_ratio),
        fo_only: std::array::from_fn(|i| avg(&|s| s.fo_ratio[i])),
        fog_share: std::array::from_fn(|i| avg(&|s| s.fog_share[i])),
        combined: std::array::from_fn(|i| avg(&|s| s.combined_ratio[i])),
        combined_fog_share: std::array::from_fn(|i| avg(&|s| s.combined_fog[i])),
    }
}

/// Fig 9 aggregate: T/A and T/P gains per technology, averaged over the
/// suite (both arithmetic mean, as the paper reports, and geometric
/// mean, the fairer average for ratios).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Fig9Data {
    /// Technology name.
    pub technology: String,
    /// Arithmetic-mean T/A gain (paper: 5× SWD, 8× QCA, 3× NML).
    pub ta_mean: f64,
    /// Arithmetic-mean T/P gain (paper: 23× SWD, 13× QCA, 5× NML).
    pub tp_mean: f64,
    /// Geometric-mean T/A gain.
    pub ta_geomean: f64,
    /// Geometric-mean T/P gain.
    pub tp_geomean: f64,
}

/// Runs the full flow (FO3 + BUF, the paper's §V configuration) over
/// the circuit × technology grid and returns the per-circuit
/// comparisons (Fig 9 + Table II source data). Thin wrapper over
/// [`evaluate_suite_grid`] for callers that don't need the priced
/// traces.
pub fn evaluate_suite(
    engine: &Engine,
    suite: &[(&'static BenchmarkSpec, Mig)],
) -> Vec<(String, Vec<tech::Comparison>)> {
    evaluate_suite_grid(engine, suite).evaluated
}

/// Aggregates [`evaluate_suite`] output into Fig 9 bars.
pub fn fig9_data(evaluated: &[(String, Vec<tech::Comparison>)]) -> Vec<Fig9Data> {
    let technologies = Technology::all();
    technologies
        .iter()
        .enumerate()
        .map(|(ti, t)| {
            let ta: Vec<f64> = evaluated.iter().map(|(_, c)| c[ti].ta_gain()).collect();
            let tp: Vec<f64> = evaluated.iter().map(|(_, c)| c[ti].tp_gain()).collect();
            Fig9Data {
                technology: t.name.clone(),
                ta_mean: tech::mean(&ta),
                tp_mean: tech::mean(&tp),
                ta_geomean: tech::geometric_mean(&ta),
                tp_geomean: tech::geometric_mean(&tp),
            }
        })
        .collect()
}

/// Table II rows for every technology, read off an already-computed
/// grid sweep. The grid must cover the paper's seven selected
/// benchmarks — `repro_all` hands in the full-suite grid, the `table2`
/// binary a grid over just the selection.
///
/// # Panics
///
/// Panics if a Table II benchmark is missing from the grid.
pub fn table2_from_grid(grid: &GridEvaluation) -> Vec<(String, Vec<BenchmarkRow>)> {
    rows_from_grid(grid, &benchsuite::TABLE2_SELECTION)
}

/// [`table2_from_grid`] for an arbitrary benchmark selection: one row
/// table per technology, rows in `selection` order.
///
/// # Panics
///
/// Panics if a selected benchmark is missing from the grid.
pub fn rows_from_grid(
    grid: &GridEvaluation,
    selection: &[&str],
) -> Vec<(String, Vec<BenchmarkRow>)> {
    grid.technologies
        .iter()
        .enumerate()
        .map(|(ti, technology)| {
            let rows = selection
                .iter()
                .map(|name| {
                    let (_, comparisons) = grid
                        .evaluated
                        .iter()
                        .find(|(n, _)| n == name)
                        .unwrap_or_else(|| panic!("benchmark {name} not in the grid"));
                    BenchmarkRow {
                        benchmark: (*name).to_owned(),
                        comparison: comparisons[ti].clone(),
                    }
                })
                .collect();
            (technology.name.clone(), rows)
        })
        .collect()
}

/// Ablation: ASAP vs retimed buffer insertion over the suite.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RetimingAblation {
    /// Benchmark name.
    pub name: String,
    /// Buffers inserted against ASAP levels (the paper's Algorithm 1).
    pub asap_buffers: usize,
    /// Buffers inserted against hill-climbed levels.
    pub retimed_buffers: usize,
}

impl RetimingAblation {
    /// Fraction of buffers saved by retiming.
    pub fn saving(&self) -> f64 {
        if self.asap_buffers == 0 {
            0.0
        } else {
            1.0 - self.retimed_buffers as f64 / self.asap_buffers as f64
        }
    }
}

/// Runs the retiming ablation: the same FO3 spec with the two insertion
/// strategies swapped — a one-line spec edit. The ASAP arm is the
/// paper's default pipeline, so on a shared engine it is served from
/// the cache of whichever driver ran it first.
pub fn retiming_ablation(
    engine: &Engine,
    suite: &[(&'static BenchmarkSpec, Mig)],
) -> Vec<RetimingAblation> {
    let strategy_spec = |strategy| {
        PipelineSpec::map(false)
            .restrict_fanout(3)
            .insert_buffers(strategy)
            .verify(Some(3))
    };
    // Reduce each suite run to its buffer totals immediately so two
    // suites' worth of netlists are never alive at once (beyond what
    // the engine cache retains).
    let buffer_totals = |strategy| -> Vec<usize> {
        run_spec_over(engine, &strategy_spec(strategy), suite)
            .into_iter()
            .map(|run| run.result.buffers.expect("insertion ran").total())
            .collect()
    };
    let asap = buffer_totals(BufferStrategy::Asap);
    let retimed = buffer_totals(BufferStrategy::Retimed);
    suite
        .iter()
        .zip(asap.into_iter().zip(retimed))
        .map(
            |((spec, _), (asap_buffers, retimed_buffers))| RetimingAblation {
                name: spec.name.to_owned(),
                asap_buffers,
                retimed_buffers,
            },
        )
        .collect()
}

/// Ablation: reference mapping vs inversion-minimized mapping, priced
/// on QCA (where the inverter is 10×/7×/10× a cell).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct InverterAblation {
    /// Benchmark name.
    pub name: String,
    /// Inverters under the reference mapping.
    pub plain_inv: usize,
    /// Inverters under the polarity local search.
    pub min_inv: usize,
    /// QCA wave-pipelined area under the reference mapping (µm²).
    pub plain_qca_area: f64,
    /// QCA wave-pipelined area under the minimized mapping (µm²).
    pub min_qca_area: f64,
}

impl InverterAblation {
    /// Fraction of inverters removed.
    pub fn inv_saving(&self) -> f64 {
        if self.plain_inv == 0 {
            0.0
        } else {
            1.0 - self.min_inv as f64 / self.plain_inv as f64
        }
    }
}

/// Runs the inversion-minimization ablation over the given circuits:
/// the default flow with the mapping pass swapped (a `minimize_inverters`
/// toggle on the spec).
pub fn inverter_ablation(
    engine: &Engine,
    suite: &[(&'static BenchmarkSpec, Mig)],
) -> Vec<InverterAblation> {
    let qca = Technology::qca();
    let plain_runs = run_spec_over(
        engine,
        &PipelineSpec::for_config(FlowConfig::default()),
        suite,
    );
    let min_runs = run_spec_over(
        engine,
        &PipelineSpec::for_config(FlowConfig {
            minimize_inverters: true,
            ..FlowConfig::default()
        }),
        suite,
    );
    suite
        .iter()
        .zip(plain_runs.into_iter().zip(min_runs))
        .map(|((spec, _), (plain, min))| InverterAblation {
            name: spec.name.to_owned(),
            plain_inv: plain.result.original.counts().inv,
            min_inv: min.result.original.counts().inv,
            plain_qca_area: tech::evaluate(
                &plain.result.pipelined,
                &qca,
                tech::OperatingMode::WavePipelined,
            )
            .area
            .value(),
            min_qca_area: tech::evaluate(
                &min.result.pipelined,
                &qca,
                tech::OperatingMode::WavePipelined,
            )
            .area
            .value(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tech::compare;

    fn quick_suite() -> Vec<(&'static BenchmarkSpec, Mig)> {
        build_suite(Some(&QUICK_SUBSET))
    }

    #[test]
    fn fig5_buffers_grow_with_size() {
        let engine = engine();
        let suite = quick_suite();
        let points = fig5_points(&engine, &suite);
        assert_eq!(points.len(), QUICK_SUBSET.len());
        let fit = fig5_fit(&points);
        assert!(fit.exponent > 0.0, "buffers must grow with size");
    }

    #[test]
    fn fig7_k2_dominates_k5() {
        let engine = engine();
        let suite = quick_suite();
        for row in fig7_rows(&engine, &suite) {
            assert!(
                row.increase[0] >= row.increase[3],
                "{}: k=2 increase {} < k=5 increase {}",
                row.name,
                row.increase[0],
                row.increase[3]
            );
        }
    }

    #[test]
    fn fig8_orderings_match_the_paper() {
        let engine = engine();
        let suite = quick_suite();
        let d = fig8_data(&engine, &suite);
        assert!(d.buf_only > 1.0);
        // FO ratios fall as the limit loosens.
        assert!(d.fo_only[0] > d.fo_only[1]);
        assert!(d.fo_only[1] > d.fo_only[2]);
        assert!(d.fo_only[2] > d.fo_only[3]);
        // Combined dominates both individual passes.
        for i in 0..4 {
            assert!(d.combined[i] > d.buf_only.max(d.fo_only[i]));
            // Observation (b): FOG count independent of BUF.
            assert!((d.fog_share[i] - d.combined_fog_share[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn fig9_gains_exceed_one_on_deep_suites() {
        let engine = engine();
        let suite = build_suite(Some(&["MUL16", "HAMMING", "CRC8x64"]));
        let evaluated = evaluate_suite(&engine, &suite);
        for f in fig9_data(&evaluated) {
            assert!(f.ta_mean > 1.0, "{}: T/A {}", f.technology, f.ta_mean);
            assert!(f.tp_mean > 1.0, "{}: T/P {}", f.technology, f.tp_mean);
        }
    }

    #[test]
    fn inverter_ablation_never_loses() {
        let engine = engine();
        let suite = quick_suite();
        for row in inverter_ablation(&engine, &suite) {
            assert!(
                row.min_inv <= row.plain_inv,
                "{}: min-inv {} > plain {}",
                row.name,
                row.min_inv,
                row.plain_inv
            );
        }
    }

    #[test]
    fn retiming_never_loses() {
        let engine = engine();
        let suite = quick_suite();
        for row in retiming_ablation(&engine, &suite) {
            assert!(
                row.retimed_buffers <= row.asap_buffers,
                "{}: retimed {} > asap {}",
                row.name,
                row.retimed_buffers,
                row.asap_buffers
            );
            assert!(row.saving() >= 0.0);
        }
    }

    #[test]
    fn drivers_share_the_engine_cache() {
        // Fig 8's BUF-only column is exactly Fig 5's sweep, and the
        // retiming ablation's ASAP arm is the inverter ablation's
        // reference arm — on one engine the overlap is free.
        let engine = engine();
        let suite = build_suite(Some(&["SASC", "ALU16"]));
        fig5_points(&engine, &suite);
        let after_fig5 = engine.stats();
        fig8_data(&engine, &suite);
        let after_fig8 = engine.stats();
        assert!(
            after_fig8.cache_hits >= after_fig5.cache_hits + suite.len() as u64,
            "fig8 must re-serve fig5's BUF-only cells: {after_fig8:?}"
        );

        inverter_ablation(&engine, &suite);
        let before = engine.stats();
        retiming_ablation(&engine, &suite);
        let after = engine.stats();
        assert!(
            after.cache_hits >= before.cache_hits + suite.len() as u64,
            "retiming's ASAP arm must be cached: {before:?} -> {after:?}"
        );

        // And a verbatim re-run of a whole driver executes nothing.
        let before = engine.stats();
        fig5_points(&engine, &suite);
        let after = engine.stats();
        assert_eq!(after.passes_executed, before.passes_executed);
        assert_eq!(after.cache_misses, before.cache_misses);
    }

    #[test]
    fn grid_traces_cover_every_cell_of_every_benchmark() {
        let engine = engine();
        let suite = build_suite(Some(&["SASC", "HAMMING"]));
        let grid = evaluate_suite_grid(&engine, &suite);
        // One priced trace per (circuit, technology) cell.
        assert_eq!(grid.traces.len(), 2 * grid.technologies.len());
        for t in &grid.traces {
            let name = format!("{} @ {}", t.circuit, t.technology);
            assert_eq!(t.trace.len(), 4, "{name}: map + FO + BUF + verify");
            assert!(t.trace.iter().any(|p| p.added.fog > 0), "{name}");
            assert!(t.trace.iter().any(|p| p.added.buf > 0), "{name}");
            for pass in &t.trace {
                let priced = pass.priced.as_ref().expect("grid runs are priced");
                assert_eq!(priced.model, t.technology, "{name}");
                assert!(priced.area_delta() >= 0.0, "{name}: flow only adds");
            }
        }
    }

    #[test]
    fn benchmark_rows_read_off_the_grid() {
        let engine = engine();
        let selection = ["HAMMING", "SASC"];
        let suite = build_suite(Some(&["SASC", "HAMMING"]));
        let grid = evaluate_suite_grid(&engine, &suite);
        let tables = rows_from_grid(&grid, &selection);
        assert_eq!(tables.len(), 3);
        for (technology, rows) in &tables {
            // Rows come back in selection order, not suite order.
            assert_eq!(rows.len(), 2);
            for (row, name) in rows.iter().zip(selection) {
                assert_eq!(row.benchmark, name, "{technology}");
                assert_eq!(row.comparison.technology, *technology);
            }
        }
    }

    #[test]
    fn parallel_suite_evaluation_matches_serial_flow() {
        // The cached grid driver must be a pure parallelization:
        // identical results to one-at-a-time `run_flow`.
        let engine = engine();
        let suite = build_suite(Some(&["SASC", "ALU16"]));
        let evaluated = evaluate_suite(&engine, &suite);
        for ((spec, g), (name, comparisons)) in suite.iter().zip(&evaluated) {
            assert_eq!(spec.name, name);
            let serial = wavepipe::run_flow(g, FlowConfig::default()).unwrap();
            let technologies = Technology::all();
            for (t, c) in technologies.iter().zip(comparisons) {
                assert_eq!(compare(&serial, t), *c);
            }
        }
    }
}
