//! Criterion performance benches for the two synthesis algorithms
//! (buffer insertion and fan-out restriction) and the end-to-end flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wavepipe::{insert_buffers, netlist_from_mig, restrict_fanout, run_flow, FlowConfig};

fn benchmark_mig(name: &str) -> mig::Mig {
    benchsuite::find(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .build()
}

fn bench_buffer_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_insertion");
    for name in ["SASC", "DES_AREA", "MUL16", "HAMMING"] {
        let base = netlist_from_mig(&benchmark_mig(name));
        group.bench_with_input(BenchmarkId::from_parameter(name), &base, |b, base| {
            b.iter(|| {
                let mut n = base.clone();
                insert_buffers(&mut n)
            })
        });
    }
    group.finish();
}

fn bench_fanout_restriction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout_restriction");
    for name in ["SASC", "DES_AREA", "MUL16", "HAMMING"] {
        let base = netlist_from_mig(&benchmark_mig(name));
        for k in [2u32, 3] {
            group.bench_with_input(
                BenchmarkId::new(name, k),
                &(base.clone(), k),
                |b, (base, k)| {
                    b.iter(|| {
                        let mut n = base.clone();
                        restrict_fanout(&mut n, *k)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_full_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_flow");
    group.sample_size(10);
    for name in ["SASC", "MUL16", "CRC8x64"] {
        let g = benchmark_mig(name);
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| run_flow(g, FlowConfig::default()).expect("flow verifies"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_buffer_insertion,
    bench_fanout_restriction,
    bench_full_flow
);
criterion_main!(benches);
