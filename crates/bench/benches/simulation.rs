//! Criterion benches for simulation machinery: combinational golden
//! evaluation, bit-parallel MIG simulation and three-phase wave
//! streaming.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavepipe::{run_flow, FlowConfig, WaveSimulator};

fn bench_wave_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("wave_streaming");
    group.sample_size(10);
    for name in ["SASC", "MUL8", "ALU16"] {
        let g = benchsuite::find(name).expect("known benchmark").build();
        let flow = run_flow(&g, FlowConfig::default()).expect("flow verifies");
        let mut rng = StdRng::seed_from_u64(99);
        let waves: Vec<Vec<bool>> = (0..50)
            .map(|_| (0..g.input_count()).map(|_| rng.gen()).collect())
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(flow, waves),
            |b, (flow, waves)| {
                let sim = WaveSimulator::new(&flow.pipelined);
                b.iter(|| sim.run(waves))
            },
        );
    }
    group.finish();
}

fn bench_mig_word_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mig_word_simulation");
    for name in ["MUL16", "HAMMING", "CRC8x64"] {
        let g = benchsuite::find(name).expect("known benchmark").build();
        let mut rng = StdRng::seed_from_u64(7);
        let inputs: Vec<u64> = (0..g.input_count()).map(|_| rng.gen()).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(g, inputs),
            |b, (g, inputs)| {
                let sim = mig::Simulator::new(g);
                b.iter(|| sim.eval_words(inputs))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wave_streaming, bench_mig_word_simulation);
criterion_main!(benches);
