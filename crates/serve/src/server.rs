//! The daemon: a TCP front-end over one shared [`Engine`].
//!
//! Threading model (`std` only — no async runtime):
//!
//! - one **acceptor** thread blocks on [`TcpListener::accept`];
//! - each connection gets a **reader** thread (parses request lines,
//!   enqueues jobs) and a **writer** thread (drains a bounded outbound
//!   queue onto the socket);
//! - a fixed pool of **worker** threads pops jobs from one bounded
//!   queue and executes them on the shared engine, streaming cell
//!   events back through the owning client's outbound queue.
//!
//! Identical in-flight specs are coalesced (keyed on
//! [`FlowSpec::content_hash`]): one worker executes, the rest block on
//! the [`Coalescer`] slot and replay the shared result to their own
//! clients. Slow clients never stall the pool — streaming cell events
//! are shed (default) or applied as backpressure at the client's own
//! outbound queue, and terminal events always block until delivered.
//!
//! [`Server::shutdown`] is graceful: stop accepting, half-close every
//! client socket (no new requests), drain queued and in-flight jobs to
//! their terminal events, then join every thread and report the final
//! [`ServeMetrics`].

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use wavepipe::{Engine, EngineCell, EngineRun, FlowSpec};

use crate::coalesce::Coalescer;
use crate::protocol::{cell_event, done_event, Control, Event, Request, ServeMetrics};

/// How long the writer thread may block on one socket write before it
/// declares the client dead and disconnects it.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Daemon tuning knobs. Every field has a `WAVEPIPE_SERVE_*`
/// environment override — see [`ServeConfig::from_env`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads executing specs (`WAVEPIPE_SERVE_WORKERS`).
    pub workers: usize,
    /// Bound of the shared job queue; readers block enqueueing past it
    /// (`WAVEPIPE_SERVE_QUEUE`).
    pub queue_depth: usize,
    /// Bound of each client's outbound event queue
    /// (`WAVEPIPE_SERVE_CLIENT_QUEUE`).
    pub client_queue: usize,
    /// When `true` (default), streaming cell events to a client whose
    /// outbound queue is full are dropped (the terminal `done`/`error`
    /// still blocks until delivered). When `false`, full queues apply
    /// backpressure to the worker instead (`WAVEPIPE_SERVE_SHED`).
    pub shed_slow_clients: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 16),
            queue_depth: 256,
            client_queue: 1024,
            shed_slow_clients: true,
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.parse() {
        Ok(value) => Some(value),
        Err(_) => {
            eprintln!("warning: ignoring unparsable {name}={raw}");
            None
        }
    }
}

impl ServeConfig {
    /// The defaults with any `WAVEPIPE_SERVE_{WORKERS,QUEUE,
    /// CLIENT_QUEUE,SHED}` environment overrides applied. Zero worker
    /// or queue values are clamped up to 1.
    pub fn from_env() -> ServeConfig {
        let default = ServeConfig::default();
        ServeConfig {
            workers: env_parse("WAVEPIPE_SERVE_WORKERS")
                .unwrap_or(default.workers)
                .max(1),
            queue_depth: env_parse("WAVEPIPE_SERVE_QUEUE")
                .unwrap_or(default.queue_depth)
                .max(1),
            client_queue: env_parse("WAVEPIPE_SERVE_CLIENT_QUEUE")
                .unwrap_or(default.client_queue)
                .max(1),
            shed_slow_clients: match std::env::var("WAVEPIPE_SERVE_SHED").as_deref() {
                Ok("0") | Ok("false") | Ok("no") => false,
                Ok("1") | Ok("true") | Ok("yes") => true,
                _ => default.shed_slow_clients,
            },
        }
    }
}

/// Recover a poisoned lock: the daemon keeps serving after a panicking
/// request, and every queue/registry mutation is panic-free, so a
/// poisoned guard is never torn.
fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A run request bound for the worker pool.
struct Job {
    id: u64,
    spec: FlowSpec,
    out: ClientSender,
}

/// The sending half of one client's bounded outbound queue.
#[derive(Clone)]
struct ClientSender {
    tx: SyncSender<String>,
    shed: bool,
}

impl ClientSender {
    /// Streaming cell events: shed when the queue is full (shed mode)
    /// or block (backpressure mode). A disconnected client is ignored.
    fn send_streaming(&self, metrics: &Metrics, line: String) {
        metrics.cells_streamed.fetch_add(1, Ordering::Relaxed);
        if self.shed {
            if let Err(TrySendError::Full(_)) = self.tx.try_send(line) {
                metrics.cells_shed.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            let _ = self.tx.send(line);
        }
    }

    /// Terminal and control events: always block until queued.
    fn send_critical(&self, line: String) {
        let _ = self.tx.send(line);
    }
}

#[derive(Default)]
struct Metrics {
    requests: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    cells_streamed: AtomicU64,
    cells_shed: AtomicU64,
    clients: AtomicU64,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Jobs popped but not yet finished.
    in_flight: usize,
    /// Set once by [`Server::shutdown`]; no job enters after this.
    stopping: bool,
}

struct Shared {
    engine: Arc<Engine>,
    config: ServeConfig,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    drained: Condvar,
    coalescer: Coalescer<Result<Arc<EngineRun>, String>>,
    metrics: Metrics,
    /// Client sockets by connection id, for the shutdown half-close.
    clients: Mutex<HashMap<u64, TcpStream>>,
    client_threads: Mutex<Vec<JoinHandle<()>>>,
    next_client: AtomicU64,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
}

impl Shared {
    fn gather_metrics(&self) -> ServeMetrics {
        ServeMetrics {
            requests: self.metrics.requests.load(Ordering::Relaxed),
            completed: self.metrics.completed.load(Ordering::Relaxed),
            failed: self.metrics.failed.load(Ordering::Relaxed),
            rejected: self.metrics.rejected.load(Ordering::Relaxed),
            coalesced: self.coalescer.coalesced(),
            executed: self.coalescer.executed(),
            cells_streamed: self.metrics.cells_streamed.load(Ordering::Relaxed),
            cells_shed: self.metrics.cells_shed.load(Ordering::Relaxed),
            clients: self.metrics.clients.load(Ordering::Relaxed),
            engine: self.engine.stats(),
        }
    }

    /// Executes one job end to end and delivers its terminal event.
    fn process(&self, job: Job) {
        let Job { id, spec, out } = job;
        let key = spec.content_hash();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            self.coalescer.run(key, || {
                let sink = |cell: &EngineCell| {
                    out.send_streaming(&self.metrics, cell_event(id, cell).to_line());
                };
                self.engine
                    .run_streaming(&spec, sink)
                    .map(Arc::new)
                    .map_err(|e| e.to_string())
            })
        }));
        let (result, coalesced) = match outcome {
            Ok(pair) => pair,
            Err(_) => {
                // A panicking request (e.g. a resolver bug) costs only
                // its own client an error event; the engine cache
                // recovers itself and the pool keeps serving.
                self.metrics.failed.fetch_add(1, Ordering::Relaxed);
                out.send_critical(
                    Event::Error {
                        id,
                        message: "request panicked while executing; see server log".to_owned(),
                    }
                    .to_line(),
                );
                return;
            }
        };
        match result {
            Ok(run) => {
                if coalesced {
                    // The leader streamed cells only to its own client;
                    // replay the shared cells under this request's id.
                    for cell in &run.cells {
                        out.send_streaming(&self.metrics, cell_event(id, cell).to_line());
                    }
                }
                out.send_critical(done_event(id, &run, coalesced).to_line());
                self.metrics.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(message) => {
                out.send_critical(Event::Error { id, message }.to_line());
                self.metrics.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = relock(&self.queue);
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        q.in_flight += 1;
                        self.not_full.notify_one();
                        break Some(job);
                    }
                    if q.stopping {
                        break None;
                    }
                    q = self
                        .not_empty
                        .wait(q)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            };
            let Some(job) = job else { return };
            self.process(job);
            let mut q = relock(&self.queue);
            q.in_flight -= 1;
            if q.in_flight == 0 && q.jobs.is_empty() {
                self.drained.notify_all();
            }
        }
    }

    /// Queues a run, blocking while the job queue is full. Returns
    /// `false` if the daemon is draining and the job was rejected.
    fn enqueue(&self, job: Job) -> bool {
        let mut q = relock(&self.queue);
        loop {
            if q.stopping {
                return false;
            }
            if q.jobs.len() < self.config.queue_depth {
                q.jobs.push_back(job);
                self.not_empty.notify_one();
                return true;
            }
            q = self
                .not_full
                .wait(q)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// The per-connection reader: parses request lines until EOF (or
    /// the shutdown half-close) and feeds the worker queue.
    fn serve_client(self: &Arc<Self>, stream: TcpStream, client_id: u64) {
        let (tx, rx) = mpsc::sync_channel::<String>(self.config.client_queue);
        let sender = ClientSender {
            tx,
            shed: self.config.shed_slow_clients,
        };

        let writer_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                relock(&self.clients).remove(&client_id);
                return;
            }
        };
        let _ = writer_stream.set_write_timeout(Some(WRITE_TIMEOUT));
        let writer = std::thread::spawn(move || {
            let mut out = BufWriter::new(writer_stream);
            while let Ok(line) = rx.recv() {
                if out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .is_err()
                {
                    return; // dead client; drop the queue and unwind
                }
                // Batch whatever is already queued before flushing.
                while let Ok(line) = rx.try_recv() {
                    if out
                        .write_all(line.as_bytes())
                        .and_then(|()| out.write_all(b"\n"))
                        .is_err()
                    {
                        return;
                    }
                }
                if out.flush().is_err() {
                    return;
                }
            }
            let _ = out.flush();
        });

        let reader = BufReader::new(&stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            match Request::parse(&line) {
                Err(e) => sender.send_critical(
                    Event::Error {
                        id: 0,
                        message: format!("malformed request: {}", e.0),
                    }
                    .to_line(),
                ),
                Ok(Request::Control { id, control }) => match control {
                    Control::Ping => sender.send_critical(Event::Pong { id }.to_line()),
                    Control::Stats => sender.send_critical(
                        Event::Stats {
                            id,
                            config: self.config,
                            metrics: self.gather_metrics(),
                        }
                        .to_line(),
                    ),
                    Control::Shutdown => {
                        sender.send_critical(Event::ShuttingDown { id }.to_line());
                        *relock(&self.shutdown_requested) = true;
                        self.shutdown_cv.notify_all();
                    }
                },
                Ok(Request::Run { id, spec }) => {
                    self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                    let accepted = self.enqueue(Job {
                        id,
                        spec,
                        out: sender.clone(),
                    });
                    if !accepted {
                        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                        sender.send_critical(
                            Event::Error {
                                id,
                                message: "server is shutting down; request rejected".to_owned(),
                            }
                            .to_line(),
                        );
                    }
                }
            }
        }

        // EOF (or half-close). In-flight jobs still hold sender clones;
        // the writer drains until the last clone drops, then exits.
        drop(sender);
        let _ = writer.join();
        relock(&self.clients).remove(&client_id);
    }
}

/// A running daemon. Dropping without [`Server::shutdown`] aborts the
/// threads with the process; call `shutdown` for a graceful drain.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and starts the acceptor and worker pool over the
    /// shared `engine`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            config,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                in_flight: 0,
                stopping: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            drained: Condvar::new(),
            coalescer: Coalescer::new(),
            metrics: Metrics::default(),
            clients: Mutex::new(HashMap::new()),
            client_threads: Mutex::new(Vec::new()),
            next_client: AtomicU64::new(0),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || shared.worker_loop())
            })
            .collect();

        let acceptor = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if relock(&shared.queue).stopping {
                        return; // woken by the shutdown dummy connect
                    }
                    let Ok(stream) = stream else { continue };
                    shared.metrics.clients.fetch_add(1, Ordering::Relaxed);
                    let client_id = shared.next_client.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        relock(&shared.clients).insert(client_id, clone);
                    }
                    let worker_shared = shared.clone();
                    let handle = std::thread::spawn(move || {
                        worker_shared.serve_client(stream, client_id);
                    });
                    relock(&shared.client_threads).push(handle);
                }
            })
        };

        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A live counter snapshot.
    pub fn metrics(&self) -> ServeMetrics {
        self.shared.gather_metrics()
    }

    /// Blocks until some client sends the `shutdown` control.
    pub fn wait_shutdown_requested(&self) {
        let mut requested = relock(&self.shared.shutdown_requested);
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Gracefully drains and stops the daemon: no new connections or
    /// requests are accepted, every queued and in-flight run still
    /// delivers its terminal event, and all threads are joined. Returns
    /// the final metrics.
    pub fn shutdown(mut self) -> ServeMetrics {
        {
            let mut q = relock(&self.shared.queue);
            q.stopping = true;
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
        // Unblock the acceptor's accept() and join it.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Half-close every client: readers see EOF and stop feeding the
        // queue, but responses still flow out.
        for stream in relock(&self.shared.clients).values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        // Drain queued + in-flight jobs to their terminal events.
        {
            let mut q = relock(&self.shared.queue);
            while q.in_flight > 0 || !q.jobs.is_empty() {
                q = self
                    .shared
                    .drained
                    .wait(q)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let client_threads = std::mem::take(&mut *relock(&self.shared.client_threads));
        for handle in client_threads {
            let _ = handle.join();
        }
        self.shared.gather_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn tiny_spec(name: &str) -> FlowSpec {
        let mut g = mig::Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let m = g.add_maj(a, b, c);
        g.add_output("m", m);
        FlowSpec::new(name).inline_circuit("tiny", &g)
    }

    fn start_server() -> Server {
        let engine = Arc::new(Engine::new().with_resolver(benchsuite::build_mig));
        let config = ServeConfig {
            workers: 2,
            queue_depth: 16,
            client_queue: 64,
            shed_slow_clients: false,
        };
        Server::start(engine, "127.0.0.1:0", config).expect("bind loopback")
    }

    #[test]
    fn a_run_round_trips_with_streamed_cells() {
        let server = start_server();
        let mut client = Client::connect(server.local_addr()).expect("connect");
        client
            .send(&Request::Run {
                id: 11,
                spec: tiny_spec("round-trip"),
            })
            .expect("send");
        let (cells, done) = client.collect_run(11).expect("run completes");
        assert_eq!(cells.len(), 1, "one streamed cell event");
        match done {
            Event::Done {
                cells: n,
                failed,
                coalesced,
                ..
            } => {
                assert_eq!((n, failed), (1, 0));
                assert!(!coalesced, "nothing to coalesce with");
            }
            other => panic!("expected done, got {other:?}"),
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 1);
        assert_eq!(metrics.executed, 1);
    }

    #[test]
    fn controls_answer_and_shutdown_drains() {
        let server = start_server();
        let mut client = Client::connect(server.local_addr()).expect("connect");
        client
            .send(&Request::Control {
                id: 1,
                control: Control::Ping,
            })
            .expect("send ping");
        assert!(matches!(
            client.read_event().unwrap(),
            Event::Pong { id: 1 }
        ));

        client
            .send(&Request::Run {
                id: 2,
                spec: tiny_spec("pre-shutdown"),
            })
            .expect("send run");
        client
            .send(&Request::Control {
                id: 3,
                control: Control::Shutdown,
            })
            .expect("send shutdown");

        server.wait_shutdown_requested();
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 1, "queued run drained before exit");

        // The client still holds every event: the run's cell + done and
        // both control acks, then a clean EOF.
        let mut terminal = 0;
        let mut acked_shutdown = false;
        while let Some(event) = client.read_event_eof().expect("events then EOF") {
            match event {
                Event::Done { id: 2, .. } => terminal += 1,
                Event::ShuttingDown { id: 3 } => acked_shutdown = true,
                _ => {}
            }
        }
        assert_eq!(terminal, 1);
        assert!(acked_shutdown);
    }

    #[test]
    fn identical_in_flight_specs_coalesce_to_one_execution() {
        // Deterministic coalescing: occupy both workers with the same
        // spec is racy, so instead drive the coalescer through the
        // public surface with a spec big enough to overlap. We assert
        // the *sum* invariant: executed + coalesced == completed, and
        // the engine saw at most `executed` misses for the shared key.
        let server = start_server();
        let spec = FlowSpec::new("burst")
            .circuit("synth:dag:7:nodes=400,depth=12")
            .inline_circuit("pad", &{
                let mut g = mig::Mig::new();
                let a = g.add_input("a");
                let b = g.add_input("b");
                let m = g.add_maj(a, b, !a);
                g.add_output("m", m);
                g
            });
        let clients: Vec<_> = (0..4)
            .map(|i| {
                let addr = server.local_addr();
                let spec = spec.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .send(&Request::Run { id: i, spec })
                        .expect("send run");
                    let (_, done) = client.collect_run(i).expect("terminal event");
                    matches!(done, Event::Done { .. })
                })
            })
            .collect();
        for handle in clients {
            assert!(handle.join().unwrap(), "every request completed");
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 4);
        assert_eq!(
            metrics.executed + metrics.coalesced,
            4,
            "every run either executed or coalesced"
        );
        assert!(metrics.executed >= 1);
    }
}
