//! A minimal blocking client for the wire protocol — used by the load
//! generator, the smoke tests, and scripting against a live daemon.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{Event, Request};

/// One protocol connection. Requests may be pipelined; match responses
/// to requests with [`Event::id`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn protocol_error(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Writes one request line and flushes it.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        self.writer.write_all(request.to_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next event line, or `None` on a clean EOF.
    ///
    /// # Errors
    ///
    /// Socket errors, or [`InvalidData`](io::ErrorKind::InvalidData)
    /// for a line that is not a protocol event.
    pub fn read_event_eof(&mut self) -> io::Result<Option<Event>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            return Event::parse(line.trim_end())
                .map(Some)
                .map_err(|e| protocol_error(format!("bad event line: {}", e.0)));
        }
    }

    /// Reads the next event line; EOF is an error.
    ///
    /// # Errors
    ///
    /// Like [`Client::read_event_eof`], plus
    /// [`UnexpectedEof`](io::ErrorKind::UnexpectedEof).
    pub fn read_event(&mut self) -> io::Result<Event> {
        self.read_event_eof()?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Reads events until request `id`'s terminal event, collecting its
    /// streamed cell events along the way. Events for other pipelined
    /// request ids are discarded.
    ///
    /// # Errors
    ///
    /// Like [`Client::read_event`].
    pub fn collect_run(&mut self, id: u64) -> io::Result<(Vec<Event>, Event)> {
        let mut cells = Vec::new();
        loop {
            let event = self.read_event()?;
            if event.id() != id {
                continue;
            }
            if event.is_terminal() {
                return Ok((cells, event));
            }
            if matches!(event, Event::Cell { .. }) {
                cells.push(event);
            }
        }
    }
}
