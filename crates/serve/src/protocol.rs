//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one or more response events per request, each
//! on its own line. Requests are either **runs** — a full declarative
//! [`FlowSpec`] — or **controls** (ping / stats / shutdown):
//!
//! ```json
//! {"id": 1, "spec": {"name": "sweep", "circuits": ["SASC"], ...}}
//! {"id": 2, "control": "stats"}
//! ```
//!
//! A run answers with one `cell` event per grid cell as it completes
//! (streamed from the engine's worker threads; completion order, not
//! grid order) and exactly one terminal `done` or `error` event:
//!
//! ```json
//! {"id":1,"event":"cell","circuit":0,"technology":null,"cached":false,
//!  "ok":true,"depth":24,"waves_in_flight":8,"max_fanout":3,
//!  "components":512,"passes":4}
//! {"id":1,"event":"done","cells":1,"failed":0,"coalesced":false,
//!  "circuits":["SASC"],"technologies":[],"stats":{...}}
//! ```
//!
//! Responses carry the request's `id`, so clients may pipeline many
//! requests on one connection and match events by id. Cell events are
//! *streaming* (a slow client may have them shed under backpressure —
//! see the server docs); terminal events are always delivered.

use serde::{DeError, Deserialize, Serialize, Value};
use wavepipe::{EngineCell, EngineRun, EngineStats, FlowSpec};

use crate::server::ServeConfig;

/// Bumped on any wire-shape change.
pub const PROTOCOL_VERSION: u64 = 1;

/// A control verb (a request line with `"control"` instead of `"spec"`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Liveness probe; answered with a `pong` event.
    Ping,
    /// Server + engine counters; answered with a `stats` event.
    Stats,
    /// Ask the daemon to drain and exit; answered with a
    /// `shutting_down` event before the drain starts.
    Shutdown,
}

impl Control {
    fn tag(self) -> &'static str {
        match self {
            Control::Ping => "ping",
            Control::Stats => "stats",
            Control::Shutdown => "shutdown",
        }
    }

    fn parse(tag: &str) -> Result<Control, DeError> {
        match tag {
            "ping" => Ok(Control::Ping),
            "stats" => Ok(Control::Stats),
            "shutdown" => Ok(Control::Shutdown),
            other => Err(DeError(format!("unknown control verb `{other}`"))),
        }
    }
}

/// One request line.
#[derive(Debug)]
pub enum Request {
    /// Execute a spec on the shared engine.
    Run { id: u64, spec: FlowSpec },
    /// A control verb.
    Control { id: u64, control: Control },
}

fn object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn compact(value: &Value) -> String {
    serde_json::to_string(value).expect("value trees always render")
}

impl Request {
    /// Serializes to one compact JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Run { id, spec } => compact(&object(vec![
                ("id", Value::UInt(*id)),
                ("spec", spec.to_value()),
            ])),
            Request::Control { id, control } => compact(&object(vec![
                ("id", Value::UInt(*id)),
                ("control", Value::Str(control.tag().to_owned())),
            ])),
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`DeError`] on malformed JSON, a missing `id`, or a line that is
    /// neither a run (`spec`) nor a control.
    pub fn parse(line: &str) -> Result<Request, DeError> {
        let value: Value = serde_json::from_str(line).map_err(|e| DeError(e.to_string()))?;
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("request object"))?;
        let id: u64 = Deserialize::from_value(serde::field(fields, "id")?)?;
        if let Ok(spec) = serde::field(fields, "spec") {
            let spec = FlowSpec::from_value(spec)?;
            return Ok(Request::Run { id, spec });
        }
        if let Ok(control) = serde::field(fields, "control") {
            let tag: String = Deserialize::from_value(control)?;
            return Ok(Request::Control {
                id,
                control: Control::parse(&tag)?,
            });
        }
        Err(DeError::expected("`spec` or `control` in request"))
    }
}

/// Server-side counters reported by the `stats` control and the
/// daemon's shutdown summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Run requests accepted off the wire.
    pub requests: u64,
    /// Runs that finished with a `done` event.
    pub completed: u64,
    /// Runs that finished with an `error` event.
    pub failed: u64,
    /// Runs rejected because the daemon was already draining.
    pub rejected: u64,
    /// Runs served by joining an identical in-flight execution.
    pub coalesced: u64,
    /// Runs that actually executed on the engine (coalescing leaders).
    pub executed: u64,
    /// Cell events delivered (or attempted) to clients.
    pub cells_streamed: u64,
    /// Streaming cell events dropped on slow clients (shed mode).
    pub cells_shed: u64,
    /// Client connections accepted.
    pub clients: u64,
    /// Engine counter snapshot (cumulative).
    pub engine: EngineStats,
}

pub(crate) fn stats_to_value(stats: &EngineStats) -> Value {
    object(vec![
        ("cache_hits", Value::UInt(stats.cache_hits)),
        ("cache_misses", Value::UInt(stats.cache_misses)),
        ("passes_executed", Value::UInt(stats.passes_executed)),
        ("cones_reused", Value::UInt(stats.cones_reused)),
        ("cones_recomputed", Value::UInt(stats.cones_recomputed)),
        ("disk_hits", Value::UInt(stats.disk_hits)),
        ("disk_misses", Value::UInt(stats.disk_misses)),
        ("evictions", Value::UInt(stats.evictions)),
    ])
}

pub(crate) fn stats_from_value(value: &Value) -> Result<EngineStats, DeError> {
    let fields = value
        .as_object()
        .ok_or_else(|| DeError::expected("engine stats object"))?;
    let counter = |name: &str| -> Result<u64, DeError> {
        Deserialize::from_value(serde::field(fields, name)?)
    };
    Ok(EngineStats {
        cache_hits: counter("cache_hits")?,
        cache_misses: counter("cache_misses")?,
        passes_executed: counter("passes_executed")?,
        cones_reused: counter("cones_reused")?,
        cones_recomputed: counter("cones_recomputed")?,
        disk_hits: counter("disk_hits")?,
        disk_misses: counter("disk_misses")?,
        evictions: counter("evictions")?,
    })
}

fn config_to_value(config: &ServeConfig) -> Value {
    object(vec![
        ("workers", Value::UInt(config.workers as u64)),
        ("queue_depth", Value::UInt(config.queue_depth as u64)),
        ("client_queue", Value::UInt(config.client_queue as u64)),
        ("shed_slow_clients", Value::Bool(config.shed_slow_clients)),
    ])
}

fn config_from_value(value: &Value) -> Result<ServeConfig, DeError> {
    let fields = value
        .as_object()
        .ok_or_else(|| DeError::expected("serve config object"))?;
    let size = |name: &str| -> Result<usize, DeError> {
        Deserialize::from_value(serde::field(fields, name)?)
    };
    Ok(ServeConfig {
        workers: size("workers")?,
        queue_depth: size("queue_depth")?,
        client_queue: size("client_queue")?,
        shed_slow_clients: Deserialize::from_value(serde::field(fields, "shed_slow_clients")?)?,
    })
}

fn metrics_to_value(metrics: &ServeMetrics) -> Value {
    object(vec![
        ("requests", Value::UInt(metrics.requests)),
        ("completed", Value::UInt(metrics.completed)),
        ("failed", Value::UInt(metrics.failed)),
        ("rejected", Value::UInt(metrics.rejected)),
        ("coalesced", Value::UInt(metrics.coalesced)),
        ("executed", Value::UInt(metrics.executed)),
        ("cells_streamed", Value::UInt(metrics.cells_streamed)),
        ("cells_shed", Value::UInt(metrics.cells_shed)),
        ("clients", Value::UInt(metrics.clients)),
        ("engine", stats_to_value(&metrics.engine)),
    ])
}

fn metrics_from_value(value: &Value) -> Result<ServeMetrics, DeError> {
    let fields = value
        .as_object()
        .ok_or_else(|| DeError::expected("serve metrics object"))?;
    let counter = |name: &str| -> Result<u64, DeError> {
        Deserialize::from_value(serde::field(fields, name)?)
    };
    Ok(ServeMetrics {
        requests: counter("requests")?,
        completed: counter("completed")?,
        failed: counter("failed")?,
        rejected: counter("rejected")?,
        coalesced: counter("coalesced")?,
        executed: counter("executed")?,
        cells_streamed: counter("cells_streamed")?,
        cells_shed: counter("cells_shed")?,
        clients: counter("clients")?,
        engine: stats_from_value(serde::field(fields, "engine")?)?,
    })
}

/// One response line.
#[derive(Clone, Debug)]
pub enum Event {
    /// One grid cell of a run completed (streaming; may be shed).
    Cell {
        id: u64,
        /// Index into the run's circuit list.
        circuit: u64,
        /// Index into the run's technology list (`null` if cost-blind).
        technology: Option<u64>,
        /// Served from the engine cache (or a coalesced replay).
        cached: bool,
        /// Whether the cell verified. `false` carries `error`.
        ok: bool,
        /// Pipeline depth (verified cells).
        depth: Option<u64>,
        /// Waves in flight (verified cells).
        waves_in_flight: Option<u64>,
        /// Largest fan-out (verified cells).
        max_fanout: Option<u64>,
        /// Total components of the pipelined netlist.
        components: Option<u64>,
        /// Passes in the cell's trace.
        passes: u64,
        /// First pass failure, for `ok:false` cells.
        error: Option<String>,
    },
    /// Terminal success event of a run.
    Done {
        id: u64,
        cells: u64,
        /// Cells whose pipeline failed (present in the count above).
        failed: u64,
        /// Whether this run joined an identical in-flight execution.
        coalesced: bool,
        circuits: Vec<String>,
        technologies: Vec<String>,
        /// Per-run engine counters (exact, tallied by the run).
        stats: EngineStats,
    },
    /// Terminal failure event of a run (spec/lint/pipeline errors), or
    /// a malformed line (`id` 0 when the line had none).
    Error { id: u64, message: String },
    /// Answer to `ping`.
    Pong { id: u64 },
    /// Answer to `stats`.
    Stats {
        id: u64,
        /// The daemon's effective configuration.
        config: ServeConfig,
        metrics: ServeMetrics,
    },
    /// Answer to `shutdown`, sent before the drain begins.
    ShuttingDown { id: u64 },
}

fn opt_u64(value: Option<u64>) -> Value {
    value.map_or(Value::Null, Value::UInt)
}

fn from_opt_u64(value: &Value) -> Result<Option<u64>, DeError> {
    match value {
        Value::Null => Ok(None),
        other => Deserialize::from_value(other).map(Some),
    }
}

impl Event {
    /// Serializes to one compact JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let value = match self {
            Event::Cell {
                id,
                circuit,
                technology,
                cached,
                ok,
                depth,
                waves_in_flight,
                max_fanout,
                components,
                passes,
                error,
            } => object(vec![
                ("id", Value::UInt(*id)),
                ("event", Value::Str("cell".to_owned())),
                ("circuit", Value::UInt(*circuit)),
                ("technology", opt_u64(*technology)),
                ("cached", Value::Bool(*cached)),
                ("ok", Value::Bool(*ok)),
                ("depth", opt_u64(*depth)),
                ("waves_in_flight", opt_u64(*waves_in_flight)),
                ("max_fanout", opt_u64(*max_fanout)),
                ("components", opt_u64(*components)),
                ("passes", Value::UInt(*passes)),
                (
                    "error",
                    error
                        .as_ref()
                        .map_or(Value::Null, |e| Value::Str(e.clone())),
                ),
            ]),
            Event::Done {
                id,
                cells,
                failed,
                coalesced,
                circuits,
                technologies,
                stats,
            } => object(vec![
                ("id", Value::UInt(*id)),
                ("event", Value::Str("done".to_owned())),
                ("cells", Value::UInt(*cells)),
                ("failed", Value::UInt(*failed)),
                ("coalesced", Value::Bool(*coalesced)),
                (
                    "circuits",
                    Value::Array(circuits.iter().map(|c| Value::Str(c.clone())).collect()),
                ),
                (
                    "technologies",
                    Value::Array(technologies.iter().map(|t| Value::Str(t.clone())).collect()),
                ),
                ("stats", stats_to_value(stats)),
            ]),
            Event::Error { id, message } => object(vec![
                ("id", Value::UInt(*id)),
                ("event", Value::Str("error".to_owned())),
                ("message", Value::Str(message.clone())),
            ]),
            Event::Pong { id } => object(vec![
                ("id", Value::UInt(*id)),
                ("event", Value::Str("pong".to_owned())),
            ]),
            Event::Stats {
                id,
                config,
                metrics,
            } => object(vec![
                ("id", Value::UInt(*id)),
                ("event", Value::Str("stats".to_owned())),
                ("config", config_to_value(config)),
                ("metrics", metrics_to_value(metrics)),
            ]),
            Event::ShuttingDown { id } => object(vec![
                ("id", Value::UInt(*id)),
                ("event", Value::Str("shutting_down".to_owned())),
            ]),
        };
        compact(&value)
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// [`DeError`] on malformed JSON or an unknown event tag.
    pub fn parse(line: &str) -> Result<Event, DeError> {
        let value: Value = serde_json::from_str(line).map_err(|e| DeError(e.to_string()))?;
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("event object"))?;
        let id: u64 = Deserialize::from_value(serde::field(fields, "id")?)?;
        let event: String = Deserialize::from_value(serde::field(fields, "event")?)?;
        match event.as_str() {
            "cell" => Ok(Event::Cell {
                id,
                circuit: Deserialize::from_value(serde::field(fields, "circuit")?)?,
                technology: from_opt_u64(serde::field(fields, "technology")?)?,
                cached: Deserialize::from_value(serde::field(fields, "cached")?)?,
                ok: Deserialize::from_value(serde::field(fields, "ok")?)?,
                depth: from_opt_u64(serde::field(fields, "depth")?)?,
                waves_in_flight: from_opt_u64(serde::field(fields, "waves_in_flight")?)?,
                max_fanout: from_opt_u64(serde::field(fields, "max_fanout")?)?,
                components: from_opt_u64(serde::field(fields, "components")?)?,
                passes: Deserialize::from_value(serde::field(fields, "passes")?)?,
                error: match serde::field(fields, "error")? {
                    Value::Null => None,
                    other => Some(Deserialize::from_value(other)?),
                },
            }),
            "done" => Ok(Event::Done {
                id,
                cells: Deserialize::from_value(serde::field(fields, "cells")?)?,
                failed: Deserialize::from_value(serde::field(fields, "failed")?)?,
                coalesced: Deserialize::from_value(serde::field(fields, "coalesced")?)?,
                circuits: Deserialize::from_value(serde::field(fields, "circuits")?)?,
                technologies: Deserialize::from_value(serde::field(fields, "technologies")?)?,
                stats: stats_from_value(serde::field(fields, "stats")?)?,
            }),
            "error" => Ok(Event::Error {
                id,
                message: Deserialize::from_value(serde::field(fields, "message")?)?,
            }),
            "pong" => Ok(Event::Pong { id }),
            "stats" => Ok(Event::Stats {
                id,
                config: config_from_value(serde::field(fields, "config")?)?,
                metrics: metrics_from_value(serde::field(fields, "metrics")?)?,
            }),
            "shutting_down" => Ok(Event::ShuttingDown { id }),
            other => Err(DeError(format!("unknown event `{other}`"))),
        }
    }

    /// The request id the event answers.
    pub fn id(&self) -> u64 {
        match self {
            Event::Cell { id, .. }
            | Event::Done { id, .. }
            | Event::Error { id, .. }
            | Event::Pong { id }
            | Event::Stats { id, .. }
            | Event::ShuttingDown { id } => *id,
        }
    }

    /// Whether this is a run's terminal event (`done` or `error`).
    pub fn is_terminal(&self) -> bool {
        matches!(self, Event::Done { .. } | Event::Error { .. })
    }
}

/// Builds the streaming cell event for one finished grid cell.
pub fn cell_event(id: u64, cell: &EngineCell) -> Event {
    match &cell.outcome {
        Ok(run) => {
            let counts = run.result.pipelined.counts();
            let total =
                counts.inputs + counts.consts + counts.maj + counts.inv + counts.buf + counts.fog;
            let report = run.result.report.as_ref();
            Event::Cell {
                id,
                circuit: cell.circuit as u64,
                technology: cell.technology.map(|t| t as u64),
                cached: cell.cached,
                ok: true,
                depth: report.map(|r| u64::from(r.depth)),
                waves_in_flight: report.map(|r| u64::from(r.waves_in_flight)),
                max_fanout: report.map(|r| u64::from(r.max_fanout)),
                components: Some(total as u64),
                passes: run.trace.len() as u64,
                error: None,
            }
        }
        Err(e) => Event::Cell {
            id,
            circuit: cell.circuit as u64,
            technology: cell.technology.map(|t| t as u64),
            cached: cell.cached,
            ok: false,
            depth: None,
            waves_in_flight: None,
            max_fanout: None,
            components: None,
            passes: 0,
            error: Some(e.to_string()),
        },
    }
}

/// Builds the terminal `done` event for a collected run.
pub fn done_event(id: u64, run: &EngineRun, coalesced: bool) -> Event {
    Event::Done {
        id,
        cells: run.cells.len() as u64,
        failed: run.cells.iter().filter(|c| c.outcome.is_err()).count() as u64,
        coalesced,
        circuits: run.circuits.clone(),
        technologies: run.technologies.clone(),
        stats: run.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let mut g = mig::Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m = g.add_maj(a, b, !a);
        g.add_output("m", m);
        let spec = FlowSpec::new("wire").inline_circuit("tiny", &g);

        let line = Request::Run { id: 7, spec }.to_line();
        assert!(!line.contains('\n'), "one request, one line");
        match Request::parse(&line).unwrap() {
            Request::Run { id, spec } => {
                assert_eq!(id, 7);
                assert_eq!(spec.name, "wire");
                assert_eq!(spec.circuits.len(), 1);
            }
            other => panic!("parsed {other:?}"),
        }

        for control in [Control::Ping, Control::Stats, Control::Shutdown] {
            let line = Request::Control { id: 3, control }.to_line();
            match Request::parse(&line).unwrap() {
                Request::Control { id, control: back } => {
                    assert_eq!((id, back), (3, control));
                }
                other => panic!("parsed {other:?}"),
            }
        }
    }

    #[test]
    fn events_round_trip() {
        let events = vec![
            Event::Cell {
                id: 1,
                circuit: 2,
                technology: Some(0),
                cached: true,
                ok: true,
                depth: Some(24),
                waves_in_flight: Some(8),
                max_fanout: Some(3),
                components: Some(512),
                passes: 4,
                error: None,
            },
            Event::Cell {
                id: 1,
                circuit: 0,
                technology: None,
                cached: false,
                ok: false,
                depth: None,
                waves_in_flight: None,
                max_fanout: None,
                components: None,
                passes: 0,
                error: Some("pass `verify` failed".to_owned()),
            },
            Event::Done {
                id: 1,
                cells: 2,
                failed: 1,
                coalesced: true,
                circuits: vec!["SASC".to_owned()],
                technologies: vec![],
                stats: EngineStats {
                    cache_hits: 5,
                    ..EngineStats::default()
                },
            },
            Event::Error {
                id: 9,
                message: "unknown circuit `NOPE`".to_owned(),
            },
            Event::Pong { id: 4 },
            Event::Stats {
                id: 5,
                config: ServeConfig {
                    workers: 4,
                    queue_depth: 256,
                    client_queue: 1024,
                    shed_slow_clients: true,
                },
                metrics: ServeMetrics {
                    requests: 10,
                    completed: 9,
                    coalesced: 3,
                    ..ServeMetrics::default()
                },
            },
            Event::ShuttingDown { id: 6 },
        ];
        for event in events {
            let line = event.to_line();
            assert!(!line.contains('\n'));
            let back = Event::parse(&line).unwrap();
            assert_eq!(back.to_line(), line, "event codec is a bijection");
            assert_eq!(back.id(), event.id());
            assert_eq!(back.is_terminal(), event.is_terminal());
        }
    }

    #[test]
    fn malformed_lines_are_describable_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(
            Request::parse("{\"id\":1}").is_err(),
            "neither spec nor control"
        );
        assert!(Request::parse("{\"id\":1,\"control\":\"reboot\"}").is_err());
        assert!(Event::parse("{\"id\":1,\"event\":\"nope\"}").is_err());
    }
}
