//! # wavepipe-serve — the engine as a long-lived service
//!
//! Everything below PR 8 treats the engine as a library: one process,
//! one experiment, exit. This crate turns the shared [`Engine`] facade
//! into a **concurrent multi-client daemon**: a plain
//! [`std::net::TcpListener`] front-end (no async runtime — vendored
//! deps only) speaking newline-delimited JSON [`FlowSpec`] requests,
//! with
//!
//! - a fixed worker pool over one bounded job queue,
//! - **request coalescing**: identical in-flight specs (by content
//!   hash) execute the pipeline once and share the result,
//! - **per-client backpressure**: each connection gets a bounded
//!   outbound queue; slow clients shed streaming cell events (or, in
//!   backpressure mode, block only their own lane) without stalling
//!   the pool,
//! - **graceful shutdown**: draining every queued and in-flight run to
//!   its terminal event before exit.
//!
//! The binaries live in `wavepipe-bench`: `wavepipe-serve` (the
//! daemon) and `wavepipe-load` (a latency-percentile load generator).
//!
//! ```text
//! client ──TCP──▶ reader ──▶ [job queue] ──▶ worker ──▶ engine
//!    ▲                                         │  (coalesced by
//!    └── writer ◀── [bounded event queue] ◀────┘   content hash)
//! ```
//!
//! [`Engine`]: wavepipe::Engine
//! [`FlowSpec`]: wavepipe::FlowSpec

pub mod client;
pub mod coalesce;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use coalesce::Coalescer;
pub use protocol::{cell_event, done_event, Control, Event, Request, ServeMetrics};
pub use server::{ServeConfig, Server};
