//! Request coalescing: identical in-flight work executes once.
//!
//! The engine's content-hash cache already dedups *completed* work, but
//! two identical specs arriving together would both miss the cache and
//! race the pipeline. A [`Coalescer`] closes that window with a slot
//! map layered over the cache: the first arrival for a key becomes the
//! **leader** and computes; every later arrival while the slot is live
//! becomes a **follower** and blocks on the slot's [`Condvar`] until
//! the leader publishes the shared result. Slots are removed on
//! completion, so post-completion arrivals go back to the cache tier
//! (where the leader's store has already landed).
//!
//! A leader that panics mid-compute marks its slot abandoned and wakes
//! every follower; one of them retries as the new leader, so a single
//! poisoned request never wedges the queue behind it.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

enum SlotState<T> {
    /// The leader is still computing.
    Pending,
    /// The leader published; followers clone this.
    Done(T),
    /// The leader panicked before publishing; followers retry.
    Abandoned,
}

struct Slot<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Slot<T> {
        Slot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }
}

/// Recover a poisoned slot/map lock: the daemon must keep serving even
/// after a panicking request, and every mutation the coalescer performs
/// is a single assignment — there is no torn intermediate state.
fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Publishes `Abandoned` if the leader unwinds before `disarm`.
struct AbandonOnPanic<'a, T> {
    slots: &'a Mutex<HashMap<u64, Arc<Slot<T>>>>,
    slot: &'a Arc<Slot<T>>,
    key: u64,
    armed: bool,
}

impl<T> Drop for AbandonOnPanic<'_, T> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        *relock(&self.slot.state) = SlotState::Abandoned;
        self.slot.ready.notify_all();
        relock(self.slots).remove(&self.key);
    }
}

/// The in-flight slot map. `T` is the shared result type — cheap to
/// clone (an `Arc` in the daemon).
pub struct Coalescer<T> {
    slots: Mutex<HashMap<u64, Arc<Slot<T>>>>,
    executed: AtomicU64,
    coalesced: AtomicU64,
}

impl<T: Clone> Default for Coalescer<T> {
    fn default() -> Coalescer<T> {
        Coalescer::new()
    }
}

impl<T: Clone> Coalescer<T> {
    pub fn new() -> Coalescer<T> {
        Coalescer {
            slots: Mutex::new(HashMap::new()),
            executed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Runs `compute` for `key`, or joins an identical in-flight
    /// computation. Returns the (possibly shared) result and whether
    /// this call was coalesced onto another caller's execution.
    pub fn run(&self, key: u64, compute: impl FnOnce() -> T) -> (T, bool) {
        loop {
            let role = {
                let mut slots = relock(&self.slots);
                match slots.entry(key) {
                    Entry::Occupied(entry) => Err(entry.get().clone()),
                    Entry::Vacant(entry) => {
                        let slot = Arc::new(Slot::new());
                        entry.insert(slot.clone());
                        Ok(slot)
                    }
                }
            };
            match role {
                Ok(slot) => {
                    let mut guard = AbandonOnPanic {
                        slots: &self.slots,
                        slot: &slot,
                        key,
                        armed: true,
                    };
                    let value = compute();
                    guard.armed = false;
                    *relock(&slot.state) = SlotState::Done(value.clone());
                    slot.ready.notify_all();
                    relock(&self.slots).remove(&key);
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    return (value, false);
                }
                Err(slot) => {
                    let mut state = relock(&slot.state);
                    loop {
                        match &*state {
                            SlotState::Pending => {
                                state = slot
                                    .ready
                                    .wait(state)
                                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                            }
                            SlotState::Done(value) => {
                                self.coalesced.fetch_add(1, Ordering::Relaxed);
                                return (value.clone(), true);
                            }
                            SlotState::Abandoned => break,
                        }
                    }
                    // Leader died; loop back and contend for the slot.
                }
            }
        }
    }

    /// Computations actually executed (coalescing leaders).
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Calls served by joining another caller's in-flight execution.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Keys currently in flight.
    pub fn in_flight(&self) -> usize {
        relock(&self.slots).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn identical_keys_execute_once_and_share_the_value() {
        let coalescer = Arc::new(Coalescer::new());
        let barrier = Arc::new(Barrier::new(9)); // 8 workers + the test
        let executions = Arc::new(AtomicU64::new(0));
        let (entered_tx, entered_rx) = std::sync::mpsc::channel::<()>();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let (coalescer, barrier, executions) =
                    (coalescer.clone(), barrier.clone(), executions.clone());
                let (entered_tx, release_rx) = (entered_tx.clone(), release_rx.clone());
                std::thread::spawn(move || {
                    barrier.wait();
                    coalescer.run(42, || {
                        executions.fetch_add(1, Ordering::SeqCst);
                        entered_tx.send(()).unwrap();
                        // Hold the slot open until the test releases it,
                        // so the other seven calls really are in flight.
                        release_rx.lock().unwrap().recv().unwrap();
                        "result".to_owned()
                    })
                })
            })
            .collect();
        barrier.wait(); // every worker is past the start line
        entered_rx.recv().unwrap(); // the leader is inside compute
                                    // Give the seven followers time to block on the slot, then
                                    // release the leader.
        std::thread::sleep(std::time::Duration::from_millis(100));
        release_tx.send(()).unwrap();
        let results: Vec<(String, bool)> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(executions.load(Ordering::SeqCst), 1, "one execution");
        assert_eq!(coalescer.executed(), 1);
        assert_eq!(coalescer.coalesced(), 7);
        assert_eq!(results.iter().filter(|(_, c)| !*c).count(), 1);
        assert!(results.iter().all(|(v, _)| v == "result"));
        assert_eq!(coalescer.in_flight(), 0, "slot removed after completion");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let coalescer = Coalescer::new();
        for key in 0..5u64 {
            let (value, coalesced) = coalescer.run(key, || key * 2);
            assert_eq!(value, key * 2);
            assert!(!coalesced);
        }
        assert_eq!(coalescer.executed(), 5);
        assert_eq!(coalescer.coalesced(), 0);
    }

    #[test]
    fn sequential_identical_keys_each_execute() {
        // Coalescing only spans *in-flight* work — a finished slot is
        // removed, and the cache tier (not the coalescer) serves later
        // arrivals.
        let coalescer = Coalescer::new();
        assert_eq!(coalescer.run(7, || 1).0, 1);
        assert_eq!(coalescer.run(7, || 2).0, 2, "second call recomputes");
        assert_eq!(coalescer.executed(), 2);
    }

    #[test]
    fn panicking_leader_hands_off_to_a_follower() {
        let coalescer = Arc::new(Coalescer::<u64>::new());
        let barrier = Arc::new(Barrier::new(2));

        let leader = {
            let (coalescer, barrier) = (coalescer.clone(), barrier.clone());
            std::thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    coalescer.run(9, || {
                        barrier.wait(); // follower is aboard
                                        // Give the follower time to actually block.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        panic!("leader dies mid-compute");
                    })
                }));
                assert!(result.is_err());
            })
        };
        let follower = {
            let (coalescer, barrier) = (coalescer.clone(), barrier.clone());
            std::thread::spawn(move || {
                barrier.wait();
                coalescer.run(9, || 77)
            })
        };
        leader.join().unwrap();
        let (value, _) = follower.join().unwrap();
        assert_eq!(value, 77, "follower retried as the new leader");
        assert_eq!(coalescer.in_flight(), 0);
    }
}
