//! Mechanical verification of the wave-pipelining invariants.
//!
//! The paper states proofs of correctness for both algorithms but omits
//! them for brevity (§III, §IV). This module checks the claimed
//! postconditions on every concrete result instead:
//!
//! 1. **Unit-span edges** — every edge from a non-constant component
//!    spans exactly one level, so each wave advances one clock zone per
//!    phase and neighbouring waves can never interfere (Fig 4).
//! 2. **Aligned outputs** — all non-constant primary outputs sit at the
//!    same base distance, so one result wave leaves the circuit per
//!    wave interval.
//! 3. **Fan-out bound** (optional) — no component drives more than `k`
//!    consumers, the §IV feasibility condition for gain-free
//!    technologies.

use std::fmt;

use crate::component::{CompId, ComponentKind};
use crate::netlist::Netlist;

/// A violation of the wave-pipelining invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BalanceError {
    /// An edge spans more (or fewer) than one level.
    EdgeSpan {
        /// Driving component.
        from: CompId,
        /// Consuming component.
        to: CompId,
        /// Level of the driver.
        from_level: u32,
        /// Level of the consumer.
        to_level: u32,
    },
    /// Two non-constant outputs sit at different base distances.
    OutputMisaligned {
        /// Name of the first output.
        first: String,
        /// Level of the first output.
        first_level: u32,
        /// Name of the offending output.
        other: String,
        /// Level of the offending output.
        other_level: u32,
    },
    /// A component exceeds the fan-out bound.
    FanoutExceeded {
        /// The offending component.
        component: CompId,
        /// Its fan-out count.
        fanout: u32,
        /// The bound that was requested.
        limit: u32,
    },
}

impl fmt::Display for BalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalanceError::EdgeSpan {
                from,
                to,
                from_level,
                to_level,
            } => write!(
                f,
                "edge {from} (level {from_level}) → {to} (level {to_level}) does not span exactly one level"
            ),
            BalanceError::OutputMisaligned {
                first,
                first_level,
                other,
                other_level,
            } => write!(
                f,
                "output `{other}` at level {other_level} misaligned with `{first}` at level {first_level}"
            ),
            BalanceError::FanoutExceeded {
                component,
                fanout,
                limit,
            } => write!(f, "component {component} has fan-out {fanout} > limit {limit}"),
        }
    }
}

impl std::error::Error for BalanceError {}

/// Summary of a netlist that passed verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BalanceReport {
    /// Common base distance of all outputs (= pipeline depth `d`).
    pub depth: u32,
    /// Number of waves simultaneously in flight under three-phase
    /// clocking: `⌈d / 3⌉` (the paper's `N = d/3`).
    pub waves_in_flight: u32,
    /// Largest observed fan-out.
    pub max_fanout: u32,
}

/// Checks the wave-pipelining invariants; `fanout_limit` additionally
/// enforces the §IV bound when given.
///
/// # Errors
///
/// Returns the first [`BalanceError`] found, or `Ok` with a
/// [`BalanceReport`].
///
/// # Examples
///
/// ```
/// use wavepipe::{insert_buffers, verify_balance, Netlist};
///
/// # fn main() -> Result<(), wavepipe::BalanceError> {
/// let mut n = Netlist::new("x");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let c = n.add_input("c");
/// let g1 = n.add_maj([a, b, c]);
/// let g2 = n.add_maj([g1, a, b]);
/// n.add_output("f", g2);
/// assert!(verify_balance(&n, None).is_err(), "skewed before balancing");
///
/// insert_buffers(&mut n);
/// let report = verify_balance(&n, None)?;
/// assert_eq!(report.depth, 2);
/// # Ok(())
/// # }
/// ```
pub fn verify_balance(
    netlist: &Netlist,
    fanout_limit: Option<u32>,
) -> Result<BalanceReport, BalanceError> {
    verify_balance_prepared(
        netlist,
        fanout_limit,
        &netlist.levels(),
        &netlist.fanout_counts(),
    )
}

/// [`verify_balance`] against already-computed ASAP levels and fan-out
/// counts, so the pipeline's verify pass reuses the
/// [`StructuralCaches`](crate::netlist::StructuralCaches) snapshot the
/// preceding insertion pass already primed.
///
/// # Errors
///
/// As [`verify_balance`].
pub fn verify_balance_prepared(
    netlist: &Netlist,
    fanout_limit: Option<u32>,
    levels: &[u32],
    fanout_counts: &[u32],
) -> Result<BalanceReport, BalanceError> {
    let is_const = |id: CompId| netlist.component(id).kind() == ComponentKind::Const;

    // 1. Unit-span edges.
    for id in netlist.ids() {
        for &f in netlist.component(id).fanins() {
            if is_const(f) {
                continue;
            }
            let from_level = levels[f.index()];
            let to_level = levels[id.index()];
            if to_level != from_level + 1 {
                return Err(BalanceError::EdgeSpan {
                    from: f,
                    to: id,
                    from_level,
                    to_level,
                });
            }
        }
    }

    // 2. Aligned outputs.
    let mut first: Option<(&str, u32)> = None;
    for p in netlist.outputs() {
        if is_const(p.driver) {
            continue;
        }
        let level = levels[p.driver.index()];
        match first {
            None => first = Some((&p.name, level)),
            Some((fname, flevel)) if flevel != level => {
                return Err(BalanceError::OutputMisaligned {
                    first: fname.to_owned(),
                    first_level: flevel,
                    other: p.name.clone(),
                    other_level: level,
                });
            }
            Some(_) => {}
        }
    }

    // 3. Fan-out bound.
    let max_fanout = fanout_counts.iter().copied().max().unwrap_or(0);
    if let Some(limit) = fanout_limit {
        check_fanout_bound(netlist, fanout_counts, limit)?;
    }

    let depth = first.map(|(_, l)| l).unwrap_or(0);
    Ok(BalanceReport {
        depth,
        waves_in_flight: depth.div_ceil(3),
        max_fanout,
    })
}

/// Enforces the §IV fan-out bound against precomputed fan-out counts
/// (the one shared implementation behind the plain, bound-only and
/// cost-aware verifiers).
///
/// # Errors
///
/// Returns [`BalanceError::FanoutExceeded`] for the first component
/// over the limit.
pub(crate) fn check_fanout_bound(
    netlist: &Netlist,
    fanout_counts: &[u32],
    limit: u32,
) -> Result<(), BalanceError> {
    for id in netlist.ids() {
        if fanout_counts[id.index()] > limit {
            return Err(BalanceError::FanoutExceeded {
                component: id,
                fanout: fanout_counts[id.index()],
                limit,
            });
        }
    }
    Ok(())
}

/// Pipeline pass wrapping [`verify_balance`]: checks structural
/// well-formedness ([`Netlist::validate`]) and the wave-pipelining
/// invariants, and records the [`BalanceReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyBalancePass {
    /// Additionally enforce the §IV fan-out bound when given.
    pub fanout_limit: Option<u32>,
}

impl crate::pipeline::Pass for VerifyBalancePass {
    fn name(&self) -> String {
        match self.fanout_limit {
            Some(limit) => format!("verify(fo≤{limit})"),
            None => "verify".to_owned(),
        }
    }

    fn kind(&self) -> crate::pipeline::PassKind {
        crate::pipeline::PassKind::Verify
    }

    fn run(
        &self,
        ctx: &mut crate::pipeline::FlowContext<'_>,
    ) -> Result<(), crate::pipeline::PassError> {
        ctx.netlist()
            .validate()
            .map_err(crate::pipeline::PassError::Custom)?;
        let levels = ctx.levels();
        let fanout_counts = ctx.fanout_counts();
        let report =
            verify_balance_prepared(ctx.netlist(), self.fanout_limit, &levels, &fanout_counts)?;
        ctx.report = Some(report);
        Ok(())
    }
}

/// Pipeline pass checking only the fan-out bound — the verification the
/// FOx-only configurations of Fig 8 admit (balance cannot hold without
/// buffer insertion).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FanoutBoundPass {
    /// The fan-out bound to enforce.
    pub limit: u32,
}

impl crate::pipeline::Pass for FanoutBoundPass {
    fn name(&self) -> String {
        format!("check_fanout({})", self.limit)
    }

    fn kind(&self) -> crate::pipeline::PassKind {
        crate::pipeline::PassKind::Verify
    }

    fn run(
        &self,
        ctx: &mut crate::pipeline::FlowContext<'_>,
    ) -> Result<(), crate::pipeline::PassError> {
        ctx.netlist()
            .validate()
            .map_err(crate::pipeline::PassError::Custom)?;
        let counts = ctx.fanout_counts();
        check_fanout_bound(ctx.netlist(), &counts, self.limit)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_single_gate_passes() {
        let mut n = Netlist::new("ok");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g = n.add_maj([a, b, c]);
        n.add_output("f", g);
        let r = verify_balance(&n, Some(3)).unwrap();
        assert_eq!(r.depth, 1);
        assert_eq!(r.waves_in_flight, 1);
    }

    #[test]
    fn skewed_edge_is_reported() {
        let mut n = Netlist::new("skew");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_maj([a, b, c]);
        let g2 = n.add_maj([g1, a, b]);
        n.add_output("f", g2);
        match verify_balance(&n, None) {
            Err(BalanceError::EdgeSpan {
                to_level,
                from_level,
                ..
            }) => {
                assert_eq!(to_level, 2);
                assert_eq!(from_level, 0);
            }
            other => panic!("expected EdgeSpan, got {other:?}"),
        }
    }

    #[test]
    fn misaligned_outputs_are_reported() {
        let mut n = Netlist::new("mis");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_maj([a, b, c]);
        let buf = n.add_buf(g1);
        n.add_output("deep", buf);
        n.add_output("shallow", g1);
        // Edges are all unit-span; only output alignment fails.
        match verify_balance(&n, None) {
            Err(BalanceError::OutputMisaligned { other, .. }) => assert_eq!(other, "shallow"),
            other => panic!("expected OutputMisaligned, got {other:?}"),
        }
    }

    #[test]
    fn fanout_limit_is_enforced() {
        let mut n = Netlist::new("fo");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let d = n.add_input("d");
        let g1 = n.add_maj([a, b, c]);
        let g2 = n.add_maj([a, b, d]);
        let g3 = n.add_maj([a, c, d]);
        let g4 = n.add_maj([g1, g2, g3]);
        n.add_output("f", g4);
        // `a` drives three gates: fine at limit 3, fails at limit 2.
        assert!(verify_balance(&n, Some(3)).is_ok());
        match verify_balance(&n, Some(2)) {
            Err(BalanceError::FanoutExceeded { fanout, limit, .. }) => {
                assert_eq!(fanout, 3);
                assert_eq!(limit, 2);
            }
            other => panic!("expected FanoutExceeded, got {other:?}"),
        }
    }

    #[test]
    fn waves_in_flight_rounds_up() {
        let mut n = Netlist::new("w");
        let a = n.add_input("a");
        let b1 = n.add_buf(a);
        let b2 = n.add_buf(b1);
        let b3 = n.add_buf(b2);
        let b4 = n.add_buf(b3);
        n.add_output("f", b4);
        let r = verify_balance(&n, None).unwrap();
        assert_eq!(r.depth, 4);
        assert_eq!(r.waves_in_flight, 2);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = BalanceError::FanoutExceeded {
            component: CompId::from_index(7),
            fanout: 9,
            limit: 3,
        };
        assert_eq!(e.to_string(), "component c7 has fan-out 9 > limit 3");
    }
}
