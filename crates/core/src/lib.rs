//! # wavepipe — wave pipelining for majority-based beyond-CMOS logic
//!
//! Implementation of the synthesis flow of *Zografos et al., "Wave
//! Pipelining for Majority-based Beyond-CMOS Technologies", DATE 2017*:
//! given a depth-optimized [`mig::Mig`], produce a netlist that a
//! non-volatile, clocked, majority-based technology (Spin Wave Devices,
//! QCA, NanoMagnetic Logic) can stream *waves* of data through — one new
//! operation every three clock phases instead of one per full circuit
//! latency.
//!
//! ## The pass pipeline
//!
//! The flow is organized as a **pass pipeline**: each stage is a
//! [`Pass`] over a shared [`FlowContext`], assembled and
//! ordering-validated by [`FlowPipeline::builder`]:
//!
//! 1. **map** ([`netlist_from_mig`] / [`netlist_from_mig_min_inv`]) —
//!    maps the MIG onto physical components, materializing inverters
//!    (priced cells in these technologies) and constant cells.
//! 2. **fanout_restriction** ([`restrict_fanout`], §IV) — bounds every
//!    fan-out to `k ∈ 2..=5` with chains of fan-out gates, ordered so
//!    deep consumers absorb the FOG latency ("delayed nodes").
//! 3. **insert_buffers** ([`insert_buffers`], Algorithm 1, §III) —
//!    equalizes every input→output path with shared buffer chains, then
//!    pads all outputs to a common depth. Swap in
//!    [`BufferStrategy::Retimed`] (fewer buffers, same depth) or
//!    [`BufferStrategy::Weighted`] (per-technology delays) with a
//!    one-line pipeline edit.
//! 4. **verify** ([`verify_balance`]) — checks the invariants
//!    mechanically; [`WaveSimulator`] demonstrates coherent streaming
//!    dynamically (bit-parallel: 64 independent streams per run).
//!
//! Functional correctness is checked by the bit-parallel
//! **differential-verification subsystem** ([`verify`] /
//! [`differential::check`]): a transformed netlist is compared against
//! its source MIG under an [`EquivalencePolicy`] — exhaustively (all
//! `2^n` patterns, 64 per netlist traversal via
//! [`Netlist::eval_words`]) for small input counts, seeded stratified
//! sampling beyond — and any pipeline can opt into per-pass
//! equivalence gating ([`FlowPipelineBuilder::gate_equivalence`],
//! [`FlowSpec::with_equivalence_gating`]) so every sweep self-verifies
//! with counterexamples that name the offending pass.
//!
//! The builder rejects ill-ordered pipelines (mapping must come first,
//! fan-out restriction before buffer insertion, verification last) with
//! a [`PipelineError`], and every run records a per-pass [`PassStats`]
//! trace: wall time, component-count delta, depth change.
//!
//! ## The cost-model layer
//!
//! Technology pricing is a pipeline layer, not a post-processing step:
//! a [`CostModel`] (see [`cost`]) prices every [`ComponentKind`], and a
//! pipeline carrying one (via
//! [`FlowPipelineBuilder::with_cost_model`], or per cell through the
//! grid driver) records priced area / energy / cycle-time deltas in
//! every [`PassStats`] and unlocks cost-aware pass variants:
//! [`FlowPipelineBuilder::restrict_fanout_cost_aware`] picks the FOG
//! limit by the model's prices, and [`BufferStrategy::CostAware`]
//! balances with the phase-occupancy slack the model implies. Without a
//! model everything runs cost-blind and bit-identical to the paper's
//! reference flow.
//!
//! [`FlowPipeline::run_grid`] evaluates the full circuit × technology
//! grid — every `(graph, cost model)` cell one task on the work-pulling
//! parallel scheduler — and [`run_config_grid`] sweeps the other axis
//! (pipeline configuration × circuit, Fig 8's ladder).
//!
//! ```
//! use mig::Mig;
//! use wavepipe::{BufferStrategy, FlowPipeline};
//!
//! # fn main() -> Result<(), wavepipe::PassError> {
//! let mut g = Mig::new();
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let cin = g.add_input("cin");
//! let (sum, cout) = g.add_full_adder(a, b, cin);
//! g.add_output("sum", sum);
//! g.add_output("cout", cout);
//!
//! let pipeline = FlowPipeline::builder()
//!     .map(false)
//!     .restrict_fanout(3)
//!     .insert_buffers(BufferStrategy::Asap)
//!     .verify(Some(3))
//!     .build()
//!     .expect("well-ordered pipeline");
//! let run = pipeline.run(&g)?;
//! assert!(run.result.report.is_some());
//! assert_eq!(run.trace.len(), 4); // one instrumented record per pass
//! # Ok(())
//! # }
//! ```
//!
//! ## Compatibility wrapper and batch driver
//!
//! [`run_flow`] assembles the default pipeline for a [`FlowConfig`] and
//! returns the classic [`FlowResult`]; [`run_flow_batch`] (and
//! [`FlowPipeline::run_batch`]) evaluate many graphs concurrently
//! across all cores:
//!
//! ```
//! use mig::Mig;
//! use wavepipe::{run_flow, FlowConfig, WaveSimulator};
//!
//! # fn main() -> Result<(), wavepipe::BalanceError> {
//! let mut g = Mig::new();
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let cin = g.add_input("cin");
//! let (sum, cout) = g.add_full_adder(a, b, cin);
//! g.add_output("sum", sum);
//! g.add_output("cout", cout);
//!
//! let result = run_flow(&g, FlowConfig::default())?;
//! let report = result.report.expect("flow verifies its output");
//!
//! // Stream three additions through the pipeline.
//! let waves = vec![
//!     vec![true, false, false],
//!     vec![true, true, false],
//!     vec![true, true, true],
//! ];
//! let run = WaveSimulator::new(&result.pipelined).run(&waves);
//! assert_eq!(run.outputs[0], vec![true, false]);  // 1+0+0 = 01
//! assert_eq!(run.outputs[1], vec![false, true]);  // 1+1+0 = 10
//! assert_eq!(run.outputs[2], vec![true, true]);   // 1+1+1 = 11
//! assert_eq!(report.depth, run.depth);
//! # Ok(())
//! # }
//! ```
//!
//! With the `serde` cargo feature enabled, the statistics types
//! ([`KindCounts`], [`PassStats`], the per-pass stats structs) are
//! JSON-serializable for harness output.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
mod balance;
mod buffer_insertion;
mod component;
pub mod cost;
pub mod engine;
mod error;
mod fanout_restriction;
mod flow;
mod fnv;
mod from_mig;
pub mod incremental;
pub mod io;
pub mod lint;
mod netlist;
mod optimize;
pub mod persist;
mod pipeline;
mod retiming;
pub mod spec;
pub mod stats;
pub mod verify;
mod wavesim;
mod weighted;

pub use mig::{EquivalencePolicy, PatternBlock, SweepConfig, WordFunction, DEFAULT_BLOCK_WORDS};

pub use arena::EvalArena;
pub use balance::{
    verify_balance, verify_balance_prepared, BalanceError, BalanceReport, FanoutBoundPass,
    VerifyBalancePass,
};
pub use buffer_insertion::{
    insert_buffers, insert_buffers_prepared, insert_buffers_with_levels, BufferInsertion,
    BufferInsertionPass,
};
pub use component::{CompId, Component, ComponentKind};
pub use cost::{CostModel, CostTable, PricedCost, PricedDelta};
pub use engine::{CircuitResolver, Engine, EngineCell, EngineRun, EngineStats, DEFAULT_CACHE_DIR};
pub use error::FlowError;
pub use fanout_restriction::{
    restrict_fanout, restrict_fanout_prepared, CostAwareFanoutPass, FanoutRestriction,
    FanoutRestrictionPass,
};
pub use flow::{run_flow, run_flow_batch, FlowConfig, FlowResult};
pub use from_mig::{netlist_from_mig, netlist_from_mig_min_inv, MapPass};
pub use incremental::{EngineEdit, IncrementalError, IncrementalOutcome, IncrementalSession};
pub use lint::{
    lint_mig, lint_netlist, lint_spec, Diagnostic, LintContext, LintDriver, LintFailure,
    LintReport, LintRule,
};
pub use netlist::{FanoutEdges, KindCounts, Netlist, NetlistError, Port, StructuralCaches};
pub use optimize::{OptimizeCostAwarePass, OptimizeDepthPass, OptimizeSizePass};
pub use pipeline::{
    run_config_grid, BufferStrategy, FlowContext, FlowPipeline, FlowPipelineBuilder, GridCell,
    Pass, PassError, PassKind, PassStats, PipelineError, PipelineRun,
};
pub use retiming::{insert_buffers_retimed, schedule_levels, LevelSchedule, RetimedInsertionPass};
pub use spec::{CacheSpec, CircuitSpec, FlowSpec, PassSpec, PipelineSpec, SpecError, SynthSpec};
pub use verify::{differential, NetlistFunction};
pub use wavesim::{WaveRun, WaveSimulator, WaveWideRun, WaveWordRun};
pub use weighted::{
    insert_buffers_weighted, verify_weighted_balance, weighted_arrivals, CostAwareInsertionPass,
    CostAwareVerifyPass, DelayWeights, VerifyWeightedPass, WeightedBalanceError, WeightedInsertion,
    WeightedInsertionPass,
};
