//! Weighted-delay path balancing — the paper's technology-tailored mode.
//!
//! Section III keeps the algorithm "technology-agnostic by assuming
//! generic components", but notes that "we have included in the
//! implementation the possibility to adjust component weights so that
//! the final result can be tailored to different technologies". This
//! module is that mode: every component kind carries an integer delay
//! weight (in clock phases) and balancing equalizes *weighted* path
//! delays, filling gaps with chains of buffers of weight
//! [`DelayWeights::buf`].
//!
//! With unit weights this degenerates to [`crate::insert_buffers`]. With
//! QCA-style weights (INV 7, MAJ 2, BUF 1, FOG 2) an inverter occupies
//! seven clock phases and its sibling paths receive seven phases of
//! buffering — which is why the paper's generic results use unit
//! weights: weighted balancing pays a real buffer premium around slow
//! components (quantified by the `ablation_weighted` comparison in the
//! bench crate's harness tests).

use std::fmt;

use crate::component::{CompId, ComponentKind};
use crate::netlist::Netlist;

/// Integer delay weights per component kind, in clock phases.
///
/// Serializes unconditionally: weights are part of a
/// [`crate::FlowSpec`]'s pipeline description
/// ([`crate::PassSpec::VerifyWeighted`] and the weighted
/// [`crate::BufferStrategy`]), which must round-trip through JSON.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DelayWeights {
    /// Inverter delay.
    pub inv: u32,
    /// Majority-gate delay.
    pub maj: u32,
    /// Buffer delay (the balancing granularity).
    pub buf: u32,
    /// Fan-out gate delay.
    pub fog: u32,
}

impl DelayWeights {
    /// Unit weights — the paper's generic mode.
    pub const UNIT: DelayWeights = DelayWeights {
        inv: 1,
        maj: 1,
        buf: 1,
        fog: 1,
    };

    /// The QCA relative delays of Table I.
    pub const QCA: DelayWeights = DelayWeights {
        inv: 7,
        maj: 2,
        buf: 1,
        fog: 2,
    };

    /// The NML relative delays of Table I.
    pub const NML: DelayWeights = DelayWeights {
        inv: 1,
        maj: 2,
        buf: 2,
        fog: 2,
    };

    /// The SWD relative delays of Table I (all unit).
    pub const SWD: DelayWeights = DelayWeights::UNIT;

    /// Derives weights from a technology cost model: each kind weighs
    /// the number of clock phases it occupies
    /// ([`crate::cost::CostTable::phase_occupancy`]). Under the paper's
    /// Table I this is unit for SWD and NML and `{INV 3, MAJ 1, BUF 1,
    /// FOG 1}` for QCA (its inverter spans 7 cell delays against a
    /// 10/3-cell phase) — the phase-weight-aware slack the cost-aware
    /// insertion strategy balances with.
    pub fn for_cost_model(table: &crate::cost::CostTable) -> DelayWeights {
        DelayWeights {
            inv: table.phase_occupancy(ComponentKind::Inv),
            maj: table.phase_occupancy(ComponentKind::Maj),
            buf: table.phase_occupancy(ComponentKind::Buf),
            fog: table.phase_occupancy(ComponentKind::Fog),
        }
    }

    /// Weight of one component kind (inputs and constants are 0).
    pub fn of(&self, kind: ComponentKind) -> u32 {
        match kind {
            ComponentKind::Inv => self.inv,
            ComponentKind::Maj => self.maj,
            ComponentKind::Buf => self.buf,
            ComponentKind::Fog => self.fog,
            ComponentKind::Input | ComponentKind::Const => 0,
        }
    }
}

impl Default for DelayWeights {
    fn default() -> DelayWeights {
        DelayWeights::UNIT
    }
}

/// Why weighted balancing can fail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WeightedBalanceError {
    /// A delay gap is not a multiple of the buffer weight, so no buffer
    /// chain can fill it exactly.
    IndivisibleGap {
        /// Driver of the offending edge.
        from: CompId,
        /// Consumer of the offending edge.
        to: CompId,
        /// The residual delay that cannot be filled.
        gap: u32,
        /// The buffer weight that failed to divide it.
        buf_weight: u32,
    },
    /// Buffer weight of zero was requested.
    ZeroBufferWeight,
}

impl fmt::Display for WeightedBalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightedBalanceError::IndivisibleGap {
                from,
                to,
                gap,
                buf_weight,
            } => write!(
                f,
                "edge {from} → {to}: delay gap {gap} is not a multiple of the buffer weight {buf_weight}"
            ),
            WeightedBalanceError::ZeroBufferWeight => {
                write!(f, "buffer weight must be positive")
            }
        }
    }
}

impl std::error::Error for WeightedBalanceError {}

/// Statistics of a weighted balancing run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeightedInsertion {
    /// Buffers inserted.
    pub buffers: usize,
    /// Common weighted arrival of all outputs after balancing.
    pub weighted_depth: u32,
}

/// Computes weighted arrival times: `arrival(v) = weight(v) + max over
/// non-constant fan-ins of arrival(u)`; inputs and constants arrive at 0.
pub fn weighted_arrivals(netlist: &Netlist, weights: &DelayWeights) -> Vec<u32> {
    let mut arrival = vec![0u32; netlist.len()];
    for id in netlist.topo_order() {
        let comp = netlist.component(id);
        if comp.fanins().is_empty() {
            continue;
        }
        let max_in = comp
            .fanins()
            .iter()
            .filter(|f| netlist.component(**f).kind() != ComponentKind::Const)
            .map(|f| arrival[f.index()])
            .max()
            .unwrap_or(0);
        arrival[id.index()] = max_in + weights.of(comp.kind());
    }
    arrival
}

/// Balances weighted path delays in place.
///
/// After success, for every edge `u → v` (non-constant `u`) the
/// weighted arrival of `v`'s fan-in side equals `arrival(v) −
/// weight(v)`, and all non-constant outputs share one weighted arrival.
/// Buffer chains are shared per driver exactly as in the unit-weight
/// algorithm.
///
/// # Errors
///
/// Returns [`WeightedBalanceError::IndivisibleGap`] when a gap cannot be
/// tiled by buffers (impossible when `weights.buf == 1`, the case for
/// SWD and QCA), or [`WeightedBalanceError::ZeroBufferWeight`].
pub fn insert_buffers_weighted(
    netlist: &mut Netlist,
    weights: &DelayWeights,
) -> Result<WeightedInsertion, WeightedBalanceError> {
    if weights.buf == 0 {
        return Err(WeightedBalanceError::ZeroBufferWeight);
    }
    let arrival = weighted_arrivals(netlist, weights);
    let fanout = netlist.fanout_edges();
    let original_len = netlist.len();

    let max_output_arrival = netlist
        .outputs()
        .iter()
        .filter(|p| netlist.component(p.driver).kind() != ComponentKind::Const)
        .map(|p| arrival[p.driver.index()])
        .max()
        .unwrap_or(0);
    let mut output_uses: Vec<Vec<usize>> = vec![Vec::new(); original_len];
    for (pos, p) in netlist.outputs().iter().enumerate() {
        if netlist.component(p.driver).kind() != ComponentKind::Const {
            output_uses[p.driver.index()].push(pos);
        }
    }

    // Pre-check divisibility of every gap so the netlist is untouched on
    // error (strong exception safety for the caller).
    for idx in 0..original_len {
        let comp = CompId::from_index(idx);
        if netlist.component(comp).kind() == ComponentKind::Const {
            continue;
        }
        for &(consumer, _) in &fanout[idx] {
            let kind = netlist.component(consumer).kind();
            let need = arrival[consumer.index()] - weights.of(kind);
            let gap = need - arrival[idx];
            if !gap.is_multiple_of(weights.buf) {
                return Err(WeightedBalanceError::IndivisibleGap {
                    from: comp,
                    to: consumer,
                    gap,
                    buf_weight: weights.buf,
                });
            }
        }
        for &_pos in &output_uses[idx] {
            let gap = max_output_arrival - arrival[idx];
            if !gap.is_multiple_of(weights.buf) {
                return Err(WeightedBalanceError::IndivisibleGap {
                    from: comp,
                    to: comp,
                    gap,
                    buf_weight: weights.buf,
                });
            }
        }
    }

    let mut buffers = 0usize;
    for idx in 0..original_len {
        let comp = CompId::from_index(idx);
        if netlist.component(comp).kind() == ComponentKind::Const {
            continue;
        }
        enum Use {
            Gate { consumer: CompId, slot: usize },
            Output { position: usize },
        }
        let mut uses: Vec<(u32, Use)> = fanout[idx]
            .iter()
            .map(|&(consumer, slot)| {
                let kind = netlist.component(consumer).kind();
                (
                    arrival[consumer.index()] - weights.of(kind),
                    Use::Gate { consumer, slot },
                )
            })
            .collect();
        for &position in &output_uses[idx] {
            uses.push((max_output_arrival, Use::Output { position }));
        }
        if uses.is_empty() {
            continue;
        }
        uses.sort_by_key(|&(required, _)| required);

        let mut chain_head = comp;
        let mut chain_arrival = arrival[idx];
        for (required, u) in uses {
            while chain_arrival < required {
                chain_head = netlist.add_buf(chain_head);
                chain_arrival += weights.buf;
                buffers += 1;
            }
            debug_assert_eq!(chain_arrival.max(required), chain_arrival);
            match u {
                Use::Gate { consumer, slot } => {
                    netlist.component_mut(consumer).fanins_mut()[slot] = chain_head;
                }
                Use::Output { position } => netlist.set_output_driver(position, chain_head),
            }
        }
    }

    Ok(WeightedInsertion {
        buffers,
        weighted_depth: max_output_arrival,
    })
}

/// Verifies the weighted balancing invariants (the weighted analogue of
/// [`crate::verify_balance`]).
pub fn verify_weighted_balance(netlist: &Netlist, weights: &DelayWeights) -> Result<u32, String> {
    let arrival = weighted_arrivals(netlist, weights);
    for id in netlist.ids() {
        let comp = netlist.component(id);
        for &f in comp.fanins() {
            if netlist.component(f).kind() == ComponentKind::Const {
                continue;
            }
            let expect = arrival[id.index()] - weights.of(comp.kind());
            if arrival[f.index()] != expect {
                return Err(format!(
                    "edge {f} → {id}: fan-in arrives at {} but the gate fires at {expect}",
                    arrival[f.index()]
                ));
            }
        }
    }
    let mut out_arrival = None;
    for p in netlist.outputs() {
        if netlist.component(p.driver).kind() == ComponentKind::Const {
            continue;
        }
        let a = arrival[p.driver.index()];
        match out_arrival {
            None => out_arrival = Some(a),
            Some(prev) if prev != a => {
                return Err(format!(
                    "output `{}` arrives at {a}, earlier outputs at {prev}",
                    p.name
                ))
            }
            Some(_) => {}
        }
    }
    Ok(out_arrival.unwrap_or(0))
}

/// Pipeline pass wrapping [`insert_buffers_weighted`] (§III's
/// technology-tailored mode). Deposits [`WeightedInsertion`] statistics
/// in the context; the unit-delay `buffers` slot stays empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightedInsertionPass {
    /// Per-kind delay weights to balance against.
    pub weights: DelayWeights,
}

impl crate::pipeline::Pass for WeightedInsertionPass {
    fn name(&self) -> String {
        "insert_buffers(weighted)".to_owned()
    }

    fn kind(&self) -> crate::pipeline::PassKind {
        crate::pipeline::PassKind::BufferInsertion
    }

    fn run(
        &self,
        ctx: &mut crate::pipeline::FlowContext<'_>,
    ) -> Result<(), crate::pipeline::PassError> {
        let stats = insert_buffers_weighted(ctx.netlist_mut(), &self.weights)?;
        ctx.weighted = Some(stats);
        Ok(())
    }
}

/// Cost-aware buffer insertion: balances against the phase-occupancy
/// weights the run's cost model implies
/// ([`DelayWeights::for_cost_model`]).
///
/// When every component fits in one phase (unit weights — SWD, NML)
/// this *is* Algorithm 1 against ASAP levels and deposits the ordinary
/// [`BufferInsertion`](crate::BufferInsertion) statistics; otherwise it
/// runs weighted balancing and deposits [`WeightedInsertion`]
/// statistics. Fails with
/// [`PassError::Custom`](crate::pipeline::PassError::Custom) when the
/// run carries no cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostAwareInsertionPass;

impl crate::pipeline::Pass for CostAwareInsertionPass {
    fn name(&self) -> String {
        "insert_buffers(cost-aware)".to_owned()
    }

    fn kind(&self) -> crate::pipeline::PassKind {
        crate::pipeline::PassKind::BufferInsertion
    }

    fn run(
        &self,
        ctx: &mut crate::pipeline::FlowContext<'_>,
    ) -> Result<(), crate::pipeline::PassError> {
        let table = ctx.cost_model().ok_or_else(|| {
            crate::pipeline::PassError::Custom(
                "cost-aware buffer insertion needs a cost model \
                 (FlowPipelineBuilder::with_cost_model or the grid driver)"
                    .to_owned(),
            )
        })?;
        let weights = DelayWeights::for_cost_model(table);
        if weights == DelayWeights::UNIT {
            let levels = ctx.levels();
            let fanout = ctx.fanout_edges();
            let stats = crate::buffer_insertion::insert_buffers_prepared(
                ctx.netlist_mut(),
                &levels,
                &fanout,
            );
            ctx.buffers = Some(stats);
        } else {
            let stats = insert_buffers_weighted(ctx.netlist_mut(), &weights)?;
            ctx.weighted = Some(stats);
        }
        Ok(())
    }
}

/// Cost-aware balance verification: the verifier matching
/// [`CostAwareInsertionPass`]. Unit weights verify the plain invariants
/// (and record the [`crate::BalanceReport`]); non-unit weights verify
/// weighted balance. `fanout_limit` additionally enforces the §IV
/// bound in both modes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostAwareVerifyPass {
    /// Additionally enforce the §IV fan-out bound when given.
    pub fanout_limit: Option<u32>,
}

impl crate::pipeline::Pass for CostAwareVerifyPass {
    fn name(&self) -> String {
        "verify(cost-aware)".to_owned()
    }

    fn kind(&self) -> crate::pipeline::PassKind {
        crate::pipeline::PassKind::Verify
    }

    fn run(
        &self,
        ctx: &mut crate::pipeline::FlowContext<'_>,
    ) -> Result<(), crate::pipeline::PassError> {
        let table = ctx.cost_model().ok_or_else(|| {
            crate::pipeline::PassError::Custom(
                "cost-aware verification needs a cost model \
                 (FlowPipelineBuilder::with_cost_model or the grid driver)"
                    .to_owned(),
            )
        })?;
        ctx.netlist()
            .validate()
            .map_err(crate::pipeline::PassError::Custom)?;
        let weights = DelayWeights::for_cost_model(table);
        if weights == DelayWeights::UNIT {
            let levels = ctx.levels();
            let fanout_counts = ctx.fanout_counts();
            let report = crate::balance::verify_balance_prepared(
                ctx.netlist(),
                self.fanout_limit,
                &levels,
                &fanout_counts,
            )?;
            ctx.report = Some(report);
        } else {
            verify_weighted_balance(ctx.netlist(), &weights)
                .map_err(crate::pipeline::PassError::Custom)?;
            if let Some(limit) = self.fanout_limit {
                let counts = ctx.fanout_counts();
                crate::balance::check_fanout_bound(ctx.netlist(), &counts, limit)?;
            }
        }
        Ok(())
    }
}

/// Pipeline pass wrapping [`verify_weighted_balance`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyWeightedPass {
    /// The weights the netlist was balanced against.
    pub weights: DelayWeights,
}

impl crate::pipeline::Pass for VerifyWeightedPass {
    fn name(&self) -> String {
        "verify(weighted)".to_owned()
    }

    fn kind(&self) -> crate::pipeline::PassKind {
        crate::pipeline::PassKind::Verify
    }

    fn run(
        &self,
        ctx: &mut crate::pipeline::FlowContext<'_>,
    ) -> Result<(), crate::pipeline::PassError> {
        verify_weighted_balance(ctx.netlist(), &self.weights)
            .map(|_depth| ())
            .map_err(crate::pipeline::PassError::Custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_mig::netlist_from_mig;

    fn mapped_sample(seed: u64) -> Netlist {
        let g = mig::random_mig(mig::RandomMigConfig {
            inputs: 10,
            outputs: 5,
            gates: 150,
            depth: 9,
            seed,
        });
        netlist_from_mig(&g)
    }

    #[test]
    fn unit_weights_match_the_plain_algorithm() {
        let base = mapped_sample(60);
        let mut weighted = base.clone();
        let w = insert_buffers_weighted(&mut weighted, &DelayWeights::UNIT).unwrap();
        let mut plain = base;
        let p = crate::buffer_insertion::insert_buffers(&mut plain);
        assert_eq!(w.buffers, p.total());
        assert_eq!(w.weighted_depth, p.depth);
    }

    #[test]
    fn qca_weights_balance_and_preserve_function() {
        let base = mapped_sample(61);
        let mut n = base.clone();
        let stats = insert_buffers_weighted(&mut n, &DelayWeights::QCA).unwrap();
        assert!(stats.buffers > 0);
        let depth = verify_weighted_balance(&n, &DelayWeights::QCA).unwrap();
        assert_eq!(depth, stats.weighted_depth);
        for p in 0..64u32 {
            let bits: Vec<bool> = (0..10)
                .map(|i| p.wrapping_mul(0x9E3779B9) >> i & 1 != 0)
                .collect();
            assert_eq!(base.eval(&bits), n.eval(&bits));
        }
    }

    #[test]
    fn qca_inverters_cost_extra_buffers() {
        // A gate reading one inverted and one plain copy of the same
        // signal: under QCA weights the plain path must absorb the
        // inverter's 7-phase delay minus the gate gap.
        let mut n = Netlist::new("invgap");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let inv = n.add_inv(a);
        let g = n.add_maj([inv, b, a]);
        n.add_output("f", g);

        let mut unit = n.clone();
        let u = insert_buffers_weighted(&mut unit, &DelayWeights::UNIT).unwrap();
        let mut qca = n.clone();
        let q = insert_buffers_weighted(&mut qca, &DelayWeights::QCA).unwrap();
        assert!(
            q.buffers > u.buffers,
            "QCA {} vs unit {}",
            q.buffers,
            u.buffers
        );
        assert!(verify_weighted_balance(&qca, &DelayWeights::QCA).is_ok());
    }

    #[test]
    fn nml_even_weights_divide_cleanly_on_mapped_migs() {
        // NML: INV 1, MAJ/BUF/FOG 2 — gaps can be odd around inverters.
        // On a netlist with an INV the algorithm must either balance or
        // report the indivisible gap; on an INV-free netlist (all gaps
        // even) it must succeed.
        let mut n = Netlist::new("even");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_maj([a, b, c]);
        let g2 = n.add_maj([g1, a, b]);
        n.add_output("f", g2);
        let stats = insert_buffers_weighted(&mut n, &DelayWeights::NML).unwrap();
        assert_eq!(stats.weighted_depth, 4);
        assert!(verify_weighted_balance(&n, &DelayWeights::NML).is_ok());
    }

    #[test]
    fn indivisible_gap_is_reported_and_netlist_untouched() {
        // NML weights: INV weight 1 creates an odd gap that weight-2
        // buffers cannot tile.
        let mut n = Netlist::new("odd");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let inv = n.add_inv(a);
        let g = n.add_maj([inv, b, a]);
        n.add_output("f", g);
        let before = n.clone();
        match insert_buffers_weighted(&mut n, &DelayWeights::NML) {
            Err(WeightedBalanceError::IndivisibleGap {
                gap, buf_weight, ..
            }) => {
                assert_eq!(gap % buf_weight, gap % 2);
                assert_eq!(buf_weight, 2);
            }
            other => panic!("expected IndivisibleGap, got {other:?}"),
        }
        assert_eq!(n.len(), before.len(), "failed balancing must not mutate");
    }

    #[test]
    fn zero_buffer_weight_is_rejected() {
        let mut n = mapped_sample(62);
        let bad = DelayWeights {
            buf: 0,
            ..DelayWeights::UNIT
        };
        assert_eq!(
            insert_buffers_weighted(&mut n, &bad),
            Err(WeightedBalanceError::ZeroBufferWeight)
        );
    }

    #[test]
    fn weighted_depth_reflects_slow_inverters() {
        let mut n = Netlist::new("slow");
        let a = n.add_input("a");
        let inv = n.add_inv(a);
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g = n.add_maj([inv, b, c]);
        n.add_output("f", g);
        let arr = weighted_arrivals(&n, &DelayWeights::QCA);
        assert_eq!(arr[inv.index()], 7);
        assert_eq!(arr[g.index()], 9);
    }
}
