//! The end-to-end wave-pipelining enablement flow:
//! MIG → mapped netlist → fan-out restriction → buffer insertion →
//! verified wave-ready netlist.
//!
//! This is the composition the paper evaluates (§V): fan-out restriction
//! must run **before** buffer insertion because splitting fan-out
//! changes path lengths (Fig 8's observation (a): the combined flow
//! inserts more buffers than either pass alone).
//!
//! Since the pass-pipeline refactor, [`run_flow`] is a thin
//! compatibility wrapper: it assembles the default
//! [`crate::FlowPipeline`] for the given [`FlowConfig`] and converts
//! the instrumented [`crate::PipelineRun`] back into the legacy
//! [`FlowResult`] shape. [`run_flow_batch`] evaluates whole suites in
//! parallel.

use mig::Mig;

use crate::balance::{BalanceError, BalanceReport};
use crate::buffer_insertion::BufferInsertion;
use crate::fanout_restriction::FanoutRestriction;
use crate::netlist::{KindCounts, Netlist};
use crate::pipeline::{PassError, PipelineRun};

/// Configuration of the enablement flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowConfig {
    /// Fan-out restriction limit (2–5), or `None` to skip restriction
    /// (the paper's BUF-only configuration of Fig 8).
    pub fanout_limit: Option<u32>,
    /// Whether to run buffer insertion (disable for the FOx-only
    /// configurations of Fig 8).
    pub insert_buffers: bool,
    /// Map with inversion-count minimization
    /// ([`crate::netlist_from_mig_min_inv`]) instead of the reference
    /// mapping — an extension beyond the paper (its reference \[20\]),
    /// off by default.
    pub minimize_inverters: bool,
}

impl Default for FlowConfig {
    /// The paper's benchmarking configuration: fan-out restriction to 3,
    /// then buffer insertion (§V).
    fn default() -> FlowConfig {
        FlowConfig {
            fanout_limit: Some(3),
            insert_buffers: true,
            minimize_inverters: false,
        }
    }
}

/// Everything the flow produced, for one MIG.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The mapped netlist before any transformation (INV materialized).
    pub original: Netlist,
    /// The transformed netlist.
    pub pipelined: Netlist,
    /// Fan-out restriction statistics (if the pass ran).
    pub fanout: Option<FanoutRestriction>,
    /// Buffer insertion statistics (if the pass ran).
    pub buffers: Option<BufferInsertion>,
    /// Balance verification of the result (present when buffer insertion
    /// ran; the invariants cannot hold without it in general).
    pub report: Option<BalanceReport>,
}

impl FlowResult {
    /// Component counts of the original mapped netlist.
    pub fn original_counts(&self) -> KindCounts {
        self.original.counts()
    }

    /// Component counts of the transformed netlist.
    pub fn pipelined_counts(&self) -> KindCounts {
        self.pipelined.counts()
    }

    /// Size ratio pipelined / original (the normalized netlist size of
    /// Fig 8).
    pub fn size_ratio(&self) -> f64 {
        self.pipelined_counts().priced_total() as f64
            / self.original_counts().priced_total().max(1) as f64
    }
}

/// Runs the configured flow on `graph`.
///
/// # Errors
///
/// Returns a [`BalanceError`] if the resulting netlist fails
/// verification — which would indicate a bug in the transforms, not bad
/// input; the error is surfaced rather than panicking so harnesses can
/// report it.
///
/// # Examples
///
/// ```
/// use mig::Mig;
/// use wavepipe::{run_flow, FlowConfig};
///
/// # fn main() -> Result<(), wavepipe::BalanceError> {
/// let mut g = Mig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let cin = g.add_input("cin");
/// let (s, c) = g.add_full_adder(a, b, cin);
/// g.add_output("s", s);
/// g.add_output("c", c);
///
/// let result = run_flow(&g, FlowConfig::default())?;
/// assert!(result.size_ratio() >= 1.0);
/// assert_eq!(result.report.unwrap().depth, result.pipelined.depth());
/// # Ok(())
/// # }
/// ```
pub fn run_flow(graph: &Mig, config: FlowConfig) -> Result<FlowResult, BalanceError> {
    // Deprecated-style thin wrapper: one uncached engine cell. Kept
    // bit-identical to the pipeline path (the golden tests pin it);
    // prefer [`crate::Engine::run`] with a [`crate::FlowSpec`] to get
    // caching and the full error surface.
    let engine = crate::engine::Engine::uncached();
    let outcome = engine
        .run_graph(graph, &crate::spec::PipelineSpec::for_config(config), None)
        .map(|run| {
            drop(engine); // release the engine's interest so the Arc unwraps
            std::sync::Arc::try_unwrap(run).unwrap_or_else(|shared| (*shared).clone())
        })
        .map_err(|e| match e {
            crate::error::FlowError::Pass(e) => e,
            other => unreachable!("config specs always validate: {other}"),
        });
    into_legacy(outcome)
}

/// Runs the configured flow over many graphs concurrently (one task per
/// graph, scheduled across all cores by the pipeline's parallel batch
/// driver), preserving input order.
///
/// Each graph gets its own `Result`, so one failing circuit does not
/// poison a suite run.
///
/// # Examples
///
/// ```
/// use mig::Mig;
/// use wavepipe::{run_flow_batch, FlowConfig};
///
/// let graphs: Vec<Mig> = (0..4)
///     .map(|seed| {
///         mig::random_mig(mig::RandomMigConfig {
///             inputs: 6,
///             outputs: 3,
///             gates: 60,
///             depth: 6,
///             seed,
///         })
///     })
///     .collect();
/// let refs: Vec<&Mig> = graphs.iter().collect();
/// let results = run_flow_batch(&refs, FlowConfig::default());
/// assert_eq!(results.len(), 4);
/// assert!(results.iter().all(|r| r.is_ok()));
/// ```
pub fn run_flow_batch(
    graphs: &[&Mig],
    config: FlowConfig,
) -> Vec<Result<FlowResult, BalanceError>> {
    // Thin wrapper over an uncached engine's cost-blind grid (one cell
    // per graph on the work-pulling scheduler), bit-identical to the
    // old per-graph batch driver.
    let engine = crate::engine::Engine::uncached();
    let cells = engine
        .run_pipeline_grid(&crate::spec::PipelineSpec::for_config(config), graphs, &[])
        .unwrap_or_else(|e| unreachable!("config specs always validate: {e}"));
    drop(engine);
    cells
        .into_iter()
        .map(|cell| {
            into_legacy(cell.outcome.map(|run| {
                std::sync::Arc::try_unwrap(run).unwrap_or_else(|shared| (*shared).clone())
            }))
        })
        .collect()
}

/// Converts a pipeline outcome back into the legacy `run_flow` shape.
fn into_legacy(outcome: Result<PipelineRun, PassError>) -> Result<FlowResult, BalanceError> {
    match outcome {
        Ok(run) => Ok(run.result),
        Err(PassError::Balance(e)) => Err(e),
        Err(other) => {
            unreachable!("config-assembled pipelines only produce balance errors: {other}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavesim::WaveSimulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_mig(seed: u64) -> Mig {
        mig::random_mig(mig::RandomMigConfig {
            inputs: 12,
            outputs: 6,
            gates: 250,
            depth: 10,
            seed,
        })
    }

    #[test]
    fn default_flow_produces_wave_ready_netlist() {
        let g = sample_mig(1);
        let r = run_flow(&g, FlowConfig::default()).unwrap();
        assert!(r.report.is_some());
        assert!(r.pipelined.max_fanout() <= 3);
        assert!(r.size_ratio() > 1.0);
        assert!(r.fanout.unwrap().fogs_inserted > 0);
        assert!(r.buffers.unwrap().total() > 0);
    }

    #[test]
    fn flow_preserves_function_end_to_end() {
        let g = sample_mig(2);
        let r = run_flow(&g, FlowConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..64 {
            let bits: Vec<bool> = (0..12).map(|_| rng.gen()).collect();
            assert_eq!(r.original.eval(&bits), r.pipelined.eval(&bits));
        }
    }

    #[test]
    fn flow_result_streams_waves() {
        let g = sample_mig(4);
        let r = run_flow(&g, FlowConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let waves: Vec<Vec<bool>> = (0..25)
            .map(|_| (0..12).map(|_| rng.gen()).collect())
            .collect();
        let corrupted = WaveSimulator::new(&r.pipelined).check_against_golden(&waves);
        assert!(corrupted.is_empty());
    }

    #[test]
    fn buf_only_configuration() {
        let g = sample_mig(6);
        let r = run_flow(
            &g,
            FlowConfig {
                fanout_limit: None,
                insert_buffers: true,
                ..FlowConfig::default()
            },
        )
        .unwrap();
        assert!(r.fanout.is_none());
        assert!(r.report.is_some());
    }

    #[test]
    fn fo_only_configuration() {
        let g = sample_mig(7);
        let r = run_flow(
            &g,
            FlowConfig {
                fanout_limit: Some(4),
                insert_buffers: false,
                ..FlowConfig::default()
            },
        )
        .unwrap();
        assert!(r.report.is_none());
        assert!(r.pipelined.max_fanout() <= 4);
        assert!(r.buffers.is_none());
    }

    #[test]
    fn combined_flow_needs_more_buffers_than_buf_alone() {
        // Fig 8 observation (a): FOx+BUF inserts more buffers than BUF,
        // because fan-out chains delay consumers and widen gaps.
        let mut more = 0usize;
        for seed in 10..16 {
            let g = sample_mig(seed);
            let buf_only = run_flow(
                &g,
                FlowConfig {
                    fanout_limit: None,
                    insert_buffers: true,
                    ..FlowConfig::default()
                },
            )
            .unwrap();
            let combined = run_flow(&g, FlowConfig::default()).unwrap();
            if combined.buffers.unwrap().total() >= buf_only.buffers.unwrap().total() {
                more += 1;
            }
        }
        assert!(
            more >= 5,
            "combined flow should dominate on most seeds ({more}/6)"
        );
    }

    #[test]
    fn fog_count_is_independent_of_buffer_insertion() {
        // Fig 8 observation (b).
        for seed in 20..24 {
            let g = sample_mig(seed);
            let fo_only = run_flow(
                &g,
                FlowConfig {
                    fanout_limit: Some(3),
                    insert_buffers: false,
                    ..FlowConfig::default()
                },
            )
            .unwrap();
            let combined = run_flow(&g, FlowConfig::default()).unwrap();
            assert_eq!(
                fo_only.pipelined_counts().fog,
                combined.pipelined_counts().fog
            );
        }
    }
}
