//! The long-lived engine facade: validated spec execution with a
//! content-hash keyed result cache.
//!
//! An [`Engine`] is the one stable entry point the ROADMAP's
//! production-scale system needs: it validates a declarative
//! [`FlowSpec`] into an ordering-checked [`FlowPipeline`], resolves its
//! circuit selection (registry names via a pluggable resolver, inline
//! netlists via the `mig` text parser), and sweeps the circuit ×
//! technology grid on the work-pulling parallel scheduler — exactly
//! like [`FlowPipeline::run_grid`], except every cell first consults a
//! cache keyed by `(circuit content hash, pipeline content hash,
//! technology content hash)`. Repeated and *overlapping* sweeps only
//! recompute changed cells: re-running the same spec is pure cache
//! hits, editing one technology re-prices only that column, adding a
//! circuit computes only its row.
//!
//! Cached cells come back as [`Arc`]-shared [`PipelineRun`]s, so a warm
//! re-run returns bit-identical results (the golden tests pin this)
//! while executing **zero passes** — asserted via the engine's
//! [`EngineStats::passes_executed`] counter, which sums the per-pass
//! [`crate::PassStats`] records of every run that actually executed.
//!
//! Results stream: [`Engine::run_streaming`] invokes a callback from
//! the worker threads as each cell completes, and the collected
//! [`EngineRun`] iterates cells circuit-major.
//!
//! ```
//! use wavepipe::{Engine, FlowSpec};
//!
//! # fn main() -> Result<(), wavepipe::FlowError> {
//! let mut g = mig::Mig::new();
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let cin = g.add_input("cin");
//! let (sum, cout) = g.add_full_adder(a, b, cin);
//! g.add_output("sum", sum);
//! g.add_output("cout", cout);
//!
//! let engine = Engine::new();
//! let spec = FlowSpec::new("adder-demo").inline_circuit("adder", &g);
//! let cold = engine.run(&spec)?;
//! assert_eq!(cold.cells.len(), 1);
//! assert!(cold.stats.passes_executed > 0);
//!
//! // Second identical run: full cache hit, zero pass executions.
//! let warm = engine.run(&spec)?;
//! assert_eq!(warm.stats.passes_executed, 0);
//! assert_eq!(warm.stats.cache_hits, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mig::Mig;
use rayon::prelude::*;

use crate::cost::CostTable;
use crate::error::FlowError;
use crate::persist::DiskCache;
use crate::pipeline::{FlowPipeline, PassError, PipelineRun};
use crate::spec::{CircuitSpec, FlowSpec, PipelineSpec, SpecError};

/// Looks a named circuit up; `None` means "not in the registry".
pub type CircuitResolver = dyn Fn(&str) -> Option<Mig> + Send + Sync;

/// The default disk-cache root, relative to the working directory —
/// what [`Engine::for_spec`] and the `WAVEPIPE_CACHE_DIR` environment
/// knob resolve against when given a bare `default`.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// Granularity of one cache entry. Whole grid cells, per-output-cone
/// runs and spliced incremental results share the cache (and the disk
/// tier) but can never collide: the scope is part of the key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Scope {
    /// A whole-circuit grid cell (the PR-3 granularity).
    Cell,
    /// One extracted output cone run through the pipeline.
    Cone,
    /// A merged incremental result for a whole edited graph.
    Spliced,
}

impl Scope {
    pub(crate) fn tag(self) -> &'static str {
        match self {
            Scope::Cell => "cell",
            Scope::Cone => "cone",
            Scope::Spliced => "spliced",
        }
    }
}

/// One entry's cache identity. `technology` is the model's content
/// hash, or a fixed sentinel for cost-blind cells (a model could only
/// collide with it by hashing to the exact sentinel — an FNV output
/// like any other).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub(crate) scope: Scope,
    pub(crate) circuit: u64,
    pub(crate) pipeline: u64,
    pub(crate) technology: u64,
}

impl CacheKey {
    fn triple(&self) -> (u64, u64, u64) {
        (self.circuit, self.pipeline, self.technology)
    }
}

pub(crate) const COST_BLIND: u64 = 0;

/// `default` → [`DEFAULT_CACHE_DIR`]; anything else is taken verbatim.
fn resolve_cache_dir(dir: &str) -> PathBuf {
    if dir == "default" {
        PathBuf::from(DEFAULT_CACHE_DIR)
    } else {
        PathBuf::from(dir)
    }
}

/// Cumulative (or per-run delta) engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct EngineStats {
    /// Entries answered from the in-memory cache.
    pub cache_hits: u64,
    /// Entries that had to execute (every cache tier cold, or changed).
    pub cache_misses: u64,
    /// Passes actually executed, summed from the [`crate::PassStats`]
    /// traces of every run that was computed rather than recalled — the
    /// counter the warm-cache golden test pins to zero.
    pub passes_executed: u64,
    /// Output cones spliced from cached runs by the incremental engine.
    pub cones_reused: u64,
    /// Output cones the incremental engine had to re-run (dirty, or
    /// first sight).
    pub cones_recomputed: u64,
    /// Entries answered from the disk tier (memory missed).
    pub disk_hits: u64,
    /// Disk-tier lookups that missed (absent, corrupt or stale entry).
    pub disk_misses: u64,
    /// In-memory entries evicted by the LRU capacity bound.
    pub evictions: u64,
}

impl EngineStats {
    /// Counter-wise difference against an earlier snapshot — how
    /// callers turn two [`Engine::stats`] readings into a per-stage
    /// delta (the bench harness records these in `BENCH_pr3.json`).
    ///
    /// Each counter is an independent atomic, so a snapshot taken while
    /// other threads are mid-run is not a single consistent cut: one
    /// counter may already include an operation whose sibling counter
    /// does not. The subtraction saturates so such an interleaving can
    /// never underflow; callers that need *exact* per-run counters on a
    /// shared engine should use [`EngineRun::stats`], which is tallied
    /// locally by the run itself rather than diffed from the globals.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            passes_executed: self.passes_executed.saturating_sub(earlier.passes_executed),
            cones_reused: self.cones_reused.saturating_sub(earlier.cones_reused),
            cones_recomputed: self
                .cones_recomputed
                .saturating_sub(earlier.cones_recomputed),
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            disk_misses: self.disk_misses.saturating_sub(earlier.disk_misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// Per-run counter tally. The engine's cumulative counters are shared
/// by every concurrent caller (the serve daemon runs many clients on
/// one engine), so a before/after diff of [`Engine::stats`] would fold
/// other clients' work into this run's delta. Each run therefore
/// carries its own tally, bumped in lockstep with the globals, and
/// [`EngineRun::stats`] reads it — exact even under full concurrency.
#[derive(Default)]
pub(crate) struct RunTally {
    hits: AtomicU64,
    misses: AtomicU64,
    passes: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    evictions: AtomicU64,
}

impl RunTally {
    fn snapshot(&self) -> EngineStats {
        EngineStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            passes_executed: self.passes.load(Ordering::Relaxed),
            cones_reused: 0,
            cones_recomputed: 0,
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// One finished grid cell of an engine run.
#[derive(Clone, Debug)]
pub struct EngineCell {
    /// Index into the run's circuit list.
    pub circuit: usize,
    /// Index into the run's technology list, or `None` for a cost-blind
    /// cell (spec with no technologies).
    pub technology: Option<usize>,
    /// Whether the cell was answered from the cache.
    pub cached: bool,
    /// The cell's pipeline run (shared with the cache), or the first
    /// pass failure. Failures are never cached — a failing cell re-runs
    /// on the next sweep.
    pub outcome: Result<Arc<PipelineRun>, PassError>,
}

impl EngineCell {
    /// The successful run, if the cell verified.
    pub fn run(&self) -> Option<&PipelineRun> {
        self.outcome.as_ref().ok().map(Arc::as_ref)
    }
}

/// Everything one [`Engine::run`] produced.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// The spec's experiment name.
    pub spec_name: String,
    /// Resolved circuit names, in spec order.
    pub circuits: Vec<String>,
    /// Technology names, in spec order.
    pub technologies: Vec<String>,
    /// All grid cells, circuit-major (`circuit * technologies.len() +
    /// technology`; one cell per circuit when cost-blind).
    pub cells: Vec<EngineCell>,
    /// Cache and execution counters for this run alone.
    pub stats: EngineStats,
}

impl EngineRun {
    /// Iterates the cells circuit-major.
    pub fn iter(&self) -> impl Iterator<Item = &EngineCell> {
        self.cells.iter()
    }

    /// The cell of `(circuit, technology)`, if both indices exist.
    pub fn cell(&self, circuit: usize, technology: usize) -> Option<&EngineCell> {
        let width = self.technologies.len().max(1);
        if circuit >= self.circuits.len() || technology >= width {
            return None;
        }
        self.cells.get(circuit * width + technology)
    }
}

impl<'a> IntoIterator for &'a EngineRun {
    type Item = &'a EngineCell;
    type IntoIter = std::slice::Iter<'a, EngineCell>;
    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter()
    }
}

/// Recency-ordered cache with optional capacity. `order` runs from
/// least- to most-recently-used: hits move their key to the back, so a
/// bounded cache evicts the LRU entry from the front.
#[derive(Default)]
struct Cache {
    cells: HashMap<CacheKey, Arc<PipelineRun>>,
    order: VecDeque<CacheKey>,
}

impl Cache {
    /// Looks a key up and, on a hit, marks it most-recently-used.
    /// `track_recency` is false for the unbounded cache, where nothing
    /// is ever evicted and the O(len) recency scan would buy nothing.
    fn get_touch(&mut self, key: &CacheKey, track_recency: bool) -> Option<Arc<PipelineRun>> {
        let run = self.cells.get(key)?.clone();
        if track_recency && self.order.back() != Some(key) {
            if let Some(at) = self.order.iter().position(|k| k == key) {
                self.order.remove(at);
                self.order.push_back(*key);
            }
        }
        Some(run)
    }
}

/// The engine facade. See the [module docs](self) for semantics; the
/// bench harness keeps one engine alive across every experiment of a
/// reproduction run so overlapping sweeps share work.
pub struct Engine {
    resolver: Option<Box<CircuitResolver>>,
    cache: Mutex<Cache>,
    /// `Some(0)` disables caching entirely (no hashing, no lookups) —
    /// the mode the thin `run_flow` / `run_grid` wrappers use.
    capacity: Option<usize>,
    /// Persistent tier under the in-memory LRU, when configured.
    disk: Option<DiskCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    passes_executed: AtomicU64,
    cones_reused: AtomicU64,
    cones_recomputed: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("resolver", &self.resolver.is_some())
            .field("cached_cells", &self.lock_cache().cells.len())
            .field("capacity", &self.capacity)
            .field("disk", &self.disk.as_ref().map(DiskCache::root))
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// A fresh engine: unbounded cache, no circuit resolver (specs may
    /// only use inline circuits until one is installed).
    pub fn new() -> Engine {
        Engine {
            resolver: None,
            cache: Mutex::new(Cache::default()),
            capacity: None,
            disk: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            passes_executed: AtomicU64::new(0),
            cones_reused: AtomicU64::new(0),
            cones_recomputed: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// An engine configured from the environment: unbounded in-memory
    /// cache and no disk tier unless `WAVEPIPE_CACHE_CAPACITY` (LRU
    /// entry bound; `0` disables caching) or `WAVEPIPE_CACHE_DIR`
    /// (disk-cache root; `default` means [`DEFAULT_CACHE_DIR`], empty
    /// disables the disk tier) say otherwise. Unparsable values warn on
    /// stderr and are ignored.
    pub fn from_env() -> Engine {
        Engine::new().apply_env()
    }

    /// An engine configured from a spec's [`crate::CacheSpec`] (when
    /// present), then overridden by the environment knobs exactly as in
    /// [`Engine::from_env`] — env wins over spec, spec wins over the
    /// defaults.
    pub fn for_spec(spec: &FlowSpec) -> Engine {
        let mut engine = Engine::new();
        if let Some(cache) = &spec.cache {
            if let Some(capacity) = cache.capacity {
                engine.capacity = Some(capacity);
            }
            if let Some(dir) = &cache.dir {
                engine.disk = Some(DiskCache::new(resolve_cache_dir(dir)));
            }
        }
        engine.apply_env()
    }

    fn apply_env(mut self) -> Engine {
        if let Ok(value) = std::env::var("WAVEPIPE_CACHE_CAPACITY") {
            match value.trim().parse::<usize>() {
                Ok(cells) => self.capacity = Some(cells),
                Err(_) => {
                    eprintln!("warning: ignoring unparsable WAVEPIPE_CACHE_CAPACITY `{value}`")
                }
            }
        }
        if let Ok(value) = std::env::var("WAVEPIPE_CACHE_DIR") {
            self.disk = if value.is_empty() {
                None
            } else {
                Some(DiskCache::new(resolve_cache_dir(&value)))
            };
        }
        self
    }

    /// An engine that never caches (and never hashes) — every cell
    /// executes. This is what the legacy `run_flow` / `run_grid`
    /// wrappers run on, so they stay exactly as cheap as before.
    pub fn uncached() -> Engine {
        Engine {
            capacity: Some(0),
            ..Engine::new()
        }
    }

    /// Installs the registry lookup for [`CircuitSpec::Named`] entries
    /// (e.g. `benchsuite::build_mig`).
    pub fn with_resolver(
        mut self,
        resolver: impl Fn(&str) -> Option<Mig> + Send + Sync + 'static,
    ) -> Engine {
        self.resolver = Some(Box::new(resolver));
        self
    }

    /// Bounds the cache to `cells` entries (least-recently-used
    /// evicted first; a hit counts as a use); `0` disables caching.
    pub fn with_cache_capacity(mut self, cells: usize) -> Engine {
        self.capacity = Some(cells);
        self
    }

    /// Layers a persistent disk cache under the in-memory LRU, rooted
    /// at `root` (created on first store). Memory misses consult the
    /// disk tier and promote hits back into memory; computed entries
    /// are written through. Corrupt, stale or unreadable entries warn
    /// on stderr and recompute — they never fail a run.
    pub fn with_disk_cache(mut self, root: impl Into<PathBuf>) -> Engine {
        self.disk = Some(DiskCache::new(root.into()));
        self
    }

    /// The disk-cache root, when a disk tier is configured.
    pub fn disk_cache_root(&self) -> Option<&std::path::Path> {
        self.disk.as_ref().map(DiskCache::root)
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            passes_executed: self.passes_executed.load(Ordering::Relaxed),
            cones_reused: self.cones_reused.load(Ordering::Relaxed),
            cones_recomputed: self.cones_recomputed.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Locks the cache, recovering from poison. A panic on another
    /// thread while the mutex was held (a panicking sink or a torn
    /// allocation mid-insert) must not brick a shared daemon engine:
    /// the interrupted mutation may have left `cells` and `order`
    /// inconsistent, so recovery drops the whole cache — a warm start
    /// costs recomputes, never a crash — and clears the poison flag so
    /// later locks stop paying the reset.
    fn lock_cache(&self) -> std::sync::MutexGuard<'_, Cache> {
        match self.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                let dropped = guard.cells.len();
                guard.cells.clear();
                guard.order.clear();
                self.cache.clear_poison();
                eprintln!(
                    "warning: engine cache poisoned by a panicking request; \
                     dropped {dropped} cached cells and recovered"
                );
                guard
            }
        }
    }

    /// Number of cells currently cached.
    pub fn cached_cells(&self) -> usize {
        self.lock_cache().cells.len()
    }

    /// Drops every cached cell (counters are kept).
    pub fn clear_cache(&self) {
        let mut cache = self.lock_cache();
        cache.cells.clear();
        cache.order.clear();
    }

    /// Validates and executes a spec, collecting all cells. Equivalent
    /// to [`Engine::run_streaming`] with a no-op sink; see there for
    /// the error contract.
    ///
    /// # Errors
    ///
    /// As [`Engine::run_streaming`].
    ///
    /// # Examples
    ///
    /// ```
    /// use wavepipe::{Engine, FlowError, FlowSpec, SpecError};
    ///
    /// let mut g = mig::Mig::new();
    /// let a = g.add_input("a");
    /// let b = g.add_input("b");
    /// let m = g.add_maj(a, b, !a);
    /// g.add_output("m", m);
    ///
    /// let engine = Engine::new();
    /// let run = engine
    ///     .run(&FlowSpec::new("tiny").inline_circuit("inv", &g))
    ///     .expect("verifies");
    /// assert_eq!(run.cells.len(), 1);
    /// assert!(run.cells[0].run().unwrap().result.report.is_some());
    ///
    /// // Malformed experiments are errors, never panics — here a named
    /// // circuit without a registry resolver:
    /// let err = engine.run(&FlowSpec::new("named").circuit("SASC"));
    /// assert!(matches!(
    ///     err,
    ///     Err(FlowError::Spec(SpecError::NoResolver(_)))
    /// ));
    /// ```
    pub fn run(&self, spec: &FlowSpec) -> Result<EngineRun, FlowError> {
        self.run_streaming(spec, |_| {})
    }

    /// Validates and executes a spec, invoking `sink` from the worker
    /// threads as each cell completes (completion order, not grid
    /// order), then returns the collected [`EngineRun`] with the cells
    /// in circuit-major order.
    ///
    /// # Errors
    ///
    /// [`FlowError::Spec`] when the spec fails validation or a circuit
    /// cannot be resolved; [`FlowError::Lint`] when the pre-run spec
    /// lint ([`crate::lint_spec`]) finds error-severity diagnostics
    /// (e.g. a technology table that cannot time a wave);
    /// [`FlowError::Pipeline`] when the pass list is ill-ordered.
    /// Per-cell pass failures do **not** fail the run — they come back
    /// in each [`EngineCell::outcome`], so one failing circuit cannot
    /// poison a sweep.
    pub fn run_streaming(
        &self,
        spec: &FlowSpec,
        sink: impl Fn(&EngineCell) + Sync,
    ) -> Result<EngineRun, FlowError> {
        spec.validate()?;
        // Pre-run static analysis: a spec that validates structurally
        // can still be semantically hopeless (a zero phase delay prices
        // every wave at nothing). Reject on error-severity findings
        // before building a single circuit.
        let mut diagnostics = crate::lint::lint_spec(spec);
        diagnostics.retain(|d| d.severity == crate::lint::Severity::Error);
        if !diagnostics.is_empty() {
            return Err(FlowError::Lint(diagnostics));
        }
        let pipeline = spec.pipeline.build()?;
        // Resolve (and for registry names, generate) the circuits in
        // parallel — suite builds are the expensive part of a cold
        // full-suite spec; the first failure wins, like a serial pass.
        let mut circuits: Vec<(String, Mig)> = Vec::with_capacity(spec.circuits.len());
        let resolved: Vec<Result<Mig, SpecError>> =
            spec.circuits.par_iter().map(|c| self.resolve(c)).collect();
        for (circuit, graph) in spec.circuits.iter().zip(resolved) {
            circuits.push((circuit.name(), graph?));
        }
        let graphs: Vec<&Mig> = circuits.iter().map(|(_, g)| g).collect();

        let tally = RunTally::default();
        let cells = self.grid_cells(
            &pipeline,
            Some(spec.pipeline.content_hash()),
            &graphs,
            &spec.technologies,
            Some(&tally),
            &sink,
        );
        Ok(EngineRun {
            spec_name: spec.name.clone(),
            circuits: circuits.into_iter().map(|(name, _)| name).collect(),
            technologies: spec
                .technologies
                .iter()
                .map(|t| t.name().to_owned())
                .collect(),
            cells,
            stats: tally.snapshot(),
        })
    }

    /// Runs one pipeline spec over explicit graphs × models with
    /// caching — the harness's entry point when it already holds built
    /// circuits (so a spec run and a graph run of the same work share
    /// cache cells). An empty `models` slice runs one cost-blind cell
    /// per graph.
    ///
    /// # Errors
    ///
    /// [`FlowError::Spec`] / [`FlowError::Pipeline`] when the pipeline
    /// spec is invalid; per-cell failures come back in the cells.
    pub fn run_pipeline_grid(
        &self,
        pipeline: &PipelineSpec,
        graphs: &[&Mig],
        models: &[CostTable],
    ) -> Result<Vec<EngineCell>, FlowError> {
        pipeline.validate()?;
        // Same contract as FlowSpec::validate: a cost-aware pass with
        // nothing to price against is rejected upfront, not after the
        // mapping pass has already run in every cell.
        if pipeline.uses_cost_aware_passes() && models.is_empty() {
            return Err(SpecError::CostAwareWithoutTechnology.into());
        }
        let built = pipeline.build()?;
        Ok(self.grid_cells(
            &built,
            Some(pipeline.content_hash()),
            graphs,
            models,
            None,
            &|_| {},
        ))
    }

    /// Runs one pipeline spec on one graph (one cached cell).
    ///
    /// # Errors
    ///
    /// [`FlowError::Spec`] / [`FlowError::Pipeline`] for an invalid
    /// pipeline spec, [`FlowError::Pass`] when the run itself fails.
    pub fn run_graph(
        &self,
        graph: &Mig,
        pipeline: &PipelineSpec,
        model: Option<&CostTable>,
    ) -> Result<Arc<PipelineRun>, FlowError> {
        let models: Vec<CostTable> = model.cloned().into_iter().collect();
        let mut cells = self.run_pipeline_grid(pipeline, &[graph], &models)?;
        let cell = cells.pop().expect("one graph yields one cell");
        cell.outcome.map_err(FlowError::Pass)
    }

    /// Grid execution over an already-built pipeline. `pipe_hash` is
    /// the pipeline's stable identity; without one (or with caching
    /// disabled) every cell executes.
    pub(crate) fn grid_cells(
        &self,
        pipeline: &FlowPipeline,
        pipe_hash: Option<u64>,
        graphs: &[&Mig],
        models: &[CostTable],
        tally: Option<&RunTally>,
        sink: &(dyn Fn(&EngineCell) + Sync),
    ) -> Vec<EngineCell> {
        let caching = self.caching_enabled() && pipe_hash.is_some();
        // One content hash per circuit, computed once per sweep — a
        // direct arena walk, no intermediate serialization.
        let circuit_hashes: Vec<u64> = if caching {
            graphs.par_iter().map(|g| g.content_hash()).collect()
        } else {
            vec![0; graphs.len()]
        };
        let tech_hashes: Vec<u64> = models.iter().map(CostTable::content_hash).collect();

        let coords: Vec<(usize, Option<usize>)> = if models.is_empty() {
            (0..graphs.len()).map(|c| (c, None)).collect()
        } else {
            (0..graphs.len())
                .flat_map(|c| (0..models.len()).map(move |m| (c, Some(m))))
                .collect()
        };

        coords
            .par_iter()
            .map(|&(circuit, technology)| {
                let key = caching.then(|| CacheKey {
                    scope: Scope::Cell,
                    circuit: circuit_hashes[circuit],
                    pipeline: pipe_hash.expect("caching implies a pipeline hash"),
                    technology: technology.map_or(COST_BLIND, |m| tech_hashes[m]),
                });
                if let Some(run) = key.and_then(|key| self.lookup_tallied(&key, tally)) {
                    let cell = EngineCell {
                        circuit,
                        technology,
                        cached: true,
                        outcome: Ok(run),
                    };
                    sink(&cell);
                    return cell;
                }

                let model = technology.map(|m| &models[m]);
                let outcome = pipeline.run_with_model(graphs[circuit], model);
                if caching {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    if let Some(tally) = tally {
                        tally.misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let outcome = match outcome {
                    Ok(run) => {
                        self.passes_executed
                            .fetch_add(run.trace.len() as u64, Ordering::Relaxed);
                        if let Some(tally) = tally {
                            tally
                                .passes
                                .fetch_add(run.trace.len() as u64, Ordering::Relaxed);
                        }
                        let run = Arc::new(run);
                        if let Some(key) = key {
                            self.store_tallied(key, &run, tally);
                        }
                        Ok(run)
                    }
                    Err(e) => Err(e),
                };
                let cell = EngineCell {
                    circuit,
                    technology,
                    cached: false,
                    outcome,
                };
                sink(&cell);
                cell
            })
            .collect()
    }

    /// Whether this engine caches at all (`with_cache_capacity(0)` and
    /// [`Engine::uncached`] turn everything off, disk tier included).
    pub(crate) fn caching_enabled(&self) -> bool {
        self.capacity != Some(0)
    }

    /// Tiered lookup: in-memory LRU first (counted as a cache hit),
    /// then the disk tier (counted as a disk hit and promoted back into
    /// memory). `None` means both tiers missed — only the disk-tier
    /// counter moves here; the caller decides whether the miss leads to
    /// a computation (and then counts `cache_misses`).
    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<Arc<PipelineRun>> {
        self.lookup_tallied(key, None)
    }

    /// [`Engine::lookup`] with an optional per-run tally bumped in
    /// lockstep with the cumulative counters.
    pub(crate) fn lookup_tallied(
        &self,
        key: &CacheKey,
        tally: Option<&RunTally>,
    ) -> Option<Arc<PipelineRun>> {
        let hit = {
            let mut cache = self.lock_cache();
            cache.get_touch(key, self.capacity.is_some())
        };
        if let Some(run) = hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(tally) = tally {
                tally.hits.fetch_add(1, Ordering::Relaxed);
            }
            return Some(run);
        }
        let disk = self.disk.as_ref()?;
        match disk.load(key.scope.tag(), key.triple()) {
            Some(run) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(tally) = tally {
                    tally.disk_hits.fetch_add(1, Ordering::Relaxed);
                }
                let run = Arc::new(run);
                self.insert(*key, run.clone(), tally);
                Some(run)
            }
            None => {
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                if let Some(tally) = tally {
                    tally.disk_misses.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
        }
    }

    /// Stores a computed run in both tiers (write-through).
    pub(crate) fn store(&self, key: CacheKey, run: &Arc<PipelineRun>) {
        self.store_tallied(key, run, None);
    }

    /// [`Engine::store`] with an optional per-run tally (evictions the
    /// insert triggers are attributed to the inserting run).
    pub(crate) fn store_tallied(
        &self,
        key: CacheKey,
        run: &Arc<PipelineRun>,
        tally: Option<&RunTally>,
    ) {
        self.insert(key, run.clone(), tally);
        if let Some(disk) = &self.disk {
            disk.store(key.scope.tag(), key.triple(), run);
        }
    }

    /// Bumps the incremental engine's cone telemetry.
    pub(crate) fn count_cones(&self, reused: u64, recomputed: u64) {
        self.cones_reused.fetch_add(reused, Ordering::Relaxed);
        self.cones_recomputed
            .fetch_add(recomputed, Ordering::Relaxed);
    }

    /// Counts a computation both tiers missed (and its executed passes).
    pub(crate) fn count_computed(&self, passes: u64) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.count_passes(passes);
    }

    /// Counts executed passes without a cache miss — what an uncached
    /// engine's computations record.
    pub(crate) fn count_passes(&self, passes: u64) {
        self.passes_executed.fetch_add(passes, Ordering::Relaxed);
    }

    fn insert(&self, key: CacheKey, run: Arc<PipelineRun>, tally: Option<&RunTally>) {
        let mut cache = self.lock_cache();
        if let Some(capacity) = self.capacity {
            while cache.cells.len() >= capacity {
                match cache.order.pop_front() {
                    Some(oldest) => {
                        cache.cells.remove(&oldest);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        if let Some(tally) = tally {
                            tally.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    None => return, // capacity 0: never insert
                }
            }
        }
        if cache.cells.insert(key, run).is_none() {
            cache.order.push_back(key);
        }
    }

    fn resolve(&self, circuit: &CircuitSpec) -> Result<Mig, SpecError> {
        match circuit {
            CircuitSpec::Named(name) => self.resolve_name(name),
            // Synthetic requests resolve through the same registry
            // lookup under their canonical `synth:family:seed:k=v` name
            // (`benchsuite::build_mig` parses it back and generates);
            // the generated graph is then content-hashed like any other
            // circuit, so the cache key tracks (family, seed, params)
            // exactly as far as the generator is deterministic.
            CircuitSpec::Synthetic(synth) => self.resolve_name(&synth.name()),
            CircuitSpec::Inline { name, mig } => {
                mig::parse_mig(mig).map_err(|e| SpecError::InlineCircuit {
                    name: name.clone(),
                    error: e.to_string(),
                })
            }
        }
    }

    fn resolve_name(&self, name: &str) -> Result<Mig, SpecError> {
        let resolver = self
            .resolver
            .as_ref()
            .ok_or_else(|| SpecError::NoResolver(name.to_owned()))?;
        resolver(name).ok_or_else(|| SpecError::UnknownCircuit(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PipelineSpec;
    use crate::{BufferStrategy, FlowConfig};

    fn sample_mig(seed: u64) -> Mig {
        mig::random_mig(mig::RandomMigConfig {
            inputs: 8,
            outputs: 4,
            gates: 120,
            depth: 8,
            seed,
        })
    }

    fn flat_table() -> CostTable {
        struct Flat;
        impl crate::cost::CostModel for Flat {
            fn cost_name(&self) -> &str {
                "FLAT"
            }
            fn area_of(&self, kind: crate::ComponentKind) -> f64 {
                if kind.is_priced() {
                    1.0
                } else {
                    0.0
                }
            }
            fn delay_of(&self, kind: crate::ComponentKind) -> f64 {
                self.area_of(kind)
            }
            fn energy_of(&self, kind: crate::ComponentKind) -> f64 {
                self.area_of(kind)
            }
            fn phase_delay(&self) -> f64 {
                1.0
            }
            fn output_sense_energy(&self) -> f64 {
                0.0
            }
        }
        CostTable::from_model(&Flat)
    }

    fn resolver(name: &str) -> Option<Mig> {
        match name {
            "S1" => Some(sample_mig(1)),
            "S2" => Some(sample_mig(2)),
            _ => None,
        }
    }

    #[test]
    fn spec_run_covers_the_grid_and_matches_direct_runs() {
        let engine = Engine::new().with_resolver(resolver);
        let spec = FlowSpec::new("grid")
            .technology(flat_table())
            .circuit("S1")
            .circuit("S2");
        let run = engine.run(&spec).unwrap();
        assert_eq!(run.circuits, ["S1", "S2"]);
        assert_eq!(run.technologies, ["FLAT"]);
        assert_eq!(run.cells.len(), 2);
        let direct = crate::FlowPipeline::for_config(FlowConfig::default())
            .run_with_model(&sample_mig(1), Some(&flat_table()))
            .unwrap();
        let cell = run.cell(0, 0).unwrap();
        assert_eq!(
            cell.run().unwrap().result.pipelined.counts(),
            direct.result.pipelined.counts()
        );
    }

    #[test]
    fn warm_cache_rerun_executes_zero_passes_and_is_bit_identical() {
        let engine = Engine::new().with_resolver(resolver);
        let spec = FlowSpec::new("warm")
            .technology(flat_table())
            .circuit("S1")
            .circuit("S2");
        let cold = engine.run(&spec).unwrap();
        assert_eq!(cold.stats.cache_misses, 2);
        assert!(cold.stats.passes_executed > 0);

        let warm = engine.run(&spec).unwrap();
        assert_eq!(warm.stats.passes_executed, 0, "zero pass executions");
        assert_eq!(warm.stats.cache_hits, 2);
        assert_eq!(warm.stats.cache_misses, 0);
        for (a, b) in cold.iter().zip(warm.iter()) {
            assert!(b.cached);
            let (a, b) = (a.run().unwrap(), b.run().unwrap());
            // Bit-identical including instrumentation (same Arc'd run).
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.result.report, b.result.report);
        }
    }

    #[test]
    fn overlapping_sweep_only_recomputes_new_cells() {
        let engine = Engine::new().with_resolver(resolver);
        let small = FlowSpec::new("small")
            .technology(flat_table())
            .circuit("S1");
        engine.run(&small).unwrap();

        // Adding a circuit re-uses S1's cell, computes only S2's.
        let grown = FlowSpec::new("grown")
            .technology(flat_table())
            .circuit("S1")
            .circuit("S2");
        let run = engine.run(&grown).unwrap();
        assert_eq!(run.stats.cache_hits, 1);
        assert_eq!(run.stats.cache_misses, 1);

        // A different pipeline shares nothing.
        let other = grown.with_pipeline(
            PipelineSpec::map(false)
                .restrict_fanout(4)
                .insert_buffers(BufferStrategy::Asap)
                .verify(Some(4)),
        );
        let run = engine.run(&other).unwrap();
        assert_eq!(run.stats.cache_hits, 0);
        assert_eq!(run.stats.cache_misses, 2);
    }

    #[test]
    fn streaming_sink_sees_every_cell_exactly_once() {
        let engine = Engine::new().with_resolver(resolver);
        let spec = FlowSpec::new("stream")
            .technology(flat_table())
            .circuit("S1")
            .circuit("S2");
        let seen = Mutex::new(Vec::new());
        let run = engine
            .run_streaming(&spec, |cell| {
                seen.lock().unwrap().push((cell.circuit, cell.technology));
            })
            .unwrap();
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        assert_eq!(seen, vec![(0, Some(0)), (1, Some(0))]);
        assert_eq!(run.cells.len(), 2);
    }

    #[test]
    fn synthetic_circuits_resolve_through_the_registry_name() {
        // The resolver sees the canonical `synth:*` string; two runs of
        // the same request are one cache cell, different seeds are not.
        fn synth_resolver(name: &str) -> Option<Mig> {
            let seed: u64 = name.strip_prefix("synth:dag:")?.parse().ok()?;
            let mut g = sample_mig(seed);
            g.set_name(name);
            Some(g)
        }
        let engine = Engine::new().with_resolver(synth_resolver);
        let spec = FlowSpec::new("synth")
            .synthetic_circuit(crate::SynthSpec::new("dag", 1))
            .synthetic_circuit(crate::SynthSpec::new("dag", 2));
        let cold = engine.run(&spec).unwrap();
        assert_eq!(cold.circuits, ["synth:dag:1", "synth:dag:2"]);
        assert_eq!(cold.stats.cache_misses, 2, "distinct seeds, distinct keys");
        let warm = engine.run(&spec).unwrap();
        assert_eq!(warm.stats.cache_hits, 2);
        assert_eq!(warm.stats.passes_executed, 0);

        // Unknown families surface as UnknownCircuit under the name.
        let err = engine
            .run(&FlowSpec::new("u").synthetic_circuit(crate::SynthSpec::new("nope", 1)))
            .unwrap_err();
        assert!(matches!(
            err,
            FlowError::Spec(SpecError::UnknownCircuit(name)) if name == "synth:nope:1"
        ));
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let engine = Engine::new().with_resolver(resolver).with_cache_capacity(1);
        let s1 = FlowSpec::new("one").circuit("S1");
        let s2 = FlowSpec::new("two").circuit("S2");
        engine.run(&s1).unwrap();
        engine.run(&s2).unwrap(); // evicts S1 (capacity 1)
        let back = engine.run(&s1).unwrap();
        assert_eq!(back.stats.cache_hits, 0, "S1 was evicted");
        assert_eq!(back.stats.cache_misses, 1);
        assert!(back.stats.passes_executed > 0, "re-executes after eviction");
    }

    #[test]
    fn unresolvable_and_unparsable_circuits_are_spec_errors() {
        let engine = Engine::new().with_resolver(resolver);
        let unknown = FlowSpec::new("u").circuit("NOPE");
        assert!(matches!(
            engine.run(&unknown).unwrap_err(),
            FlowError::Spec(SpecError::UnknownCircuit(_))
        ));

        let no_resolver = Engine::new();
        let named = FlowSpec::new("n").circuit("S1");
        assert!(matches!(
            no_resolver.run(&named).unwrap_err(),
            FlowError::Spec(SpecError::NoResolver(_))
        ));

        let garbage = FlowSpec {
            circuits: vec![CircuitSpec::Inline {
                name: "bad".to_owned(),
                mig: "not a mig".to_owned(),
            }],
            ..FlowSpec::new("g")
        };
        assert!(matches!(
            engine.run(&garbage).unwrap_err(),
            FlowError::Spec(SpecError::InlineCircuit { .. })
        ));
    }

    #[test]
    fn ill_ordered_spec_pipelines_surface_the_pipeline_error() {
        let engine = Engine::new().with_resolver(resolver);
        let spec = FlowSpec::new("ill")
            .with_pipeline(
                PipelineSpec::map(false)
                    .insert_buffers(BufferStrategy::Asap)
                    .restrict_fanout(3),
            )
            .circuit("S1");
        assert!(matches!(
            engine.run(&spec).unwrap_err(),
            FlowError::Pipeline(crate::PipelineError::FanoutAfterBuffers)
        ));
    }

    #[test]
    fn cost_aware_pipeline_without_models_is_rejected_upfront() {
        // Same contract as FlowSpec::validate — no cell executes first.
        let engine = Engine::new().with_resolver(resolver);
        let pipeline = PipelineSpec::map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::CostAware);
        let g = sample_mig(1);
        let err = engine.run_pipeline_grid(&pipeline, &[&g], &[]).unwrap_err();
        assert!(matches!(
            err,
            FlowError::Spec(SpecError::CostAwareWithoutTechnology)
        ));
        assert_eq!(engine.stats().passes_executed, 0);
        // With a model it runs.
        assert!(engine
            .run_pipeline_grid(&pipeline, &[&g], &[flat_table()])
            .is_ok());
    }

    #[test]
    fn cost_blind_spec_runs_one_cell_per_circuit() {
        let engine = Engine::new().with_resolver(resolver);
        let run = engine
            .run(&FlowSpec::new("blind").circuit("S1").circuit("S2"))
            .unwrap();
        assert_eq!(run.cells.len(), 2);
        for cell in &run {
            assert_eq!(cell.technology, None);
            assert!(cell.run().unwrap().trace.iter().all(|s| s.priced.is_none()));
        }
    }

    #[test]
    fn capacity_bounds_the_cache() {
        let engine = Engine::new().with_resolver(resolver).with_cache_capacity(1);
        let spec = FlowSpec::new("cap")
            .technology(flat_table())
            .circuit("S1")
            .circuit("S2");
        engine.run(&spec).unwrap();
        assert_eq!(engine.cached_cells(), 1);

        let uncached = Engine::uncached().with_resolver(resolver);
        uncached.run(&spec).unwrap();
        assert_eq!(uncached.cached_cells(), 0);
        assert_eq!(uncached.stats().cache_hits, 0);
        assert!(uncached.stats().passes_executed > 0);
    }

    #[test]
    fn disk_tier_survives_a_fresh_engine_with_zero_passes() {
        let dir = std::env::temp_dir().join(format!("wavepipe-engine-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = FlowSpec::new("disk")
            .technology(flat_table())
            .circuit("S1")
            .circuit("S2");

        let first = Engine::new().with_resolver(resolver).with_disk_cache(&dir);
        let cold = first.run(&spec).unwrap();
        assert_eq!(cold.stats.cache_misses, 2);
        assert_eq!(cold.stats.disk_misses, 2, "cold run consulted the disk");
        assert!(cold.stats.passes_executed > 0);

        // A fresh engine (fresh memory cache) with the same disk root:
        // zero passes, everything from disk, results bit-identical.
        let second = Engine::new().with_resolver(resolver).with_disk_cache(&dir);
        let warm = second.run(&spec).unwrap();
        assert_eq!(warm.stats.passes_executed, 0, "all cells from disk");
        assert_eq!(warm.stats.disk_hits, 2);
        assert_eq!(warm.stats.cache_misses, 0);
        for (a, b) in cold.iter().zip(warm.iter()) {
            assert!(b.cached);
            let (a, b) = (a.run().unwrap(), b.run().unwrap());
            assert_eq!(a.trace, b.trace, "disk round trip is bit-identical");
            assert_eq!(a.result.report, b.result.report);
        }

        // Promoted into memory: a third run on the same engine is pure
        // memory hits.
        let hot = second.run(&spec).unwrap();
        assert_eq!(hot.stats.cache_hits, 2);
        assert_eq!(hot.stats.disk_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_recompute_instead_of_failing() {
        let dir =
            std::env::temp_dir().join(format!("wavepipe-engine-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = FlowSpec::new("corrupt").circuit("S1");
        Engine::new()
            .with_resolver(resolver)
            .with_disk_cache(&dir)
            .run(&spec)
            .unwrap();
        // Truncate every entry on disk.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            std::fs::write(&path, "{\"magic\":\"wavepipe-cache\"").unwrap();
        }
        let fresh = Engine::new().with_resolver(resolver).with_disk_cache(&dir);
        let run = fresh.run(&spec).unwrap();
        assert_eq!(run.stats.disk_hits, 0);
        assert_eq!(run.stats.disk_misses, 1);
        assert_eq!(run.stats.cache_misses, 1, "recomputed, not crashed");
        assert!(run.stats.passes_executed > 0);
        // … and the recompute repaired the entry.
        let repaired = Engine::new().with_resolver(resolver).with_disk_cache(&dir);
        assert_eq!(repaired.run(&spec).unwrap().stats.disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_evictions_are_counted() {
        let engine = Engine::new().with_resolver(resolver).with_cache_capacity(1);
        engine.run(&FlowSpec::new("one").circuit("S1")).unwrap();
        assert_eq!(engine.stats().evictions, 0);
        engine.run(&FlowSpec::new("two").circuit("S2")).unwrap();
        assert_eq!(engine.stats().evictions, 1, "S1's cell was evicted");
    }

    #[test]
    fn poisoned_cache_recovers_with_a_cleared_cache_fallback() {
        let engine = std::sync::Arc::new(Engine::new().with_resolver(resolver));
        let spec = FlowSpec::new("poison").circuit("S1");
        engine.run(&spec).unwrap();
        assert_eq!(engine.cached_cells(), 1);

        // Poison the cache mutex: panic on another thread while holding
        // the lock (the shape of a panicking request that dies inside a
        // cache mutation).
        let held = engine.clone();
        let _ = std::thread::spawn(move || {
            let _guard = held.cache.lock().unwrap();
            panic!("request dies while holding the cache lock");
        })
        .join();
        assert!(engine.cache.is_poisoned(), "the panic actually poisoned");

        // The engine still serves: recovery drops the (possibly torn)
        // cache and the run recomputes instead of panicking.
        let run = engine.run(&spec).unwrap();
        assert_eq!(run.stats.cache_hits, 0, "torn cache was dropped");
        assert_eq!(run.stats.cache_misses, 1);
        assert!(!engine.cache.is_poisoned(), "poison flag cleared");

        // ... and caching works again afterwards.
        let warm = engine.run(&spec).unwrap();
        assert_eq!(warm.stats.cache_hits, 1);
    }

    #[test]
    fn concurrent_runs_report_exact_per_run_stats() {
        // Two runs race on one engine; each run's stats must describe
        // that run alone (global-delta snapshots would mix them).
        let engine = std::sync::Arc::new(Engine::new().with_resolver(resolver));
        let threads: Vec<_> = [1u64, 2]
            .into_iter()
            .map(|seed| {
                let engine = engine.clone();
                std::thread::spawn(move || {
                    let name = if seed == 1 { "S1" } else { "S2" };
                    let spec = FlowSpec::new(format!("c{seed}")).circuit(name);
                    engine.run(&spec).unwrap().stats
                })
            })
            .collect();
        let stats: Vec<EngineStats> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        for s in &stats {
            assert_eq!(s.cache_hits + s.cache_misses, 1, "one cell per run");
        }
        let total = engine.stats();
        assert_eq!(
            total.cache_hits + total.cache_misses,
            stats.iter().map(|s| s.cache_hits + s.cache_misses).sum(),
            "per-run tallies partition the cumulative counters"
        );
        assert_eq!(
            total.passes_executed,
            stats.iter().map(|s| s.passes_executed).sum()
        );
    }

    #[test]
    fn clear_cache_forces_recomputation() {
        let engine = Engine::new().with_resolver(resolver);
        let spec = FlowSpec::new("clear").circuit("S1");
        engine.run(&spec).unwrap();
        engine.clear_cache();
        let run = engine.run(&spec).unwrap();
        assert_eq!(run.stats.cache_hits, 0);
        assert_eq!(run.stats.cache_misses, 1);
    }
}
