//! Bit-parallel differential verification: one engine for every "did
//! the flow preserve the function?" question in the workspace.
//!
//! [`NetlistFunction`] adapts a [`Netlist`] to the word-level
//! [`mig::WordFunction`] contract (64 patterns per `u64`; the
//! topological order and the value scratch are computed once and reused
//! across blocks), and [`differential::check`] compares a transformed
//! netlist against its source [`mig::Mig`] under an
//! [`EquivalencePolicy`]:
//!
//! * **exhaustive** for small input counts — all `2^n` patterns swept
//!   in 64-wide [`PatternBlock`]s, a proof, practical up to ~20 inputs;
//! * **seeded stratified sampling** beyond — a deterministic corner
//!   block (all-zero / all-ones / one-hot) plus rounds of
//!   biased-density random words.
//!
//! The metamorphic test suite, [`mig::check_equivalence`] and the
//! pipeline's opt-in per-pass equivalence gate
//! ([`crate::FlowPipelineBuilder::gate_equivalence`] /
//! [`crate::FlowSpec::with_equivalence_gating`]) all run on this
//! engine, so a counterexample from any of them means the same thing: a
//! concrete input pattern, the first diverging output, and — when the
//! gate raised it — the pass that introduced the divergence.

use std::fmt;
use std::sync::Arc;

use mig::WordFunction;

use crate::arena::EvalArena;
use crate::netlist::{Netlist, NetlistError};

pub use mig::{EquivalencePolicy, PatternBlock, SweepConfig};

/// A [`Netlist`] as a bit-parallel [`WordFunction`]: the netlist is
/// flattened once into a shared [`EvalArena`] and the per-slot value
/// buffer is reused across [`WordFunction::eval_block`] /
/// [`NetlistFunction::eval_wide`] calls, so an exhaustive sweep costs
/// one flattening total instead of one traversal-order allocation per
/// 64-pattern block. [`NetlistFunction::with_arena`] shares one arena
/// across many functions — that is how [`differential::check`]'s
/// parallel workers each get a private scratch over the same flattened
/// structure.
///
/// # Examples
///
/// ```
/// use mig::{PatternBlock, WordFunction};
/// use wavepipe::{Netlist, NetlistFunction};
///
/// let mut n = Netlist::new("xor-ish");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let na = n.add_inv(a);
/// let k0 = n.add_const(false);
/// let g = n.add_maj([na, b, k0]); // !a & b
/// n.add_output("f", g);
///
/// let mut f = NetlistFunction::new(&n).expect("acyclic");
/// let block = PatternBlock::exhaustive(2, 0);
/// let out = f.eval_block(block.words());
/// assert_eq!(out[0] & block.lane_mask(), 0b0100); // only lane 2: a=0,b=1
/// ```
#[derive(Debug)]
pub struct NetlistFunction<'n> {
    netlist: &'n Netlist,
    arena: Arc<EvalArena>,
    values: Vec<u64>,
}

impl<'n> NetlistFunction<'n> {
    /// Prepares `netlist` for repeated word-level evaluation.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalCycle`] when the netlist has no
    /// topological order.
    pub fn new(netlist: &'n Netlist) -> Result<NetlistFunction<'n>, NetlistError> {
        Ok(NetlistFunction::with_arena(
            netlist,
            Arc::new(EvalArena::try_new(netlist)?),
        ))
    }

    /// Wraps an already-flattened arena — cheap (no traversal), so
    /// per-thread workers can each take one over a shared flattening
    /// (see [`crate::StructuralCaches::eval_arena`]).
    ///
    /// # Panics
    ///
    /// Panics if `arena` was not built from a netlist of the same
    /// component count.
    pub fn with_arena(netlist: &'n Netlist, arena: Arc<EvalArena>) -> NetlistFunction<'n> {
        assert_eq!(
            arena.component_count(),
            netlist.len(),
            "arena must be built from this netlist"
        );
        NetlistFunction {
            netlist,
            arena,
            values: Vec::new(),
        }
    }

    /// The adapted netlist.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// The shared flattened arena.
    pub fn arena(&self) -> Arc<EvalArena> {
        self.arena.clone()
    }

    /// Evaluates one 64-pattern block (bit `k` of `pattern[i]` is input
    /// `i` in pattern `k`), reusing the prepared arena and scratch.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len()` differs from the input count.
    pub fn eval_words(&mut self, pattern: &[u64]) -> Vec<u64> {
        self.eval_wide(pattern, 1)
    }

    /// Evaluates `width` adjacent 64-pattern blocks in one arena walk
    /// (the [`EvalArena::eval_wide_into`] layout:
    /// `pattern[i * width + j]`, result `[o * width + j]`).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `pattern.len()` is not `input_count()
    /// * width`.
    pub fn eval_wide(&mut self, pattern: &[u64], width: usize) -> Vec<u64> {
        let mut out = Vec::new();
        self.arena
            .eval_wide_into(pattern, width, &mut self.values, &mut out);
        out
    }
}

impl WordFunction for NetlistFunction<'_> {
    fn input_count(&self) -> usize {
        self.netlist.inputs().len()
    }

    fn output_count(&self) -> usize {
        self.netlist.outputs().len()
    }

    fn eval_block(&mut self, inputs: &[u64]) -> Vec<u64> {
        self.eval_words(inputs)
    }

    fn eval_wide(&mut self, inputs: &[u64], width: usize) -> Vec<u64> {
        NetlistFunction::eval_wide(self, inputs, width)
    }

    fn output_name(&self, position: usize) -> String {
        self.netlist.outputs()[position].name.clone()
    }
}

pub mod differential {
    //! Netlist-vs-source-MIG differential checking with structured
    //! counterexamples — the verification entry point the metamorphic
    //! suite, the throughput bench and the pipeline's equivalence gate
    //! share.

    use super::*;
    use mig::{Equivalence, Mig, SimPlan, Simulator};

    /// Why two functions could not even be compared.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum DifferentialError {
        /// The interfaces (input/output counts) differ.
        Interface(mig::CheckError),
        /// The netlist is structurally broken (combinational cycle).
        Netlist(NetlistError),
    }

    impl fmt::Display for DifferentialError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                DifferentialError::Interface(e) => write!(f, "{e}"),
                DifferentialError::Netlist(e) => write!(f, "{e}"),
            }
        }
    }

    impl std::error::Error for DifferentialError {
        fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
            match self {
                DifferentialError::Interface(e) => Some(e),
                DifferentialError::Netlist(e) => Some(e),
            }
        }
    }

    /// A concrete input pattern on which the netlist and its source MIG
    /// disagree — everything needed to reproduce and localize the
    /// divergence.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Counterexample {
        /// The distinguishing input assignment (declaration order).
        pub pattern: Vec<bool>,
        /// Position of the first diverging output.
        pub output: usize,
        /// Name of that output (from the source MIG).
        pub output_name: String,
        /// What the source MIG computes on the pattern.
        pub expected: bool,
        /// What the netlist computes on the pattern.
        pub actual: bool,
        /// Provenance: the pipeline pass after which the divergence was
        /// first observed, when the per-pass equivalence gate raised it
        /// (matches the pass name in the run's
        /// [`PassStats`](crate::PassStats) trace).
        pub pass: Option<String>,
    }

    impl fmt::Display for Counterexample {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let bits: String = self
                .pattern
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect();
            write!(
                f,
                "output `{}` diverges on pattern {bits} (source computes {}, netlist {})",
                self.output_name, self.expected, self.actual
            )?;
            if let Some(pass) = &self.pass {
                write!(f, " after pass `{pass}`")?;
            }
            Ok(())
        }
    }

    /// Outcome of a differential check.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum Verdict {
        /// No divergence found.
        Equivalent {
            /// Number of input patterns that were compared.
            patterns: u64,
            /// `true` when every possible pattern was compared (a
            /// proof), `false` for a sampled check.
            exhaustive: bool,
        },
        /// The functions differ; here is where.
        Diverged(Counterexample),
    }

    impl Verdict {
        /// `true` unless a counterexample was found.
        pub fn holds(&self) -> bool {
            !matches!(self, Verdict::Diverged(_))
        }
    }

    /// Checks that `netlist` still computes the same function as the
    /// source `graph` it was mapped from, under `policy` (exhaustive up
    /// to the policy's input ceiling, seeded stratified sampling
    /// beyond). Outputs are matched by position.
    ///
    /// # Errors
    ///
    /// [`DifferentialError::Interface`] when the input/output counts
    /// differ, [`DifferentialError::Netlist`] when the netlist has a
    /// combinational cycle.
    ///
    /// # Examples
    ///
    /// ```
    /// use mig::EquivalencePolicy;
    /// use wavepipe::differential::{self, Verdict};
    /// use wavepipe::{insert_buffers, netlist_from_mig, restrict_fanout};
    ///
    /// let mut g = mig::Mig::new();
    /// let a = g.add_input("a");
    /// let b = g.add_input("b");
    /// let cin = g.add_input("cin");
    /// let (sum, cout) = g.add_full_adder(a, b, cin);
    /// g.add_output("sum", sum);
    /// g.add_output("cout", cout);
    ///
    /// // The full enablement flow must preserve the function — proven
    /// // here over all 2^3 patterns.
    /// let mut n = netlist_from_mig(&g);
    /// restrict_fanout(&mut n, 3);
    /// insert_buffers(&mut n);
    /// let verdict = differential::check(&n, &g, &EquivalencePolicy::default()).unwrap();
    /// assert_eq!(
    ///     verdict,
    ///     Verdict::Equivalent { patterns: 8, exhaustive: true }
    /// );
    ///
    /// // A corrupted netlist yields a structured counterexample.
    /// let sum_driver = n.outputs()[0].driver;
    /// let broken = n.add_inv(sum_driver);
    /// n.set_output_driver(0, broken);
    /// match differential::check(&n, &g, &EquivalencePolicy::default()).unwrap() {
    ///     Verdict::Diverged(cex) => {
    ///         assert_eq!(cex.output_name, "sum");
    ///         assert_ne!(cex.expected, cex.actual);
    ///     }
    ///     other => panic!("expected divergence, got {other:?}"),
    /// }
    /// ```
    pub fn check(
        netlist: &Netlist,
        graph: &Mig,
        policy: &EquivalencePolicy,
    ) -> Result<Verdict, DifferentialError> {
        check_with(netlist, graph, policy, &SweepConfig::from_env())
    }

    /// [`check`] with an explicit [`SweepConfig`] instead of the
    /// environment-derived default. The sweep configuration is an
    /// execution knob only: the verdict — including which
    /// counterexample a broken pair yields — is bit-identical for every
    /// block width and thread count.
    ///
    /// # Errors
    ///
    /// As [`check`].
    pub fn check_with(
        netlist: &Netlist,
        graph: &Mig,
        policy: &EquivalencePolicy,
        sweep: &SweepConfig,
    ) -> Result<Verdict, DifferentialError> {
        let arena = Arc::new(EvalArena::try_new(netlist).map_err(DifferentialError::Netlist)?);
        check_prepared(netlist, arena, graph, policy, sweep)
    }

    /// [`check_with`] over an already-flattened arena (e.g. the one
    /// cached in [`crate::StructuralCaches`]), so repeated gates on the
    /// same netlist snapshot skip re-flattening.
    ///
    /// # Errors
    ///
    /// [`DifferentialError::Interface`] when the input/output counts
    /// differ.
    ///
    /// # Panics
    ///
    /// Panics if `arena` was not built from `netlist` (component-count
    /// mismatch).
    pub fn check_prepared(
        netlist: &Netlist,
        arena: Arc<EvalArena>,
        graph: &Mig,
        policy: &EquivalencePolicy,
        sweep: &SweepConfig,
    ) -> Result<Verdict, DifferentialError> {
        let plan = Arc::new(SimPlan::build(graph));
        let outcome = mig::check_word_functions_sharded(
            || NetlistFunction::with_arena(netlist, arena.clone()),
            || Simulator::with_plan(graph, plan.clone()),
            policy,
            sweep,
        )
        .map_err(DifferentialError::Interface)?;
        Ok(match outcome {
            Equivalence::Equal => Verdict::Equivalent {
                patterns: policy.patterns_for(graph.input_count()),
                exhaustive: true,
            },
            Equivalence::ProbablyEqual { rounds } => Verdict::Equivalent {
                patterns: rounds as u64 * PatternBlock::LANES as u64,
                exhaustive: false,
            },
            Equivalence::NotEqual { pattern, .. } => {
                let actual = netlist.eval(&pattern);
                let expected = Simulator::new(graph).eval(&pattern);
                let output = actual
                    .iter()
                    .zip(&expected)
                    .position(|(a, e)| a != e)
                    .expect("the engine's counterexample pattern diverges");
                Verdict::Diverged(Counterexample {
                    output_name: graph.outputs()[output].name.clone(),
                    pattern,
                    output,
                    expected: expected[output],
                    actual: actual[output],
                    pass: None,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::differential::{self, Verdict};
    use super::*;
    use crate::from_mig::netlist_from_mig;

    fn adder() -> mig::Mig {
        let mut g = mig::Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let cin = g.add_input("cin");
        let (s, c) = g.add_full_adder(a, b, cin);
        g.add_output("s", s);
        g.add_output("c", c);
        g
    }

    #[test]
    fn mapped_netlist_is_exhaustively_equivalent_to_its_source() {
        let g = adder();
        let mut n = netlist_from_mig(&g);
        crate::fanout_restriction::restrict_fanout(&mut n, 3);
        crate::buffer_insertion::insert_buffers(&mut n);
        let v = differential::check(&n, &g, &EquivalencePolicy::default()).unwrap();
        assert_eq!(
            v,
            Verdict::Equivalent {
                patterns: 8,
                exhaustive: true
            }
        );
        assert!(v.holds());
    }

    #[test]
    fn sampled_policy_reports_pattern_budget() {
        let g = adder();
        let n = netlist_from_mig(&g);
        let v = differential::check(&n, &g, &EquivalencePolicy::sampled(5, 7)).unwrap();
        assert_eq!(
            v,
            Verdict::Equivalent {
                patterns: 5 * 64,
                exhaustive: false
            }
        );
    }

    #[test]
    fn divergence_yields_a_localized_counterexample() {
        let g = adder();
        let mut n = netlist_from_mig(&g);
        // Corrupt the carry output only.
        let carry = n.outputs()[1].driver;
        let broken = n.add_inv(carry);
        n.set_output_driver(1, broken);
        match differential::check(&n, &g, &EquivalencePolicy::default()).unwrap() {
            Verdict::Diverged(cex) => {
                assert_eq!(cex.output, 1);
                assert_eq!(cex.output_name, "c");
                assert_ne!(cex.expected, cex.actual);
                assert_eq!(cex.pass, None);
                // The counterexample is replayable.
                assert_eq!(n.eval(&cex.pattern)[1], cex.actual);
                assert!(cex.to_string().contains("`c`"), "{cex}");
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn interface_and_structure_errors_are_reported() {
        let g = adder();
        let mut small = Netlist::new("small");
        let a = small.add_input("a");
        small.add_output("f", a);
        assert!(matches!(
            differential::check(&small, &g, &EquivalencePolicy::default()),
            Err(differential::DifferentialError::Interface(_))
        ));

        let mut cyc = Netlist::new("cyc");
        let a = cyc.add_input("a");
        cyc.add_input("b");
        cyc.add_input("c");
        let b1 = cyc.add_buf(a);
        let b2 = cyc.add_buf(b1);
        cyc.component_mut(b1).fanins_mut()[0] = b2;
        cyc.add_output("s", b2);
        cyc.add_output("c", b2);
        assert!(matches!(
            differential::check(&cyc, &g, &EquivalencePolicy::default()),
            Err(differential::DifferentialError::Netlist(_))
        ));
    }

    #[test]
    fn netlist_function_reuses_its_scratch_across_blocks() {
        let g = adder();
        let n = netlist_from_mig(&g);
        let mut f = NetlistFunction::new(&n).unwrap();
        assert_eq!(f.input_count(), 3);
        assert_eq!(f.output_count(), 2);
        assert_eq!(f.output_name(0), "s");
        let block = PatternBlock::exhaustive(3, 0);
        let first = f.eval_block(block.words());
        let second = f.eval_block(block.words());
        assert_eq!(first, second, "scratch reuse must not leak state");
        assert_eq!(first, n.eval_words(block.words()));
    }
}
