//! Tiny deterministic content hashing (FNV-1a, 64-bit) for the engine's
//! cache keys. Not `std::hash`: the keys must be stable across
//! processes and runs, because cached results are compared against
//! golden re-runs, and `std`'s hasher is randomized by design.
//!
//! The implementation lives in [`mig::fnv`] — the same algorithm backs
//! the MIG's structural-hash table — so the workspace has exactly one
//! FNV definition.

pub(crate) use mig::fnv::Fnv64 as Fnv;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv::new();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        let mut a = Fnv::new();
        a.write_f64(0.0);
        let mut b = Fnv::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish(), "bit patterns, not numeric equality");
    }

    /// Pins the re-export to the reference FNV-1a/64 algorithm with the
    /// published test vectors. Every persisted engine cache key depends
    /// on these digests: if this test fails, the on-disk cache format
    /// changed and [`crate::persist`]'s version must be bumped.
    #[test]
    fn matches_reference_fnv1a_vectors() {
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325, "offset basis");
        assert_eq!(hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
