//! Tiny deterministic content hashing (FNV-1a, 64-bit) for the engine's
//! cache keys. Not `std::hash`: the keys must be stable across
//! processes and runs, because cached results are compared against
//! golden re-runs, and `std`'s hasher is randomized by design.

/// FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over byte chunks.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fnv(u64);

impl Fnv {
    /// Starts a hash at the FNV offset basis.
    pub(crate) fn new() -> Fnv {
        Fnv(OFFSET)
    }

    /// Feeds a byte slice.
    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `f64` by bit pattern, so equal bit patterns hash equal
    /// and -0.0 / 0.0 / NaN payloads are distinguished exactly as the
    /// bit-identicality golden tests require.
    pub(crate) fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The accumulated hash.
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv::new();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        let mut a = Fnv::new();
        a.write_f64(0.0);
        let mut b = Fnv::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish(), "bit patterns, not numeric equality");
    }
}
