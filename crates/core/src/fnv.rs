//! Tiny deterministic content hashing (FNV-1a, 64-bit) for the engine's
//! cache keys. Not `std::hash`: the keys must be stable across
//! processes and runs, because cached results are compared against
//! golden re-runs, and `std`'s hasher is randomized by design.
//!
//! The implementation lives in [`mig::fnv`] — the same algorithm backs
//! the MIG's structural-hash table — so the workspace has exactly one
//! FNV definition.

pub(crate) use mig::fnv::Fnv64 as Fnv;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv::new();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        let mut a = Fnv::new();
        a.write_f64(0.0);
        let mut b = Fnv::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish(), "bit patterns, not numeric equality");
    }
}
