//! The mapped wave-pipeline netlist.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use crate::arena::EvalArena;
use crate::component::{CompId, Component, ComponentKind};

thread_local! {
    /// Per-thread evaluation scratch behind [`Netlist::eval_words`] /
    /// [`Netlist::eval_wide`]: one rebuildable [`EvalArena`] plus a
    /// value buffer, so repeated one-shot evaluations on the same
    /// thread reach steady state without per-call allocation. Hot
    /// sweeps should still prepare their own arena (via
    /// [`StructuralCaches::eval_arena`] or [`EvalArena::try_new`]) and
    /// skip even the rebuild.
    static EVAL_SCRATCH: RefCell<(EvalArena, Vec<u64>)> =
        RefCell::new((EvalArena::default(), Vec::new()));
}

/// A structural failure surfaced by the fallible [`Netlist`] accessors
/// (the panicking variants document their panics and delegate here).
///
/// Folded into [`crate::FlowError`] via [`crate::PassError::Netlist`],
/// so user-driven [`crate::Engine`] runs surface malformed structures
/// as errors instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// The netlist contains a combinational cycle through the given
    /// component — no topological order (and hence no level assignment,
    /// depth or evaluation) exists.
    CombinationalCycle(CompId),
    /// An evaluation pattern's width does not match the input count.
    WidthMismatch {
        /// Number of primary inputs the netlist declares.
        inputs: usize,
        /// Width of the pattern that was supplied.
        pattern: usize,
    },
    /// An output rebind addressed a position past the output list.
    NoSuchOutput {
        /// The requested output position.
        position: usize,
        /// Number of primary outputs the netlist declares.
        outputs: usize,
    },
    /// An output rebind pointed at a component id outside the arena.
    DanglingDriver {
        /// The dangling component id.
        driver: CompId,
        /// Number of components in the arena.
        len: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::CombinationalCycle(id) => {
                write!(f, "combinational cycle through {id}")
            }
            NetlistError::WidthMismatch { inputs, pattern } => write!(
                f,
                "pattern width {pattern} does not match the {inputs} primary inputs"
            ),
            NetlistError::NoSuchOutput { position, outputs } => write!(
                f,
                "output position {position} is out of range (netlist has {outputs} outputs)"
            ),
            NetlistError::DanglingDriver { driver, len } => write!(
                f,
                "output driver {driver} is not a component of this netlist (len {len})"
            ),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A primary output binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Port {
    /// Output port name.
    pub name: String,
    /// Driving component.
    pub driver: CompId,
}

/// Per-kind component counts; the paper's "size" is
/// [`KindCounts::priced_total`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KindCounts {
    /// Primary inputs.
    pub inputs: usize,
    /// Constant cells.
    pub consts: usize,
    /// Majority gates.
    pub maj: usize,
    /// Inverters.
    pub inv: usize,
    /// Buffers.
    pub buf: usize,
    /// Fan-out gates.
    pub fog: usize,
}

impl KindCounts {
    /// Total priced components (MAJ + INV + BUF + FOG) — the netlist
    /// "size" used throughout the paper's evaluation.
    pub fn priced_total(&self) -> usize {
        self.maj + self.inv + self.buf + self.fog
    }

    /// Per-kind counts added since `earlier`, saturating at zero — the
    /// pass-delta quantity the pipeline trace records (the flow's
    /// passes only ever add components).
    pub fn added_since(&self, earlier: &KindCounts) -> KindCounts {
        KindCounts {
            inputs: self.inputs.saturating_sub(earlier.inputs),
            consts: self.consts.saturating_sub(earlier.consts),
            maj: self.maj.saturating_sub(earlier.maj),
            inv: self.inv.saturating_sub(earlier.inv),
            buf: self.buf.saturating_sub(earlier.buf),
            fog: self.fog.saturating_sub(earlier.fog),
        }
    }
}

impl fmt::Display for KindCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MAJ {}, INV {}, BUF {}, FOG {} (size {})",
            self.maj,
            self.inv,
            self.buf,
            self.fog,
            self.priced_total()
        )
    }
}

/// A flat netlist of physical components (majority gates, inverters,
/// buffers, fan-out gates) — the representation the paper's two
/// algorithms transform.
///
/// Components are stored in an arena; unlike [`mig::Mig`], fan-ins may
/// point forward (transforms append components and retarget edges), so
/// analyses use explicit topological traversal.
///
/// # Examples
///
/// ```
/// use wavepipe::Netlist;
///
/// let mut n = Netlist::new("demo");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let k0 = n.add_const(false);
/// let g = n.add_maj([a, b, k0]); // AND gate
/// n.add_output("f", g);
///
/// assert_eq!(n.counts().maj, 1);
/// assert_eq!(n.depth(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    name: String,
    components: Vec<Component>,
    inputs: Vec<CompId>,
    input_names: Vec<String>,
    outputs: Vec<Port>,
    const_cells: [Option<CompId>; 2],
    counts: KindCounts,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the netlist.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> CompId {
        let id = self.push(Component::Input {
            position: self.inputs.len() as u32,
        });
        self.inputs.push(id);
        self.input_names.push(name.into());
        id
    }

    /// Returns the shared constant cell of the given value, creating it
    /// on first use.
    pub fn add_const(&mut self, value: bool) -> CompId {
        if let Some(id) = self.const_cells[value as usize] {
            return id;
        }
        let id = self.push(Component::Const { value });
        self.const_cells[value as usize] = Some(id);
        id
    }

    /// Adds a majority gate.
    pub fn add_maj(&mut self, fanins: [CompId; 3]) -> CompId {
        self.push(Component::Maj { fanins })
    }

    /// Adds an inverter.
    pub fn add_inv(&mut self, fanin: CompId) -> CompId {
        self.push(Component::Inv { fanin })
    }

    /// Adds a buffer.
    pub fn add_buf(&mut self, fanin: CompId) -> CompId {
        self.push(Component::Buf { fanin })
    }

    /// Adds a fan-out gate.
    pub fn add_fog(&mut self, fanin: CompId) -> CompId {
        self.push(Component::Fog { fanin })
    }

    fn push(&mut self, component: Component) -> CompId {
        let id = CompId::from_index(self.components.len());
        match component.kind() {
            ComponentKind::Input => self.counts.inputs += 1,
            ComponentKind::Const => self.counts.consts += 1,
            ComponentKind::Maj => self.counts.maj += 1,
            ComponentKind::Inv => self.counts.inv += 1,
            ComponentKind::Buf => self.counts.buf += 1,
            ComponentKind::Fog => self.counts.fog += 1,
        }
        self.components.push(component);
        id
    }

    /// Pre-allocates arena capacity for `additional` more components
    /// (bulk construction, e.g. splicing region netlists).
    pub fn reserve(&mut self, additional: usize) {
        self.components.reserve(additional);
    }

    /// Binds `driver` to a named primary output.
    pub fn add_output(&mut self, name: impl Into<String>, driver: CompId) {
        self.outputs.push(Port {
            name: name.into(),
            driver,
        });
    }

    /// Rebinds the driver of output `position` (used by the transforms
    /// when interposing buffers or fan-out gates).
    ///
    /// # Panics
    ///
    /// Panics if `position >= self.outputs().len()` or if `driver` is
    /// not a component of this netlist (a dangling `CompId` would
    /// silently corrupt every later analysis).
    pub fn set_output_driver(&mut self, position: usize, driver: CompId) {
        assert!(
            driver.index() < self.components.len(),
            "output driver {driver} is not a component of this netlist (len {})",
            self.components.len()
        );
        self.outputs[position].driver = driver;
    }

    /// Fallible [`Netlist::set_output_driver`]: rejects out-of-range
    /// positions and dangling drivers with a [`NetlistError`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// [`NetlistError::NoSuchOutput`] or [`NetlistError::DanglingDriver`].
    pub fn try_set_output_driver(
        &mut self,
        position: usize,
        driver: CompId,
    ) -> Result<(), NetlistError> {
        if driver.index() >= self.components.len() {
            return Err(NetlistError::DanglingDriver {
                driver,
                len: self.components.len(),
            });
        }
        let outputs = self.outputs.len();
        match self.outputs.get_mut(position) {
            Some(port) => {
                port.driver = driver;
                Ok(())
            }
            None => Err(NetlistError::NoSuchOutput { position, outputs }),
        }
    }

    /// The component at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of this netlist.
    pub fn component(&self, id: CompId) -> &Component {
        &self.components[id.index()]
    }

    /// Mutable access to the component at `id` — for fan-in rewiring
    /// only. The component's *kind* is part of the netlist's running
    /// [`Netlist::counts`]; replacing a component with one of a
    /// different kind would desynchronize them.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of this netlist.
    pub fn component_mut(&mut self, id: CompId) -> &mut Component {
        &mut self.components[id.index()]
    }

    /// Number of components (all kinds).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` if the netlist has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[CompId] {
        &self.inputs
    }

    /// Name of input `position`.
    pub fn input_name(&self, position: usize) -> &str {
        &self.input_names[position]
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[Port] {
        &self.outputs
    }

    /// Iterates over all component ids in arena order (NOT necessarily
    /// topological; see [`Netlist::topo_order`]).
    pub fn ids(&self) -> impl Iterator<Item = CompId> + '_ {
        (0..self.components.len()).map(CompId::from_index)
    }

    /// Per-kind component counts, maintained incrementally on every add
    /// (`O(1)` — every pass records counts in its trace, and the splice
    /// stage of the incremental engine aggregates them per region).
    pub fn counts(&self) -> KindCounts {
        self.counts
    }

    /// Components in topological order (fan-ins before consumers).
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational cycle (transforms
    /// in this crate never create one; to analyze untrusted structures
    /// use [`Netlist::try_topo_order`]).
    pub fn topo_order(&self) -> Vec<CompId> {
        self.try_topo_order()
            .unwrap_or_else(|e| panic!("combinational cycle: {e}"))
    }

    /// Fallible [`Netlist::topo_order`]: a combinational cycle comes
    /// back as a [`NetlistError`] instead of a panic. The pass pipeline
    /// calls this at every pass boundary, so a custom pass that wires a
    /// cycle fails its run instead of aborting the process.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalCycle`] naming a component on the
    /// cycle.
    pub fn try_topo_order(&self) -> Result<Vec<CompId>, NetlistError> {
        let n = self.components.len();
        let mut state = vec![0u8; n]; // 0 new, 1 on stack, 2 done
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<(CompId, usize)> = Vec::new();
        for root in 0..n {
            if state[root] != 0 {
                continue;
            }
            stack.push((CompId::from_index(root), 0));
            state[root] = 1;
            while let Some(&mut (id, ref mut next)) = stack.last_mut() {
                let fanins = self.components[id.index()].fanins();
                if *next < fanins.len() {
                    let f = fanins[*next];
                    *next += 1;
                    match state[f.index()] {
                        0 => {
                            state[f.index()] = 1;
                            stack.push((f, 0));
                        }
                        1 => return Err(NetlistError::CombinationalCycle(f)),
                        _ => {}
                    }
                } else {
                    state[id.index()] = 2;
                    order.push(id);
                    stack.pop();
                }
            }
        }
        Ok(order)
    }

    /// Per-component levels: inputs and constants are level 0; every
    /// other component is one more than its deepest **non-constant**
    /// fan-in (constant cells are fixed polarization available at every
    /// level, so they do not constrain wave timing).
    ///
    /// Indexed by `CompId::index()`.
    pub fn levels(&self) -> Vec<u32> {
        self.levels_from_order(&self.topo_order())
    }

    /// [`Netlist::levels`] against an already-computed topological
    /// order, so callers holding one (see [`StructuralCaches`]) skip
    /// the traversal.
    pub fn levels_from_order(&self, order: &[CompId]) -> Vec<u32> {
        let mut levels = vec![0u32; self.components.len()];
        for &id in order {
            let comp = &self.components[id.index()];
            if comp.fanins().is_empty() {
                continue;
            }
            levels[id.index()] = 1 + comp
                .fanins()
                .iter()
                .filter(|f| !matches!(self.components[f.index()].kind(), ComponentKind::Const))
                .map(|f| levels[f.index()])
                .max()
                .unwrap_or(0);
        }
        levels
    }

    /// Netlist depth: maximum level over non-constant primary outputs.
    pub fn depth(&self) -> u32 {
        self.depth_from_levels(&self.levels())
    }

    /// [`Netlist::depth`] against an already-computed level assignment.
    pub fn depth_from_levels(&self, levels: &[u32]) -> u32 {
        self.outputs
            .iter()
            .filter(|p| self.components[p.driver.index()].kind() != ComponentKind::Const)
            .map(|p| levels[p.driver.index()])
            .max()
            .unwrap_or(0)
    }

    /// Fan-out edge lists: for every component, the list of
    /// `(consumer, fanin_slot)` pairs reading it. Primary-output uses are
    /// returned separately as `(output_position, driver)` via
    /// [`Netlist::outputs`]; they are *not* included here.
    pub fn fanout_edges(&self) -> Vec<Vec<(CompId, usize)>> {
        let mut edges = vec![Vec::new(); self.components.len()];
        for id in self.ids() {
            for (slot, f) in self.components[id.index()].fanins().iter().enumerate() {
                edges[f.index()].push((id, slot));
            }
        }
        edges
    }

    /// Fan-out counts including primary-output uses (what the fan-out
    /// restriction bound applies to). Constant cells report 0: they are
    /// fixed cells replicated at will, not driven nets.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.components.len()];
        for c in &self.components {
            for f in c.fanins() {
                counts[f.index()] += 1;
            }
        }
        for p in &self.outputs {
            counts[p.driver.index()] += 1;
        }
        for (i, c) in self.components.iter().enumerate() {
            if c.kind() == ComponentKind::Const {
                counts[i] = 0;
            }
        }
        counts
    }

    /// Largest fan-out of any non-constant component.
    pub fn max_fanout(&self) -> u32 {
        self.fanout_counts().into_iter().max().unwrap_or(0)
    }

    /// Fan-out summary for region splicing: the largest fan-out among
    /// non-input components, plus each primary input's fan-out (indexed
    /// by input position, port uses included). A merged netlist's
    /// [`Netlist::max_fanout`] is the max of the regions' internal
    /// maxima and the per-name sums of their input fan-outs — shared
    /// inputs concentrate fan-out, everything else is region-private —
    /// so the splice composes cached summaries instead of scanning the
    /// merged arena.
    pub(crate) fn fanout_summary(&self) -> (u32, Vec<u32>) {
        let counts = self.fanout_counts();
        let mut internal = 0u32;
        for (i, c) in self.components.iter().enumerate() {
            if c.kind() != ComponentKind::Input {
                internal = internal.max(counts[i]);
            }
        }
        let inputs = self.inputs.iter().map(|id| counts[id.index()]).collect();
        (internal, inputs)
    }

    /// Appends a region netlist onto this one for cone splicing: input
    /// components map through `imap` (region input position → merged
    /// component), constants deduplicate via [`Netlist::add_const`], and
    /// every other component is appended in arena order with its fan-ins
    /// remapped. Returns the merged id of the region's output driver.
    ///
    /// Regions without constant cells and with their inputs at the
    /// arena head (every netlist the flow builds from a graph) take a
    /// bulk-copy path: the gate block is one `extend_from_slice` and a
    /// fan-in fix-up over the copied span — no remap table.
    ///
    /// # Panics
    ///
    /// Panics if `imap` is shorter than the region's input list or the
    /// region has no outputs.
    pub(crate) fn splice_region(&mut self, part: &Netlist, imap: &[CompId]) -> CompId {
        let prefix = part.inputs.len();
        let bulk = part.const_cells == [None, None]
            && part
                .inputs
                .iter()
                .enumerate()
                .all(|(i, id)| id.index() == i);
        if bulk {
            let base = self.components.len();
            // Every fan-in either hits the input prefix (→ `imap`) or a
            // copied component, whose merged index is its region index
            // shifted by the prefix removal and the append offset.
            let translate = |f: CompId| {
                if f.index() < prefix {
                    imap[f.index()]
                } else {
                    CompId::from_index(f.index() - prefix + base)
                }
            };
            let driver = translate(part.outputs[0].driver);
            self.components
                .extend_from_slice(&part.components[prefix..]);
            for c in &mut self.components[base..] {
                for f in c.fanins_mut() {
                    *f = translate(*f);
                }
            }
            self.counts.maj += part.counts.maj;
            self.counts.inv += part.counts.inv;
            self.counts.buf += part.counts.buf;
            self.counts.fog += part.counts.fog;
            return driver;
        }

        // General path: resolve inputs and constants first (region
        // fan-ins may point forward), then assign every gate its merged
        // index before any is appended.
        let mut remap = vec![CompId::from_index(0); part.components.len()];
        for (i, c) in part.components.iter().enumerate() {
            match c {
                Component::Input { position } => remap[i] = imap[*position as usize],
                Component::Const { value } => remap[i] = self.add_const(*value),
                _ => {}
            }
        }
        let mut next = self.components.len();
        for (i, c) in part.components.iter().enumerate() {
            if !matches!(c, Component::Input { .. } | Component::Const { .. }) {
                remap[i] = CompId::from_index(next);
                next += 1;
            }
        }
        for (i, c) in part.components.iter().enumerate() {
            let added = match c {
                Component::Maj { fanins } => self.add_maj([
                    remap[fanins[0].index()],
                    remap[fanins[1].index()],
                    remap[fanins[2].index()],
                ]),
                Component::Inv { fanin } => self.add_inv(remap[fanin.index()]),
                Component::Buf { fanin } => self.add_buf(remap[fanin.index()]),
                Component::Fog { fanin } => self.add_fog(remap[fanin.index()]),
                Component::Input { .. } | Component::Const { .. } => continue,
            };
            debug_assert_eq!(added, remap[i]);
        }
        remap[part.outputs[0].driver.index()]
    }

    /// Returns a copy containing only components reachable from the
    /// primary outputs (inputs and their declaration order are always
    /// preserved; dangling gates, buffers and inverters are dropped).
    ///
    /// Component identity is not preserved — ids are remapped densely.
    pub fn sweep(&self) -> Netlist {
        let mut live = vec![false; self.components.len()];
        let mut stack: Vec<CompId> = self.outputs.iter().map(|p| p.driver).collect();
        while let Some(id) = stack.pop() {
            if live[id.index()] {
                continue;
            }
            live[id.index()] = true;
            for &f in self.components[id.index()].fanins() {
                if !live[f.index()] {
                    stack.push(f);
                }
            }
        }

        let mut out = Netlist::new(self.name.clone());
        let mut map: Vec<Option<CompId>> = vec![None; self.components.len()];
        // Inputs first, in declaration order, live or not (ports are part
        // of the interface).
        for (pos, &id) in self.inputs.iter().enumerate() {
            map[id.index()] = Some(out.add_input(self.input_names[pos].clone()));
        }
        for id in self.topo_order() {
            if !live[id.index()] || map[id.index()].is_some() {
                continue;
            }
            let m = |map: &[Option<CompId>], f: CompId| {
                map[f.index()].expect("fan-ins are mapped before consumers")
            };
            let new_id = match &self.components[id.index()] {
                Component::Input { .. } => unreachable!("inputs pre-mapped"),
                Component::Const { value } => out.add_const(*value),
                Component::Maj { fanins } => {
                    out.add_maj([m(&map, fanins[0]), m(&map, fanins[1]), m(&map, fanins[2])])
                }
                Component::Inv { fanin } => out.add_inv(m(&map, *fanin)),
                Component::Buf { fanin } => out.add_buf(m(&map, *fanin)),
                Component::Fog { fanin } => out.add_fog(m(&map, *fanin)),
            };
            map[id.index()] = Some(new_id);
        }
        for p in &self.outputs {
            out.add_output(
                p.name.clone(),
                map[p.driver.index()].expect("output drivers are live"),
            );
        }
        out
    }

    /// Checks the structural well-formedness invariants every analysis
    /// in this crate assumes: all fan-ins and output drivers reference
    /// existing components, the input list and `Component::Input`
    /// positions agree, and the shared constant-cell registry matches
    /// the arena.
    ///
    /// The transforms uphold these by construction; the pipeline's
    /// verify pass runs this check anyway (it is O(components)), and a
    /// `debug_assert!` after every pass catches a violating custom pass
    /// at the pass boundary in debug builds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.components.len();
        if self.inputs.len() != self.input_names.len() {
            return Err(format!(
                "{} inputs but {} input names",
                self.inputs.len(),
                self.input_names.len()
            ));
        }
        for (i, c) in self.components.iter().enumerate() {
            for &f in c.fanins() {
                if f.index() >= n {
                    return Err(format!("component c{i} reads missing fan-in {f} (len {n})"));
                }
            }
            if let Component::Input { position } = c {
                if self
                    .inputs
                    .get(*position as usize)
                    .copied()
                    .map(CompId::index)
                    != Some(i)
                {
                    return Err(format!(
                        "component c{i} claims input position {position}, which maps elsewhere"
                    ));
                }
            }
        }
        for (pos, &id) in self.inputs.iter().enumerate() {
            match self.components.get(id.index()) {
                Some(Component::Input { position }) if *position as usize == pos => {}
                _ => {
                    return Err(format!(
                        "input list position {pos} points at {id}, which is not that input"
                    ))
                }
            }
        }
        for p in &self.outputs {
            if p.driver.index() >= n {
                return Err(format!(
                    "output `{}` driven by missing component {} (len {n})",
                    p.name, p.driver
                ));
            }
        }
        for (value, cell) in [(false, self.const_cells[0]), (true, self.const_cells[1])] {
            if let Some(id) = cell {
                match self.components.get(id.index()) {
                    Some(Component::Const { value: v }) if *v == value => {}
                    _ => {
                        return Err(format!(
                        "constant registry for {value} points at {id}, which is not that constant"
                    ))
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluates the netlist combinationally on one input pattern.
    ///
    /// This is the golden reference the wave simulator is checked
    /// against. It is a thin wrapper over the bit-parallel
    /// [`Netlist::eval_words`] (the pattern occupies one lane of a
    /// broadcast word), so scalar and word-level evaluation can never
    /// disagree.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len()` differs from the input count; use
    /// [`Netlist::try_eval`] for untrusted patterns.
    pub fn eval(&self, pattern: &[bool]) -> Vec<bool> {
        self.try_eval(pattern)
            .unwrap_or_else(|e| panic!("eval failed: {e}"))
    }

    /// Fallible [`Netlist::eval`]: width mismatches and combinational
    /// cycles come back as [`NetlistError`]s instead of panics.
    ///
    /// # Errors
    ///
    /// [`NetlistError::WidthMismatch`] or
    /// [`NetlistError::CombinationalCycle`].
    pub fn try_eval(&self, pattern: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let words: Vec<u64> = pattern.iter().map(|&b| if b { !0 } else { 0 }).collect();
        Ok(self
            .try_eval_words(&words)?
            .into_iter()
            .map(|w| w & 1 != 0)
            .collect())
    }

    /// Evaluates 64 input patterns at once: bit `k` of `pattern[i]` is
    /// the value of input `i` in pattern `k` (the
    /// [`mig::PatternBlock`] packing). Returns one word per primary
    /// output.
    ///
    /// This is the netlist counterpart of
    /// [`mig::Simulator::eval_words`] and the engine behind
    /// [`crate::differential`] — equivalence sweeps cost one netlist
    /// traversal per 64 patterns instead of 64.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len()` differs from the input count or the
    /// netlist contains a combinational cycle; use
    /// [`Netlist::try_eval_words`] for untrusted structures.
    pub fn eval_words(&self, pattern: &[u64]) -> Vec<u64> {
        self.try_eval_words(pattern)
            .unwrap_or_else(|e| panic!("eval_words failed: {e}"))
    }

    /// Fallible [`Netlist::eval_words`].
    ///
    /// # Errors
    ///
    /// [`NetlistError::WidthMismatch`] or
    /// [`NetlistError::CombinationalCycle`].
    pub fn try_eval_words(&self, pattern: &[u64]) -> Result<Vec<u64>, NetlistError> {
        self.try_eval_wide(pattern, 1)
    }

    /// Evaluates `width` 64-lane pattern blocks in one traversal:
    /// `pattern[i * width + j]` is word `j` of input `i`, and word `j`
    /// of output `o` lands at slot `o * width + j` of the result (the
    /// [`EvalArena::eval_wide_into`] layout). [`Netlist::eval_words`]
    /// is the `width == 1` case.
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch, `width == 0` or a combinational
    /// cycle; use [`Netlist::try_eval_wide`] for untrusted inputs.
    pub fn eval_wide(&self, pattern: &[u64], width: usize) -> Vec<u64> {
        self.try_eval_wide(pattern, width)
            .unwrap_or_else(|e| panic!("eval_wide failed: {e}"))
    }

    /// Fallible [`Netlist::eval_wide`].
    ///
    /// # Errors
    ///
    /// [`NetlistError::WidthMismatch`] (also for `width == 0`) or
    /// [`NetlistError::CombinationalCycle`].
    pub fn try_eval_wide(&self, pattern: &[u64], width: usize) -> Result<Vec<u64>, NetlistError> {
        if width == 0 || pattern.len() != self.inputs.len() * width {
            return Err(NetlistError::WidthMismatch {
                inputs: self.inputs.len() * width,
                pattern: pattern.len(),
            });
        }
        EVAL_SCRATCH.with(|scratch| {
            let (arena, values) = &mut *scratch.borrow_mut();
            arena.try_rebuild(self)?;
            let mut out = Vec::new();
            arena.eval_wide_into(pattern, width, values, &mut out);
            Ok(out)
        })
    }

    /// The word-level evaluation kernel against an already-computed
    /// topological order and a caller-owned scratch buffer (one word
    /// per component, overwritten) — what block sweeps use so neither
    /// the traversal order nor the value buffer is recomputed or
    /// reallocated per 64-pattern block (see
    /// [`crate::verify::NetlistFunction`]).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` does not match the input count, or `order` /
    /// `values` do not cover every component.
    pub fn eval_words_prepared(
        &self,
        pattern: &[u64],
        order: &[CompId],
        values: &mut [u64],
    ) -> Vec<u64> {
        assert_eq!(
            pattern.len(),
            self.inputs.len(),
            "pattern width must match the input count"
        );
        assert!(
            order.len() >= self.components.len() && values.len() >= self.components.len(),
            "topological order and scratch must cover every component"
        );
        for &id in order {
            let v = match &self.components[id.index()] {
                Component::Input { position } => pattern[*position as usize],
                Component::Const { value } => {
                    if *value {
                        !0
                    } else {
                        0
                    }
                }
                Component::Maj { fanins } => {
                    let a = values[fanins[0].index()];
                    let b = values[fanins[1].index()];
                    let c = values[fanins[2].index()];
                    a & b | a & c | b & c
                }
                Component::Inv { fanin } => !values[fanin.index()],
                Component::Buf { fanin } | Component::Fog { fanin } => values[fanin.index()],
            };
            values[id.index()] = v;
        }
        self.outputs
            .iter()
            .map(|p| values[p.driver.index()])
            .collect()
    }
}

/// Lazily-computed, shared structural views of one netlist: topological
/// order, ASAP levels, fan-out edge lists and fan-out counts, plus the
/// depth derived from them.
///
/// The flow's passes and the pipeline's instrumentation all need these
/// views, and before this cache each consumer recomputed them from
/// scratch (`depth()` alone walks the whole netlist twice). A
/// [`FlowContext`](crate::FlowContext) carries one `StructuralCaches`
/// and invalidates it whenever the working netlist is borrowed mutably;
/// getters hand out cheap [`Arc`] clones so a pass can keep reading a
/// snapshot while it mutates the netlist (the snapshot then describes
/// the pre-mutation structure, which is exactly what the paper's two
/// algorithms want).
#[derive(Clone, Debug, Default)]
pub struct StructuralCaches {
    topo: Option<Arc<Vec<CompId>>>,
    levels: Option<Arc<Vec<u32>>>,
    fanout_edges: Option<Arc<FanoutEdges>>,
    fanout_counts: Option<Arc<Vec<u32>>>,
    depth: Option<u32>,
    eval_arena: Option<Arc<EvalArena>>,
}

/// Per-component fan-out edge lists, as produced by
/// [`Netlist::fanout_edges`]: for every component, the `(consumer,
/// fanin_slot)` pairs reading it.
pub type FanoutEdges = Vec<Vec<(CompId, usize)>>;

impl StructuralCaches {
    /// Drops every cached view (call after any netlist mutation).
    pub fn invalidate(&mut self) {
        *self = StructuralCaches::default();
    }

    /// Cached [`Netlist::topo_order`].
    pub fn topo_order(&mut self, netlist: &Netlist) -> Arc<Vec<CompId>> {
        self.try_topo_order(netlist)
            .unwrap_or_else(|e| panic!("combinational cycle: {e}"))
    }

    /// Cached [`Netlist::try_topo_order`] — the fallible variant the
    /// pipeline's pass-boundary instrumentation uses, so a custom pass
    /// that wires a cycle surfaces an error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalCycle`].
    pub fn try_topo_order(&mut self, netlist: &Netlist) -> Result<Arc<Vec<CompId>>, NetlistError> {
        if self.topo.is_none() {
            self.topo = Some(Arc::new(netlist.try_topo_order()?));
        }
        Ok(self.topo.as_ref().expect("just filled").clone())
    }

    /// Cached [`Netlist::levels`] (reuses the cached topological order).
    pub fn levels(&mut self, netlist: &Netlist) -> Arc<Vec<u32>> {
        self.try_levels(netlist)
            .unwrap_or_else(|e| panic!("combinational cycle: {e}"))
    }

    /// Cached fallible [`Netlist::levels`].
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalCycle`].
    pub fn try_levels(&mut self, netlist: &Netlist) -> Result<Arc<Vec<u32>>, NetlistError> {
        if self.levels.is_none() {
            let order = self.try_topo_order(netlist)?;
            self.levels = Some(Arc::new(netlist.levels_from_order(&order)));
        }
        Ok(self.levels.as_ref().expect("just filled").clone())
    }

    /// Cached [`Netlist::fanout_edges`].
    pub fn fanout_edges(&mut self, netlist: &Netlist) -> Arc<FanoutEdges> {
        self.fanout_edges
            .get_or_insert_with(|| Arc::new(netlist.fanout_edges()))
            .clone()
    }

    /// Cached [`Netlist::fanout_counts`].
    pub fn fanout_counts(&mut self, netlist: &Netlist) -> Arc<Vec<u32>> {
        self.fanout_counts
            .get_or_insert_with(|| Arc::new(netlist.fanout_counts()))
            .clone()
    }

    /// Cached [`EvalArena`] for `netlist` — one flattening shared by
    /// every evaluation consumer of this snapshot (word sweeps, the
    /// differential engine's parallel workers, instrumentation).
    pub fn eval_arena(&mut self, netlist: &Netlist) -> Arc<EvalArena> {
        self.try_eval_arena(netlist)
            .unwrap_or_else(|e| panic!("combinational cycle: {e}"))
    }

    /// Cached fallible [`EvalArena`] construction.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalCycle`].
    pub fn try_eval_arena(&mut self, netlist: &Netlist) -> Result<Arc<EvalArena>, NetlistError> {
        if self.eval_arena.is_none() {
            self.eval_arena = Some(Arc::new(EvalArena::try_new(netlist)?));
        }
        Ok(self.eval_arena.as_ref().expect("just filled").clone())
    }

    /// Cached [`Netlist::depth`] (reuses the cached levels).
    pub fn depth(&mut self, netlist: &Netlist) -> u32 {
        self.try_depth(netlist)
            .unwrap_or_else(|e| panic!("combinational cycle: {e}"))
    }

    /// Cached fallible [`Netlist::depth`].
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalCycle`].
    pub fn try_depth(&mut self, netlist: &Netlist) -> Result<u32, NetlistError> {
        if self.depth.is_none() {
            let levels = self.try_levels(netlist)?;
            self.depth = Some(netlist.depth_from_levels(&levels));
        }
        Ok(self.depth.expect("just filled"))
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist `{}`: i/o {}/{}, {}, depth {}",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.counts(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_netlist() -> Netlist {
        let mut n = Netlist::new("and");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let k0 = n.add_const(false);
        let g = n.add_maj([a, b, k0]);
        n.add_output("f", g);
        n
    }

    #[test]
    fn const_cells_are_shared() {
        let mut n = Netlist::new("c");
        let k0 = n.add_const(false);
        let k0b = n.add_const(false);
        let k1 = n.add_const(true);
        assert_eq!(k0, k0b);
        assert_ne!(k0, k1);
        assert_eq!(n.counts().consts, 2);
    }

    #[test]
    fn and_gate_eval() {
        let n = and_netlist();
        assert_eq!(n.eval(&[true, true]), vec![true]);
        assert_eq!(n.eval(&[true, false]), vec![false]);
        assert_eq!(n.eval(&[false, true]), vec![false]);
    }

    #[test]
    fn word_eval_matches_scalar_eval_exhaustively() {
        // AND gate plus an inverter chain: all 4 patterns in one block.
        let mut n = and_netlist();
        let g = n.outputs()[0].driver;
        let inv = n.add_inv(g);
        n.add_output("nf", inv);
        // words: input 0 = 0b1010, input 1 = 0b1100 (patterns 0..4).
        let out = n.eval_words(&[0b1010, 0b1100]);
        for p in 0..4u64 {
            let bits = vec![p & 1 != 0, p >> 1 & 1 != 0];
            let scalar = n.eval(&bits);
            assert_eq!(scalar[0], out[0] >> p & 1 != 0, "pattern {p}");
            assert_eq!(scalar[1], out[1] >> p & 1 != 0, "pattern {p}");
        }
        assert_eq!(
            n.try_eval_words(&[0]),
            Err(NetlistError::WidthMismatch {
                inputs: 2,
                pattern: 1
            })
        );
    }

    #[test]
    fn const_fanin_does_not_add_depth() {
        let n = and_netlist();
        assert_eq!(n.depth(), 1);
        let levels = n.levels();
        let g = n.outputs()[0].driver;
        assert_eq!(levels[g.index()], 1);
    }

    #[test]
    fn inverter_and_buffer_chain_levels() {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let inv = n.add_inv(a);
        let buf = n.add_buf(inv);
        let fog = n.add_fog(buf);
        n.add_output("f", fog);
        let levels = n.levels();
        assert_eq!(levels[inv.index()], 1);
        assert_eq!(levels[buf.index()], 2);
        assert_eq!(levels[fog.index()], 3);
        assert_eq!(n.depth(), 3);
        assert_eq!(n.eval(&[true]), vec![false]);
        assert_eq!(n.eval(&[false]), vec![true]);
    }

    #[test]
    fn topo_order_handles_forward_edges() {
        // Build a netlist, then retarget an edge to a later component,
        // as the transforms do.
        let mut n = Netlist::new("fwd");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let k0 = n.add_const(false);
        let g = n.add_maj([a, b, k0]);
        n.add_output("f", g);
        // Insert a buffer *after* g in the arena, feeding g's slot 0.
        let buf = n.add_buf(a);
        n.component_mut(g).fanins_mut()[0] = buf;
        let order = n.topo_order();
        let pos = |id: CompId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(buf) < pos(g));
        assert!(pos(a) < pos(buf));
        assert_eq!(n.depth(), 2);
        assert_eq!(n.eval(&[true, true]), vec![true]);
    }

    #[test]
    fn fanout_counts_include_outputs_and_ignore_consts() {
        let mut n = Netlist::new("fo");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let k0 = n.add_const(false);
        let g1 = n.add_maj([a, b, k0]);
        let g2 = n.add_maj([a, g1, k0]);
        n.add_output("f", g2);
        n.add_output("g", g1);
        let counts = n.fanout_counts();
        assert_eq!(counts[a.index()], 2);
        assert_eq!(counts[g1.index()], 2); // g2 + output
        assert_eq!(counts[g2.index()], 1);
        assert_eq!(counts[k0.index()], 0, "constants are not driven nets");
        assert_eq!(n.max_fanout(), 2);
    }

    #[test]
    fn counts_and_display() {
        let mut n = Netlist::new("k");
        let a = n.add_input("a");
        let inv = n.add_inv(a);
        let buf = n.add_buf(inv);
        n.add_output("o", buf);
        let c = n.counts();
        assert_eq!(c.inputs, 1);
        assert_eq!(c.inv, 1);
        assert_eq!(c.buf, 1);
        assert_eq!(c.priced_total(), 2);
        assert!(n.to_string().contains("depth 2"));
    }

    #[test]
    fn sweep_drops_dangling_logic() {
        let mut n = Netlist::new("dangle");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let k0 = n.add_const(false);
        let live = n.add_maj([a, b, k0]);
        let dead_inv = n.add_inv(a);
        let _dead_buf = n.add_buf(dead_inv);
        n.add_output("f", live);
        assert_eq!(n.counts().inv, 1);
        let swept = n.sweep();
        assert_eq!(swept.counts().inv, 0);
        assert_eq!(swept.counts().buf, 0);
        assert_eq!(swept.counts().maj, 1);
        assert_eq!(swept.inputs().len(), 2, "ports survive even if unused");
        assert_eq!(swept.eval(&[true, true]), n.eval(&[true, true]));
        assert_eq!(swept.eval(&[true, false]), n.eval(&[true, false]));
    }

    #[test]
    fn sweep_preserves_everything_when_all_live() {
        let mut n = Netlist::new("full");
        let a = n.add_input("a");
        let inv = n.add_inv(a);
        let buf = n.add_buf(inv);
        n.add_output("o", buf);
        let swept = n.sweep();
        assert_eq!(swept.counts(), n.counts());
        assert_eq!(swept.depth(), n.depth());
    }

    #[test]
    fn validate_accepts_well_formed_netlists() {
        let n = and_netlist();
        assert_eq!(n.validate(), Ok(()));
    }

    #[test]
    fn validate_reports_dangling_fanin() {
        let mut n = and_netlist();
        let g = n.outputs()[0].driver;
        n.component_mut(g).fanins_mut()[0] = CompId::from_index(999);
        let err = n.validate().unwrap_err();
        assert!(err.contains("missing fan-in"), "{err}");
    }

    #[test]
    #[should_panic(expected = "not a component")]
    fn set_output_driver_rejects_dangling_ids() {
        let mut n = and_netlist();
        n.set_output_driver(0, CompId::from_index(999));
    }

    #[test]
    fn structural_caches_match_fresh_computation_and_invalidate() {
        let mut n = and_netlist();
        let mut caches = StructuralCaches::default();
        assert_eq!(*caches.topo_order(&n), n.topo_order());
        assert_eq!(*caches.levels(&n), n.levels());
        assert_eq!(*caches.fanout_edges(&n), n.fanout_edges());
        assert_eq!(*caches.fanout_counts(&n), n.fanout_counts());
        assert_eq!(caches.depth(&n), n.depth());

        // Mutate, invalidate, and the views track the new structure.
        let g = n.outputs()[0].driver;
        let buf = n.add_buf(g);
        n.set_output_driver(0, buf);
        caches.invalidate();
        assert_eq!(caches.depth(&n), 2);
        assert_eq!(*caches.levels(&n), n.levels());
    }

    #[test]
    fn fallible_accessors_report_instead_of_panicking() {
        let mut n = and_netlist();
        assert_eq!(
            n.try_eval(&[true]),
            Err(NetlistError::WidthMismatch {
                inputs: 2,
                pattern: 1
            })
        );
        assert_eq!(n.try_eval(&[true, true]), Ok(vec![true]));
        assert_eq!(
            n.try_set_output_driver(0, CompId::from_index(999)),
            Err(NetlistError::DanglingDriver {
                driver: CompId::from_index(999),
                len: n.len()
            })
        );
        let g = n.outputs()[0].driver;
        assert_eq!(
            n.try_set_output_driver(5, g),
            Err(NetlistError::NoSuchOutput {
                position: 5,
                outputs: 1
            })
        );
        assert_eq!(n.try_set_output_driver(0, g), Ok(()));

        // A cycle surfaces through the whole fallible stack.
        let mut cyc = Netlist::new("cyc");
        let a = cyc.add_input("a");
        let b1 = cyc.add_buf(a);
        let b2 = cyc.add_buf(b1);
        cyc.component_mut(b1).fanins_mut()[0] = b2;
        cyc.add_output("f", b2);
        assert!(matches!(
            cyc.try_topo_order(),
            Err(NetlistError::CombinationalCycle(_))
        ));
        assert!(matches!(
            cyc.try_eval(&[true]),
            Err(NetlistError::CombinationalCycle(_))
        ));
        let mut caches = StructuralCaches::default();
        assert!(caches.try_depth(&cyc).is_err());
        assert!(caches.try_levels(&cyc).is_err());
        assert!(cyc
            .try_topo_order()
            .unwrap_err()
            .to_string()
            .contains("cycle"));
    }

    #[test]
    #[should_panic(expected = "combinational cycle")]
    fn cycle_detection() {
        let mut n = Netlist::new("cyc");
        let a = n.add_input("a");
        let buf1 = n.add_buf(a);
        let buf2 = n.add_buf(buf1);
        n.component_mut(buf1).fanins_mut()[0] = buf2;
        n.add_output("f", buf2);
        let _ = n.topo_order();
    }
}
