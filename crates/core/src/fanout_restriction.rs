//! Fan-out restriction — §IV of the paper.
//!
//! SWD, QCA and NML have no intrinsic gain, so a component may only
//! drive a small number of consumers (2–5; a fan-out of 3 is physically
//! a reversed majority node). Components whose fan-out exceeds the limit
//! `k` get a *chain of fan-out gates* (FOGs): the driver keeps `k − 1`
//! direct consumers plus the chain head; every FOG serves up to `k − 1`
//! consumers and forwards the wave to the next FOG.
//!
//! Consumers are assigned to the chain **in ascending order of their
//! original level** (the paper's greedy): shallow consumers tap close to
//! the driver, deep consumers absorb the FOG latency as free path
//! balancing — this is what Fig 6b calls *delayed nodes* and why the
//! algorithm "does not leave residual paths that jump through graph
//! levels". Primary-output uses are assigned last (they are padded to a
//! common depth by buffer insertion anyway).
//!
//! The pass increases the critical path (Fig 7: on average +140 %, 57 %,
//! 36 %, 26 % for k = 2, 3, 4, 5) because delayed consumers push their
//! transitive fan-out down; run it **before** buffer insertion, as the
//! paper prescribes.

use crate::component::{CompId, ComponentKind};
use crate::netlist::Netlist;

/// Statistics returned by [`restrict_fanout`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FanoutRestriction {
    /// The fan-out limit that was enforced (the *chosen* `k` when the
    /// cost-aware pass selected it).
    pub limit: u32,
    /// Fan-out gates inserted.
    pub fogs_inserted: usize,
    /// Components whose fan-out had to be split.
    pub components_split: usize,
    /// Consumers whose arrival level increased (the paper's "delayed
    /// nodes" of Fig 6b).
    pub delayed_consumers: usize,
    /// Critical-path length before the pass.
    pub depth_before: u32,
    /// Critical-path length after the pass.
    pub depth_after: u32,
}

impl FanoutRestriction {
    /// Relative critical-path increase, e.g. `0.4` for +40 %.
    pub fn depth_increase(&self) -> f64 {
        if self.depth_before == 0 {
            0.0
        } else {
            (self.depth_after as f64 - self.depth_before as f64) / self.depth_before as f64
        }
    }
}

/// Limits every component's fan-out to `limit` by inserting FOG chains,
/// in place.
///
/// Constant cells are exempt: a constant is a fixed-polarization cell
/// that is physically replicated next to each consumer, not a driven
/// net.
///
/// # Panics
///
/// Panics if `limit < 2` (a fan-out gate must at least serve one
/// consumer and the chain).
///
/// # Examples
///
/// ```
/// use wavepipe::{restrict_fanout, Netlist};
///
/// let mut n = Netlist::new("wide");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let c = n.add_input("c");
/// // `a` drives 5 gates.
/// for _ in 0..5 {
///     let g = n.add_maj([a, b, c]);
///     // (identical fan-ins; a real netlist would vary them)
///     let _ = g;
/// }
/// # let ids: Vec<_> = n.ids().collect();
/// let stats = restrict_fanout(&mut n, 3);
/// assert!(stats.fogs_inserted > 0);
/// assert!(n.max_fanout() <= 3);
/// ```
pub fn restrict_fanout(netlist: &mut Netlist, limit: u32) -> FanoutRestriction {
    let original_levels = netlist.levels();
    let fanout = netlist.fanout_edges();
    let depth_before = netlist.depth_from_levels(&original_levels);
    let mut stats =
        restrict_fanout_prepared(netlist, limit, &original_levels, &fanout, depth_before);
    stats.depth_after = netlist.depth();
    stats
}

/// [`restrict_fanout`] against already-computed structural views (the
/// pre-mutation ASAP levels and fan-out edge lists, plus the depth they
/// imply), so pipeline passes holding a fresh
/// [`StructuralCaches`](crate::netlist::StructuralCaches) snapshot
/// don't recompute them from scratch.
///
/// The returned statistics leave `depth_after` at zero — the netlist
/// has just been mutated, so the caller decides where the fresh depth
/// comes from (the pipeline pass reads it back through the cache, which
/// also primes it for the instrumentation layer).
///
/// # Panics
///
/// Panics if `limit < 2`, or if `levels` / `fanout` do not cover every
/// component.
pub fn restrict_fanout_prepared(
    netlist: &mut Netlist,
    limit: u32,
    original_levels: &[u32],
    fanout: &[Vec<(CompId, usize)>],
    depth_before: u32,
) -> FanoutRestriction {
    assert!(limit >= 2, "fan-out limit must be at least 2");
    let original_len = netlist.len();
    assert!(
        original_levels.len() >= original_len && fanout.len() >= original_len,
        "structural views must cover every component"
    );

    // Snapshot primary-output uses.
    let mut output_uses: Vec<Vec<usize>> = vec![Vec::new(); original_len];
    for (pos, p) in netlist.outputs().iter().enumerate() {
        output_uses[p.driver.index()].push(pos);
    }

    let mut stats = FanoutRestriction {
        limit,
        depth_before,
        ..FanoutRestriction::default()
    };

    for idx in 0..original_len {
        let comp = CompId::from_index(idx);
        if netlist.component(comp).kind() == ComponentKind::Const {
            continue;
        }

        enum Use {
            Gate { consumer: CompId, slot: usize },
            Output { position: usize },
        }
        // Sort key: original consumer level (outputs last — they have no
        // downstream logic to delay).
        let mut uses: Vec<(u32, Use)> = fanout[idx]
            .iter()
            .map(|&(consumer, slot)| {
                (
                    original_levels[consumer.index()],
                    Use::Gate { consumer, slot },
                )
            })
            .collect();
        for &position in &output_uses[idx] {
            uses.push((u32::MAX, Use::Output { position }));
        }
        if uses.len() <= limit as usize {
            continue;
        }
        stats.components_split += 1;
        uses.sort_by_key(|&(level, _)| level);

        // Chain assignment: the current driver serves consumers while it
        // has spare capacity, reserving one slot for the chain extension
        // whenever consumers remain.
        let mut driver = comp;
        let mut driver_extra_levels = 0u32; // FOG depth below `comp`
        let mut capacity = limit;
        let total = uses.len();
        for (served, (orig_level, u)) in uses.into_iter().enumerate() {
            let remaining = total - served;
            if capacity == 1 && remaining > 1 {
                driver = netlist.add_fog(driver);
                driver_extra_levels += 1;
                capacity = limit;
                stats.fogs_inserted += 1;
            }
            match u {
                Use::Gate { consumer, slot } => {
                    netlist.component_mut(consumer).fanins_mut()[slot] = driver;
                    // Delayed iff the FOG tap arrives later than the
                    // consumer's critical fan-in did originally.
                    if driver_extra_levels > 0
                        && original_levels[idx] + driver_extra_levels + 1 > orig_level
                    {
                        stats.delayed_consumers += 1;
                    }
                }
                Use::Output { position } => {
                    netlist.set_output_driver(position, driver);
                }
            }
            capacity -= 1;
        }
    }

    stats
}

/// Pipeline pass wrapping [`restrict_fanout`].
///
/// Records its [`FanoutRestriction`] statistics and the enforced limit
/// in the [`crate::pipeline::FlowContext`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FanoutRestrictionPass {
    /// The §IV fan-out limit (2–5).
    pub limit: u32,
}

impl crate::pipeline::Pass for FanoutRestrictionPass {
    fn name(&self) -> String {
        format!("fanout_restriction({})", self.limit)
    }

    fn kind(&self) -> crate::pipeline::PassKind {
        crate::pipeline::PassKind::FanoutRestriction
    }

    fn run(
        &self,
        ctx: &mut crate::pipeline::FlowContext<'_>,
    ) -> Result<(), crate::pipeline::PassError> {
        let levels = ctx.levels();
        let fanout = ctx.fanout_edges();
        let depth_before = ctx.depth();
        let mut stats = restrict_fanout_prepared(
            ctx.netlist_mut(),
            self.limit,
            &levels,
            &fanout,
            depth_before,
        );
        stats.depth_after = ctx.depth();
        ctx.fanout = Some(stats);
        Ok(())
    }
}

/// Cost-aware fan-out restriction: picks the limit `k` from a candidate
/// set by the run's technology cost model instead of taking it as a
/// constant.
///
/// For each candidate `k` the pass restricts a scratch copy of the
/// netlist, projects the buffers Algorithm 1 will add on top
/// ([`crate::LevelSchedule::buffer_cost`] is exact for ASAP levels) and
/// prices the projected netlist with the model's FOG/BUF area costs;
/// the cheapest candidate wins (first candidate on ties) and its
/// restriction is committed. Under the paper's Table I this selects the
/// largest physically-allowed `k` — FOG chains and the buffers they
/// force always cost more than they save — so the pass's value is in
/// *constrained* candidate sets (a technology that only offers `k ∈
/// {2, 3}`) and in custom cost models; the paper's reference flow keeps
/// the fixed FO3 pass.
///
/// Fails with [`PassError::Custom`](crate::pipeline::PassError::Custom)
/// when the run carries no cost model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostAwareFanoutPass {
    /// Candidate limits to price, tried in order (each must be ≥ 2).
    pub candidates: Vec<u32>,
}

impl Default for CostAwareFanoutPass {
    /// The paper's physically-plausible range, `k ∈ 2..=5`.
    fn default() -> CostAwareFanoutPass {
        CostAwareFanoutPass {
            candidates: vec![2, 3, 4, 5],
        }
    }
}

impl crate::pipeline::Pass for CostAwareFanoutPass {
    fn name(&self) -> String {
        "fanout_restriction(cost-aware)".to_owned()
    }

    fn kind(&self) -> crate::pipeline::PassKind {
        crate::pipeline::PassKind::FanoutRestriction
    }

    fn run(
        &self,
        ctx: &mut crate::pipeline::FlowContext<'_>,
    ) -> Result<(), crate::pipeline::PassError> {
        let table = ctx.cost_model().cloned().ok_or_else(|| {
            crate::pipeline::PassError::Custom(
                "cost-aware fan-out restriction needs a cost model \
                 (FlowPipelineBuilder::with_cost_model or the grid driver)"
                    .to_owned(),
            )
        })?;
        if self.candidates.is_empty() {
            return Err(crate::pipeline::PassError::Custom(
                "cost-aware fan-out restriction needs at least one candidate limit".to_owned(),
            ));
        }
        // Surface an infeasible candidate as this cell's error instead
        // of letting restrict_fanout's assert panic — a panic inside a
        // grid worker would abort the whole sweep.
        if let Some(&bad) = self.candidates.iter().find(|&&k| k < 2) {
            return Err(crate::pipeline::PassError::Custom(format!(
                "cost-aware fan-out restriction: candidate limit {bad} is below the \
                 physical minimum of 2"
            )));
        }

        let mut best: Option<(f64, Netlist, FanoutRestriction)> = None;
        for &k in &self.candidates {
            let mut trial = ctx.netlist().clone();
            let stats = restrict_fanout(&mut trial, k);
            let projected_buffers =
                crate::retiming::LevelSchedule::buffer_cost(&trial, &trial.levels());
            let mut counts = trial.counts();
            counts.buf += projected_buffers as usize;
            let priced = table.price(&counts, trial.outputs().len(), stats.depth_after);
            if best.as_ref().is_none_or(|(cost, _, _)| priced.area < *cost) {
                best = Some((priced.area, trial, stats));
            }
        }

        let (_, netlist, stats) = best.expect("at least one candidate was priced");
        *ctx.netlist_mut() = netlist;
        ctx.fanout = Some(stats);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_mig::netlist_from_mig;

    /// Builds a netlist where only input `a` fans out to `n` gates (all
    /// other inputs are used exactly once).
    fn wide_fanout(n_consumers: usize) -> Netlist {
        let mut n = Netlist::new("wide");
        let a = n.add_input("a");
        for i in 0..n_consumers {
            let x = n.add_input(format!("x{i}"));
            let y = n.add_input(format!("y{i}"));
            let g = n.add_maj([a, x, y]);
            n.add_output(format!("o{i}"), g);
        }
        n
    }

    fn eval_all(netlist: &Netlist, n: usize) -> Vec<Vec<bool>> {
        (0..1u32 << n)
            .map(|p| {
                let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
                netlist.eval(&bits)
            })
            .collect()
    }

    #[test]
    fn fanout_is_bounded_after_restriction() {
        for limit in 2..=5u32 {
            let mut n = wide_fanout(9);
            assert!(n.max_fanout() > limit);
            let stats = restrict_fanout(&mut n, limit);
            assert!(
                n.max_fanout() <= limit,
                "limit {limit}: max fan-out {} after restriction",
                n.max_fanout()
            );
            assert!(stats.fogs_inserted > 0);
            assert_eq!(stats.components_split, 1);
        }
    }

    #[test]
    fn function_is_preserved() {
        let inputs = 1 + 2 * 5;
        let mut n = wide_fanout(5);
        let before = eval_all(&n, inputs);
        restrict_fanout(&mut n, 3);
        assert_eq!(eval_all(&n, inputs), before, "FOGs are transparent");
    }

    #[test]
    fn fog_count_matches_chain_arithmetic() {
        // driver capacity k, each FOG adds k−1 net new slots; for f
        // consumers: fogs = ceil((f − k) / (k − 1)) when f > k.
        for (f, k, expect) in [
            (9usize, 3u32, 3usize),
            (4, 2, 2),
            (10, 5, 2),
            (6, 5, 1),
            (5, 5, 0),
        ] {
            let mut n = wide_fanout(f);
            // Each gate consumer + its output: `a` has fan-out f, each gate
            // has fan-out 1 (its own output), so only `a` splits.
            let stats = restrict_fanout(&mut n, k);
            assert_eq!(
                stats.fogs_inserted, expect,
                "f={f}, k={k}: expected {expect} FOGs, got {}",
                stats.fogs_inserted
            );
        }
    }

    #[test]
    fn fogs_themselves_respect_the_limit() {
        let mut n = wide_fanout(20);
        restrict_fanout(&mut n, 2);
        assert!(n.max_fanout() <= 2);
        // With k = 2 every FOG serves one consumer + one chain link.
        let stats_counts = n.counts();
        assert!(stats_counts.fog >= 18);
    }

    #[test]
    fn shallow_consumers_tap_first() {
        // Consumers at levels 1 and 3: the level-1 consumers must stay
        // direct, the deep one takes the FOG tap.
        let mut n = Netlist::new("mixed");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_maj([a, b, c]);
        let g2 = n.add_maj([g1, b, c]);
        let g3 = n.add_maj([g2, a, b]); // `a` consumer at level 3
        let g4 = n.add_maj([a, b, g1]); // level 2
        let g5 = n.add_maj([a, c, g1]); // level 2
        n.add_output("f", g3);
        n.add_output("g", g4);
        n.add_output("h", g5);
        // `a` fan-out: g1(level1), g3(level3), g4, g5 (level2) = 4 > 3.
        let levels_before = n.levels();
        assert_eq!(levels_before[g1.index()], 1);
        restrict_fanout(&mut n, 3);
        // g1 (shallowest consumer of `a`) must still read `a` directly.
        assert_eq!(n.component(g1).fanins(), &[a, b, c]);
        assert!(n.max_fanout() <= 3);
    }

    #[test]
    fn depth_increase_grows_as_limit_shrinks() {
        let g = mig::random_mig(mig::RandomMigConfig {
            inputs: 16,
            outputs: 8,
            gates: 400,
            depth: 12,
            seed: 99,
        });
        let base = netlist_from_mig(&g);
        let mut increases = Vec::new();
        for limit in [2u32, 3, 4, 5] {
            let mut n = base.clone();
            let stats = restrict_fanout(&mut n, limit);
            assert!(n.max_fanout() <= limit);
            increases.push(stats.depth_increase());
        }
        assert!(
            increases[0] >= increases[1]
                && increases[1] >= increases[2]
                && increases[2] >= increases[3],
            "depth increase should be monotone in the restriction: {increases:?}"
        );
        assert!(
            increases[0] > 0.0,
            "k=2 must delay something on this netlist"
        );
    }

    #[test]
    fn restriction_is_idempotent() {
        let mut n = wide_fanout(9);
        let s1 = restrict_fanout(&mut n, 3);
        assert!(s1.fogs_inserted > 0);
        let s2 = restrict_fanout(&mut n, 3);
        assert_eq!(s2.fogs_inserted, 0, "second pass finds nothing to split");
        assert_eq!(s2.depth_before, s2.depth_after);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn limit_one_is_rejected() {
        let mut n = wide_fanout(3);
        restrict_fanout(&mut n, 1);
    }
}
