//! Slack-aware level retiming — an ablation beyond the paper.
//!
//! Algorithm 1 balances paths against the netlist's ASAP levels (the
//! paper assumes "the input netlist is already optimized for depth" and
//! fixes levels accordingly). But any *feasible* level assignment — one
//! where every edge spans at least one level and the overall depth is
//! unchanged — yields a correct wave pipeline after buffer insertion,
//! and different assignments need different buffer counts.
//!
//! With shared buffer chains, the total buffer count under an assignment
//! `ℓ` is exactly
//!
//! ```text
//! Σ_u  max(0, maxreq(u) − ℓ(u))
//! ```
//!
//! where `maxreq(u)` is the deepest level any consumer of `u` requires
//! (`ℓ(consumer) − 1`, or the output depth for output drivers). This
//! module hill-climbs that objective: in reverse topological order each
//! component is moved one level later while the move strictly reduces
//! the objective — moving a component shortens its own chain by one and
//! extends a fan-in's chain only when the component was that fan-in's
//! deepest consumer. The classic win is a shallow component hanging off
//! a driver that already feeds a deep chain: the component slides up
//! under the existing chain for free.

use crate::buffer_insertion::{insert_buffers_with_levels, BufferInsertion};
use crate::component::{CompId, ComponentKind};
use crate::netlist::Netlist;

/// ASAP and ALAP levels plus the retimed assignment.
#[derive(Clone, Debug)]
pub struct LevelSchedule {
    /// As-soon-as-possible levels (= [`Netlist::levels`]).
    pub asap: Vec<u32>,
    /// As-late-as-possible levels w.r.t. the ASAP output depth.
    pub alap: Vec<u32>,
    /// The retimed assignment chosen by the hill-climb.
    pub retimed: Vec<u32>,
}

impl LevelSchedule {
    /// Total slack (Σ alap − asap) — how much freedom the retimer had.
    pub fn total_slack(&self) -> u64 {
        self.asap
            .iter()
            .zip(&self.alap)
            .map(|(&a, &l)| u64::from(l - a))
            .sum()
    }

    /// Exact buffer count Algorithm 1 will insert under `levels`.
    pub fn buffer_cost(netlist: &Netlist, levels: &[u32]) -> u64 {
        let fanout = netlist.fanout_edges();
        let depth = netlist
            .outputs()
            .iter()
            .filter(|p| netlist.component(p.driver).kind() != ComponentKind::Const)
            .map(|p| levels[p.driver.index()])
            .max()
            .unwrap_or(0);
        let mut output_driver = vec![false; netlist.len()];
        for p in netlist.outputs() {
            if netlist.component(p.driver).kind() != ComponentKind::Const {
                output_driver[p.driver.index()] = true;
            }
        }
        let mut total = 0u64;
        for id in netlist.ids() {
            if netlist.component(id).kind() == ComponentKind::Const {
                continue;
            }
            let mut maxreq: Option<u32> = None;
            for &(c, _) in &fanout[id.index()] {
                maxreq =
                    Some(maxreq.map_or(levels[c.index()] - 1, |m| m.max(levels[c.index()] - 1)));
            }
            if output_driver[id.index()] {
                maxreq = Some(maxreq.map_or(depth, |m| m.max(depth)));
            }
            if let Some(m) = maxreq {
                total += u64::from(m.saturating_sub(levels[id.index()]));
            }
        }
        total
    }
}

/// Computes ASAP/ALAP levels and the retimed assignment for `netlist`.
///
/// The returned assignment is always feasible: inputs stay at level 0,
/// every edge spans ≥ 1 level, no component moves past the output depth,
/// and the buffer cost never exceeds the ASAP cost.
pub fn schedule_levels(netlist: &Netlist) -> LevelSchedule {
    let asap = netlist.levels();
    let order = netlist.topo_order();
    let n = netlist.len();
    let fanout = netlist.fanout_edges();

    let is_const = |id: CompId| netlist.component(id).kind() == ComponentKind::Const;
    let is_movable = |id: CompId| {
        !matches!(
            netlist.component(id).kind(),
            ComponentKind::Const | ComponentKind::Input
        )
    };

    let depth = netlist
        .outputs()
        .iter()
        .filter(|p| !is_const(p.driver))
        .map(|p| asap[p.driver.index()])
        .max()
        .unwrap_or(0);
    let mut output_driver = vec![false; n];
    for p in netlist.outputs() {
        if !is_const(p.driver) {
            output_driver[p.driver.index()] = true;
        }
    }

    // ALAP by pulling back from `depth` through consumers.
    let mut alap = vec![depth; n];
    for &id in order.iter().rev() {
        for &f in netlist.component(id).fanins() {
            if is_const(f) {
                continue;
            }
            let bound = alap[id.index()].saturating_sub(1);
            if alap[f.index()] > bound {
                alap[f.index()] = bound;
            }
        }
    }
    for i in 0..n {
        let id = CompId::from_index(i);
        // Pinned components get no slack; movable ones never below ASAP.
        if !is_movable(id) || alap[i] < asap[i] {
            alap[i] = asap[i];
        }
    }

    // Hill-climb in reverse topological order (consumers final first).
    let mut retimed = asap.clone();
    for &id in order.iter().rev() {
        if !is_movable(id) {
            continue;
        }
        // Feasibility bound: one below the shallowest consumer; output
        // drivers may not pass the common output depth.
        let mut ub = if output_driver[id.index()] {
            depth
        } else {
            u32::MAX
        };
        for &(c, _) in &fanout[id.index()] {
            ub = ub.min(retimed[c.index()] - 1);
        }
        if ub == u32::MAX {
            continue; // dangling component: leave at ASAP
        }

        while retimed[id.index()] < ub {
            let next = retimed[id.index()] + 1;
            // Moving up saves one buffer on our own chain (ub ≤ maxreq
            // guarantees the chain is non-empty) and costs one buffer on
            // every fan-in whose chain we were already the deepest
            // consumer of.
            let mut extensions = 0u32;
            for &f in netlist.component(id).fanins() {
                if is_const(f) {
                    continue;
                }
                let mut maxreq_other: Option<u32> = None;
                for &(c, _) in &fanout[f.index()] {
                    if c == id {
                        continue;
                    }
                    let r = retimed[c.index()] - 1;
                    maxreq_other = Some(maxreq_other.map_or(r, |m| m.max(r)));
                }
                if output_driver[f.index()] {
                    maxreq_other = Some(maxreq_other.map_or(depth, |m| m.max(depth)));
                }
                // We require the driver at level `next − 1`.
                let covered =
                    maxreq_other.map_or(retimed[f.index()], |m| m.max(retimed[f.index()]));
                if next - 1 > covered {
                    extensions += 1;
                }
            }
            if extensions >= 1 {
                break; // strict improvement only
            }
            retimed[id.index()] = next;
        }
    }

    LevelSchedule {
        asap,
        alap,
        retimed,
    }
}

/// Runs buffer insertion against the retimed levels instead of ASAP.
///
/// Produces a balanced netlist of identical depth and function; on
/// netlists with shallow components hanging off deeply-shared drivers it
/// needs measurably fewer buffers (see the `ablation_retiming` harness).
pub fn insert_buffers_retimed(netlist: &mut Netlist) -> BufferInsertion {
    let schedule = schedule_levels(netlist);
    insert_buffers_with_levels(netlist, &schedule.retimed)
}

/// Pipeline pass wrapping [`insert_buffers_retimed`] (Algorithm 1
/// against hill-climbed levels — same depth, fewer buffers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetimedInsertionPass;

impl crate::pipeline::Pass for RetimedInsertionPass {
    fn name(&self) -> String {
        "insert_buffers(retimed)".to_owned()
    }

    fn kind(&self) -> crate::pipeline::PassKind {
        crate::pipeline::PassKind::BufferInsertion
    }

    fn run(
        &self,
        ctx: &mut crate::pipeline::FlowContext<'_>,
    ) -> Result<(), crate::pipeline::PassError> {
        let stats = insert_buffers_retimed(ctx.netlist_mut());
        ctx.buffers = Some(stats);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::verify_balance;
    use crate::buffer_insertion::insert_buffers;
    use crate::from_mig::netlist_from_mig;

    #[test]
    fn retimed_levels_are_feasible() {
        let g = mig::random_mig(mig::RandomMigConfig {
            inputs: 10,
            outputs: 5,
            gates: 150,
            depth: 9,
            seed: 31,
        });
        let n = netlist_from_mig(&g);
        let s = schedule_levels(&n);
        for id in n.ids() {
            assert!(s.alap[id.index()] >= s.asap[id.index()]);
            assert!(s.retimed[id.index()] >= s.asap[id.index()]);
            assert!(s.retimed[id.index()] <= s.alap[id.index()]);
            for &f in n.component(id).fanins() {
                if n.component(f).kind() == ComponentKind::Const {
                    continue;
                }
                assert!(
                    s.retimed[id.index()] > s.retimed[f.index()],
                    "retimed levels must keep edges causal"
                );
            }
        }
    }

    #[test]
    fn retimed_cost_never_exceeds_asap_cost() {
        for seed in 40..48 {
            let g = mig::random_mig(mig::RandomMigConfig {
                inputs: 12,
                outputs: 6,
                gates: 250,
                depth: 11,
                seed,
            });
            let n = netlist_from_mig(&g);
            let s = schedule_levels(&n);
            let asap_cost = LevelSchedule::buffer_cost(&n, &s.asap);
            let retimed_cost = LevelSchedule::buffer_cost(&n, &s.retimed);
            assert!(
                retimed_cost <= asap_cost,
                "seed {seed}: retimed {retimed_cost} > asap {asap_cost}"
            );
        }
    }

    #[test]
    fn predicted_cost_matches_actual_insertion() {
        for seed in 50..54 {
            let g = mig::random_mig(mig::RandomMigConfig {
                inputs: 10,
                outputs: 4,
                gates: 180,
                depth: 10,
                seed,
            });
            let n = netlist_from_mig(&g);
            let s = schedule_levels(&n);

            let mut asap_net = n.clone();
            let stats = insert_buffers(&mut asap_net);
            assert_eq!(
                LevelSchedule::buffer_cost(&n, &s.asap),
                stats.total() as u64,
                "cost model must match Algorithm 1 exactly (seed {seed})"
            );

            let mut retimed_net = n.clone();
            let rstats = insert_buffers_retimed(&mut retimed_net);
            assert_eq!(
                LevelSchedule::buffer_cost(&n, &s.retimed),
                rstats.total() as u64
            );
        }
    }

    #[test]
    fn retimed_insertion_is_balanced_and_equivalent() {
        let g = mig::random_mig(mig::RandomMigConfig {
            inputs: 10,
            outputs: 5,
            gates: 200,
            depth: 10,
            seed: 32,
        });
        let base = netlist_from_mig(&g);

        let mut asap_net = base.clone();
        insert_buffers(&mut asap_net);
        let mut retimed_net = base.clone();
        insert_buffers_retimed(&mut retimed_net);

        let ra = verify_balance(&asap_net, None).unwrap();
        let rr = verify_balance(&retimed_net, None).unwrap();
        assert_eq!(ra.depth, rr.depth, "retiming must not change depth");

        for p in 0..64u32 {
            let bits: Vec<bool> = (0..10)
                .map(|i| p.wrapping_mul(2654435761) >> i & 1 != 0)
                .collect();
            assert_eq!(asap_net.eval(&bits), retimed_net.eval(&bits));
        }
    }

    #[test]
    fn shallow_component_slides_under_an_existing_chain() {
        // `a` feeds a deep gate (so its chain reaches level 3 anyway)
        // and an inverter whose only consumer is deep. ASAP pins the
        // inverter at level 1 and pays 3 buffers behind it; the
        // hill-climb slides the inverter up under `a`'s existing chain.
        let mut n = Netlist::new("slide");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let b1 = n.add_buf(b);
        let b2 = n.add_buf(b1);
        let b3 = n.add_buf(b2);
        let b4 = n.add_buf(b3); // level 4 spine
        let inv = n.add_inv(a); // level 1, only consumer is g (level 5)
        let g = n.add_maj([b4, inv, a]); // `a` also needed at level 4
        n.add_output("f", g);
        let _ = c;

        let s = schedule_levels(&n);
        assert_eq!(s.retimed[inv.index()], 4, "inverter slides to level 4");

        let mut asap_net = n.clone();
        let asap_stats = insert_buffers(&mut asap_net);
        let mut retimed_net = n.clone();
        let retimed_stats = insert_buffers_retimed(&mut retimed_net);
        assert!(verify_balance(&retimed_net, None).is_ok());
        assert!(
            retimed_stats.total() < asap_stats.total(),
            "retimed {} should beat asap {}",
            retimed_stats.total(),
            asap_stats.total()
        );
        for p in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(asap_net.eval(&bits), retimed_net.eval(&bits));
        }
    }

    #[test]
    fn total_slack_is_zero_on_rigid_chains() {
        let mut n = Netlist::new("rigid");
        let a = n.add_input("a");
        let b1 = n.add_buf(a);
        let b2 = n.add_buf(b1);
        n.add_output("f", b2);
        let s = schedule_levels(&n);
        assert_eq!(s.total_slack(), 0);
    }
}
