//! The flat evaluation arena: a [`Netlist`] prepared for the
//! simulation hot path.
//!
//! [`Netlist`] stores components in creation order with fan-ins that
//! may point forward — the right shape for transformation passes, and
//! the wrong one for evaluation, which previously chased a separately
//! allocated topological-order vector through a `Vec<Component>` of
//! enum payloads. [`EvalArena`] flattens the netlist **once** into
//! topo-order-contiguous typed ops whose operands are arena slots:
//! op `k` writes slot `k`, every operand slot is `< k`, and one linear
//! walk over a dense `Vec` *is* the evaluation. The arena is what
//! [`crate::NetlistFunction`], [`Netlist::eval_words`] and the
//! differential engine's parallel workers all replay; build it through
//! [`crate::StructuralCaches::eval_arena`] to share one flattening per
//! netlist snapshot.
//!
//! Evaluation is width-generic: [`EvalArena::eval_wide_into`] processes
//! `width` 64-lane words per op, laid out adjacently per slot
//! (`values[slot * width + j]`). At `width == 8` the eight lanes of a
//! slot are exactly one 64-byte cache line, so the random fan-in reads
//! that dominate large-netlist simulation stop wasting 7/8 of every
//! line — that, plus the contiguous layout, is the PR's single-core
//! throughput win. Widths 1/2/4/8 dispatch to monomorphized kernels
//! whose lane loops unroll; other widths share a runtime-width
//! fallback.

use crate::component::{CompId, Component};
use crate::netlist::{Netlist, NetlistError};

/// What an arena op computes. `Buf` and `Fog` cells never become ops:
/// they are functionally the identity, so the flattening aliases them
/// to their source slot ("copy elision") — in buffer-dominated
/// pipelined netlists that removes the majority of all components from
/// the evaluation working set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpKind {
    /// Copy primary input `a` (an input position, not a slot).
    Input,
    /// Constant 0 broadcast.
    Const0,
    /// Constant 1 broadcast.
    Const1,
    /// Majority of slots `a`, `b`, `c`.
    Maj,
    /// Complement of slot `a`.
    Inv,
}

/// One flattened op; operands are arena slots of earlier ops (except
/// [`OpKind::Input`], whose `a` is an input position).
#[derive(Clone, Copy, Debug)]
struct ArenaOp {
    a: u32,
    b: u32,
    c: u32,
    kind: OpKind,
}

/// A [`Netlist`] flattened into topo-order-contiguous typed ops: op
/// `k` writes slot `k`, every operand slot is `< k`, buffers and
/// fan-out splitters are elided (aliased to their source slot), and
/// one linear walk over a dense `Vec` evaluates `64 × width` patterns.
///
/// # Examples
///
/// ```
/// use wavepipe::{EvalArena, Netlist};
///
/// let mut n = Netlist::new("and");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let k0 = n.add_const(false);
/// let g = n.add_maj([a, b, k0]); // a & b
/// n.add_output("f", g);
///
/// let arena = EvalArena::try_new(&n).expect("acyclic");
/// assert_eq!(arena.component_count(), n.len());
/// assert_eq!(arena.eval_words(&[0b1100, 0b1010]), vec![0b1000]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EvalArena {
    /// Ops in topological order; op `k` writes slot `k`. Shorter than
    /// the source netlist whenever copy elision removed BUF/FOG cells.
    ops: Vec<ArenaOp>,
    /// Slot of each primary output's driver (copy chains resolved).
    outputs: Vec<u32>,
    /// Primary-input count (the expected pattern width).
    inputs: usize,
    /// Component count of the source netlist (for sanity checks).
    components: usize,
    /// `CompId::index()` → arena slot, copy chains resolved (rebuild
    /// scratch, kept for reuse).
    slot_of: Vec<u32>,
    /// DFS visit states (rebuild scratch).
    dfs_state: Vec<u8>,
    /// DFS stack of `(component, next fan-in)` (rebuild scratch).
    dfs_stack: Vec<(CompId, u8)>,
}

impl EvalArena {
    /// Flattens `netlist`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalCycle`] when the netlist has no
    /// topological order.
    pub fn try_new(netlist: &Netlist) -> Result<EvalArena, NetlistError> {
        let mut arena = EvalArena::default();
        arena.try_rebuild(netlist)?;
        Ok(arena)
    }

    /// Re-flattens `netlist` into this arena, reusing every internal
    /// buffer — the steady state of a hot caller (e.g. the thread-local
    /// scratch behind [`Netlist::eval_words`]) allocates nothing.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalCycle`]; the arena contents are
    /// unspecified afterwards (the next successful rebuild resets them).
    pub fn try_rebuild(&mut self, netlist: &Netlist) -> Result<(), NetlistError> {
        let n = netlist.len();
        self.inputs = netlist.inputs().len();
        self.components = n;
        self.ops.clear();
        self.ops.reserve(n);
        self.outputs.clear();
        self.slot_of.clear();
        self.slot_of.resize(n, u32::MAX);
        self.dfs_state.clear();
        self.dfs_state.resize(n, 0); // 0 new, 1 on stack, 2 done
        self.dfs_stack.clear();

        for root in 0..n {
            if self.dfs_state[root] != 0 {
                continue;
            }
            self.dfs_stack.push((CompId::from_index(root), 0));
            self.dfs_state[root] = 1;
            while let Some(&mut (id, ref mut next)) = self.dfs_stack.last_mut() {
                let fanins = netlist.component(id).fanins();
                if usize::from(*next) < fanins.len() {
                    let f = fanins[usize::from(*next)];
                    *next += 1;
                    match self.dfs_state[f.index()] {
                        0 => {
                            self.dfs_state[f.index()] = 1;
                            self.dfs_stack.push((f, 0));
                        }
                        1 => return Err(NetlistError::CombinationalCycle(f)),
                        _ => {}
                    }
                } else {
                    self.dfs_state[id.index()] = 2;
                    // Fan-ins completed before `id`, so their slots are
                    // already assigned (with copy chains pre-resolved).
                    let slot = |f: CompId| self.slot_of[f.index()];
                    let op = match netlist.component(id) {
                        Component::Input { position } => ArenaOp {
                            a: *position,
                            b: 0,
                            c: 0,
                            kind: OpKind::Input,
                        },
                        Component::Const { value } => ArenaOp {
                            a: 0,
                            b: 0,
                            c: 0,
                            kind: if *value {
                                OpKind::Const1
                            } else {
                                OpKind::Const0
                            },
                        },
                        Component::Maj { fanins } => ArenaOp {
                            a: slot(fanins[0]),
                            b: slot(fanins[1]),
                            c: slot(fanins[2]),
                            kind: OpKind::Maj,
                        },
                        Component::Inv { fanin } => ArenaOp {
                            a: slot(*fanin),
                            b: 0,
                            c: 0,
                            kind: OpKind::Inv,
                        },
                        // Copy elision: BUF and FOG are the identity,
                        // so the component aliases its (resolved)
                        // source slot and emits no op at all.
                        Component::Buf { fanin } | Component::Fog { fanin } => {
                            self.slot_of[id.index()] = slot(*fanin);
                            self.dfs_stack.pop();
                            continue;
                        }
                    };
                    self.slot_of[id.index()] = self.ops.len() as u32;
                    self.ops.push(op);
                    self.dfs_stack.pop();
                }
            }
        }

        self.outputs.extend(
            netlist
                .outputs()
                .iter()
                .map(|p| self.slot_of[p.driver.index()]),
        );
        Ok(())
    }

    /// Number of evaluation slots — at most the component count, and
    /// strictly less whenever copy elision removed BUF/FOG cells.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Component count of the netlist this arena was flattened from.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Primary-input count the arena expects per block.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Primary-output count the arena produces per block.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Evaluates one 64-lane block, allocating the result — the
    /// convenience face of [`EvalArena::eval_wide_into`].
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len()` differs from the input count.
    pub fn eval_words(&self, pattern: &[u64]) -> Vec<u64> {
        let mut values = Vec::new();
        let mut out = Vec::new();
        self.eval_wide_into(pattern, 1, &mut values, &mut out);
        out
    }

    /// Replays the arena on `width` 64-lane blocks: `pattern[i * width
    /// + j]` is word `j` of input `i`; word `j` of output `o` lands at
    /// `out[o * width + j]`. `values` is per-slot scratch (resized and
    /// overwritten — hand the same buffer back on every call and the
    /// sweep allocates nothing); `out` is cleared and filled.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `pattern.len() != input_count() *
    /// width`.
    pub fn eval_wide_into(
        &self,
        pattern: &[u64],
        width: usize,
        values: &mut Vec<u64>,
        out: &mut Vec<u64>,
    ) {
        assert!(width > 0, "a wide evaluation needs at least one block");
        assert_eq!(
            pattern.len(),
            self.inputs * width,
            "pattern width must match the input count"
        );
        values.clear();
        values.resize(self.ops.len() * width, 0);
        out.clear();
        out.resize(self.outputs.len() * width, 0);
        match width {
            1 => self.kernel::<1>(pattern, values, out),
            2 => self.kernel::<2>(pattern, values, out),
            4 => self.kernel::<4>(pattern, values, out),
            8 => self.kernel::<8>(pattern, values, out),
            _ => self.kernel_any(pattern, width, values, out),
        }
    }

    /// The width-monomorphized kernel: `W` is compile-time, every
    /// operand is a `&[u64; W]` subslice (one bounds check per operand,
    /// not per lane), so the lane loops unroll and vectorize.
    fn kernel<const W: usize>(&self, pattern: &[u64], values: &mut [u64], out: &mut [u64]) {
        for (slot, op) in self.ops.iter().enumerate() {
            // Operand slots are strictly below `slot`, so the split
            // separates the write target from every read source.
            let (lo, hi) = values.split_at_mut(slot * W);
            let dst: &mut [u64; W] = (&mut hi[..W]).try_into().expect("W words per slot");
            let src = |s: u32| -> &[u64; W] {
                let s0 = s as usize * W;
                (&lo[s0..s0 + W]).try_into().expect("W words per slot")
            };
            match op.kind {
                OpKind::Input => {
                    let s = op.a as usize * W;
                    dst.copy_from_slice(&pattern[s..s + W]);
                }
                OpKind::Const0 => *dst = [0; W],
                OpKind::Const1 => *dst = [!0; W],
                OpKind::Maj => {
                    let (a, b, c) = (src(op.a), src(op.b), src(op.c));
                    for j in 0..W {
                        dst[j] = a[j] & b[j] | a[j] & c[j] | b[j] & c[j];
                    }
                }
                OpKind::Inv => {
                    let a = src(op.a);
                    for j in 0..W {
                        dst[j] = !a[j];
                    }
                }
            }
        }
        for (o, &s) in self.outputs.iter().enumerate() {
            let s0 = s as usize * W;
            out[o * W..o * W + W].copy_from_slice(&values[s0..s0 + W]);
        }
    }

    /// Runtime-width fallback for widths without a monomorphized kernel.
    fn kernel_any(&self, pattern: &[u64], w: usize, values: &mut [u64], out: &mut [u64]) {
        for (slot, op) in self.ops.iter().enumerate() {
            let t = slot * w;
            match op.kind {
                OpKind::Input => {
                    let s = op.a as usize * w;
                    values[t..t + w].copy_from_slice(&pattern[s..s + w]);
                }
                OpKind::Const0 => values[t..t + w].fill(0),
                OpKind::Const1 => values[t..t + w].fill(!0),
                OpKind::Maj => {
                    let (a0, b0, c0) = (op.a as usize * w, op.b as usize * w, op.c as usize * w);
                    for j in 0..w {
                        let a = values[a0 + j];
                        let b = values[b0 + j];
                        let c = values[c0 + j];
                        values[t + j] = a & b | a & c | b & c;
                    }
                }
                OpKind::Inv => {
                    let a0 = op.a as usize * w;
                    for j in 0..w {
                        values[t + j] = !values[a0 + j];
                    }
                }
            }
        }
        for (o, &s) in self.outputs.iter().enumerate() {
            let s0 = s as usize * w;
            out[o * w..o * w + w].copy_from_slice(&values[s0..s0 + w]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow_netlist() -> Netlist {
        let mut g = mig::Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let cin = g.add_input("cin");
        let (s, c) = g.add_full_adder(a, b, cin);
        g.add_output("s", s);
        g.add_output("c", c);
        let mut n = crate::from_mig::netlist_from_mig(&g);
        crate::fanout_restriction::restrict_fanout(&mut n, 3);
        crate::buffer_insertion::insert_buffers(&mut n);
        n
    }

    #[test]
    fn arena_agrees_with_the_prepared_reference_kernel() {
        let n = flow_netlist();
        let arena = EvalArena::try_new(&n).unwrap();
        assert_eq!(arena.component_count(), n.len());
        assert!(
            arena.len() < n.len(),
            "copy elision must shrink a buffered netlist ({} vs {})",
            arena.len(),
            n.len()
        );
        assert_eq!(arena.input_count(), 3);
        assert_eq!(arena.output_count(), 2);
        let order = n.try_topo_order().unwrap();
        let mut scratch = vec![0u64; n.len()];
        for seed in 0..8u64 {
            let pattern: Vec<u64> = (0..3)
                .map(|i| {
                    (seed + 1)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left(i * 17)
                })
                .collect();
            assert_eq!(
                arena.eval_words(&pattern),
                n.eval_words_prepared(&pattern, &order, &mut scratch),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn wide_kernels_agree_with_narrow_blocks() {
        let n = flow_netlist();
        let arena = EvalArena::try_new(&n).unwrap();
        let mut values = Vec::new();
        let mut out = Vec::new();
        for width in [2usize, 4, 5, 8] {
            let pattern: Vec<u64> = (0..3 * width)
                .map(|k| (k as u64 + 3).wrapping_mul(0xA076_1D64_78BD_642F))
                .collect();
            arena.eval_wide_into(&pattern, width, &mut values, &mut out);
            for j in 0..width {
                let block: Vec<u64> = (0..3).map(|i| pattern[i * width + j]).collect();
                let narrow = arena.eval_words(&block);
                for (o, &w) in narrow.iter().enumerate() {
                    assert_eq!(
                        w,
                        out[o * width + j],
                        "width {width}, block {j}, output {o}"
                    );
                }
            }
        }
    }

    #[test]
    fn rebuild_reuses_buffers_and_tracks_the_netlist() {
        let mut n = Netlist::new("grow");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let k0 = n.add_const(false);
        let g = n.add_maj([a, b, k0]);
        n.add_output("f", g);
        let mut arena = EvalArena::try_new(&n).unwrap();
        assert_eq!(arena.eval_words(&[0b11, 0b01]), vec![0b01]);

        // Mutate the netlist: the arena must pick the change up on
        // rebuild, not before.
        let inv = n.add_inv(g);
        n.set_output_driver(0, inv);
        arena.try_rebuild(&n).unwrap();
        assert_eq!(arena.component_count(), n.len());
        assert_eq!(arena.eval_words(&[0b11, 0b01]), vec![!0b01]);
    }

    #[test]
    fn cycles_surface_as_errors() {
        let mut n = Netlist::new("cyc");
        let a = n.add_input("a");
        let b1 = n.add_buf(a);
        let b2 = n.add_buf(b1);
        n.component_mut(b1).fanins_mut()[0] = b2;
        n.add_output("f", b2);
        assert!(matches!(
            EvalArena::try_new(&n),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }
}
