//! Cycle-accurate simulation of three-phase wave pipelining (Fig 4).
//!
//! Every component is a non-volatile cell that *stores* its value; the
//! regeneration clock has three phases and a cell at level `ℓ` re-evaluates
//! whenever the phase `ℓ mod 3` fires. A new input wave is injected every
//! 3 phase steps, so `⌈d/3⌉` waves travel through a depth-`d` netlist
//! simultaneously.
//!
//! On a **balanced** netlist (every edge spans one level) each cell reads
//! fan-ins that were written exactly one phase earlier and remain stable
//! for the next two phases — waves propagate coherently and the output
//! stream equals the combinational function of the input stream. On an
//! unbalanced netlist a cell reads data from the *wrong wave*; the
//! simulator reproduces that corruption faithfully, which is how the
//! tests demonstrate the necessity of buffer insertion.
//!
//! Simulation is **bit-parallel and block-wide**: the core run path
//! ([`WaveSimulator::run_wide`]) packs `64 * width` independent wave
//! *streams* into `width` adjacent `u64` words per cell, so one
//! phase-step update advances them all at once over flattened,
//! pre-typed per-phase op lists. [`WaveSimulator::run_words`] is the
//! one-word case and the scalar [`WaveSimulator::run`] a single-lane
//! wrapper over that, which is what guarantees the paths can never
//! disagree.

use crate::component::{Component, ComponentKind};
use crate::netlist::Netlist;

/// What a firing cell computes during a phase step. Unlike the
/// combinational [`crate::EvalArena`], BUF/FOG cells stay explicit:
/// in wave pipelining a buffer *is* state — it carries a wave for one
/// phase — so nothing can be elided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WaveOpKind {
    /// Inject word `a` of the current wave (an input position).
    Input,
    /// Constant 0 (re-asserted, though it never changes).
    Const0,
    /// Constant 1.
    Const1,
    /// Majority of cells `a`, `b`, `c`.
    Maj,
    /// Complement of cell `a`.
    Inv,
    /// Copy of cell `a` (BUF and FOG cells).
    Copy,
}

/// One flattened phase-step update: `target` is the cell's component
/// index in the state vector, operands are component indices (except
/// [`WaveOpKind::Input`], whose `a` is an input position).
#[derive(Clone, Copy, Debug)]
struct WaveOp {
    target: u32,
    a: u32,
    b: u32,
    c: u32,
    kind: WaveOpKind,
}

/// Result of a scalar wave-pipelined simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaveRun {
    /// One output vector per injected input wave, in injection order.
    pub outputs: Vec<Vec<bool>>,
    /// Netlist depth used for output sampling.
    pub depth: u32,
    /// Total phase steps simulated.
    pub phase_steps: usize,
}

/// Result of a bit-parallel wave-pipelined simulation run: every `u64`
/// packs the same wave position of 64 *independent* streams (lane `k`
/// of every word belongs to stream `k`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaveWordRun {
    /// One word per primary output per injected wave, in injection
    /// order (`outputs[w][o]`, bit `k` = stream `k`).
    pub outputs: Vec<Vec<u64>>,
    /// Netlist depth used for output sampling.
    pub depth: u32,
    /// Total phase steps simulated.
    pub phase_steps: usize,
}

/// Result of an N-word-block wave-pipelined simulation run
/// ([`WaveSimulator::run_wide`]): `width` 64-lane words per cell, so
/// one run carries `64 * width` independent streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaveWideRun {
    /// Per injected wave, `width` words per primary output in the
    /// [`crate::EvalArena::eval_wide_into`] layout: word `j` of output
    /// `o` is `outputs[w][o * width + j]`; bit `k` of word `j` belongs
    /// to stream `64 * j + k`.
    pub outputs: Vec<Vec<u64>>,
    /// Words per cell (the block width).
    pub width: usize,
    /// Netlist depth used for output sampling.
    pub depth: u32,
    /// Total phase steps simulated.
    pub phase_steps: usize,
}

/// Three-phase wave-pipelined simulator.
///
/// # Examples
///
/// ```
/// use wavepipe::{insert_buffers, Netlist, WaveSimulator};
///
/// let mut n = Netlist::new("maj");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let c = n.add_input("c");
/// let g = n.add_maj([a, b, c]);
/// n.add_output("f", g);
/// insert_buffers(&mut n);
///
/// let waves = vec![
///     vec![true, true, false],
///     vec![false, true, false],
///     vec![true, false, true],
/// ];
/// let run = WaveSimulator::new(&n).run(&waves);
/// assert_eq!(run.outputs[0], vec![true]);
/// assert_eq!(run.outputs[1], vec![false]);
/// assert_eq!(run.outputs[2], vec![true]);
/// ```
#[derive(Debug)]
pub struct WaveSimulator<'n> {
    netlist: &'n Netlist,
    levels: Vec<u32>,
    /// Flattened updates grouped by firing phase (`level % 3`): each
    /// phase step touches only the third of the netlist that actually
    /// re-evaluates, and does so through typed ops with pre-resolved
    /// operand indices instead of re-matching `Component` payloads on
    /// every step of every run.
    phase_ops: [Vec<WaveOp>; 3],
}

impl<'n> WaveSimulator<'n> {
    /// Creates a simulator for `netlist` (levels and the per-phase
    /// flattened update lists are computed once).
    pub fn new(netlist: &'n Netlist) -> WaveSimulator<'n> {
        let levels = netlist.levels();
        let mut phase_ops: [Vec<WaveOp>; 3] = Default::default();
        for id in netlist.ids() {
            let target = id.index() as u32;
            let op = match netlist.component(id) {
                Component::Input { position } => WaveOp {
                    target,
                    a: *position,
                    b: 0,
                    c: 0,
                    kind: WaveOpKind::Input,
                },
                Component::Const { value } => WaveOp {
                    target,
                    a: 0,
                    b: 0,
                    c: 0,
                    kind: if *value {
                        WaveOpKind::Const1
                    } else {
                        WaveOpKind::Const0
                    },
                },
                Component::Maj { fanins } => WaveOp {
                    target,
                    a: fanins[0].index() as u32,
                    b: fanins[1].index() as u32,
                    c: fanins[2].index() as u32,
                    kind: WaveOpKind::Maj,
                },
                Component::Inv { fanin } => WaveOp {
                    target,
                    a: fanin.index() as u32,
                    b: 0,
                    c: 0,
                    kind: WaveOpKind::Inv,
                },
                Component::Buf { fanin } | Component::Fog { fanin } => WaveOp {
                    target,
                    a: fanin.index() as u32,
                    b: 0,
                    c: 0,
                    kind: WaveOpKind::Copy,
                },
            };
            phase_ops[(levels[id.index()] % 3) as usize].push(op);
        }
        WaveSimulator {
            netlist,
            levels,
            phase_ops,
        }
    }

    /// Streams `waves` through the netlist, injecting one input vector
    /// every 3 phase steps, and samples one output vector per wave.
    ///
    /// All cells start at logic 0 (non-volatile cells power up with
    /// whatever they last stored; 0 is the conventional reset). The
    /// returned outputs are aligned with the injected waves: entry `w`
    /// is sampled `depth` phase steps after wave `w` was injected.
    ///
    /// A single-lane wrapper over [`WaveSimulator::run_words`].
    ///
    /// # Panics
    ///
    /// Panics if any wave's width differs from the netlist input count,
    /// or if the netlist's non-constant outputs sit at different levels
    /// (wave sampling is only meaningful for aligned outputs — run
    /// buffer insertion first; [`crate::verify_balance`] diagnoses this).
    pub fn run(&self, waves: &[Vec<bool>]) -> WaveRun {
        let packed: Vec<Vec<u64>> = waves
            .iter()
            .map(|w| w.iter().map(|&b| if b { !0 } else { 0 }).collect())
            .collect();
        let run = self.run_words(&packed);
        WaveRun {
            outputs: run
                .outputs
                .into_iter()
                .map(|wave| wave.into_iter().map(|w| w & 1 != 0).collect())
                .collect(),
            depth: run.depth,
            phase_steps: run.phase_steps,
        }
    }

    /// Streams 64 independent wave sequences at once: bit `k` of
    /// `waves[w][i]` is the value of input `i` in wave `w` of stream
    /// `k`. One phase-step update advances all 64 streams, so checking
    /// a netlist's streaming behaviour over 64 random stimuli costs one
    /// scalar-run's worth of work.
    ///
    /// # Panics
    ///
    /// As [`WaveSimulator::run`].
    pub fn run_words(&self, waves: &[Vec<u64>]) -> WaveWordRun {
        let run = self.run_wide(waves, 1);
        WaveWordRun {
            outputs: run.outputs,
            depth: run.depth,
            phase_steps: run.phase_steps,
        }
    }

    /// Streams `64 * width` independent wave sequences at once: word
    /// `j` of input `i` in wave `w` is `waves[w][i * width + j]`, and
    /// each of its 64 lanes is one stream. One phase-step update
    /// advances every stream, walking the flattened per-phase op lists
    /// with `width` adjacent words per cell.
    /// [`WaveSimulator::run_words`] is the `width == 1` case.
    ///
    /// # Panics
    ///
    /// As [`WaveSimulator::run`], plus `width == 0`.
    pub fn run_wide(&self, waves: &[Vec<u64>], width: usize) -> WaveWideRun {
        let n = self.netlist;
        assert!(width > 0, "a wide wave run needs at least one block");
        for w in waves {
            assert_eq!(
                w.len(),
                n.inputs().len() * width,
                "wave width must match input count times block width"
            );
        }
        let depth = self.common_output_level();

        // Simulate until the last wave has fully drained.
        let total_steps = 3 * waves.len().saturating_sub(1) + depth as usize + 1;
        let mut state = vec![0u64; n.len() * width];
        // Pre-load constant cells; they never change (all lanes share
        // the constant).
        for op in self.phase_ops.iter().flatten() {
            if op.kind == WaveOpKind::Const1 {
                state[op.target as usize * width..][..width].fill(!0);
            }
        }

        // One scratch buffer reused across all steps: same-phase cells
        // latch simultaneously, so each step computes every firing
        // cell's next value against the pre-step state and only then
        // commits — without cloning the full state vector per step.
        let scratch_len = self.phase_ops.iter().map(Vec::len).max().unwrap_or(0) * width;
        let mut scratch: Vec<u64> = Vec::with_capacity(scratch_len);
        let mut outputs: Vec<Vec<u64>> = Vec::with_capacity(waves.len());
        for t in 0..total_steps {
            let firing = &self.phase_ops[t % 3];
            scratch.clear();
            for op in firing {
                match op.kind {
                    WaveOpKind::Input => {
                        // Inputs fire at phase 0 (level 0): inject the
                        // next wave, or hold the last value when the
                        // stream is exhausted.
                        match waves.get(t / 3) {
                            Some(w) => {
                                scratch.extend_from_slice(&w[op.a as usize * width..][..width]);
                            }
                            None => {
                                let s = op.target as usize * width;
                                scratch.extend_from_slice(&state[s..s + width]);
                            }
                        }
                    }
                    WaveOpKind::Const0 => scratch.extend(std::iter::repeat_n(0, width)),
                    WaveOpKind::Const1 => scratch.extend(std::iter::repeat_n(!0u64, width)),
                    WaveOpKind::Maj => {
                        let (a0, b0, c0) = (
                            op.a as usize * width,
                            op.b as usize * width,
                            op.c as usize * width,
                        );
                        for j in 0..width {
                            let a = state[a0 + j];
                            let b = state[b0 + j];
                            let c = state[c0 + j];
                            scratch.push(a & b | a & c | b & c);
                        }
                    }
                    WaveOpKind::Inv => {
                        let a0 = op.a as usize * width;
                        for j in 0..width {
                            scratch.push(!state[a0 + j]);
                        }
                    }
                    WaveOpKind::Copy => {
                        let a0 = op.a as usize * width;
                        scratch.extend_from_slice(&state[a0..a0 + width]);
                    }
                }
            }
            for (op, chunk) in firing.iter().zip(scratch.chunks_exact(width)) {
                state[op.target as usize * width..][..width].copy_from_slice(chunk);
            }

            // Sample outputs: wave w reaches level `depth` at step
            // 3w + depth; sampling happens after that step's update.
            let d = depth as usize;
            if t >= d && (t - d).is_multiple_of(3) {
                let wave_index = (t - d) / 3;
                if wave_index < waves.len() {
                    debug_assert_eq!(outputs.len(), wave_index);
                    let mut sample = Vec::with_capacity(n.outputs().len() * width);
                    for p in n.outputs() {
                        let s = p.driver.index() * width;
                        sample.extend_from_slice(&state[s..s + width]);
                    }
                    outputs.push(sample);
                }
            }
        }

        WaveWideRun {
            outputs,
            width,
            depth,
            phase_steps: total_steps,
        }
    }

    /// Runs the wave simulation and compares each output wave against
    /// the combinational golden model; returns the indices of corrupted
    /// waves (empty = coherent streaming).
    ///
    /// A single-lane wrapper over
    /// [`WaveSimulator::check_against_golden_words`]: a broadcast-packed
    /// wave carries identical bits in all 64 lanes through both the
    /// streaming and the golden path, so the scalar verdict is the word
    /// verdict.
    pub fn check_against_golden(&self, waves: &[Vec<bool>]) -> Vec<usize> {
        let packed: Vec<Vec<u64>> = waves
            .iter()
            .map(|w| w.iter().map(|&b| if b { !0 } else { 0 }).collect())
            .collect();
        self.check_against_golden_words(&packed)
    }

    /// Word-level [`WaveSimulator::check_against_golden`]: streams 64
    /// independent stimuli at once and compares every wave of every
    /// lane against the bit-parallel combinational golden model
    /// ([`Netlist::eval_words`], evaluated through one prepared
    /// [`crate::verify::NetlistFunction`] for the whole stream).
    /// Returns the indices of waves on which *any* lane diverged.
    pub fn check_against_golden_words(&self, waves: &[Vec<u64>]) -> Vec<usize> {
        let run = self.run_words(waves);
        let mut golden =
            crate::verify::NetlistFunction::new(self.netlist).expect("levels() proved acyclicity");
        waves
            .iter()
            .enumerate()
            .filter(|(i, w)| run.outputs[*i] != golden.eval_words(w))
            .map(|(i, _)| i)
            .collect()
    }

    fn common_output_level(&self) -> u32 {
        let n = self.netlist;
        let mut level = None;
        for p in n.outputs() {
            if n.component(p.driver).kind() == ComponentKind::Const {
                continue;
            }
            let l = self.levels[p.driver.index()];
            match level {
                None => level = Some(l),
                Some(prev) => assert_eq!(
                    prev, l,
                    "outputs at different levels; balance the netlist before wave simulation"
                ),
            }
        }
        level.unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer_insertion::insert_buffers;
    use crate::from_mig::netlist_from_mig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_waves(inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| (0..inputs).map(|_| rng.gen()).collect())
            .collect()
    }

    /// Full adder, mapped and balanced.
    fn balanced_adder() -> Netlist {
        let mut g = mig::Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("cin");
        let (s, cy) = g.add_full_adder(a, b, c);
        g.add_output("s", s);
        g.add_output("cy", cy);
        let mut n = netlist_from_mig(&g);
        insert_buffers(&mut n);
        n
    }

    #[test]
    fn balanced_netlist_streams_coherently() {
        let n = balanced_adder();
        let sim = WaveSimulator::new(&n);
        let waves = random_waves(3, 20, 7);
        let corrupted = sim.check_against_golden(&waves);
        assert!(corrupted.is_empty(), "corrupted waves: {corrupted:?}");
    }

    #[test]
    fn single_wave_works() {
        let n = balanced_adder();
        let sim = WaveSimulator::new(&n);
        let waves = vec![vec![true, true, true]];
        let run = sim.run(&waves);
        assert_eq!(run.outputs.len(), 1);
        assert_eq!(run.outputs[0], n.eval(&waves[0]));
    }

    #[test]
    fn empty_stream_is_fine() {
        let n = balanced_adder();
        let run = WaveSimulator::new(&n).run(&[]);
        assert!(run.outputs.is_empty());
    }

    #[test]
    fn unbalanced_netlist_corrupts_waves() {
        // Non-volatile cells hold a value for a full 3-phase window, so
        // small skews are absorbed; once a path-length spread reaches 3
        // levels, a consumer reads the *next* wave through its short
        // path. Here g4 (level 4) reads input `a` directly (gap 4): at
        // the moment g4 computes wave w, `a` already stores wave w+1.
        let mut n = Netlist::new("skew");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_maj([a, b, c]);
        let g2 = n.add_maj([g1, b, c]);
        let g3 = n.add_maj([g2, b, c]);
        let g4 = n.add_maj([g3, a, a]); // = `a`, read through a gap-4 edge
        n.add_output("f", g4);

        let sim = WaveSimulator::new(&n);
        // `a` alternates every wave, so a one-wave-late read always
        // differs from the golden value.
        let waves: Vec<Vec<bool>> = (0..16)
            .map(|i| vec![i % 2 == 0, i % 2 == 1, i % 4 < 2])
            .collect();
        let corrupted = sim.check_against_golden(&waves);
        assert!(
            !corrupted.is_empty(),
            "an unbalanced netlist must corrupt some wave"
        );

        // After balancing, the same stream is clean.
        let mut balanced = n.clone();
        insert_buffers(&mut balanced);
        let clean = WaveSimulator::new(&balanced).check_against_golden(&waves);
        assert!(clean.is_empty());
    }

    #[test]
    fn small_skew_is_absorbed_by_the_phase_window() {
        // A spread of 1 level does not corrupt under three-phase
        // clocking (the stored value survives the window) — this is why
        // the paper's constraint is "approximately the same delay"; the
        // balancing still matters for spreads ≥ 3 and for output
        // alignment.
        let mut n = Netlist::new("mild");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_maj([a, b, c]);
        let g2 = n.add_maj([g1, a, b]); // gap-2 edge from `a`
        n.add_output("f", g2);
        let waves: Vec<Vec<bool>> = (0..12)
            .map(|i| vec![i % 2 == 0, i % 3 == 1, i % 4 < 2])
            .collect();
        let corrupted = WaveSimulator::new(&n).check_against_golden(&waves);
        assert!(corrupted.is_empty());
    }

    #[test]
    fn waves_in_flight_match_depth_over_three() {
        // A deep buffered chain: depth 9 → 3 waves in flight.
        let mut n = Netlist::new("deep");
        let a = n.add_input("a");
        let mut cur = a;
        for _ in 0..9 {
            cur = n.add_buf(cur);
        }
        n.add_output("f", cur);
        let sim = WaveSimulator::new(&n);
        let waves = random_waves(1, 10, 3);
        let run = sim.run(&waves);
        assert_eq!(run.depth, 9);
        assert_eq!(run.outputs.len(), 10);
        for (w, out) in waves.iter().zip(&run.outputs) {
            assert_eq!(out, &vec![w[0]], "buffer chain is the identity");
        }
    }

    #[test]
    fn word_run_lanes_agree_with_scalar_runs() {
        let n = balanced_adder();
        let sim = WaveSimulator::new(&n);
        // 64 independent random streams of 6 waves each, packed.
        let mut rng = StdRng::seed_from_u64(21);
        let word_waves: Vec<Vec<u64>> = (0..6)
            .map(|_| (0..3).map(|_| rng.gen()).collect())
            .collect();
        let word_run = sim.run_words(&word_waves);
        for lane in [0usize, 1, 17, 63] {
            let scalar_waves: Vec<Vec<bool>> = word_waves
                .iter()
                .map(|w| w.iter().map(|word| word >> lane & 1 != 0).collect())
                .collect();
            let scalar_run = sim.run(&scalar_waves);
            assert_eq!(scalar_run.depth, word_run.depth);
            for (w, out) in scalar_run.outputs.iter().enumerate() {
                let unpacked: Vec<bool> = word_run.outputs[w]
                    .iter()
                    .map(|word| word >> lane & 1 != 0)
                    .collect();
                assert_eq!(out, &unpacked, "lane {lane}, wave {w}");
            }
        }
        assert!(sim.check_against_golden_words(&word_waves).is_empty());
    }

    #[test]
    fn wide_run_blocks_agree_with_word_runs() {
        let n = balanced_adder();
        let sim = WaveSimulator::new(&n);
        let mut rng = StdRng::seed_from_u64(33);
        for width in [2usize, 3, 8] {
            // 6 waves of `width` packed blocks over 3 inputs.
            let wide_waves: Vec<Vec<u64>> = (0..6)
                .map(|_| (0..3 * width).map(|_| rng.gen()).collect())
                .collect();
            let wide = sim.run_wide(&wide_waves, width);
            assert_eq!(wide.width, width);
            for j in 0..width {
                let word_waves: Vec<Vec<u64>> = wide_waves
                    .iter()
                    .map(|w| (0..3).map(|i| w[i * width + j]).collect())
                    .collect();
                let word = sim.run_words(&word_waves);
                assert_eq!(word.depth, wide.depth);
                for (w, out) in word.outputs.iter().enumerate() {
                    let sliced: Vec<u64> = (0..out.len())
                        .map(|o| wide.outputs[w][o * width + j])
                        .collect();
                    assert_eq!(out, &sliced, "width {width}, block {j}, wave {w}");
                }
            }
        }
    }

    #[test]
    fn mapped_random_mig_streams_after_full_flow() {
        let g = mig::random_mig(mig::RandomMigConfig {
            inputs: 10,
            outputs: 5,
            gates: 200,
            depth: 10,
            seed: 5,
        });
        let mut n = netlist_from_mig(&g);
        crate::fanout_restriction::restrict_fanout(&mut n, 3);
        insert_buffers(&mut n);
        let waves = random_waves(10, 30, 11);
        let corrupted = WaveSimulator::new(&n).check_against_golden(&waves);
        assert!(corrupted.is_empty(), "corrupted: {corrupted:?}");
    }

    #[test]
    #[should_panic(expected = "balance the netlist")]
    fn misaligned_outputs_panic() {
        let mut n = Netlist::new("mis");
        let a = n.add_input("a");
        let buf = n.add_buf(a);
        n.add_output("x", a);
        n.add_output("y", buf);
        let _ = WaveSimulator::new(&n).run(&[vec![true]]);
    }
}
