//! Incremental (ECO) execution: per-output-cone caching, dirty-region
//! re-execution and whole-result splicing.
//!
//! An [`IncrementalSession`] (created by [`Engine::incremental`]) holds
//! an editable [`Mig`] plus its pipeline configuration on top of a
//! shared [`Engine`]. Every [`IncrementalSession::run`]:
//!
//! 1. decomposes the graph into per-output content-hashed cones
//!    ([`mig::cone`]) and diffs the level-band subhashes against the
//!    previous run (the *where in the depth profile did it change*
//!    telemetry);
//! 2. looks each **unique** cone hash up in the engine's tiered cache
//!    (in-memory LRU, then the persistent disk tier) under a
//!    cone-scoped key — only cones with no cached run are extracted
//!    ([`mig::extract_cone`]) and re-executed through the pipeline, in
//!    parallel;
//! 3. **splices** the per-cone runs back into one whole-circuit
//!    [`PipelineRun`]: region netlists are instantiated per output,
//!    output drivers are padded with buffers to the common depth, and
//!    the instrumentation trace is re-aggregated (wall-clock fields are
//!    zeroed, so a spliced run is a *deterministic* function of its
//!    region runs — warm and cold incremental runs are bit-identical);
//! 4. optionally gates the splice with the differential-verification
//!    engine ([`differential::check`]) against the current graph, and
//!    caches the merged result under a whole-graph `spliced` key so an
//!    unchanged graph re-runs in one lookup.
//!
//! So a one-output ECO edit on a large circuit re-runs one cone, not
//! the whole flow — the [engine](crate::engine) counts it in
//! [`crate::EngineStats::cones_recomputed`] against
//! [`crate::EngineStats::cones_reused`].
//!
//! ## What a spliced run is (and is not)
//!
//! Each output's logic is instantiated *per cone*, so logic shared
//! between outputs in the source graph is **duplicated** in the spliced
//! netlist, and primary inputs feeding many cones can exceed the
//! fan-out limit the per-cone runs enforce internally. A spliced run is
//! therefore functionally equivalent to the monolithic flow (gate it
//! with [`IncrementalSession::with_verification`] to prove that every
//! run) and balanced to a common depth, but not structurally identical
//! to the whole-circuit run — it is the ECO trade: locality of
//! recomputation for sharing.
//!
//! Weighted and cost-aware pipeline variants
//! ([`BufferStrategy::Weighted`], [`BufferStrategy::CostAware`],
//! cost-aware fan-out restriction and verification) are rejected with
//! [`IncrementalError::Unsupported`]: their balance targets are global
//! properties that unit-depth splicing cannot preserve.
//!
//! ```
//! use wavepipe::{BufferStrategy, Engine, EngineEdit, PipelineSpec};
//!
//! # fn main() -> Result<(), wavepipe::IncrementalError> {
//! let mut g = mig::Mig::with_name("demo");
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let c = g.add_input("c");
//! let (sum, cout) = g.add_full_adder(a, b, c);
//! g.add_output("sum", sum);
//! g.add_output("cout", cout);
//!
//! let engine = Engine::new();
//! let pipeline = PipelineSpec::map(false)
//!     .restrict_fanout(3)
//!     .insert_buffers(BufferStrategy::Asap)
//!     .verify(Some(3));
//! let mut session = engine.incremental(g, pipeline);
//!
//! let cold = session.run()?;
//! assert_eq!(cold.cones, 2);
//!
//! // Rewire one output: only its cone is re-executed.
//! session.apply(EngineEdit::RewireOutput {
//!     position: 0,
//!     signal: !sum,
//! })?;
//! let warm = session.run()?;
//! assert_eq!(warm.cones_recomputed, 1);
//! assert_eq!(warm.cones_reused, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use mig::cone::ConePartition;
use mig::{EquivalencePolicy, Mig, Signal, DEFAULT_BAND_WIDTH};
use rayon::prelude::*;

use crate::component::{CompId, ComponentKind};
use crate::cost::CostTable;
use crate::engine::{CacheKey, Engine, Scope, COST_BLIND};
use crate::flow::FlowResult;
use crate::netlist::{KindCounts, Netlist};
use crate::pipeline::{BufferStrategy, PassError, PassStats, PipelineError, PipelineRun};
use crate::spec::{PassSpec, PipelineSpec, SpecError};
use crate::verify::differential;
use crate::{BalanceReport, BufferInsertion, FanoutRestriction, PricedDelta};

/// The synthetic trace record appended by the splice stage.
pub const SPLICE_PASS: &str = "cone_splice";

/// One ECO edit against an [`IncrementalSession`]'s graph or
/// configuration.
#[derive(Clone, Debug)]
pub enum EngineEdit {
    /// Adds a majority gate over three existing signals; when `output`
    /// is set, the gate also becomes a new primary output under that
    /// name. Without an output binding the gate is *dead* until a later
    /// [`EngineEdit::RewireOutput`] points at it — and dead logic never
    /// dirties a cone.
    AddGate {
        /// First fan-in signal.
        a: Signal,
        /// Second fan-in signal.
        b: Signal,
        /// Third fan-in signal.
        c: Signal,
        /// Optional output name to bind the new gate to.
        output: Option<String>,
    },
    /// Redirects an existing primary output to another signal.
    RewireOutput {
        /// Output position in declaration order.
        position: usize,
        /// The new driving signal.
        signal: Signal,
    },
    /// Removes a primary output (later outputs shift down one
    /// position).
    RemoveOutput {
        /// Output position in declaration order.
        position: usize,
    },
    /// Swaps the technology cost model the session prices against
    /// (`None` returns to cost-blind execution). Cached runs priced
    /// under other models are keyed separately and stay valid.
    SwapTechnology {
        /// The new cost model, if any.
        model: Option<CostTable>,
    },
    /// Toggles one pass of the session's pipeline spec on or off (by
    /// index into [`PipelineSpec::passes`]). Toggling twice restores
    /// the original configuration — and its cache key.
    TogglePass {
        /// Pass index in the session's pipeline spec.
        index: usize,
    },
}

/// Why an incremental run (or edit) failed.
#[derive(Debug)]
pub enum IncrementalError {
    /// The effective pipeline spec failed validation.
    Spec(SpecError),
    /// The effective pass list is ill-ordered.
    Pipeline(PipelineError),
    /// The session's configuration cannot run incrementally (weighted /
    /// cost-aware balancing, or a graph with no outputs).
    Unsupported(String),
    /// An edit referenced a node, output or pass that does not exist.
    InvalidEdit(String),
    /// One cone's pipeline run failed.
    ConeFailed {
        /// Output position of the failing cone.
        output: usize,
        /// Output name of the failing cone.
        name: String,
        /// The underlying pass failure.
        error: PassError,
    },
    /// The differential gate could not compare the spliced result.
    Differential(differential::DifferentialError),
    /// The differential gate found the spliced result functionally
    /// diverging from the session graph.
    Diverged(differential::Counterexample),
}

impl fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncrementalError::Spec(e) => write!(f, "{e}"),
            IncrementalError::Pipeline(e) => write!(f, "{e}"),
            IncrementalError::Unsupported(what) => {
                write!(f, "unsupported incremental configuration: {what}")
            }
            IncrementalError::InvalidEdit(what) => write!(f, "invalid edit: {what}"),
            IncrementalError::ConeFailed {
                output,
                name,
                error,
            } => write!(f, "cone {output} (`{name}`) failed: {error}"),
            IncrementalError::Differential(e) => {
                write!(f, "differential gate failed to run: {e}")
            }
            IncrementalError::Diverged(cex) => {
                write!(f, "spliced result diverged from the graph: {cex}")
            }
        }
    }
}

impl std::error::Error for IncrementalError {}

impl From<SpecError> for IncrementalError {
    fn from(e: SpecError) -> IncrementalError {
        IncrementalError::Spec(e)
    }
}

impl From<PipelineError> for IncrementalError {
    fn from(e: PipelineError) -> IncrementalError {
        IncrementalError::Pipeline(e)
    }
}

/// Everything one [`IncrementalSession::run`] produced.
#[derive(Clone, Debug)]
pub struct IncrementalOutcome {
    /// The spliced whole-circuit run (shared with the engine cache).
    pub run: Arc<PipelineRun>,
    /// Output cones in the graph (= primary outputs).
    pub cones: usize,
    /// Distinct cone content hashes among them (shared hashes execute
    /// once and splice per output).
    pub unique_cones: usize,
    /// Unique cones answered from the cache.
    pub cones_reused: u64,
    /// Unique cones that were (re-)executed.
    pub cones_recomputed: u64,
    /// `true` when the whole merged result was answered from the
    /// `spliced`-scope cache without touching any cone.
    pub spliced_reused: bool,
    /// Level bands whose subhash changed since the previous run of this
    /// session (`None` on the first run — nothing to diff against).
    pub dirty_bands: Option<Vec<usize>>,
    /// The differential gate's verdict, when the session verifies.
    pub verdict: Option<differential::Verdict>,
    /// Wall-clock microseconds the splice stage took (kept out of the
    /// run's trace, which is deterministically zeroed).
    pub splice_micros: u64,
}

impl IncrementalOutcome {
    /// Fraction of unique cones that had to be re-executed, in `0..=1`
    /// (0 for a graph with no cones).
    pub fn dirty_fraction(&self) -> f64 {
        if self.unique_cones == 0 {
            0.0
        } else {
            self.cones_recomputed as f64 / self.unique_cones as f64
        }
    }
}

/// A region's cached fan-out summary: internal (non-input) max plus
/// per-input-position fan-out counts, keyed by (cone, pipeline,
/// technology) hash.
type FanoutSummaries = HashMap<(u64, u64, u64), Arc<(u32, Vec<u32>)>>;

/// An editable graph + pipeline configuration bound to an [`Engine`].
/// See the [module docs](self).
#[derive(Debug)]
pub struct IncrementalSession<'e> {
    engine: &'e Engine,
    graph: Mig,
    pipeline: PipelineSpec,
    disabled: BTreeSet<usize>,
    model: Option<CostTable>,
    verify: Option<EquivalencePolicy>,
    band_width: u32,
    last_partition: Option<ConePartition>,
    /// Per-region fan-out summaries — clean regions keep their summary
    /// across edits, so the merged report's max fan-out composes
    /// without scanning the merged arena.
    fanout_cache: FanoutSummaries,
}

impl Engine {
    /// Opens an incremental session on `graph` with `pipeline`; the
    /// session shares this engine's cache tiers and telemetry.
    pub fn incremental(&self, graph: Mig, pipeline: PipelineSpec) -> IncrementalSession<'_> {
        IncrementalSession {
            engine: self,
            graph,
            pipeline,
            disabled: BTreeSet::new(),
            model: None,
            verify: None,
            band_width: DEFAULT_BAND_WIDTH,
            last_partition: None,
            fanout_cache: HashMap::new(),
        }
    }
}

impl IncrementalSession<'_> {
    /// Prices every run against `model` (equivalent to applying
    /// [`EngineEdit::SwapTechnology`]).
    pub fn with_model(mut self, model: CostTable) -> Self {
        self.model = Some(model);
        self
    }

    /// Gates every [`IncrementalSession::run`] with a differential
    /// equivalence check of the spliced netlist against the current
    /// graph; a diverging splice fails the run with the counterexample.
    pub fn with_verification(mut self, policy: EquivalencePolicy) -> Self {
        self.verify = Some(policy);
        self
    }

    /// Sets the level-band width of the dirty-band telemetry
    /// (default [`DEFAULT_BAND_WIDTH`] levels per band).
    ///
    /// # Panics
    ///
    /// Panics if `bands` is zero.
    pub fn with_band_width(mut self, bands: u32) -> Self {
        assert!(bands > 0, "band width must be positive");
        if bands != self.band_width {
            // A cached partition folded at the old width cannot be
            // refreshed into the new one.
            self.last_partition = None;
        }
        self.band_width = bands;
        self
    }

    /// The session's current graph.
    pub fn graph(&self) -> &Mig {
        &self.graph
    }

    /// Applies one ECO edit. [`EngineEdit::AddGate`] returns the new
    /// gate's signal (for a follow-up rewire); every other edit returns
    /// `None`.
    ///
    /// # Errors
    ///
    /// [`IncrementalError::InvalidEdit`] when the edit references a
    /// node, output position or pass index that does not exist; the
    /// session is left unchanged.
    pub fn apply(&mut self, edit: EngineEdit) -> Result<Option<Signal>, IncrementalError> {
        match edit {
            EngineEdit::AddGate { a, b, c, output } => {
                for (label, signal) in [("a", a), ("b", b), ("c", c)] {
                    self.check_signal(label, signal)?;
                }
                let gate = self.graph.add_maj(a, b, c);
                if let Some(name) = output {
                    self.graph.add_output(name, gate);
                }
                Ok(Some(gate))
            }
            EngineEdit::RewireOutput { position, signal } => {
                self.check_output(position)?;
                self.check_signal("signal", signal)?;
                self.graph.set_output_signal(position, signal);
                Ok(None)
            }
            EngineEdit::RemoveOutput { position } => {
                self.check_output(position)?;
                self.graph.remove_output(position);
                Ok(None)
            }
            EngineEdit::SwapTechnology { model } => {
                self.model = model;
                Ok(None)
            }
            EngineEdit::TogglePass { index } => {
                if index >= self.pipeline.passes.len() {
                    return Err(IncrementalError::InvalidEdit(format!(
                        "pass index {index} out of range (pipeline has {} passes)",
                        self.pipeline.passes.len()
                    )));
                }
                if !self.disabled.remove(&index) {
                    self.disabled.insert(index);
                }
                Ok(None)
            }
        }
    }

    fn check_signal(&self, label: &str, signal: Signal) -> Result<(), IncrementalError> {
        if signal.node().index() >= self.graph.node_count() {
            return Err(IncrementalError::InvalidEdit(format!(
                "signal `{label}` references node {} but the graph has {} nodes",
                signal.node().index(),
                self.graph.node_count()
            )));
        }
        Ok(())
    }

    fn check_output(&self, position: usize) -> Result<(), IncrementalError> {
        if position >= self.graph.output_count() {
            return Err(IncrementalError::InvalidEdit(format!(
                "output position {position} out of range (graph has {} outputs)",
                self.graph.output_count()
            )));
        }
        Ok(())
    }

    /// The pipeline spec with the currently toggled-off passes removed.
    fn effective_pipeline(&self) -> PipelineSpec {
        let mut spec = self.pipeline.clone();
        if !self.disabled.is_empty() {
            spec.passes = spec
                .passes
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !self.disabled.contains(i))
                .map(|(_, pass)| pass)
                .collect();
        }
        spec
    }

    fn screen_supported(&self, spec: &PipelineSpec) -> Result<(), IncrementalError> {
        if self.graph.output_count() == 0 {
            return Err(IncrementalError::Unsupported(
                "the graph has no outputs, so there are no cones to run".to_owned(),
            ));
        }
        for pass in &spec.passes {
            let offender = match pass {
                PassSpec::RestrictFanoutCostAware => "cost-aware fan-out restriction",
                PassSpec::InsertBuffers(BufferStrategy::Weighted(_)) => "weighted buffer insertion",
                PassSpec::InsertBuffers(BufferStrategy::CostAware) => "cost-aware buffer insertion",
                PassSpec::VerifyWeighted(_) => "weighted balance verification",
                PassSpec::VerifyCostAware { .. } => "cost-aware balance verification",
                _ => continue,
            };
            return Err(IncrementalError::Unsupported(format!(
                "{offender} balances against global targets that per-cone splicing \
                 cannot preserve"
            )));
        }
        Ok(())
    }

    /// Executes the current graph/configuration incrementally: cached
    /// cones splice, dirty cones re-run. See the [module docs](self)
    /// for the exact semantics and the determinism contract.
    ///
    /// # Errors
    ///
    /// [`IncrementalError::Unsupported`] for configurations incremental
    /// execution cannot honor, [`IncrementalError::Spec`] /
    /// [`IncrementalError::Pipeline`] for invalid pipelines,
    /// [`IncrementalError::ConeFailed`] when a cone's run fails, and
    /// [`IncrementalError::Diverged`] /
    /// [`IncrementalError::Differential`] from the optional equivalence
    /// gate.
    pub fn run(&mut self) -> Result<IncrementalOutcome, IncrementalError> {
        let spec = self.effective_pipeline();
        self.screen_supported(&spec)?;
        spec.validate()?;
        let flow = spec.build()?;
        let pipe_hash = spec.content_hash();
        let tech = self
            .model
            .as_ref()
            .map_or(COST_BLIND, CostTable::content_hash);
        let caching = self.engine.caching_enabled();

        // Cone decomposition + level-band diff against the last run.
        // Session edits only ever append arena nodes or retarget
        // outputs, so a previous partition can be refreshed instead of
        // re-analyzed: node hashes extend and clean cones keep their
        // identity without a traversal.
        let previous = self.last_partition.take();
        let partition = match &previous {
            Some(earlier) => earlier.refresh(&self.graph),
            None => ConePartition::with_band_width(&self.graph, self.band_width),
        };
        let dirty_bands = previous
            .as_ref()
            .map(|earlier| diff_bands(partition.band_hashes(), earlier.band_hashes()));
        drop(previous);
        self.last_partition = Some(partition);
        let partition = self.last_partition.as_ref().expect("partition just cached");

        // Unique cones, in first-seen output order (deterministic).
        let mut order: Vec<u64> = Vec::new();
        let mut first_output: HashMap<u64, usize> = HashMap::new();
        for cone in partition.cones() {
            first_output.entry(cone.hash).or_insert_with(|| {
                order.push(cone.hash);
                cone.output
            });
        }

        // Whole-graph fast path: an unchanged (graph, pipeline, model)
        // triple is one lookup, no extraction, no splice.
        let whole_key = CacheKey {
            scope: Scope::Spliced,
            circuit: self.graph.content_hash(),
            pipeline: pipe_hash,
            technology: tech,
        };
        if caching {
            if let Some(run) = self.engine.lookup(&whole_key) {
                self.engine.count_cones(order.len() as u64, 0);
                return Ok(IncrementalOutcome {
                    run,
                    cones: partition.len(),
                    unique_cones: order.len(),
                    cones_reused: order.len() as u64,
                    cones_recomputed: 0,
                    spliced_reused: true,
                    dirty_bands,
                    verdict: None,
                    splice_micros: 0,
                });
            }
        }

        // Execute the unique cones in parallel; cached cones splice.
        // Each result is (cone hash, run, answered-from-cache).
        type ConeResult = Result<(u64, Arc<PipelineRun>, bool), IncrementalError>;
        let results: Vec<ConeResult> = order
            .par_iter()
            .map(|&hash| {
                let key = CacheKey {
                    scope: Scope::Cone,
                    circuit: hash,
                    pipeline: pipe_hash,
                    technology: tech,
                };
                if caching {
                    if let Some(run) = self.engine.lookup(&key) {
                        return Ok((hash, run, true));
                    }
                }
                let position = first_output[&hash];
                let cone_graph = mig::extract_cone(&self.graph, position);
                match flow.run_with_model(&cone_graph, self.model.as_ref()) {
                    Ok(run) => {
                        if caching {
                            self.engine.count_computed(run.trace.len() as u64);
                        } else {
                            self.engine.count_passes(run.trace.len() as u64);
                        }
                        let run = Arc::new(run);
                        if caching {
                            self.engine.store(key, &run);
                        }
                        Ok((hash, run, false))
                    }
                    Err(error) => Err(IncrementalError::ConeFailed {
                        output: position,
                        name: partition.cones()[position].name.clone(),
                        error,
                    }),
                }
            })
            .collect();

        let mut by_hash: HashMap<u64, Arc<PipelineRun>> = HashMap::new();
        let (mut reused, mut recomputed) = (0u64, 0u64);
        for result in results {
            let (hash, run, was_cached) = result?;
            if was_cached {
                reused += 1;
            } else {
                recomputed += 1;
            }
            by_hash.insert(hash, run);
        }
        self.engine.count_cones(reused, recomputed);

        // Splice the per-cone runs into one whole-circuit run.
        let splice_start = Instant::now();
        let regions: Vec<&PipelineRun> = partition
            .cones()
            .iter()
            .map(|cone| by_hash[&cone.hash].as_ref())
            .collect();

        // Merged max fan-out from per-region summaries (only needed
        // when the runs carry balance reports): region-internal fan-out
        // carries over verbatim and only shared inputs concentrate, so
        // the fold is exact and clean regions reuse their cached
        // summary instead of rescanning.
        let mut max_fanout = 0u32;
        if regions.iter().all(|r| r.result.report.is_some()) {
            let mut input_totals: HashMap<&str, u32> = HashMap::new();
            for cone in partition.cones() {
                let run = &by_hash[&cone.hash];
                let summary = self
                    .fanout_cache
                    .entry((cone.hash, pipe_hash, tech))
                    .or_insert_with(|| Arc::new(run.result.pipelined.fanout_summary()))
                    .clone();
                max_fanout = max_fanout.max(summary.0);
                for (p, &count) in summary.1.iter().enumerate() {
                    *input_totals
                        .entry(run.result.pipelined.input_name(p))
                        .or_insert(0) += count;
                }
            }
            max_fanout = max_fanout.max(input_totals.values().copied().max().unwrap_or(0));
            if self.fanout_cache.len() > 4 * partition.len() + 64 {
                let live: std::collections::HashSet<_> = partition
                    .cones()
                    .iter()
                    .map(|c| (c.hash, pipe_hash, tech))
                    .collect();
                self.fanout_cache.retain(|k, _| live.contains(k));
            }
        }

        let merged = splice_runs(&self.graph, &regions, self.model.as_ref(), max_fanout);
        let splice_micros = splice_start.elapsed().as_micros() as u64;

        let verdict = match &self.verify {
            Some(policy) => {
                match differential::check(&merged.result.pipelined, &self.graph, policy) {
                    Ok(differential::Verdict::Diverged(cex)) => {
                        return Err(IncrementalError::Diverged(cex))
                    }
                    Ok(verdict) => Some(verdict),
                    Err(e) => return Err(IncrementalError::Differential(e)),
                }
            }
            None => None,
        };

        let run = Arc::new(merged);
        if caching {
            self.engine.store(whole_key, &run);
        }
        Ok(IncrementalOutcome {
            run,
            cones: partition.len(),
            unique_cones: order.len(),
            cones_reused: reused,
            cones_recomputed: recomputed,
            spliced_reused: false,
            dirty_bands,
            verdict,
            splice_micros,
        })
    }
}

/// Band indices where `now` and `earlier` disagree (bands present on
/// only one side count as dirty) — same contract as
/// [`ConePartition::dirty_bands`], over raw subhash vectors.
fn diff_bands(now: &[u64], earlier: &[u64]) -> Vec<usize> {
    let common = now.len().min(earlier.len());
    let longest = now.len().max(earlier.len());
    (0..common)
        .filter(|&b| now[b] != earlier[b])
        .chain(common..longest)
        .collect()
}

fn add_counts(into: &mut KindCounts, counts: &KindCounts) {
    into.inputs += counts.inputs;
    into.consts += counts.consts;
    into.maj += counts.maj;
    into.inv += counts.inv;
    into.buf += counts.buf;
    into.fog += counts.fog;
}

/// Instantiates each region netlist (one per output, in output order)
/// into a single netlist over the graph's full input interface,
/// optionally padding every non-constant output driver to the common
/// depth. Returns the merged netlist and the number of padding buffers
/// added.
///
/// Region fan-ins may point forward (the flow's transform passes append
/// rewired components), so gates are assigned their merged indices
/// before any of them is added.
fn splice_netlists(
    graph: &Mig,
    parts: &[&Netlist],
    pad: Option<(&[u32], u32)>,
) -> (Netlist, usize) {
    let mut out = Netlist::new(graph.name());
    out.reserve(parts.iter().map(|p| p.len()).sum());
    let mut input_ids: HashMap<&str, CompId> = HashMap::new();
    for position in 0..graph.input_count() {
        let name = graph.input_name(position);
        input_ids.insert(name, out.add_input(name));
    }

    let mut padding = 0usize;
    let mut imap: Vec<CompId> = Vec::new();
    for (position, part) in parts.iter().enumerate() {
        imap.clear();
        imap.extend((0..part.inputs().len()).map(|p| input_ids[part.input_name(p)]));
        let mut driver = out.splice_region(part, &imap);
        if let Some((depths, common)) = pad {
            // Constants are excluded from balancing (available at every
            // level), so constant-driven outputs take no padding.
            if out.component(driver).kind() != ComponentKind::Const {
                for _ in depths[position]..common {
                    driver = out.add_buf(driver);
                    padding += 1;
                }
            }
        }
        out.add_output(graph.outputs()[position].name.clone(), driver);
    }
    (out, padding)
}

/// Merges per-cone pipeline runs into one whole-circuit [`PipelineRun`]
/// (see the [module docs](self) for the splice semantics). All
/// wall-clock fields in the merged trace are zero: the merged run is a
/// deterministic function of its region runs, so warm and cold
/// incremental runs serialize bit-identically.
fn splice_runs(
    graph: &Mig,
    regions: &[&PipelineRun],
    model: Option<&CostTable>,
    max_fanout: u32,
) -> PipelineRun {
    let outputs = regions.len();

    // Padding target: every region balanced its own cone to
    // `buffers.depth`; the splice pads each output driver to the
    // deepest region. Without buffer insertion there is no balance to
    // extend, so no padding (and no synthesized report).
    let depths: Option<Vec<u32>> = regions
        .iter()
        .map(|r| r.result.buffers.as_ref().map(|b| b.depth))
        .collect();
    let common_depth = depths
        .as_ref()
        .map(|d| d.iter().copied().max().unwrap_or(0));

    let (original, _) = splice_netlists(
        graph,
        &regions
            .iter()
            .map(|r| &r.result.original)
            .collect::<Vec<_>>(),
        None,
    );
    let (pipelined, pad_buffers) = splice_netlists(
        graph,
        &regions
            .iter()
            .map(|r| &r.result.pipelined)
            .collect::<Vec<_>>(),
        depths
            .as_ref()
            .zip(common_depth)
            .map(|(d, common)| (d.as_slice(), common)),
    );

    // Re-aggregate the instrumentation trace pass-by-pass: counts sum
    // over region instances, depths take the max, priced state is
    // re-priced from the aggregates (latency is a max, not a sum), and
    // wall-clock micros are zeroed for determinism.
    let passes = regions.first().map_or(0, |r| r.trace.len());
    let mut trace: Vec<PassStats> = (0..passes)
        .map(|i| {
            let mut counts_before = KindCounts::default();
            let mut counts_after = KindCounts::default();
            let mut added = KindCounts::default();
            let (mut depth_before, mut depth_after) = (0u32, 0u32);
            for region in regions {
                let stats = &region.trace[i];
                add_counts(&mut counts_before, &stats.counts_before);
                add_counts(&mut counts_after, &stats.counts_after);
                add_counts(&mut added, &stats.added);
                depth_before = depth_before.max(stats.depth_before);
                depth_after = depth_after.max(stats.depth_after);
            }
            PassStats {
                pass: regions[0].trace[i].pass.clone(),
                micros: 0,
                priced: model.map(|table| PricedDelta {
                    model: table.name().to_owned(),
                    before: table.price(&counts_before, outputs, depth_before),
                    after: table.price(&counts_after, outputs, depth_after),
                }),
                counts_before,
                counts_after,
                added,
                depth_before,
                depth_after,
            }
        })
        .collect();

    // The splice itself gets a synthetic trace record: region sums in,
    // merged netlist out (shared inputs/constants deduplicate, padding
    // buffers add).
    let mut region_counts = KindCounts::default();
    for region in regions {
        add_counts(&mut region_counts, &region.result.pipelined.counts());
    }
    let merged_counts = pipelined.counts();
    let region_depth = regions
        .iter()
        .flat_map(|r| r.trace.last().map(|s| s.depth_after))
        .max()
        .unwrap_or(0);
    let splice_depth = common_depth.unwrap_or(region_depth);
    trace.push(PassStats {
        pass: SPLICE_PASS.to_owned(),
        micros: 0,
        added: merged_counts.added_since(&region_counts),
        priced: model.map(|table| PricedDelta {
            model: table.name().to_owned(),
            before: table.price(&region_counts, outputs, region_depth),
            after: table.price(&merged_counts, outputs, splice_depth),
        }),
        counts_before: region_counts,
        counts_after: merged_counts,
        depth_before: region_depth,
        depth_after: splice_depth,
    });

    let fanout: Option<FanoutRestriction> = regions
        .iter()
        .map(|r| r.result.fanout.as_ref())
        .collect::<Option<Vec<_>>>()
        .map(|all| FanoutRestriction {
            limit: all[0].limit,
            fogs_inserted: all.iter().map(|s| s.fogs_inserted).sum(),
            components_split: all.iter().map(|s| s.components_split).sum(),
            delayed_consumers: all.iter().map(|s| s.delayed_consumers).sum(),
            depth_before: all.iter().map(|s| s.depth_before).max().unwrap_or(0),
            depth_after: all.iter().map(|s| s.depth_after).max().unwrap_or(0),
        });
    let buffers: Option<BufferInsertion> = regions
        .iter()
        .map(|r| r.result.buffers.as_ref())
        .collect::<Option<Vec<_>>>()
        .map(|all| BufferInsertion {
            balancing_buffers: all.iter().map(|s| s.balancing_buffers).sum(),
            padding_buffers: all.iter().map(|s| s.padding_buffers).sum::<usize>() + pad_buffers,
            depth: common_depth.unwrap_or(0),
        });
    // A report needs the common balanced depth, which only exists when
    // buffer insertion ran; max fan-out is measured on the merged
    // netlist (shared inputs concentrate fan-out the regions never saw).
    let report: Option<BalanceReport> = match (
        common_depth,
        regions.iter().all(|r| r.result.report.is_some()),
    ) {
        (Some(depth), true) => {
            debug_assert_eq!(
                max_fanout,
                pipelined.max_fanout(),
                "composed max fan-out must match a merged-arena scan"
            );
            Some(BalanceReport {
                depth,
                waves_in_flight: depth.div_ceil(3),
                max_fanout,
            })
        }
        _ => None,
    };

    PipelineRun {
        result: FlowResult {
            original,
            pipelined,
            fanout,
            buffers,
            report,
        },
        weighted: None,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_balance;

    fn flat_table() -> CostTable {
        struct Flat;
        impl crate::cost::CostModel for Flat {
            fn cost_name(&self) -> &str {
                "FLAT"
            }
            fn area_of(&self, kind: crate::ComponentKind) -> f64 {
                if kind.is_priced() {
                    1.0
                } else {
                    0.0
                }
            }
            fn delay_of(&self, kind: crate::ComponentKind) -> f64 {
                self.area_of(kind)
            }
            fn energy_of(&self, kind: crate::ComponentKind) -> f64 {
                self.area_of(kind)
            }
            fn phase_delay(&self) -> f64 {
                1.0
            }
            fn output_sense_energy(&self) -> f64 {
                0.0
            }
        }
        CostTable::from_model(&Flat)
    }

    fn pipeline() -> PipelineSpec {
        PipelineSpec::map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(3))
    }

    /// Four inputs, three structurally distinct output cones.
    fn three_cone_graph() -> Mig {
        let mut g = Mig::with_name("eco");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let m1 = g.add_maj(a, b, c);
        let m2 = g.add_maj(b, c, d);
        let m3 = g.add_maj(a, !c, d);
        let top = g.add_maj(m1, m2, !m3);
        g.add_output("o1", m1);
        g.add_output("o2", m2);
        g.add_output("o3", top);
        g
    }

    fn sample(seed: u64) -> Mig {
        mig::random_mig(mig::RandomMigConfig {
            inputs: 8,
            outputs: 6,
            gates: 150,
            depth: 9,
            seed,
        })
    }

    #[test]
    fn spliced_run_is_equivalent_balanced_and_verified() {
        let engine = Engine::new();
        let mut session = engine
            .incremental(sample(3), pipeline())
            .with_verification(EquivalencePolicy::default());
        let outcome = session.run().unwrap();
        assert_eq!(outcome.cones, 6);
        assert!(matches!(
            outcome.verdict,
            Some(differential::Verdict::Equivalent { .. })
        ));
        // The splice preserves the balance invariant (fan-out bounds do
        // not survive input sharing, so no limit here) and its
        // synthesized report matches a mechanical re-verification.
        let run = &outcome.run;
        let measured = verify_balance(&run.result.pipelined, None).unwrap();
        let synthesized = run.result.report.as_ref().unwrap();
        assert_eq!(synthesized, &measured);
        // The trace covers every pass plus the splice record, all
        // wall-clock-free.
        let names: Vec<&str> = run.trace.iter().map(|s| s.pass.as_str()).collect();
        assert_eq!(names.last(), Some(&SPLICE_PASS));
        assert_eq!(run.trace.len(), 5);
        assert!(run.trace.iter().all(|s| s.micros == 0));
    }

    #[test]
    fn warm_rerun_is_one_spliced_lookup_and_bit_identical() {
        let engine = Engine::new();
        let mut session = engine.incremental(sample(4), pipeline());
        let cold = session.run().unwrap();
        assert_eq!(cold.cones_reused, 0);
        assert!(!cold.spliced_reused);

        let before = engine.stats();
        let warm = session.run().unwrap();
        let delta = engine.stats().since(&before);
        assert!(warm.spliced_reused);
        assert_eq!(delta.passes_executed, 0);
        assert_eq!(warm.cones_recomputed, 0);
        assert_eq!(
            crate::persist::run_to_json(&cold.run),
            crate::persist::run_to_json(&warm.run),
            "warm splice is bit-identical to the cold run"
        );
    }

    #[test]
    fn rewiring_one_output_recomputes_only_its_cone() {
        let engine = Engine::new();
        let mut session = engine.incremental(three_cone_graph(), pipeline());
        let cold = session.run().unwrap();
        assert_eq!((cold.cones, cold.unique_cones), (3, 3));
        assert_eq!(cold.cones_recomputed, 3);

        // Add a dead gate and point output 0 at it.
        let gate = session
            .apply(EngineEdit::AddGate {
                a: Signal::new(mig::NodeId::from_index(1), false),
                b: Signal::new(mig::NodeId::from_index(2), true),
                c: Signal::new(mig::NodeId::from_index(4), false),
                output: None,
            })
            .unwrap()
            .unwrap();
        session
            .apply(EngineEdit::RewireOutput {
                position: 0,
                signal: gate,
            })
            .unwrap();
        let warm = session.run().unwrap();
        assert_eq!(warm.cones_recomputed, 1, "only the rewired cone re-ran");
        assert_eq!(warm.cones_reused, 2);
        assert!(!warm.spliced_reused);
        assert_eq!(warm.dirty_bands.as_deref(), Some(&[0][..]));

        // The incremental result is bit-identical to a cold engine
        // running the same edited graph from scratch.
        let fresh = Engine::new();
        let reference = fresh
            .incremental(session.graph().clone(), pipeline())
            .run()
            .unwrap();
        assert_eq!(
            crate::persist::run_to_json(&warm.run),
            crate::persist::run_to_json(&reference.run)
        );
    }

    #[test]
    fn dead_logic_and_removed_outputs_keep_cones_clean() {
        let engine = Engine::new();
        let mut session = engine.incremental(three_cone_graph(), pipeline());
        session.run().unwrap();

        // A dead gate changes the graph hash (no spliced reuse) but
        // dirties no cone.
        session
            .apply(EngineEdit::AddGate {
                a: Signal::new(mig::NodeId::from_index(1), false),
                b: Signal::new(mig::NodeId::from_index(2), true),
                c: Signal::new(mig::NodeId::from_index(3), false),
                output: None,
            })
            .unwrap();
        let after_dead = session.run().unwrap();
        assert!(!after_dead.spliced_reused);
        assert_eq!(after_dead.cones_recomputed, 0);

        // Dropping an output re-splices the surviving cones from cache.
        session
            .apply(EngineEdit::RemoveOutput { position: 1 })
            .unwrap();
        let after_remove = session.run().unwrap();
        assert_eq!(after_remove.cones, 2);
        assert_eq!(after_remove.cones_recomputed, 0);
        assert_eq!(
            after_remove.run.result.pipelined.outputs().len(),
            2,
            "merged netlist tracks the edited interface"
        );
    }

    #[test]
    fn toggling_a_pass_and_swapping_technology_rekey_the_cache() {
        let engine = Engine::new();
        let mut session = engine.incremental(three_cone_graph(), pipeline());
        let cold = session.run().unwrap();
        assert_eq!(cold.run.trace.len(), 5);

        // Toggle the verify pass (index 2) off: different pipeline key,
        // shorter trace.
        session.apply(EngineEdit::TogglePass { index: 2 }).unwrap();
        let unverified = session.run().unwrap();
        assert_eq!(unverified.cones_recomputed, 3, "new pipeline key");
        assert_eq!(unverified.run.trace.len(), 4);
        assert!(unverified.run.result.report.is_none());

        // Toggle it back on: the original spliced result replays.
        session.apply(EngineEdit::TogglePass { index: 2 }).unwrap();
        let back = session.run().unwrap();
        assert!(back.spliced_reused);

        // A technology swap re-prices every cone under a new key.
        let table = flat_table();
        session
            .apply(EngineEdit::SwapTechnology {
                model: Some(table.clone()),
            })
            .unwrap();
        let priced = session.run().unwrap();
        assert_eq!(priced.cones_recomputed, 3);
        assert!(priced.run.trace.iter().all(|s| s.priced.is_some()));
        let delta = priced.run.trace.last().unwrap().priced.as_ref().unwrap();
        assert_eq!(delta.model, table.name());
    }

    #[test]
    fn unsupported_configurations_and_invalid_edits_are_rejected() {
        let engine = Engine::new();
        let weighted = PipelineSpec::map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::CostAware);
        let err = engine
            .incremental(three_cone_graph(), weighted)
            .with_model(flat_table())
            .run()
            .unwrap_err();
        assert!(matches!(err, IncrementalError::Unsupported(_)));

        let no_outputs = Mig::with_name("empty");
        let err = engine
            .incremental(no_outputs, pipeline())
            .run()
            .unwrap_err();
        assert!(matches!(err, IncrementalError::Unsupported(_)));

        let mut session = engine.incremental(three_cone_graph(), pipeline());
        for bad in [
            EngineEdit::RewireOutput {
                position: 99,
                signal: Signal::ZERO,
            },
            EngineEdit::RemoveOutput { position: 99 },
            EngineEdit::TogglePass { index: 99 },
            EngineEdit::AddGate {
                a: Signal::new(mig::NodeId::from_index(999), false),
                b: Signal::ZERO,
                c: Signal::ZERO,
                output: None,
            },
        ] {
            assert!(matches!(
                session.apply(bad),
                Err(IncrementalError::InvalidEdit(_))
            ));
        }
        // Rejected edits leave the session runnable.
        session.run().unwrap();
    }

    #[test]
    fn incremental_runs_share_the_disk_tier_across_engines() {
        let dir = std::env::temp_dir().join(format!("wavepipe-incr-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = three_cone_graph();

        let first = Engine::new().with_disk_cache(&dir);
        let cold = first.incremental(g.clone(), pipeline()).run().unwrap();
        assert_eq!(cold.cones_recomputed, 3);

        // A fresh engine on the same root splices everything from disk
        // — the whole-graph entry answers before any cone is touched.
        let second = Engine::new().with_disk_cache(&dir);
        let warm = second.incremental(g, pipeline()).run().unwrap();
        assert!(warm.spliced_reused);
        assert_eq!(second.stats().passes_executed, 0);
        assert_eq!(second.stats().disk_hits, 1);
        assert_eq!(
            crate::persist::run_to_json(&cold.run),
            crate::persist::run_to_json(&warm.run)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
