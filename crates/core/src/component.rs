//! Physical components of a wave-pipeline netlist.
//!
//! Unlike the algebraic MIG (where inversion is an edge attribute and
//! constants are free), a mapped netlist prices every physical cell the
//! technologies provide: majority gates, inverters, buffers and fan-out
//! gates (Table I of the paper). Each component occupies one pipeline
//! level in the three-phase clocking scheme.

use std::fmt;

/// Index of a component inside a [`Netlist`](crate::Netlist).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompId(pub(crate) u32);

impl CompId {
    /// Arena index of this component.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `CompId` from a raw arena index.
    #[inline]
    pub fn from_index(index: usize) -> CompId {
        debug_assert!(index <= u32::MAX as usize);
        CompId(index as u32)
    }
}

impl fmt::Debug for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The kind of a physical component, matching the cost columns of the
/// paper's Table I (INV, MAJ, BUF, FOG) plus the two non-priced kinds
/// (primary inputs and fixed-polarization constant cells).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ComponentKind {
    /// Primary input port.
    Input,
    /// Fixed-polarization constant cell (not a propagating wave source;
    /// available at every level, excluded from balancing and cost).
    Const,
    /// 3-input majority gate.
    Maj,
    /// Inverter.
    Inv,
    /// Wave-regenerating buffer (inserted by path balancing).
    Buf,
    /// Fan-out gate: one input replicated to up to `k` consumers
    /// (physically a reversed majority node for `k = 3`).
    Fog,
}

impl ComponentKind {
    /// Kinds that occupy a pipeline level and carry a cost in Table I.
    pub fn is_priced(self) -> bool {
        matches!(
            self,
            ComponentKind::Maj | ComponentKind::Inv | ComponentKind::Buf | ComponentKind::Fog
        )
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentKind::Input => "input",
            ComponentKind::Const => "const",
            ComponentKind::Maj => "MAJ",
            ComponentKind::Inv => "INV",
            ComponentKind::Buf => "BUF",
            ComponentKind::Fog => "FOG",
        };
        f.write_str(s)
    }
}

/// One component: kind plus fan-in connections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Component {
    /// Primary input; payload is the position in the netlist input list.
    Input {
        /// Index into the netlist's input list.
        position: u32,
    },
    /// Constant cell with a fixed logic value.
    Const {
        /// The constant value this cell provides.
        value: bool,
    },
    /// Majority gate over three fan-ins.
    Maj {
        /// The three fan-in components.
        fanins: [CompId; 3],
    },
    /// Inverter of one fan-in.
    Inv {
        /// The inverted component.
        fanin: CompId,
    },
    /// Buffer of one fan-in.
    Buf {
        /// The buffered component.
        fanin: CompId,
    },
    /// Fan-out gate replicating one fan-in.
    Fog {
        /// The replicated component.
        fanin: CompId,
    },
}

impl Component {
    /// The component's kind tag.
    pub fn kind(&self) -> ComponentKind {
        match self {
            Component::Input { .. } => ComponentKind::Input,
            Component::Const { .. } => ComponentKind::Const,
            Component::Maj { .. } => ComponentKind::Maj,
            Component::Inv { .. } => ComponentKind::Inv,
            Component::Buf { .. } => ComponentKind::Buf,
            Component::Fog { .. } => ComponentKind::Fog,
        }
    }

    /// Fan-in connections (empty for inputs and constants).
    pub fn fanins(&self) -> &[CompId] {
        match self {
            Component::Input { .. } | Component::Const { .. } => &[],
            Component::Maj { fanins } => fanins,
            Component::Inv { fanin } | Component::Buf { fanin } | Component::Fog { fanin } => {
                std::slice::from_ref(fanin)
            }
        }
    }

    /// Mutable fan-in connections.
    pub fn fanins_mut(&mut self) -> &mut [CompId] {
        match self {
            Component::Input { .. } | Component::Const { .. } => &mut [],
            Component::Maj { fanins } => fanins,
            Component::Inv { fanin } | Component::Buf { fanin } | Component::Fog { fanin } => {
                std::slice::from_mut(fanin)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_fanins() {
        let a = CompId::from_index(1);
        let b = CompId::from_index(2);
        let c = CompId::from_index(3);
        let maj = Component::Maj { fanins: [a, b, c] };
        assert_eq!(maj.kind(), ComponentKind::Maj);
        assert_eq!(maj.fanins(), &[a, b, c]);

        let inv = Component::Inv { fanin: a };
        assert_eq!(inv.kind(), ComponentKind::Inv);
        assert_eq!(inv.fanins(), &[a]);

        let input = Component::Input { position: 0 };
        assert!(input.fanins().is_empty());
        assert_eq!(input.kind(), ComponentKind::Input);
    }

    #[test]
    fn priced_kinds() {
        assert!(ComponentKind::Maj.is_priced());
        assert!(ComponentKind::Inv.is_priced());
        assert!(ComponentKind::Buf.is_priced());
        assert!(ComponentKind::Fog.is_priced());
        assert!(!ComponentKind::Input.is_priced());
        assert!(!ComponentKind::Const.is_priced());
    }

    #[test]
    fn fanin_mutation() {
        let a = CompId::from_index(1);
        let b = CompId::from_index(9);
        let mut buf = Component::Buf { fanin: a };
        buf.fanins_mut()[0] = b;
        assert_eq!(buf.fanins(), &[b]);
    }

    #[test]
    fn display_matches_table_one_names() {
        assert_eq!(ComponentKind::Maj.to_string(), "MAJ");
        assert_eq!(ComponentKind::Fog.to_string(), "FOG");
        assert_eq!(ComponentKind::Buf.to_string(), "BUF");
        assert_eq!(ComponentKind::Inv.to_string(), "INV");
    }
}
