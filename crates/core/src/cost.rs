//! Technology cost models as a first-class layer of the flow.
//!
//! The paper's whole argument is comparative: the *same* MIG-mapped,
//! fan-out-restricted, buffer-inserted netlist is priced under several
//! beyond-CMOS technologies (Table I/II, Fig 9). This module makes that
//! pricing available *inside* the flow instead of bolting it on after
//! the fact: a [`CostModel`] prices each [`ComponentKind`], a
//! [`CostTable`] precomputes the model into flat per-kind arrays for
//! hot-path lookups, and the pass pipeline threads an optional table
//! through its [`FlowContext`](crate::FlowContext) so every pass's
//! [`PassStats`](crate::PassStats) can record priced area / energy /
//! cycle-time deltas and cost-aware pass variants can consult the
//! technology they are compiling for.
//!
//! The trait lives in this crate (rather than next to the `tech`
//! crate's `Technology`, its canonical implementation) because the
//! pass pipeline must be able to consume a model without depending on
//! any particular technology library; `tech` re-exports it.
//!
//! # Table I provenance
//!
//! The canonical models price components straight out of the paper's
//! Table I: a base cell area (µm²) / delay (ns) / energy (fJ) per
//! technology, times a relative multiplier per component kind (e.g. a
//! QCA inverter is 10× the cell area, 7× the delay, 10× the energy —
//! by far its most expensive component; an SWD majority gate is 5×/1×/3×).
//! Two knobs encode modelling assumptions the paper uses but does not
//! tabulate:
//!
//! * **phase delay** — the duration of one clock phase.
//!   Reverse-engineering Table II gives 1 cell delay for SWD and 2 for
//!   NML (both equal their MAJ relative delay) and 10/3 for QCA (the
//!   mean of its INV/MAJ/BUF relative delays).
//! * **output sense energy** — per-primary-output readout energy: the
//!   power-dominant sense amplifier of the SWD reference \[22\]; zero
//!   for technologies without one. This is what makes SWD per-operation
//!   energy nearly invariant under buffering, so its wave-pipelined
//!   power *drops* — an artifact §V of the paper discusses explicitly.

use std::fmt;

use crate::component::ComponentKind;
use crate::netlist::KindCounts;

/// Array slot of a priced kind inside a [`CostTable`], or `None` for
/// kinds that carry no Table I cost (inputs, constants).
fn slot(kind: ComponentKind) -> Option<usize> {
    match kind {
        ComponentKind::Maj => Some(0),
        ComponentKind::Inv => Some(1),
        ComponentKind::Buf => Some(2),
        ComponentKind::Fog => Some(3),
        ComponentKind::Input | ComponentKind::Const => None,
    }
}

/// A technology cost model: absolute pricing per component kind plus
/// the two clocking/readout knobs (see the [module docs](self) for the
/// Table I provenance of the canonical models).
///
/// All quantities use the paper's units — µm², ns, fJ — as plain `f64`
/// so the flow stays independent of any unit-newtype library. Kinds
/// that carry no cost (inputs, constants) price as `0.0` on every axis.
///
/// `tech::Technology` is the canonical implementation; [`CostTable`] is
/// the precomputed form every hot path should use.
pub trait CostModel: Sync + Send {
    /// Short display name of the model ("SWD", "QCA", "NML", …).
    fn cost_name(&self) -> &str;

    /// Absolute area of one component of `kind`, in µm².
    fn area_of(&self, kind: ComponentKind) -> f64;

    /// Absolute propagation delay of one component of `kind`, in ns.
    fn delay_of(&self, kind: ComponentKind) -> f64;

    /// Absolute per-operation energy of one component of `kind`, in fJ.
    fn energy_of(&self, kind: ComponentKind) -> f64;

    /// Duration of one clock phase, in ns (each pipeline level advances
    /// one phase; a wave interval is three phases, Fig 4).
    fn phase_delay(&self) -> f64;

    /// Per-primary-output readout energy, in fJ (the SWD sense
    /// amplifier; zero for technologies without one).
    fn output_sense_energy(&self) -> f64;

    /// Precomputes this model into a flat lookup table.
    fn table(&self) -> CostTable
    where
        Self: Sized,
    {
        CostTable::from_model(self)
    }
}

/// A [`CostModel`] precomputed into flat per-kind arrays — the form the
/// pipeline threads through its context and `run_grid` fans out over.
///
/// Cheap to clone (one `String` plus a few `f64`s) and `Send + Sync`,
/// so one table can be shared across the parallel batch/grid drivers.
///
/// Serializes unconditionally (hand-rolled, not feature-gated): a table
/// is the technology component of a [`crate::FlowSpec`], which must
/// round-trip through JSON, and [`CostTable::content_hash`] gives the
/// stable technology identity the [`crate::Engine`] cache keys on.
#[derive(Clone, Debug, PartialEq)]
pub struct CostTable {
    name: String,
    area: [f64; 4],
    delay: [f64; 4],
    energy: [f64; 4],
    phase_delay: f64,
    output_sense_energy: f64,
}

impl CostTable {
    /// Precomputes `model` into a table (one trait call per kind/axis).
    pub fn from_model(model: &(impl CostModel + ?Sized)) -> CostTable {
        const PRICED: [ComponentKind; 4] = [
            ComponentKind::Maj,
            ComponentKind::Inv,
            ComponentKind::Buf,
            ComponentKind::Fog,
        ];
        CostTable {
            name: model.cost_name().to_owned(),
            area: PRICED.map(|k| model.area_of(k)),
            delay: PRICED.map(|k| model.delay_of(k)),
            energy: PRICED.map(|k| model.energy_of(k)),
            phase_delay: model.phase_delay(),
            output_sense_energy: model.output_sense_energy(),
        }
    }

    /// The model's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Prices a netlist summarized by its component counts, output
    /// count and depth — the totals a pipeline records around every
    /// pass without re-walking the netlist.
    ///
    /// Summation order is fixed (MAJ, INV, BUF, FOG, then sense
    /// energy), so pricing the same counts always yields bit-identical
    /// floats — the property the grid-vs-post-hoc golden tests pin.
    pub fn price(&self, counts: &KindCounts, outputs: usize, depth: u32) -> PricedCost {
        let per_kind = [counts.maj, counts.inv, counts.buf, counts.fog];
        let mut area = 0.0;
        let mut energy = 0.0;
        for (i, &count) in per_kind.iter().enumerate() {
            area += self.area[i] * count as f64;
            energy += self.energy[i] * count as f64;
        }
        energy += self.output_sense_energy * outputs as f64;
        PricedCost {
            area,
            energy,
            latency: self.phase_delay * f64::from(depth),
        }
    }

    /// Integer clock-phase occupancy per kind: how many phases a
    /// component of `kind` needs before its output is valid,
    /// `max(1, ⌈delay / phase⌉)` for priced kinds — unpriced kinds
    /// (inputs, constants) occupy no phase and return 0.
    ///
    /// This is the cost-aware balancing weight: under the paper's
    /// Table I the slow QCA inverter (7 cell delays against a 10/3-cell
    /// phase) occupies 3 phases while everything else fits in one;
    /// SWD and NML come out all-unit.
    pub fn phase_occupancy(&self, kind: ComponentKind) -> u32 {
        let Some(i) = slot(kind) else { return 0 };
        if self.phase_delay <= 0.0 || self.delay[i] <= 0.0 {
            return 1;
        }
        // Tolerate float noise so a delay of exactly N phases counts N.
        ((self.delay[i] / self.phase_delay) - 1e-9).ceil().max(1.0) as u32
    }

    /// Stable content hash of this table — the technology axis of the
    /// [`crate::Engine`] cache key. Two tables hash equal iff their
    /// names and every pricing constant (by f64 bit pattern) agree, so
    /// editing any Table I number invalidates exactly the cells priced
    /// under it.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::fnv::Fnv::new();
        h.write(self.name.as_bytes());
        for axis in [&self.area, &self.delay, &self.energy] {
            for &v in axis.iter() {
                h.write_f64(v);
            }
        }
        h.write_f64(self.phase_delay);
        h.write_f64(self.output_sense_energy);
        h.finish()
    }
}

impl serde::Serialize for CostTable {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".to_owned(), self.name.to_value()),
            ("area".to_owned(), self.area.to_value()),
            ("delay".to_owned(), self.delay.to_value()),
            ("energy".to_owned(), self.energy.to_value()),
            ("phase_delay".to_owned(), self.phase_delay.to_value()),
            (
                "output_sense_energy".to_owned(),
                self.output_sense_energy.to_value(),
            ),
        ])
    }
}

impl serde::Deserialize for CostTable {
    fn from_value(value: &serde::Value) -> Result<CostTable, serde::DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::DeError::expected("object for CostTable"))?;
        Ok(CostTable {
            name: serde::Deserialize::from_value(serde::field(entries, "name")?)?,
            area: serde::Deserialize::from_value(serde::field(entries, "area")?)?,
            delay: serde::Deserialize::from_value(serde::field(entries, "delay")?)?,
            energy: serde::Deserialize::from_value(serde::field(entries, "energy")?)?,
            phase_delay: serde::Deserialize::from_value(serde::field(entries, "phase_delay")?)?,
            output_sense_energy: serde::Deserialize::from_value(serde::field(
                entries,
                "output_sense_energy",
            )?)?,
        })
    }
}

impl CostModel for CostTable {
    fn cost_name(&self) -> &str {
        &self.name
    }

    fn area_of(&self, kind: ComponentKind) -> f64 {
        slot(kind).map_or(0.0, |i| self.area[i])
    }

    fn delay_of(&self, kind: ComponentKind) -> f64 {
        slot(kind).map_or(0.0, |i| self.delay[i])
    }

    fn energy_of(&self, kind: ComponentKind) -> f64 {
        slot(kind).map_or(0.0, |i| self.energy[i])
    }

    fn phase_delay(&self) -> f64 {
        self.phase_delay
    }

    fn output_sense_energy(&self) -> f64 {
        self.output_sense_energy
    }
}

impl fmt::Display for CostTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cost model `{}` (phase {} ns)",
            self.name, self.phase_delay
        )
    }
}

/// One priced netlist summary: total area, per-operation energy and
/// the cycle-time contribution (depth × phase delay).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct PricedCost {
    /// Total component area, µm².
    pub area: f64,
    /// Per-operation energy including output readout, fJ.
    pub energy: f64,
    /// End-to-end cycle time of one wave (depth × phase delay), ns.
    pub latency: f64,
}

/// Priced netlist state around one pass: what the pass's transformation
/// cost under the active [`CostTable`].
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct PricedDelta {
    /// Name of the cost model the deltas are priced under.
    pub model: String,
    /// Priced state before the pass ran.
    pub before: PricedCost,
    /// Priced state after the pass ran.
    pub after: PricedCost,
}

impl PricedDelta {
    /// Area the pass added (µm²; negative for sweeps).
    pub fn area_delta(&self) -> f64 {
        self.after.area - self.before.area
    }

    /// Per-operation energy the pass added (fJ).
    pub fn energy_delta(&self) -> f64 {
        self.after.energy - self.before.energy
    }

    /// Cycle time the pass added (ns).
    pub fn latency_delta(&self) -> f64 {
        self.after.latency - self.before.latency
    }
}

impl fmt::Display for PricedDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: Δarea {:+.3} µm², Δenergy {:+.3} fJ, Δcycle {:+.3} ns",
            self.model,
            self.area_delta(),
            self.energy_delta(),
            self.latency_delta()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: every priced kind costs its slot index + 1.
    struct Toy;

    impl CostModel for Toy {
        fn cost_name(&self) -> &str {
            "TOY"
        }
        fn area_of(&self, kind: ComponentKind) -> f64 {
            slot(kind).map_or(0.0, |i| (i + 1) as f64)
        }
        fn delay_of(&self, kind: ComponentKind) -> f64 {
            self.area_of(kind)
        }
        fn energy_of(&self, kind: ComponentKind) -> f64 {
            self.area_of(kind) * 10.0
        }
        fn phase_delay(&self) -> f64 {
            2.0
        }
        fn output_sense_energy(&self) -> f64 {
            100.0
        }
    }

    #[test]
    fn table_precomputes_the_model() {
        let t = Toy.table();
        assert_eq!(t.name(), "TOY");
        assert_eq!(t.area_of(ComponentKind::Maj), 1.0);
        assert_eq!(t.area_of(ComponentKind::Fog), 4.0);
        assert_eq!(t.energy_of(ComponentKind::Inv), 20.0);
        assert_eq!(t.area_of(ComponentKind::Input), 0.0);
        assert_eq!(CostModel::phase_delay(&t), 2.0);
    }

    #[test]
    fn price_sums_counts_outputs_and_depth() {
        let t = Toy.table();
        let counts = KindCounts {
            maj: 2,
            inv: 1,
            buf: 3,
            fog: 0,
            ..KindCounts::default()
        };
        let p = t.price(&counts, 2, 5);
        assert_eq!(p.area, 2.0 * 1.0 + 1.0 * 2.0 + 3.0 * 3.0);
        assert_eq!(p.energy, (2.0 * 1.0 + 1.0 * 2.0 + 3.0 * 3.0) * 10.0 + 200.0);
        assert_eq!(p.latency, 10.0);
    }

    #[test]
    fn phase_occupancy_rounds_up_slow_components() {
        let t = Toy.table(); // delays 1..4, phase 2
        assert_eq!(t.phase_occupancy(ComponentKind::Maj), 1); // 0.5 phases
        assert_eq!(t.phase_occupancy(ComponentKind::Inv), 1); // exactly 1
        assert_eq!(t.phase_occupancy(ComponentKind::Buf), 2); // 1.5 phases
        assert_eq!(t.phase_occupancy(ComponentKind::Fog), 2); // exactly 2
        assert_eq!(t.phase_occupancy(ComponentKind::Const), 0);
    }

    #[test]
    fn deltas_subtract_before_from_after() {
        let t = Toy.table();
        let before = t.price(&KindCounts::default(), 0, 0);
        let after = t.price(
            &KindCounts {
                maj: 1,
                ..KindCounts::default()
            },
            1,
            1,
        );
        let d = PricedDelta {
            model: "TOY".to_owned(),
            before,
            after,
        };
        assert_eq!(d.area_delta(), 1.0);
        assert_eq!(d.energy_delta(), 110.0);
        assert_eq!(d.latency_delta(), 2.0);
        assert!(d.to_string().contains("TOY"));
    }
}
