//! Interchange formats for mapped wave-pipeline netlists: a textual
//! `.wpn` format (read/write) and Graphviz DOT export with clock-phase
//! coloring.

use std::collections::HashMap;
use std::fmt;

use crate::component::{CompId, Component, ComponentKind};
use crate::netlist::Netlist;

/// Errors produced by [`parse_netlist`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseNetlistError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseNetlistError {}

fn err(line: usize, message: impl Into<String>) -> ParseNetlistError {
    ParseNetlistError {
        line,
        message: message.into(),
    }
}

/// Serializes `netlist` into the `.wpn` text format:
///
/// ```text
/// .model adder
/// .inputs a b cin
/// .outputs s cout
/// c4 = MAJ(a, b, cin)
/// c5 = INV(c4)
/// c6 = BUF(a)
/// c7 = FOG(c6)
/// s = c5
/// ```
///
/// Constants appear as the literals `0` and `1`.
pub fn write_netlist(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", netlist.name()));
    out.push_str(".inputs");
    for pos in 0..netlist.inputs().len() {
        out.push(' ');
        out.push_str(netlist.input_name(pos));
    }
    out.push('\n');
    out.push_str(".outputs");
    for p in netlist.outputs() {
        out.push(' ');
        out.push_str(&p.name);
    }
    out.push('\n');

    let name_of = |id: CompId| -> String {
        match netlist.component(id) {
            Component::Input { position } => netlist.input_name(*position as usize).to_owned(),
            Component::Const { value } => if *value { "1" } else { "0" }.to_owned(),
            _ => format!("c{}", id.index()),
        }
    };

    for id in netlist.topo_order() {
        let comp = netlist.component(id);
        match comp {
            Component::Input { .. } | Component::Const { .. } => {}
            Component::Maj { fanins } => {
                out.push_str(&format!(
                    "c{} = MAJ({}, {}, {})\n",
                    id.index(),
                    name_of(fanins[0]),
                    name_of(fanins[1]),
                    name_of(fanins[2])
                ));
            }
            Component::Inv { fanin } => {
                out.push_str(&format!("c{} = INV({})\n", id.index(), name_of(*fanin)));
            }
            Component::Buf { fanin } => {
                out.push_str(&format!("c{} = BUF({})\n", id.index(), name_of(*fanin)));
            }
            Component::Fog { fanin } => {
                out.push_str(&format!("c{} = FOG({})\n", id.index(), name_of(*fanin)));
            }
        }
    }
    for p in netlist.outputs() {
        out.push_str(&format!("{} = {}\n", p.name, name_of(p.driver)));
    }
    out
}

/// Parses the `.wpn` text format produced by [`write_netlist`].
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with a line number on syntax errors,
/// undefined signals, arity mismatches or unbound outputs.
pub fn parse_netlist(source: &str) -> Result<Netlist, ParseNetlistError> {
    let mut n = Netlist::new("top");
    let mut by_name: HashMap<String, CompId> = HashMap::new();
    let mut declared_outputs: Vec<String> = Vec::new();
    let mut bound: HashMap<String, CompId> = HashMap::new();

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".model") {
            let name = rest.trim();
            if name.is_empty() {
                return Err(err(lineno, ".model requires a name"));
            }
            n.set_name(name);
        } else if let Some(rest) = line.strip_prefix(".inputs") {
            for name in rest.split_whitespace() {
                if by_name.contains_key(name) {
                    return Err(err(lineno, format!("duplicate signal `{name}`")));
                }
                let id = n.add_input(name);
                by_name.insert(name.to_owned(), id);
            }
        } else if let Some(rest) = line.strip_prefix(".outputs") {
            for name in rest.split_whitespace() {
                if declared_outputs.iter().any(|o| o == name) {
                    return Err(err(lineno, format!("duplicate output `{name}`")));
                }
                declared_outputs.push(name.to_owned());
            }
        } else if line.starts_with('.') {
            return Err(err(lineno, format!("unknown directive `{line}`")));
        } else {
            let (lhs, rhs) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, "expected `name = ...`"))?;
            let (lhs, rhs) = (lhs.trim(), rhs.trim());

            let resolve = |tok: &str, n: &mut Netlist| -> Option<CompId> {
                match tok {
                    "0" => Some(n.add_const(false)),
                    "1" => Some(n.add_const(true)),
                    _ => by_name.get(tok).copied(),
                }
            };

            let value = if let Some((op, args)) = rhs.split_once('(') {
                let args = args
                    .strip_suffix(')')
                    .ok_or_else(|| err(lineno, "missing `)`"))?;
                let operands: Vec<&str> = args.split(',').map(str::trim).collect();
                let resolved: Option<Vec<CompId>> =
                    operands.iter().map(|t| resolve(t, &mut n)).collect();
                let resolved =
                    resolved.ok_or_else(|| err(lineno, format!("undefined operand in `{rhs}`")))?;
                match (op.trim(), resolved.as_slice()) {
                    ("MAJ", &[a, b, c]) => n.add_maj([a, b, c]),
                    ("INV", &[a]) => n.add_inv(a),
                    ("BUF", &[a]) => n.add_buf(a),
                    ("FOG", &[a]) => n.add_fog(a),
                    (op, args) => {
                        return Err(err(
                            lineno,
                            format!("bad operator/arity: {op} with {} operands", args.len()),
                        ))
                    }
                }
            } else {
                resolve(rhs, &mut n)
                    .ok_or_else(|| err(lineno, format!("undefined signal `{rhs}`")))?
            };

            if declared_outputs.iter().any(|o| o == lhs) {
                if bound.insert(lhs.to_owned(), value).is_some() {
                    return Err(err(lineno, format!("output `{lhs}` bound twice")));
                }
                by_name.entry(lhs.to_owned()).or_insert(value);
            } else {
                if by_name.contains_key(lhs) {
                    return Err(err(lineno, format!("signal `{lhs}` redefined")));
                }
                by_name.insert(lhs.to_owned(), value);
            }
        }
    }

    for name in &declared_outputs {
        let id = *bound
            .get(name)
            .ok_or_else(|| err(0, format!("declared output `{name}` never bound")))?;
        n.add_output(name.clone(), id);
    }
    Ok(n)
}

/// Renders the netlist as Graphviz DOT, coloring each component by its
/// clock phase (`level mod 3`) so the three-phase wave zones of Fig 4
/// are visible at a glance.
pub fn to_dot(netlist: &Netlist) -> String {
    let levels = netlist.levels();
    let phase_color = ["#cfe8ff", "#ffe3cf", "#d8f5d0"];
    let mut out = String::new();
    out.push_str(&format!(
        "digraph \"{}\" {{\n  rankdir=BT;\n",
        netlist.name()
    ));
    for id in netlist.ids() {
        let comp = netlist.component(id);
        let (label, shape) = match comp.kind() {
            ComponentKind::Input => (
                netlist
                    .input_name(match comp {
                        Component::Input { position } => *position as usize,
                        _ => unreachable!(),
                    })
                    .to_owned(),
                "box",
            ),
            ComponentKind::Const => (
                match comp {
                    Component::Const { value } => if *value { "1" } else { "0" }.to_owned(),
                    _ => unreachable!(),
                },
                "plaintext",
            ),
            kind => (kind.to_string(), "ellipse"),
        };
        let color = phase_color[(levels[id.index()] % 3) as usize];
        out.push_str(&format!(
            "  c{} [label=\"{}\", shape={}, style=filled, fillcolor=\"{}\"];\n",
            id.index(),
            label,
            shape,
            color
        ));
        for &f in comp.fanins() {
            out.push_str(&format!("  c{} -> c{};\n", f.index(), id.index()));
        }
    }
    for (i, p) in netlist.outputs().iter().enumerate() {
        out.push_str(&format!(
            "  po{i} [label=\"{}\", shape=doubleoctagon];\n  c{} -> po{i};\n",
            p.name,
            p.driver.index()
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer_insertion::insert_buffers;
    use crate::from_mig::netlist_from_mig;

    fn sample() -> Netlist {
        let mut g = mig::Mig::with_name("rt");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let (s, cy) = g.add_full_adder(a, !b, c);
        g.add_output("sum", s);
        g.add_output("cout", !cy);
        let mut n = netlist_from_mig(&g);
        insert_buffers(&mut n);
        n
    }

    #[test]
    fn roundtrip_preserves_structure_and_function() {
        let n = sample();
        let text = write_netlist(&n);
        let parsed = parse_netlist(&text).expect("own output parses");
        assert_eq!(parsed.name(), "rt");
        assert_eq!(parsed.counts(), n.counts());
        assert_eq!(parsed.depth(), n.depth());
        for p in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(n.eval(&bits), parsed.eval(&bits));
        }
    }

    #[test]
    fn all_component_kinds_roundtrip() {
        let mut n = Netlist::new("kinds");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let k1 = n.add_const(true);
        let m = n.add_maj([a, b, k1]);
        let i = n.add_inv(m);
        let bf = n.add_buf(i);
        let f = n.add_fog(bf);
        n.add_output("o", f);
        let parsed = parse_netlist(&write_netlist(&n)).unwrap();
        assert_eq!(parsed.counts(), n.counts());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_netlist(".model x\n.inputs a\n.outputs f\nf = MAJ(a, q, 0)\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("undefined"));
        let e = parse_netlist(".model x\n.inputs a\n.outputs f\nf = INV(a, a)\n").unwrap_err();
        assert!(e.message.contains("bad operator/arity"));
        let e = parse_netlist(".model x\n.inputs a\n.outputs f g\nf = a\n").unwrap_err();
        assert!(e.message.contains("never bound"));
    }

    #[test]
    fn dot_shows_phases() {
        let n = sample();
        let dot = to_dot(&n);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("#cfe8ff"), "phase-0 color present");
        assert!(dot.contains("MAJ"));
        assert!(dot.contains("BUF"));
        assert!(dot.contains("doubleoctagon"));
    }
}
