//! Buffer insertion — Algorithm 1 of the paper (§III).
//!
//! Balances every path of the netlist so that (a) all paths between any
//! two connected components have equal length and (b) all primary
//! outputs sit at the same base distance. After the pass, **every edge
//! spans exactly one level**, which is the static condition for coherent
//! wave propagation under the three-phase clock of Fig 4.
//!
//! The implementation follows the paper's greedy: for each driving
//! component, its fan-out is sorted by the consumers' maximum exclusive
//! base distance (`getMaxxBD` / `sortFanOut` in Algorithm 1) and a
//! *single shared chain* of buffers is grown off the driver, with each
//! consumer tapping the chain at the level just below its own
//! (`lastBD` in the pseudocode tracks the chain head). Sharing one chain
//! instead of one chain per edge is what makes the greedy
//! buffer-minimal for the fixed (ASAP) level assignment, and it never
//! violates a fan-out bound `k ≥ 2` that the input netlist already
//! satisfies: a chain tap drives the consumers of one level plus at most
//! one next-chain buffer, which is at most the driver's original
//! fan-out.
//!
//! Primary outputs are handled in the same sweep by treating each output
//! as a pseudo-consumer at `max BD(outputs) + 1` (the algorithm's final
//! padding loop, lines 11–14).

use crate::component::{CompId, ComponentKind};
use crate::netlist::Netlist;

/// Statistics returned by [`insert_buffers`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BufferInsertion {
    /// Buffers inserted between internal components (first loop of
    /// Algorithm 1).
    pub balancing_buffers: usize,
    /// Buffers inserted to pad shallow outputs to the deepest output
    /// (second loop of Algorithm 1).
    pub padding_buffers: usize,
    /// Depth of the balanced netlist (= common base distance of all
    /// outputs).
    pub depth: u32,
}

impl BufferInsertion {
    /// Total buffers inserted.
    pub fn total(&self) -> usize {
        self.balancing_buffers + self.padding_buffers
    }
}

/// Runs Algorithm 1 on `netlist` in place, using its current (ASAP)
/// levels, and returns insertion statistics.
///
/// Constant cells are skipped on both sides: they carry no wave, so
/// edges from constants need no balancing, and constant-driven outputs
/// need no padding.
///
/// # Examples
///
/// ```
/// use wavepipe::{insert_buffers, verify_balance, Netlist};
///
/// let mut n = Netlist::new("skewed");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let c = n.add_input("c");
/// let g1 = n.add_maj([a, b, c]);
/// let g2 = n.add_maj([g1, a, b]); // a, b arrive 1 level early
/// n.add_output("f", g2);
///
/// let stats = insert_buffers(&mut n);
/// assert_eq!(stats.balancing_buffers, 2);
/// assert!(verify_balance(&n, None).is_ok());
/// ```
pub fn insert_buffers(netlist: &mut Netlist) -> BufferInsertion {
    insert_buffers_with_levels(netlist, &netlist.levels())
}

/// [`insert_buffers`] with an explicit level assignment.
///
/// `levels` must be *feasible*: `levels[v] ≥ levels[u] + 1` for every
/// edge `u → v` with non-constant `u`, and `levels[input] = 0`. The ASAP
/// levels from [`Netlist::levels`] are always feasible; the retiming
/// module produces alternative feasible assignments that can need fewer
/// buffers.
///
/// # Panics
///
/// Panics if `levels` is infeasible or shorter than the netlist.
pub fn insert_buffers_with_levels(netlist: &mut Netlist, levels: &[u32]) -> BufferInsertion {
    let fanout = netlist.fanout_edges();
    insert_buffers_prepared(netlist, levels, &fanout)
}

/// [`insert_buffers_with_levels`] against an already-computed fan-out
/// edge snapshot, so pipeline passes holding a fresh
/// [`StructuralCaches`](crate::netlist::StructuralCaches) view don't
/// recompute it.
///
/// # Panics
///
/// As [`insert_buffers_with_levels`]; additionally if `fanout` does not
/// cover every component.
pub fn insert_buffers_prepared(
    netlist: &mut Netlist,
    levels: &[u32],
    fanout: &[Vec<(CompId, usize)>],
) -> BufferInsertion {
    assert!(
        levels.len() >= netlist.len() && fanout.len() >= netlist.len(),
        "level assignment and fan-out snapshot must cover every component"
    );

    // The set of drivers to process is inputs ∪ gates, per Algorithm
    // 1's Union — everything present before mutation starts.
    let original_len = netlist.len();

    // Deepest non-constant output level = padding target.
    let max_output_bd = netlist
        .outputs()
        .iter()
        .filter(|p| netlist.component(p.driver).kind() != ComponentKind::Const)
        .map(|p| levels[p.driver.index()])
        .max()
        .unwrap_or(0);

    // Output uses per driver (positions into the outputs list).
    let mut output_uses: Vec<Vec<usize>> = vec![Vec::new(); original_len];
    for (pos, p) in netlist.outputs().iter().enumerate() {
        output_uses[p.driver.index()].push(pos);
    }

    let mut stats = BufferInsertion {
        depth: max_output_bd,
        ..BufferInsertion::default()
    };

    for idx in 0..original_len {
        let comp = CompId::from_index(idx);
        if netlist.component(comp).kind() == ComponentKind::Const {
            continue;
        }

        // Gather consumers: (required driver level, Use). Gate consumers
        // need a driver at their level − 1; output uses need a driver at
        // the padding target.
        enum Use {
            Gate { consumer: CompId, slot: usize },
            Output { position: usize },
        }
        let mut uses: Vec<(u32, Use)> = fanout[idx]
            .iter()
            .map(|&(consumer, slot)| (levels[consumer.index()] - 1, Use::Gate { consumer, slot }))
            .collect();
        for &position in &output_uses[idx] {
            uses.push((max_output_bd, Use::Output { position }));
        }
        if uses.is_empty() {
            continue;
        }

        // Algorithm 1: sortFanOut by max xBD (ascending required level).
        uses.sort_by_key(|&(required, _)| required);

        // Grow one shared chain; `last_bd` is the level of the chain
        // head (initially the component itself).
        let mut chain_head = comp;
        let mut last_bd = levels[idx];
        for (required, u) in uses {
            assert!(
                required >= levels[idx],
                "infeasible level assignment: consumer below its driver"
            );
            while last_bd < required {
                chain_head = netlist.add_buf(chain_head);
                last_bd += 1;
                match u {
                    Use::Gate { .. } => stats.balancing_buffers += 1,
                    Use::Output { .. } => stats.padding_buffers += 1,
                }
            }
            match u {
                Use::Gate { consumer, slot } => {
                    netlist.component_mut(consumer).fanins_mut()[slot] = chain_head;
                }
                Use::Output { position } => {
                    netlist.set_output_driver(position, chain_head);
                }
            }
        }
    }
    stats
}

/// Pipeline pass wrapping [`insert_buffers`] (Algorithm 1 against ASAP
/// levels — the paper's reference strategy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferInsertionPass;

impl crate::pipeline::Pass for BufferInsertionPass {
    fn name(&self) -> String {
        "insert_buffers(asap)".to_owned()
    }

    fn kind(&self) -> crate::pipeline::PassKind {
        crate::pipeline::PassKind::BufferInsertion
    }

    fn run(
        &self,
        ctx: &mut crate::pipeline::FlowContext<'_>,
    ) -> Result<(), crate::pipeline::PassError> {
        let levels = ctx.levels();
        let fanout = ctx.fanout_edges();
        let stats = insert_buffers_prepared(ctx.netlist_mut(), &levels, &fanout);
        ctx.buffers = Some(stats);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::verify_balance;
    use crate::from_mig::netlist_from_mig;

    fn eval_all(netlist: &Netlist, n: usize) -> Vec<Vec<bool>> {
        (0..1u32 << n)
            .map(|p| {
                let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
                netlist.eval(&bits)
            })
            .collect()
    }

    #[test]
    fn already_balanced_netlist_needs_no_buffers() {
        let mut n = Netlist::new("bal");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g = n.add_maj([a, b, c]);
        n.add_output("f", g);
        let stats = insert_buffers(&mut n);
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.depth, 1);
        assert!(verify_balance(&n, None).is_ok());
    }

    #[test]
    fn skewed_edge_gets_buffers() {
        let mut n = Netlist::new("skew");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_maj([a, b, c]);
        let g2 = n.add_maj([g1, a, b]);
        n.add_output("f", g2);
        let before = eval_all(&n, 3);
        let stats = insert_buffers(&mut n);
        // a and b each need 1 buffer to reach level 1 before g2.
        assert_eq!(stats.balancing_buffers, 2);
        assert_eq!(stats.padding_buffers, 0);
        assert!(verify_balance(&n, None).is_ok());
        assert_eq!(eval_all(&n, 3), before, "buffers are transparent");
    }

    #[test]
    fn chain_is_shared_across_consumers() {
        // One driver feeding consumers at levels 2, 3, 4 should build
        // one chain of 3 buffers with taps, not 1+2+3 = 6 buffers.
        let mut n = Netlist::new("share");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let l1 = n.add_maj([a, b, c]);
        let l2 = n.add_maj([l1, a, b]); // consumes a at level 2
        let l3 = n.add_maj([l2, a, c]); // consumes a at level 3
        n.add_output("f", l3);
        let before = eval_all(&n, 3);
        let stats = insert_buffers(&mut n);
        // `a` needs taps at levels 1 and 2 → 2 buffers (shared chain);
        // b: tap at level 1 (for l2): 1 buffer; c: tap at level 2 (for
        // l3): 2 buffers; plus l1→l2 and l2→l3 are tight already.
        assert_eq!(stats.balancing_buffers, 5);
        assert!(verify_balance(&n, None).is_ok());
        assert_eq!(eval_all(&n, 3), before);
    }

    #[test]
    fn outputs_are_padded_to_common_depth() {
        let mut n = Netlist::new("pad");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_maj([a, b, c]);
        let g2 = n.add_maj([g1, a, b]);
        n.add_output("deep", g2);
        n.add_output("shallow", g1);
        let before = eval_all(&n, 3);
        let stats = insert_buffers(&mut n);
        assert_eq!(stats.padding_buffers, 1, "shallow output padded by 1");
        assert!(verify_balance(&n, None).is_ok());
        assert_eq!(eval_all(&n, 3), before);
    }

    #[test]
    fn constant_outputs_are_ignored() {
        let mut n = Netlist::new("c");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let k1 = n.add_const(true);
        let g = n.add_maj([a, b, c]);
        n.add_output("f", g);
        n.add_output("k", k1);
        let stats = insert_buffers(&mut n);
        assert_eq!(stats.total(), 0);
        assert!(verify_balance(&n, None).is_ok());
    }

    #[test]
    fn respects_fanout_limit_of_prerestricted_netlist() {
        // Driver with fan-out 3 to different levels; after buffering the
        // max fan-out must not exceed 3.
        let mut n = Netlist::new("fo3");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_maj([a, b, c]);
        let g2 = n.add_maj([g1, b, c]);
        let g3 = n.add_maj([g2, a, b]); // `a` used at levels 1, 3 — fan-out 2… keep ≤ 3
        n.add_output("f", g3);
        let max_before = n.max_fanout();
        insert_buffers(&mut n);
        assert!(max_before <= 3);
        assert!(
            n.max_fanout() <= 3,
            "buffering must not blow the fan-out bound"
        );
        assert!(verify_balance(&n, Some(3)).is_ok());
    }

    #[test]
    fn mapped_mig_balances_and_preserves_function() {
        let mut g = mig::Mig::new();
        let x = g.add_inputs("x", 4);
        let (s0, c0) = g.add_full_adder(x[0], x[1], x[2]);
        let (s1, c1) = g.add_full_adder(s0, c0, x[3]);
        g.add_output("s", s1);
        g.add_output("c", c1);
        let mut n = netlist_from_mig(&g);
        let before = eval_all(&n, 4);
        let stats = insert_buffers(&mut n);
        assert!(stats.total() > 0);
        assert!(verify_balance(&n, None).is_ok());
        assert_eq!(eval_all(&n, 4), before);
    }

    #[test]
    fn buffer_count_matches_gap_sum_on_a_fanout_free_chain() {
        // Without fan-out sharing opportunities, the buffer count is the
        // sum of level gaps minus edges.
        let mut n = Netlist::new("gaps");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let d = n.add_input("d");
        let g1 = n.add_maj([a, b, c]); // level 1
        let g2 = n.add_maj([g1, g1, g1]); // degenerate but level 2
        let g3 = n.add_maj([g2, g2, d]); // d jumps 0 → 2: 2 buffers
        n.add_output("f", g3);
        let stats = insert_buffers(&mut n);
        assert_eq!(stats.balancing_buffers, 2);
    }
}
