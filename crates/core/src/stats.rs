//! Pipeline-schedule statistics: which components fire in which clock
//! phase, how wide each level is, and how the waves occupy the netlist
//! — the planning data a physical implementation of the Fig 4 clocking
//! scheme needs.

use std::fmt;

use crate::component::ComponentKind;
use crate::netlist::Netlist;

/// Per-level and per-phase occupancy of a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Number of priced components at each level (index = level; level 0
    /// holds none — inputs and constants are not priced).
    pub level_widths: Vec<usize>,
    /// Number of priced components driven by each of the three clock
    /// phases (`level mod 3`).
    pub phase_loads: [usize; 3],
    /// Netlist depth.
    pub depth: u32,
}

impl Schedule {
    /// Computes the schedule of `netlist`.
    pub fn of(netlist: &Netlist) -> Schedule {
        let levels = netlist.levels();
        let depth = netlist.depth();
        let mut level_widths = vec![0usize; depth as usize + 1];
        let mut phase_loads = [0usize; 3];
        for id in netlist.ids() {
            if !netlist.component(id).kind().is_priced() {
                continue;
            }
            let l = levels[id.index()] as usize;
            if l < level_widths.len() {
                level_widths[l] += 1;
            }
            phase_loads[l % 3] += 1;
        }
        Schedule {
            level_widths,
            phase_loads,
            depth,
        }
    }

    /// Widest level (the wavefront bottleneck a clock driver must
    /// switch simultaneously).
    pub fn max_level_width(&self) -> usize {
        self.level_widths.iter().copied().max().unwrap_or(0)
    }

    /// Ratio of the heaviest to the lightest phase load (1.0 = perfectly
    /// balanced clock network load).
    ///
    /// Returns `f64::INFINITY` when a phase drives nothing.
    pub fn phase_imbalance(&self) -> f64 {
        let max = *self.phase_loads.iter().max().expect("three phases") as f64;
        let min = *self.phase_loads.iter().min().expect("three phases") as f64;
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// On a *balanced* netlist: the number of components a single wave
    /// occupies at one instant (one level's width per phase the wave
    /// currently touches).
    pub fn mean_level_width(&self) -> f64 {
        let active: Vec<usize> = self
            .level_widths
            .iter()
            .copied()
            .filter(|&w| w > 0)
            .collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<usize>() as f64 / active.len() as f64
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "depth {}, phase loads φ1/φ2/φ3 = {}/{}/{}, widest level {}",
            self.depth,
            self.phase_loads[1],
            self.phase_loads[2],
            self.phase_loads[0],
            self.max_level_width()
        )
    }
}

/// Summary of how a netlist changed through the flow, per kind — the
/// per-benchmark row behind Fig 8.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GrowthReport {
    /// Original priced size.
    pub original_size: usize,
    /// Transformed priced size.
    pub transformed_size: usize,
    /// Buffers added.
    pub buffers_added: usize,
    /// Fan-out gates added.
    pub fogs_added: usize,
    /// Depth before.
    pub depth_before: u32,
    /// Depth after.
    pub depth_after: u32,
}

impl GrowthReport {
    /// Builds the report from a before/after netlist pair.
    ///
    /// # Panics
    ///
    /// Panics if the transformed netlist has fewer buffers/FOGs than the
    /// original (the flow only adds components).
    pub fn between(original: &Netlist, transformed: &Netlist) -> GrowthReport {
        let (o, t) = (original.counts(), transformed.counts());
        assert!(
            t.buf >= o.buf && t.fog >= o.fog,
            "flow only adds components"
        );
        GrowthReport {
            original_size: o.priced_total(),
            transformed_size: t.priced_total(),
            buffers_added: t.buf - o.buf,
            fogs_added: t.fog - o.fog,
            depth_before: original.depth(),
            depth_after: transformed.depth(),
        }
    }

    /// Normalized size (the Fig 8 quantity).
    pub fn size_ratio(&self) -> f64 {
        self.transformed_size as f64 / self.original_size.max(1) as f64
    }
}

/// Counts components of one kind at each level (e.g. where the buffers
/// ended up) — useful for floorplanning wave pipelines.
pub fn kind_level_profile(netlist: &Netlist, kind: ComponentKind) -> Vec<usize> {
    let levels = netlist.levels();
    let depth = netlist.depth() as usize;
    let mut profile = vec![0usize; depth + 1];
    for id in netlist.ids() {
        if netlist.component(id).kind() == kind {
            let l = levels[id.index()] as usize;
            if l < profile.len() {
                profile[l] += 1;
            }
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer_insertion::insert_buffers;
    use crate::from_mig::netlist_from_mig;

    fn balanced_sample() -> Netlist {
        let g = mig::random_mig(mig::RandomMigConfig {
            inputs: 10,
            outputs: 5,
            gates: 120,
            depth: 9,
            seed: 70,
        });
        let mut n = netlist_from_mig(&g);
        insert_buffers(&mut n);
        n
    }

    #[test]
    fn schedule_counts_every_priced_component() {
        let n = balanced_sample();
        let s = Schedule::of(&n);
        let total: usize = s.level_widths.iter().sum();
        assert_eq!(total, n.counts().priced_total());
        assert_eq!(s.phase_loads.iter().sum::<usize>(), total);
        assert_eq!(s.depth, n.depth());
        assert!(s.max_level_width() >= s.mean_level_width() as usize);
    }

    #[test]
    fn balanced_netlists_have_finite_phase_imbalance() {
        let n = balanced_sample();
        let s = Schedule::of(&n);
        assert!(s.phase_imbalance().is_finite());
        assert!(s.phase_imbalance() >= 1.0);
    }

    #[test]
    fn empty_level_zero() {
        let n = balanced_sample();
        let s = Schedule::of(&n);
        assert_eq!(s.level_widths[0], 0, "inputs/constants are not priced");
    }

    #[test]
    fn growth_report_tracks_the_flow() {
        let g = mig::random_mig(mig::RandomMigConfig {
            inputs: 10,
            outputs: 5,
            gates: 150,
            depth: 9,
            seed: 71,
        });
        let r = crate::flow::run_flow(&g, crate::flow::FlowConfig::default()).unwrap();
        let report = GrowthReport::between(&r.original, &r.pipelined);
        assert_eq!(report.buffers_added, r.buffers.unwrap().total());
        assert_eq!(report.fogs_added, r.fanout.unwrap().fogs_inserted);
        assert!(report.size_ratio() > 1.0);
        assert!(report.depth_after >= report.depth_before);
    }

    #[test]
    fn buffer_profile_sums_to_buffer_count() {
        let n = balanced_sample();
        let profile = kind_level_profile(&n, ComponentKind::Buf);
        assert_eq!(profile.iter().sum::<usize>(), n.counts().buf);
        assert_eq!(profile[0], 0);
    }

    #[test]
    fn display_is_informative() {
        let n = balanced_sample();
        let line = Schedule::of(&n).to_string();
        assert!(line.contains("depth"));
        assert!(line.contains("phase loads"));
    }
}
