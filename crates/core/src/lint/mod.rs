//! # Static analysis: wave-pipelining legality and hygiene lints
//!
//! The dynamic checks of the flow (differential simulation, the verify
//! pass) *sample* behavior; this module proves or refutes the paper's
//! structural legality conditions without simulating anything. A
//! [`LintRule`] inspects one artifact layer through a [`LintContext`]
//! and emits machine-readable [`Diagnostic`]s with stable codes:
//!
//! | Code range | Category | Layer |
//! |---|---|---|
//! | `WP0xx` | [`Category::Netlist`] | mapped/pipelined netlist legality |
//! | `MIG0xx` | [`Category::Graph`] | source-MIG hygiene |
//! | `SPEC0xx` | [`Category::Spec`] | flow-spec / cost-table checks |
//!
//! Three integration points:
//!
//! * [`FlowPipelineBuilder::gate_lints`](crate::FlowPipelineBuilder::gate_lints)
//!   re-lints the working netlist after every pass and fails the run
//!   with [`PassError::Lint`](crate::PassError::Lint) on error-severity
//!   findings (rules are chosen by pipeline progress: structural rules
//!   always, the fan-out rule once restriction ran, the balance rules
//!   once buffer insertion ran).
//! * [`Engine::run_streaming`](crate::Engine::run_streaming) lints the
//!   [`FlowSpec`] before anything executes and rejects
//!   error-severity findings with
//!   [`FlowError::Lint`](crate::FlowError::Lint).
//! * The `wavecheck` binary (in `crates/bench`) lints any benchmark
//!   name, `synth:` grammar circuit, inline MIG text or spec file and
//!   emits human or `--json` reports.
//!
//! Entry points for library users: [`lint_netlist`], [`lint_mig`],
//! [`lint_spec`], or a hand-assembled [`LintDriver`].

use std::cell::RefCell;
use std::sync::Arc;

use mig::Mig;

use crate::cost::CostTable;
use crate::netlist::{Netlist, NetlistError, StructuralCaches};
use crate::spec::FlowSpec;
use crate::CompId;

pub mod diagnostics;
mod driver;
pub mod rules;

pub use diagnostics::{Category, Diagnostic, LintFailure, Severity};
pub use driver::{
    lint_mig, lint_netlist, lint_spec, LintDriver, LintReport, LintTotals, SubjectReport,
    LINT_SCHEMA_VERSION,
};

/// Everything a rule may inspect. Every field is optional: a rule whose
/// subject is absent returns no diagnostics, so one driver can run any
/// rule set over any artifact combination.
#[derive(Debug, Default)]
pub struct LintContext<'a> {
    netlist: Option<&'a Netlist>,
    graph: Option<&'a Mig>,
    spec: Option<&'a FlowSpec>,
    cost: Option<&'a CostTable>,
    fanout_limit: Option<u32>,
    caches: RefCell<StructuralCaches>,
}

impl<'a> LintContext<'a> {
    /// An empty context; chain `with_*` builders to populate it.
    pub fn new() -> LintContext<'a> {
        LintContext::default()
    }

    /// Lints `netlist` (enables the `WP0xx` rules).
    pub fn with_netlist(mut self, netlist: &'a Netlist) -> LintContext<'a> {
        self.netlist = Some(netlist);
        self.caches = RefCell::new(StructuralCaches::default());
        self
    }

    /// Lints `graph` (enables the `MIG0xx` rules).
    pub fn with_graph(mut self, graph: &'a Mig) -> LintContext<'a> {
        self.graph = Some(graph);
        self
    }

    /// Lints `spec` (enables the `SPEC0xx` rules).
    pub fn with_spec(mut self, spec: &'a FlowSpec) -> LintContext<'a> {
        self.spec = Some(spec);
        self
    }

    /// A cost table to check (in addition to any the spec carries).
    pub fn with_cost(mut self, cost: &'a CostTable) -> LintContext<'a> {
        self.cost = Some(cost);
        self
    }

    /// The configured §IV fan-out limit the netlist must respect
    /// (enables `WP003`).
    pub fn with_fanout_limit(mut self, limit: Option<u32>) -> LintContext<'a> {
        self.fanout_limit = limit;
        self
    }

    /// The netlist under lint, if any.
    pub fn netlist(&self) -> Option<&'a Netlist> {
        self.netlist
    }

    /// The MIG under lint, if any.
    pub fn graph(&self) -> Option<&'a Mig> {
        self.graph
    }

    /// The spec under lint, if any.
    pub fn spec(&self) -> Option<&'a FlowSpec> {
        self.spec
    }

    /// The standalone cost table under lint, if any.
    pub fn cost(&self) -> Option<&'a CostTable> {
        self.cost
    }

    /// The configured fan-out limit, if any.
    pub fn fanout_limit(&self) -> Option<u32> {
        self.fanout_limit
    }

    /// The name of whatever is being linted, for diagnostic subjects.
    pub fn subject(&self) -> String {
        if let Some(n) = self.netlist {
            n.name().to_owned()
        } else if let Some(g) = self.graph {
            g.name().to_owned()
        } else if let Some(s) = self.spec {
            s.name.clone()
        } else if let Some(c) = self.cost {
            c.name().to_owned()
        } else {
            String::new()
        }
    }

    /// Whether every fan-in and output-driver reference of the netlist
    /// is in bounds. The traversal helpers below index by component id,
    /// so on a malformed netlist (WP005's finding) they must bail out
    /// instead of panicking the linter.
    fn netlist_refs_in_bounds(&self, netlist: &Netlist) -> bool {
        let n = netlist.len();
        netlist
            .ids()
            .all(|id| netlist.component(id).fanins().iter().all(|f| f.index() < n))
            && netlist.outputs().iter().all(|p| p.driver.index() < n)
    }

    /// Cached topological order of the netlist under lint. `None` when
    /// no netlist is attached or the netlist holds out-of-bounds
    /// references (WP005 reports those); `Some(Err(_))` on a
    /// combinational cycle (which `WP004` reports — order-dependent
    /// rules skip then).
    pub fn try_topo_order(&self) -> Option<Result<Arc<Vec<CompId>>, NetlistError>> {
        let netlist = self.netlist?;
        if !self.netlist_refs_in_bounds(netlist) {
            return None;
        }
        Some(self.caches.borrow_mut().try_topo_order(netlist))
    }

    /// Cached ASAP levels of the netlist under lint (`None` when
    /// absent, malformed or cyclic).
    pub fn levels(&self) -> Option<Arc<Vec<u32>>> {
        let netlist = self.netlist?;
        if !self.netlist_refs_in_bounds(netlist) {
            return None;
        }
        self.caches.borrow_mut().try_levels(netlist).ok()
    }

    /// Cached fan-out counts of the netlist under lint (`None` when
    /// absent or malformed).
    pub fn fanout_counts(&self) -> Option<Arc<Vec<u32>>> {
        let netlist = self.netlist?;
        if !self.netlist_refs_in_bounds(netlist) {
            return None;
        }
        Some(self.caches.borrow_mut().fanout_counts(netlist))
    }
}

/// One static check with a stable code.
///
/// Implementations are stateless unit structs registered in
/// [`LintDriver::all`]; `check` inspects whatever slice of the
/// [`LintContext`] the rule cares about and returns zero or more
/// [`Diagnostic`]s (always zero when the rule's subject is absent from
/// the context).
///
/// ```
/// use wavepipe::lint::{Category, Diagnostic, LintContext, LintRule, Severity};
///
/// /// Flags netlists with no outputs at all.
/// #[derive(Debug)]
/// struct NoOutputs;
///
/// impl LintRule for NoOutputs {
///     fn id(&self) -> &'static str {
///         "WP900"
///     }
///     fn category(&self) -> Category {
///         Category::Netlist
///     }
///     fn severity(&self) -> Severity {
///         Severity::Warning
///     }
///     fn description(&self) -> &'static str {
///         "netlist drives no outputs"
///     }
///     fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
///         match ctx.netlist() {
///             Some(n) if n.outputs().is_empty() => {
///                 vec![self.diagnostic(ctx, "no outputs declared".to_owned(), None)]
///             }
///             _ => Vec::new(),
///         }
///     }
/// }
///
/// let netlist = wavepipe::Netlist::new("empty");
/// let ctx = LintContext::new().with_netlist(&netlist);
/// assert_eq!(NoOutputs.check(&ctx).len(), 1);
/// ```
pub trait LintRule: Send + Sync {
    /// Stable rule code (`WP001`, `MIG003`, `SPEC002`, …). Codes are
    /// part of the report schema; never renumber an existing rule.
    fn id(&self) -> &'static str;

    /// The artifact layer this rule inspects.
    fn category(&self) -> Category;

    /// Severity of every diagnostic this rule emits.
    fn severity(&self) -> Severity;

    /// One-line description for rule listings and docs.
    fn description(&self) -> &'static str;

    /// Runs the rule. Must return an empty vector when the context
    /// lacks the rule's subject.
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic>;

    /// Builds a diagnostic pre-filled with this rule's code, severity,
    /// category and the context's subject name.
    fn diagnostic(
        &self,
        ctx: &LintContext<'_>,
        message: String,
        provenance: Option<String>,
    ) -> Diagnostic {
        Diagnostic {
            code: self.id().to_owned(),
            severity: self.severity(),
            category: self.category(),
            message,
            subject: ctx.subject(),
            provenance,
        }
    }
}
