//! The rule registry and the report types `wavecheck --json` emits.

use std::fmt;

use serde::{Serialize, Value};

use crate::lint::rules::{mig as mig_rules, netlist as netlist_rules, spec as spec_rules};
use crate::lint::{Diagnostic, LintContext, LintRule, Severity};

/// Schema version stamped into every [`LintReport`]; bump on any
/// field-shape change (the golden schema test pins the current shape).
pub const LINT_SCHEMA_VERSION: u32 = 1;

/// A configured set of rules to run over a [`LintContext`].
pub struct LintDriver {
    rules: Vec<Box<dyn LintRule>>,
}

impl fmt::Debug for LintDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LintDriver")
            .field("rules", &self.codes())
            .finish()
    }
}

impl Default for LintDriver {
    fn default() -> LintDriver {
        LintDriver::all()
    }
}

impl LintDriver {
    /// Every built-in rule, in code order.
    pub fn all() -> LintDriver {
        LintDriver {
            rules: vec![
                Box::new(netlist_rules::PathBalance),
                Box::new(netlist_rules::OutputAlignment),
                Box::new(netlist_rules::FanoutLimit),
                Box::new(netlist_rules::CombinationalCycle),
                Box::new(netlist_rules::MalformedStructure),
                Box::new(netlist_rules::UnreachableComponents),
                Box::new(netlist_rules::RedundantCells),
                Box::new(mig_rules::ReducibleGates),
                Box::new(mig_rules::StrashDuplicates),
                Box::new(mig_rules::DeadNodes),
                Box::new(mig_rules::LevelInconsistency),
                Box::new(spec_rules::PipelineSmells),
                Box::new(spec_rules::CostCompleteness),
                Box::new(spec_rules::DuplicateCircuits),
            ],
        }
    }

    /// The subset of built-in rules whose codes appear in `codes`
    /// (unknown codes are ignored).
    pub fn with_codes(codes: &[&str]) -> LintDriver {
        let mut all = LintDriver::all();
        all.rules.retain(|r| codes.contains(&r.id()));
        LintDriver { rules: all.rules }
    }

    /// The codes of the configured rules, in registry order.
    pub fn codes(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.id()).collect()
    }

    /// The configured rules.
    pub fn rules(&self) -> impl Iterator<Item = &dyn LintRule> {
        self.rules.iter().map(Box::as_ref)
    }

    /// Runs every configured rule over `ctx`, most severe findings
    /// first (stable within one severity: registry rule order).
    pub fn run(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut diagnostics: Vec<Diagnostic> =
            self.rules.iter().flat_map(|rule| rule.check(ctx)).collect();
        diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
        diagnostics
    }
}

/// Lints one netlist with every `WP0xx` rule. Pass the configured §IV
/// fan-out limit to enable `WP003`.
pub fn lint_netlist(netlist: &crate::Netlist, fanout_limit: Option<u32>) -> Vec<Diagnostic> {
    let ctx = LintContext::new()
        .with_netlist(netlist)
        .with_fanout_limit(fanout_limit);
    LintDriver::all().run(&ctx)
}

/// Lints one MIG with every `MIG0xx` rule.
pub fn lint_mig(graph: &mig::Mig) -> Vec<Diagnostic> {
    let ctx = LintContext::new().with_graph(graph);
    LintDriver::all().run(&ctx)
}

/// Lints one flow spec (pass list, circuits, technology tables) with
/// every `SPEC0xx` rule — the same check [`crate::Engine::run_streaming`]
/// performs before executing a spec.
pub fn lint_spec(spec: &crate::FlowSpec) -> Vec<Diagnostic> {
    let ctx = LintContext::new().with_spec(spec);
    LintDriver::all().run(&ctx)
}

/// Severity tallies of one report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct LintTotals {
    /// Error-severity diagnostics.
    pub errors: u64,
    /// Warning-severity diagnostics.
    pub warnings: u64,
    /// Info-severity diagnostics.
    pub infos: u64,
}

impl LintTotals {
    /// Tallies a diagnostic set.
    pub fn of(diagnostics: &[Diagnostic]) -> LintTotals {
        let mut totals = LintTotals::default();
        for d in diagnostics {
            match d.severity {
                Severity::Error => totals.errors += 1,
                Severity::Warning => totals.warnings += 1,
                Severity::Info => totals.infos += 1,
            }
        }
        totals
    }
}

/// One linted subject (a circuit, a spec file) inside a [`LintReport`].
#[derive(Clone, Debug)]
pub struct SubjectReport {
    /// What was linted (benchmark name, `synth:` name, file path).
    pub subject: String,
    /// Every diagnostic, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl Serialize for SubjectReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("subject".to_owned(), self.subject.to_value()),
            ("diagnostics".to_owned(), self.diagnostics.to_value()),
        ])
    }
}

/// The machine-readable report `wavecheck --json` emits.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Report schema version ([`LINT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The §IV fan-out limit the netlists were checked against, if any.
    pub fanout_limit: Option<u32>,
    /// Per-subject findings, in lint order.
    pub subjects: Vec<SubjectReport>,
    /// Severity tallies over all subjects.
    pub totals: LintTotals,
}

impl LintReport {
    /// Assembles a report from per-subject diagnostic sets, computing
    /// the totals and stamping the current schema version.
    pub fn new(fanout_limit: Option<u32>, subjects: Vec<SubjectReport>) -> LintReport {
        let mut totals = LintTotals::default();
        for s in &subjects {
            let t = LintTotals::of(&s.diagnostics);
            totals.errors += t.errors;
            totals.warnings += t.warnings;
            totals.infos += t.infos;
        }
        LintReport {
            schema_version: LINT_SCHEMA_VERSION,
            fanout_limit,
            subjects,
            totals,
        }
    }

    /// Whether the report carries no error-severity diagnostics.
    pub fn is_clean(&self) -> bool {
        self.totals.errors == 0
    }
}

impl Serialize for LintReport {
    fn to_value(&self) -> Value {
        let mut entries = vec![("schema_version".to_owned(), self.schema_version.to_value())];
        if let Some(limit) = self.fanout_limit {
            entries.push(("fanout_limit".to_owned(), limit.to_value()));
        }
        entries.push(("subjects".to_owned(), self.subjects.to_value()));
        entries.push(("totals".to_owned(), self.totals.to_value()));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Category;

    #[test]
    fn registry_codes_are_unique_and_complete() {
        let driver = LintDriver::all();
        let codes = driver.codes();
        assert_eq!(codes.len(), 14);
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len(), "duplicate rule code");
        for rule in driver.rules() {
            let prefix = match rule.category() {
                Category::Netlist => "WP",
                Category::Graph => "MIG",
                Category::Spec => "SPEC",
            };
            assert!(
                rule.id().starts_with(prefix),
                "{} should start with {prefix}",
                rule.id()
            );
            assert!(!rule.description().is_empty());
        }
    }

    #[test]
    fn with_codes_filters() {
        let driver = LintDriver::with_codes(&["WP001", "MIG003", "NOPE"]);
        assert_eq!(driver.codes(), ["WP001", "MIG003"]);
    }

    #[test]
    fn empty_context_is_silent() {
        assert!(LintDriver::all().run(&LintContext::new()).is_empty());
    }
}
