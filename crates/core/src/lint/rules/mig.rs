//! Source-MIG hygiene rules (`MIG0xx`).
//!
//! [`mig::Mig::add_maj`] constant-folds, axiom-normalizes and
//! structurally hashes every gate it builds, so graphs assembled
//! through the public API cannot trip `MIG001`/`MIG002` — those rules
//! are defense in depth for graphs arriving from foreign tools or
//! hand-edited `.mig` text, and they pin the normalizer's contract.
//! Dead gates (`MIG003`) *are* constructible (build a gate, never
//! output it), and `MIG004` guards the arena's topological storage
//! invariant everything else assumes.

use std::collections::HashMap;

use mig::{Node, Signal};

use crate::lint::rules::capped;
use crate::lint::{Category, Diagnostic, LintContext, LintRule, Severity};

/// `MIG001` — no majority gates reducible by the Ω axioms.
///
/// A gate with two or more constant fan-ins is a constant or a wire
/// (`⟨0 0 c⟩ = 0`, `⟨0 1 c⟩ = c`); a gate with a repeated fan-in
/// reduces by majority (`⟨a a c⟩ = a`) and a complementary pair by
/// resolution (`⟨a ā c⟩ = c`). The normalizing constructor folds all of
/// these, so a surviving instance means the graph bypassed it.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReducibleGates;

impl LintRule for ReducibleGates {
    fn id(&self) -> &'static str {
        "MIG001"
    }

    fn category(&self) -> Category {
        Category::Graph
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn description(&self) -> &'static str {
        "no gates the Ω axioms (const / duplicate fan-ins) would fold"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(graph) = ctx.graph() else {
            return Vec::new();
        };
        let mut found = Vec::new();
        for id in graph.gate_ids() {
            let Node::Majority([a, b, c]) = *graph.node(id) else {
                continue;
            };
            let consts = [a, b, c].iter().filter(|s| s.is_const()).count();
            let axiom = if consts >= 2 {
                Some("two constant fan-ins: the gate is a constant or a wire")
            } else if a == b || b == c || a == c {
                Some("repeated fan-in: majority of ⟨a a c⟩ is a")
            } else if a.node() == b.node() || b.node() == c.node() || a.node() == c.node() {
                Some("complementary fan-in pair: ⟨a ā c⟩ resolves to c")
            } else {
                None
            };
            if let Some(axiom) = axiom {
                found.push(self.diagnostic(
                    ctx,
                    format!("n{}: {axiom}", id.index()),
                    Some(format!("n{}", id.index())),
                ));
            }
        }
        capped(found)
    }
}

/// `MIG002` — no structural duplicates the strash table should merge.
///
/// Two gates with identical (sorted) fan-in triples compute the same
/// function; the structural-hash table exists to share them. Duplicates
/// inflate size, defeat cone-level caching (two hashes for one
/// function) and skew every size metric.
#[derive(Clone, Copy, Debug, Default)]
pub struct StrashDuplicates;

impl LintRule for StrashDuplicates {
    fn id(&self) -> &'static str {
        "MIG002"
    }

    fn category(&self) -> Category {
        Category::Graph
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn description(&self) -> &'static str {
        "no two gates share one fan-in triple"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(graph) = ctx.graph() else {
            return Vec::new();
        };
        let mut seen: HashMap<[Signal; 3], usize> = HashMap::new();
        let mut found = Vec::new();
        for id in graph.gate_ids() {
            let Node::Majority(fanins) = *graph.node(id) else {
                continue;
            };
            match seen.get(&fanins) {
                Some(&first) => found.push(self.diagnostic(
                    ctx,
                    format!(
                        "n{} duplicates n{first}: identical fan-in triple",
                        id.index()
                    ),
                    Some(format!("n{}", id.index())),
                )),
                None => {
                    seen.insert(fanins, id.index());
                }
            }
        }
        capped(found)
    }
}

/// `MIG003` — no dead gates.
///
/// Gates no output transitively reads never influence any function the
/// graph computes, yet they are mapped, fan-out-restricted and buffered
/// like live logic; [`mig::Mig::cleanup`] would drop them.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeadNodes;

impl LintRule for DeadNodes {
    fn id(&self) -> &'static str {
        "MIG003"
    }

    fn category(&self) -> Category {
        Category::Graph
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn description(&self) -> &'static str {
        "every gate is reachable from some output"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(graph) = ctx.graph() else {
            return Vec::new();
        };
        let counts = graph.fanout_counts();
        let mut found = Vec::new();
        for id in graph.gate_ids() {
            if counts[id.index()] == 0 {
                found.push(self.diagnostic(
                    ctx,
                    format!("n{} drives no gate and no output", id.index()),
                    Some(format!("n{}", id.index())),
                ));
            }
        }
        capped(found)
    }
}

/// `MIG004` — arena fan-ins point strictly backwards.
///
/// The node arena is stored in topological order: every fan-in of node
/// `i` must reference a node `< i`. All traversals (levels, simulation
/// plans, cone hashing) assume it; a forward or self reference makes
/// them read garbage or loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct LevelInconsistency;

impl LintRule for LevelInconsistency {
    fn id(&self) -> &'static str {
        "MIG004"
    }

    fn category(&self) -> Category {
        Category::Graph
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "the node arena is topologically ordered (fan-ins point backwards)"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(graph) = ctx.graph() else {
            return Vec::new();
        };
        let mut found = Vec::new();
        for id in graph.gate_ids() {
            let Node::Majority(fanins) = *graph.node(id) else {
                continue;
            };
            for signal in fanins {
                if signal.node().index() >= id.index() {
                    found.push(self.diagnostic(
                        ctx,
                        format!(
                            "n{} reads n{}, which is not strictly before it in the arena",
                            id.index(),
                            signal.node().index()
                        ),
                        Some(format!("n{}", id.index())),
                    ));
                }
            }
        }
        capped(found)
    }
}
