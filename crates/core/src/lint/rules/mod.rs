//! The built-in rule set, one module per [`Category`](super::Category).
//!
//! | Code | Severity | Checks |
//! |---|---|---|
//! | `WP001` | error | every input→component path has equal length (the wave-pipelining invariant) |
//! | `WP002` | error | all outputs aligned at one common depth |
//! | `WP003` | error | fan-out bounded by the configured §IV limit |
//! | `WP004` | error | no combinational cycles |
//! | `WP005` | error | structurally well-formed (drivers/fanins in bounds, const registry sane) |
//! | `WP006` | warning | no unreachable (dead) components |
//! | `WP007` | warning | no redundant cells (const-fed buffers, double inverters, single-consumer FOGs) |
//! | `MIG001` | warning | no majority gates reducible by the Ω axioms (const/duplicate fan-ins) |
//! | `MIG002` | warning | no structurally-duplicate gates the strash table should have merged |
//! | `MIG003` | warning | no dead gates unreachable from any output |
//! | `MIG004` | error | arena fan-ins point strictly backwards (topological storage invariant) |
//! | `SPEC001` | warning | pass-list smells (never verifies; verify bound ≠ restriction limit) |
//! | `SPEC002` | error/warning | cost tables are complete: positive phase delay (error), positive per-kind area/delay for the cells in play (warning) |
//! | `SPEC003` | warning | no duplicate circuit entries |

pub mod mig;
pub mod netlist;
pub mod spec;

use super::Diagnostic;

/// Cap per-rule reports: a badly broken artifact can violate a rule at
/// thousands of sites, and a bounded report stays readable (and keeps
/// `wavecheck --json` output proportional to the defect, not the
/// circuit). The tail is folded into one summary diagnostic.
pub(crate) const MAX_REPORTED: usize = 16;

/// Truncates `found` to [`MAX_REPORTED`] diagnostics, appending one
/// summary diagnostic describing how many were dropped.
pub(crate) fn capped(mut found: Vec<Diagnostic>) -> Vec<Diagnostic> {
    if found.len() > MAX_REPORTED {
        let dropped = found.len() - MAX_REPORTED;
        found.truncate(MAX_REPORTED);
        let mut summary = found[MAX_REPORTED - 1].clone();
        summary.message = format!("…and {dropped} more finding(s) of this rule");
        summary.provenance = None;
        found.push(summary);
    }
    found
}
