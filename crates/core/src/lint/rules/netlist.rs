//! Netlist legality rules (`WP0xx`): the paper's structural
//! wave-pipelining conditions, proven statically from one DP over the
//! cached topological order — no simulation.

use crate::component::ComponentKind;
use crate::lint::rules::capped;
use crate::lint::{Category, Diagnostic, LintContext, LintRule, Severity};
use crate::netlist::{Netlist, NetlistError};

/// `WP001` — every input→component path has equal length.
///
/// The wave-pipelining invariant (§III): a component may only combine
/// signals of the *same* wave, so every non-constant fan-in edge must
/// span exactly one level. Equivalently, the min- and max-length
/// input→component paths coincide everywhere. One DP over the cached
/// levels (themselves one DP over the cached topological order) decides
/// it; any edge spanning ≠ 1 level is a site where waves of different
/// ages would collide.
#[derive(Clone, Copy, Debug, Default)]
pub struct PathBalance;

impl LintRule for PathBalance {
    fn id(&self) -> &'static str {
        "WP001"
    }

    fn category(&self) -> Category {
        Category::Netlist
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "all input→component path lengths equal (unit-span fan-in edges)"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(netlist) = ctx.netlist() else {
            return Vec::new();
        };
        // Cyclic netlists have no levels; WP004 reports the cycle.
        let Some(levels) = ctx.levels() else {
            return Vec::new();
        };
        let mut found = Vec::new();
        for id in netlist.ids() {
            let component = netlist.component(id);
            for &fanin in component.fanins() {
                if netlist.component(fanin).kind() == ComponentKind::Const {
                    continue; // constants are wave-invariant (§III)
                }
                let from = levels[fanin.index()];
                let to = levels[id.index()];
                if to != from + 1 {
                    found.push(self.diagnostic(
                        ctx,
                        format!(
                            "fan-in edge {fanin} (level {from}) → {id} (level {to}) spans \
                             {} levels; waves of different ages would collide",
                            to as i64 - from as i64
                        ),
                        Some(id.to_string()),
                    ));
                }
            }
        }
        capped(found)
    }
}

/// `WP002` — all outputs aligned at one common depth.
///
/// A wave is only coherent at the boundary if every output emerges in
/// the same clock phase (Algorithm 1's final padding step). Constant
/// drivers are exempt, as in [`crate::verify_balance`].
#[derive(Clone, Copy, Debug, Default)]
pub struct OutputAlignment;

impl LintRule for OutputAlignment {
    fn id(&self) -> &'static str {
        "WP002"
    }

    fn category(&self) -> Category {
        Category::Netlist
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "all non-constant outputs leave at one common level"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(netlist) = ctx.netlist() else {
            return Vec::new();
        };
        let Some(levels) = ctx.levels() else {
            return Vec::new();
        };
        let mut reference: Option<(&str, u32)> = None;
        let mut found = Vec::new();
        for port in netlist.outputs() {
            if netlist.component(port.driver).kind() == ComponentKind::Const {
                continue;
            }
            let level = levels[port.driver.index()];
            match reference {
                None => reference = Some((&port.name, level)),
                Some((first, first_level)) if level != first_level => {
                    found.push(self.diagnostic(
                        ctx,
                        format!(
                            "output `{}` emerges at level {level} but `{first}` at level \
                             {first_level}; the wave front is torn",
                            port.name
                        ),
                        Some(port.name.clone()),
                    ));
                }
                Some(_) => {}
            }
        }
        capped(found)
    }
}

/// `WP003` — fan-out bounded by the configured §IV limit.
///
/// Majority-based technologies cannot drive unbounded fan-out; the flow
/// restricts every component to `k ∈ 2..=5` consumers with FOG chains.
/// Skipped when the context carries no limit.
#[derive(Clone, Copy, Debug, Default)]
pub struct FanoutLimit;

impl LintRule for FanoutLimit {
    fn id(&self) -> &'static str {
        "WP003"
    }

    fn category(&self) -> Category {
        Category::Netlist
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "every component's fan-out is within the configured §IV limit"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let (Some(netlist), Some(limit)) = (ctx.netlist(), ctx.fanout_limit()) else {
            return Vec::new();
        };
        let Some(counts) = ctx.fanout_counts() else {
            return Vec::new();
        };
        let mut found = Vec::new();
        for id in netlist.ids() {
            let fanout = counts[id.index()];
            if fanout > limit {
                found.push(self.diagnostic(
                    ctx,
                    format!(
                        "{id} ({}) drives {fanout} consumers, over the limit {limit}",
                        netlist.component(id).kind()
                    ),
                    Some(id.to_string()),
                ));
            }
        }
        capped(found)
    }
}

/// `WP004` — no combinational cycles.
///
/// A cyclic netlist has no topological order, no levels, and no wave
/// semantics at all; every other structural rule presupposes this one.
#[derive(Clone, Copy, Debug, Default)]
pub struct CombinationalCycle;

impl LintRule for CombinationalCycle {
    fn id(&self) -> &'static str {
        "WP004"
    }

    fn category(&self) -> Category {
        Category::Netlist
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "the netlist is acyclic"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        match ctx.try_topo_order() {
            Some(Err(NetlistError::CombinationalCycle(id))) => vec![self.diagnostic(
                ctx,
                format!("combinational cycle through {id}"),
                Some(id.to_string()),
            )],
            Some(Err(e)) => vec![self.diagnostic(ctx, e.to_string(), None)],
            _ => Vec::new(),
        }
    }
}

/// `WP005` — structurally well-formed.
///
/// Runs [`Netlist::validate`]: fan-ins and output drivers in bounds,
/// input components agree with the input list, the constant registry is
/// sane. A netlist failing this cannot be meaningfully analyzed.
#[derive(Clone, Copy, Debug, Default)]
pub struct MalformedStructure;

impl LintRule for MalformedStructure {
    fn id(&self) -> &'static str {
        "WP005"
    }

    fn category(&self) -> Category {
        Category::Netlist
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "fan-ins, drivers and the constant registry are in bounds"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        match ctx.netlist().map(Netlist::validate) {
            Some(Err(message)) => vec![self.diagnostic(ctx, message, None)],
            _ => Vec::new(),
        }
    }
}

/// `WP006` — no unreachable components.
///
/// Components no output transitively reads are dead area and energy in
/// a technology where every cell is priced; [`Netlist::sweep`] would
/// drop them. Inputs (the declared interface) and the shared constant
/// cells are exempt.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnreachableComponents;

impl LintRule for UnreachableComponents {
    fn id(&self) -> &'static str {
        "WP006"
    }

    fn category(&self) -> Category {
        Category::Netlist
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn description(&self) -> &'static str {
        "every priced component is reachable from some output"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(netlist) = ctx.netlist() else {
            return Vec::new();
        };
        let mut reachable = vec![false; netlist.len()];
        let mut stack: Vec<_> = netlist.outputs().iter().map(|p| p.driver).collect();
        while let Some(id) = stack.pop() {
            if id.index() >= reachable.len() || std::mem::replace(&mut reachable[id.index()], true)
            {
                continue; // out-of-bounds drivers are WP005's finding
            }
            stack.extend_from_slice(netlist.component(id).fanins());
        }
        let mut found = Vec::new();
        for id in netlist.ids() {
            let kind = netlist.component(id).kind();
            if !reachable[id.index()] && kind.is_priced() {
                found.push(self.diagnostic(
                    ctx,
                    format!("{id} ({kind}) is unreachable from every output"),
                    Some(id.to_string()),
                ));
            }
        }
        capped(found)
    }
}

/// `WP007` — no redundant cells.
///
/// Three patterns that cost area/energy without buying balance:
/// a buffer fed by a constant (constants are wave-invariant, the buffer
/// delays nothing), an inverter feeding an inverter (the pair cancels),
/// and a fan-out gate with at most one consumer (it splits nothing).
#[derive(Clone, Copy, Debug, Default)]
pub struct RedundantCells;

impl LintRule for RedundantCells {
    fn id(&self) -> &'static str {
        "WP007"
    }

    fn category(&self) -> Category {
        Category::Netlist
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn description(&self) -> &'static str {
        "no const-fed buffers, double inverters or single-consumer FOGs"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(netlist) = ctx.netlist() else {
            return Vec::new();
        };
        let Some(counts) = ctx.fanout_counts() else {
            return Vec::new();
        };
        let mut found = Vec::new();
        for id in netlist.ids() {
            let component = netlist.component(id);
            let fanin_kind = |slot: usize| {
                component
                    .fanins()
                    .get(slot)
                    .filter(|f| f.index() < netlist.len())
                    .map(|&f| netlist.component(f).kind())
            };
            let smell = match component.kind() {
                ComponentKind::Buf if fanin_kind(0) == Some(ComponentKind::Const) => {
                    Some("buffers a constant (constants need no balancing)")
                }
                ComponentKind::Inv if fanin_kind(0) == Some(ComponentKind::Inv) => {
                    Some("double inversion (the pair cancels)")
                }
                ComponentKind::Fog if counts[id.index()] <= 1 => {
                    Some("fan-out gate with at most one consumer (splits nothing)")
                }
                _ => None,
            };
            if let Some(smell) = smell {
                found.push(self.diagnostic(ctx, format!("{id}: {smell}"), Some(id.to_string())));
            }
        }
        capped(found)
    }
}
