//! Flow-spec and cost-table rules (`SPEC0xx`).
//!
//! These run before anything executes — [`crate::Engine::run_streaming`]
//! lints every spec after validation and rejects error-severity
//! findings — so a malformed technology table or a pipeline that never
//! verifies is caught at the front door, not deep in a sweep.

use crate::component::ComponentKind;
use crate::cost::{CostModel, CostTable};
use crate::lint::{Category, Diagnostic, LintContext, LintRule, Severity};
use crate::spec::PassSpec;

/// `SPEC001` — pass-list smells.
///
/// Orderings the builder *accepts* but that undermine the flow's
/// guarantees: a pipeline that transforms without ever verifying
/// balance, or a verify pass whose fan-out bound disagrees with the
/// limit the restriction pass actually enforced.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineSmells;

impl LintRule for PipelineSmells {
    fn id(&self) -> &'static str {
        "SPEC001"
    }

    fn category(&self) -> Category {
        Category::Spec
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn description(&self) -> &'static str {
        "the pass list verifies what it transforms"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(spec) = ctx.spec() else {
            return Vec::new();
        };
        let passes = &spec.pipeline.passes;
        let mut found = Vec::new();
        let verifies = passes.iter().any(|p| {
            matches!(
                p,
                PassSpec::Verify { .. }
                    | PassSpec::VerifyWeighted(_)
                    | PassSpec::VerifyCostAware { .. }
            )
        });
        let transforms = passes.iter().any(|p| {
            matches!(
                p,
                PassSpec::RestrictFanout { .. }
                    | PassSpec::RestrictFanoutCostAware
                    | PassSpec::InsertBuffers(_)
            )
        });
        if transforms && !verifies {
            found.push(
                self.diagnostic(
                    ctx,
                    "the pipeline transforms the netlist but never verifies balance; \
                 append a verify pass"
                        .to_owned(),
                    None,
                ),
            );
        }
        let restricted = passes.iter().find_map(|p| match p {
            PassSpec::RestrictFanout { limit } => Some(*limit),
            _ => None,
        });
        for (position, pass) in passes.iter().enumerate() {
            if let PassSpec::Verify {
                fanout_limit: Some(bound),
            } = pass
            {
                match restricted {
                    Some(limit) if limit != *bound => found.push(self.diagnostic(
                        ctx,
                        format!(
                            "verify enforces fan-out ≤ {bound} but the restriction pass \
                             enforced ≤ {limit}; the bounds should agree"
                        ),
                        Some(format!("passes[{position}]")),
                    )),
                    _ => {}
                }
            }
        }
        found
    }
}

/// `SPEC002` — cost tables are complete for the cells in play.
///
/// A wave interval is three clock phases, so a non-positive phase delay
/// makes every throughput and cycle-time figure meaningless (error).
/// A priced cell kind with non-positive area or delay silently zeroes
/// its contribution to the §V metrics (warning). When the context
/// carries a netlist, only the kinds its cell mix actually uses are
/// checked; otherwise all priced kinds are.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostCompleteness;

impl CostCompleteness {
    fn check_table(
        &self,
        ctx: &LintContext<'_>,
        table: &CostTable,
        kinds: &[ComponentKind],
    ) -> Vec<Diagnostic> {
        let mut found = Vec::new();
        if table.phase_delay() <= 0.0 {
            let mut d = self.diagnostic(
                ctx,
                format!(
                    "cost table `{}` has non-positive phase delay {}; waves cannot be timed",
                    table.name(),
                    table.phase_delay()
                ),
                Some(table.name().to_owned()),
            );
            d.severity = Severity::Error;
            found.push(d);
        }
        for &kind in kinds {
            for (metric, value) in [
                ("area", table.area_of(kind)),
                ("delay", table.delay_of(kind)),
            ] {
                if value <= 0.0 {
                    found.push(self.diagnostic(
                        ctx,
                        format!(
                            "cost table `{}` prices {kind} {metric} at {value}; the cell's \
                             contribution to the §V metrics vanishes",
                            table.name()
                        ),
                        Some(table.name().to_owned()),
                    ));
                }
            }
        }
        found
    }
}

impl LintRule for CostCompleteness {
    fn id(&self) -> &'static str {
        "SPEC002"
    }

    fn category(&self) -> Category {
        Category::Spec
    }

    /// Nominal severity; the phase-delay finding is upgraded to
    /// [`Severity::Error`] because nothing downstream survives it.
    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn description(&self) -> &'static str {
        "cost tables price every cell kind the circuit mix uses"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        const ALL_PRICED: [ComponentKind; 4] = [
            ComponentKind::Maj,
            ComponentKind::Inv,
            ComponentKind::Buf,
            ComponentKind::Fog,
        ];
        // The cell mix: with a netlist in context, check only the kinds
        // it actually instantiates.
        let kinds: Vec<ComponentKind> = match ctx.netlist() {
            Some(netlist) => {
                let counts = netlist.counts();
                ALL_PRICED
                    .into_iter()
                    .filter(|kind| match kind {
                        ComponentKind::Maj => counts.maj > 0,
                        ComponentKind::Inv => counts.inv > 0,
                        ComponentKind::Buf => counts.buf > 0,
                        ComponentKind::Fog => counts.fog > 0,
                        _ => false,
                    })
                    .collect()
            }
            None => ALL_PRICED.to_vec(),
        };
        let mut found = Vec::new();
        if let Some(table) = ctx.cost() {
            found.extend(self.check_table(ctx, table, &kinds));
        }
        if let Some(spec) = ctx.spec() {
            for table in &spec.technologies {
                found.extend(self.check_table(ctx, table, &kinds));
            }
        }
        found
    }
}

/// `SPEC003` — no duplicate circuit entries.
///
/// Duplicates are rejected by [`crate::FlowSpec::validate`] at run
/// time; the lint surfaces them in standalone `wavecheck` runs (and in
/// editors) before a run is ever attempted.
#[derive(Clone, Copy, Debug, Default)]
pub struct DuplicateCircuits;

impl LintRule for DuplicateCircuits {
    fn id(&self) -> &'static str {
        "SPEC003"
    }

    fn category(&self) -> Category {
        Category::Spec
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn description(&self) -> &'static str {
        "every circuit appears once"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(spec) = ctx.spec() else {
            return Vec::new();
        };
        let mut seen: Vec<String> = Vec::new();
        let mut found = Vec::new();
        for (position, circuit) in spec.circuits.iter().enumerate() {
            let name = circuit.name();
            if seen.contains(&name) {
                found.push(self.diagnostic(
                    ctx,
                    format!(
                        "circuit `{name}` listed more than once; the engine would reject this spec"
                    ),
                    Some(format!("circuits[{position}]")),
                ));
            } else {
                seen.push(name);
            }
        }
        found
    }
}
