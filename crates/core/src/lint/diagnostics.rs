//! The diagnostic vocabulary of the lint subsystem: severities,
//! categories and the [`Diagnostic`] record every rule emits.
//!
//! Diagnostics are machine-readable: each carries a stable rule code
//! (`WP0xx` netlist legality, `MIG0xx` graph hygiene, `SPEC0xx`
//! spec/cost), and the whole record serializes to JSON through the
//! vendored serde stack (hand-rolled impls — the mini derive cannot
//! express enums), so `wavecheck --json` reports and golden tests pin
//! the exact shape.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// How bad a finding is.
///
/// Ordered: `Info < Warning < Error`, so severity thresholds can be
/// expressed with plain comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational observation; never fails anything.
    Info,
    /// A smell worth fixing; gates and CI treat it as non-fatal.
    Warning,
    /// A legality violation: the artifact cannot wave-pipeline (or the
    /// spec cannot produce meaningful results). Gates fail on these.
    Error,
}

impl Severity {
    /// Stable lowercase name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which artifact layer a rule inspects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Mapped/pipelined netlist legality (`WP0xx`).
    Netlist,
    /// Source-MIG hygiene (`MIG0xx`).
    Graph,
    /// Flow-spec and cost-table checks (`SPEC0xx`).
    Spec,
}

impl Category {
    /// Stable lowercase name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Netlist => "netlist",
            Category::Graph => "graph",
            Category::Spec => "spec",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of one lint rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (`WP001`, `MIG003`, `SPEC002`, …).
    pub code: String,
    /// Severity of this finding.
    pub severity: Severity,
    /// Layer the rule inspects.
    pub category: Category,
    /// Human-readable description of the finding.
    pub message: String,
    /// What was linted: the netlist/graph/spec name.
    pub subject: String,
    /// Where inside the subject, when the rule can point at one place:
    /// a component id (`c42`), a MIG node (`n7`), an output port name,
    /// a pass position (`passes[2]`) or a technology name.
    pub provenance: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.severity, self.code)?;
        if !self.subject.is_empty() {
            write!(f, " [{}", self.subject)?;
            if let Some(at) = &self.provenance {
                write!(f, " @ {at}")?;
            }
            write!(f, "]")?;
        } else if let Some(at) = &self.provenance {
            write!(f, " [@ {at}]")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The diagnostic set a lint gate tripped on, carried by
/// [`crate::PassError::Lint`] with the offending pass's name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFailure {
    /// The pass after which the gate fired.
    pub pass: String,
    /// The error-severity diagnostics that tripped the gate.
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for LintFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let first = self
            .diagnostics
            .first()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "no diagnostics recorded".to_owned());
        write!(
            f,
            "lint gate after pass `{}`: {} error diagnostic(s); first: {first}",
            self.pass,
            self.diagnostics.len()
        )
    }
}

// --- serde: hand-rolled because the vendored mini-serde derive cannot
// --- express enums.

fn object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Severity {
    fn from_value(value: &Value) -> Result<Severity, DeError> {
        match value {
            Value::Str(s) => match s.as_str() {
                "info" => Ok(Severity::Info),
                "warning" => Ok(Severity::Warning),
                "error" => Ok(Severity::Error),
                other => Err(DeError(format!("unknown severity `{other}`"))),
            },
            _ => Err(DeError::expected("severity string")),
        }
    }
}

impl Serialize for Category {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Category {
    fn from_value(value: &Value) -> Result<Category, DeError> {
        match value {
            Value::Str(s) => match s.as_str() {
                "netlist" => Ok(Category::Netlist),
                "graph" => Ok(Category::Graph),
                "spec" => Ok(Category::Spec),
                other => Err(DeError(format!("unknown category `{other}`"))),
            },
            _ => Err(DeError::expected("category string")),
        }
    }
}

impl Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("code", self.code.to_value()),
            ("severity", self.severity.to_value()),
            ("category", self.category.to_value()),
            ("message", self.message.to_value()),
            ("subject", self.subject.to_value()),
        ];
        // Omitted when absent, like the spec layer's optional fields.
        if let Some(at) = &self.provenance {
            entries.push(("provenance", at.to_value()));
        }
        object(entries)
    }
}

impl Deserialize for Diagnostic {
    fn from_value(value: &Value) -> Result<Diagnostic, DeError> {
        let Value::Object(entries) = value else {
            return Err(DeError::expected("diagnostic object"));
        };
        Ok(Diagnostic {
            code: Deserialize::from_value(serde::field(entries, "code")?)?,
            severity: Deserialize::from_value(serde::field(entries, "severity")?)?,
            category: Deserialize::from_value(serde::field(entries, "category")?)?,
            message: Deserialize::from_value(serde::field(entries, "message")?)?,
            subject: Deserialize::from_value(serde::field(entries, "subject")?)?,
            provenance: match serde::field(entries, "provenance") {
                Ok(Value::Null) | Err(_) => None,
                Ok(v) => Some(Deserialize::from_value(v)?),
            },
        })
    }
}

impl Serialize for LintFailure {
    fn to_value(&self) -> Value {
        object(vec![
            ("pass", self.pass.to_value()),
            ("diagnostics", self.diagnostics.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            code: "WP001".to_owned(),
            severity: Severity::Error,
            category: Category::Netlist,
            message: "path imbalance".to_owned(),
            subject: "fa".to_owned(),
            provenance: Some("c7".to_owned()),
        }
    }

    #[test]
    fn severities_order() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn diagnostics_round_trip_json() {
        for d in [
            sample(),
            Diagnostic {
                provenance: None,
                severity: Severity::Warning,
                category: Category::Graph,
                ..sample()
            },
        ] {
            let json = serde_json::to_string(&d).expect("serialize");
            let back: Diagnostic =
                Deserialize::from_value(&serde_json::from_str(&json).expect("parse"))
                    .expect("deserialize");
            assert_eq!(back, d);
            // The optional field is omitted, not null.
            assert_eq!(json.contains("provenance"), d.provenance.is_some());
        }
    }

    #[test]
    fn display_is_compact() {
        let d = sample();
        assert_eq!(d.to_string(), "error WP001 [fa @ c7]: path imbalance");
    }
}
