//! The unified error surface of the engine-facade API.
//!
//! Everything a [`crate::Engine`] run can reject or fail with folds
//! into one [`FlowError`] hierarchy: spec validation
//! ([`crate::SpecError`]), pipeline assembly
//! ([`crate::PipelineError`]) and pass execution
//! ([`crate::PassError`], which itself absorbs balance, weighted and
//! structural [`crate::NetlistError`] failures). Every layer implements
//! `std::error::Error + Display` with `source()` chaining, so no user
//! input — malformed specs, unknown benchmarks, ill-ordered pass lists,
//! unverifiable netlists, even custom passes that wire combinational
//! cycles — can panic the library.

use std::fmt;

use crate::pipeline::{PassError, PipelineError};
use crate::spec::SpecError;

/// Any failure an [`crate::Engine`] run can produce, by layer.
#[derive(Clone, Debug, PartialEq)]
pub enum FlowError {
    /// The [`crate::FlowSpec`] was rejected before anything ran.
    Spec(SpecError),
    /// The pre-run spec lint ([`crate::lint_spec`]) found error-severity
    /// diagnostics — e.g. a cost table whose phase delay cannot time a
    /// wave. Carries only the error-severity findings.
    Lint(Vec<crate::lint::Diagnostic>),
    /// The spec's pass list violates the pipeline ordering rules.
    Pipeline(PipelineError),
    /// A pass failed while executing.
    Pass(PassError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Spec(e) => write!(f, "invalid flow spec: {e}"),
            FlowError::Lint(diagnostics) => {
                let first = diagnostics
                    .first()
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "no diagnostics recorded".to_owned());
                write!(
                    f,
                    "spec lint rejected the run: {} error diagnostic(s); first: {first}",
                    diagnostics.len()
                )
            }
            FlowError::Pipeline(e) => write!(f, "invalid pipeline: {e}"),
            FlowError::Pass(e) => write!(f, "flow run failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Spec(e) => Some(e),
            FlowError::Lint(_) => None,
            FlowError::Pipeline(e) => Some(e),
            FlowError::Pass(e) => Some(e),
        }
    }
}

impl From<SpecError> for FlowError {
    fn from(e: SpecError) -> FlowError {
        FlowError::Spec(e)
    }
}

impl From<PipelineError> for FlowError {
    fn from(e: PipelineError) -> FlowError {
        FlowError::Pipeline(e)
    }
}

impl From<PassError> for FlowError {
    fn from(e: PassError) -> FlowError {
        FlowError::Pass(e)
    }
}

impl From<crate::balance::BalanceError> for FlowError {
    fn from(e: crate::balance::BalanceError) -> FlowError {
        FlowError::Pass(PassError::Balance(e))
    }
}

impl From<crate::weighted::WeightedBalanceError> for FlowError {
    fn from(e: crate::weighted::WeightedBalanceError) -> FlowError {
        FlowError::Pass(PassError::Weighted(e))
    }
}

impl From<crate::netlist::NetlistError> for FlowError {
    fn from(e: crate::netlist::NetlistError) -> FlowError {
        FlowError::Pass(PassError::Netlist(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_and_chains_sources() {
        let e = FlowError::from(PipelineError::Empty);
        assert!(e.to_string().contains("invalid pipeline"));
        assert!(e.source().is_some());

        let e = FlowError::from(crate::netlist::NetlistError::WidthMismatch {
            inputs: 3,
            pattern: 2,
        });
        assert!(matches!(&e, FlowError::Pass(PassError::Netlist(_))));
        assert!(e.source().unwrap().source().is_some(), "two-level chain");
    }
}
