//! Mapping a Majority-Inverter Graph onto a physical component netlist.
//!
//! The MIG keeps inversion free on edges; the technologies price an
//! inverter as a real cell that occupies a pipeline level (Table I — for
//! QCA it is the most expensive cell of all). Mapping therefore
//! *materializes* inverters: one shared INV component per complemented
//! node, reused by every consumer of that polarity. Constant fan-ins map
//! to fixed-polarization constant cells, which carry no wave and need no
//! inverter (the complement of a constant is the other constant).

use mig::{Mig, Node, Signal};

use crate::component::CompId;
use crate::netlist::Netlist;

/// Maps `graph` onto a [`Netlist`] of physical components.
///
/// Every majority node becomes a MAJ component; complemented
/// non-constant edges go through one shared INV per source node;
/// complemented outputs get their own shared INV as well.
///
/// # Examples
///
/// ```
/// use mig::Mig;
/// use wavepipe::netlist_from_mig;
///
/// let mut g = Mig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let f = g.add_and(a, !b); // complement materializes one INV
/// g.add_output("f", f);
///
/// let n = netlist_from_mig(&g);
/// assert_eq!(n.counts().maj, 1);
/// assert_eq!(n.counts().inv, 1);
/// ```
pub fn netlist_from_mig(graph: &Mig) -> Netlist {
    let mut n = Netlist::new(graph.name().to_owned());
    // plain[i] = component for node i, inverted[i] = its INV (lazily).
    let mut plain: Vec<Option<CompId>> = vec![None; graph.node_count()];
    let mut inverted: Vec<Option<CompId>> = vec![None; graph.node_count()];

    for (pos, &id) in graph.inputs().iter().enumerate() {
        plain[id.index()] = Some(n.add_input(graph.input_name(pos).to_owned()));
    }

    // Resolves a MIG signal to a component, materializing inverters and
    // constant cells on demand.
    fn resolve(
        n: &mut Netlist,
        plain: &mut [Option<CompId>],
        inverted: &mut [Option<CompId>],
        s: Signal,
    ) -> CompId {
        if s.is_const() {
            return n.add_const(s.is_complement());
        }
        let idx = s.node().index();
        let base = plain[idx].expect("fan-ins are mapped before consumers");
        if !s.is_complement() {
            return base;
        }
        if let Some(inv) = inverted[idx] {
            return inv;
        }
        let inv = n.add_inv(base);
        inverted[idx] = Some(inv);
        inv
    }

    for id in graph.node_ids() {
        if let Node::Majority(fanins) = graph.node(id) {
            let mut comps = [CompId::from_index(0); 3];
            for (i, &s) in fanins.iter().enumerate() {
                comps[i] = resolve(&mut n, &mut plain, &mut inverted, s);
            }
            plain[id.index()] = Some(n.add_maj(comps));
        }
    }

    for o in graph.outputs() {
        let driver = resolve(&mut n, &mut plain, &mut inverted, o.signal);
        n.add_output(o.name.clone(), driver);
    }
    n
}

/// Maps `graph` with inversion-count minimization (the technique of the
/// paper's reference \[20\], Testa et al., NANOARCH'16, applied at
/// mapping time).
///
/// For every majority node whose *complemented* polarity is consumed
/// more often than its plain polarity, the **dual** gate is
/// materialized instead (majority is self-dual: `¬⟨x y z⟩ =
/// ⟨x̄ ȳ z̄⟩`), so the popular polarity comes out of the gate directly
/// and the rare polarity pays the inverter. On QCA — where an inverter
/// costs 10× a cell's area and energy and 7× its delay — this is a real
/// area/energy lever; the `ablation_inverters` harness quantifies it.
///
/// Polarities are chosen by local search on the **exact** inverter
/// count: a node's flip is toggled only when the global count strictly
/// drops (its own INV saved/created, plus the INVs its fan-ins must
/// gain or lose because a flipped gate demands the opposite polarity of
/// every fan-in), iterated to a fixpoint. The result therefore never
/// has more inverters than [`netlist_from_mig`].
pub fn netlist_from_mig_min_inv(graph: &Mig) -> Netlist {
    let n_nodes = graph.node_count();
    // demand[u][p]: how many uses currently require polarity p of u
    // (p = 1 means the complemented value), given the current flips.
    let mut demand = vec![[0u32; 2]; n_nodes];
    // flipped[v]: the base component of v computes ¬v. Inputs never flip.
    let mut flipped = vec![false; n_nodes];

    let tally = |demand: &mut Vec<[u32; 2]>, s: Signal, delta: i32| {
        if s.is_const() {
            return;
        }
        let slot = &mut demand[s.node().index()][s.is_complement() as usize];
        *slot = (*slot as i32 + delta) as u32;
    };
    for id in graph.node_ids() {
        for &s in graph.node(id).fanins() {
            tally(&mut demand, s, 1);
        }
    }
    for o in graph.outputs() {
        tally(&mut demand, o.signal, 1);
    }

    // INV(u) is needed iff some use demands the polarity the base does
    // not provide.
    let inv_needed =
        |demand: &Vec<[u32; 2]>, flipped: &Vec<bool>, u: usize| demand[u][!flipped[u] as usize] > 0;

    // Local search: toggle a gate when the exact global delta < 0.
    let order: Vec<_> = graph.gate_ids().collect();
    for _pass in 0..8 {
        let mut improved = false;
        for &id in order.iter().rev() {
            let v = id.index();
            let f = flipped[v];
            // Own inverter: demands on v are unchanged by v's own flip,
            // but which polarity is free changes.
            let own_before = inv_needed(&demand, &flipped, v) as i32;
            let own_after = (demand[v][f as usize] > 0) as i32;
            // Fan-in inverters: a flipped v demands the opposite
            // polarity of every fan-in.
            let fanins = match graph.node(id) {
                Node::Majority(fanins) => *fanins,
                _ => unreachable!("gate_ids yields gates"),
            };
            let mut delta = own_after - own_before;
            // Simulate the demand changes on a scratch copy of the
            // affected counters (a fan-in node can occur once only:
            // strashed gates have distinct fan-ins, but resolve via map
            // to stay robust).
            let mut scratch: Vec<(usize, [u32; 2])> = Vec::with_capacity(3);
            for &s in &fanins {
                if s.is_const() {
                    continue;
                }
                let u = s.node().index();
                let pos = match scratch.iter().position(|(idx, _)| *idx == u) {
                    Some(p) => p,
                    None => {
                        scratch.push((u, demand[u]));
                        scratch.len() - 1
                    }
                };
                let entry = &mut scratch[pos].1;
                let effective = s.is_complement() ^ f; // polarity demanded now
                let before = (entry[!flipped[u] as usize] > 0) as i32;
                entry[effective as usize] -= 1;
                entry[!effective as usize] += 1;
                let after = (entry[!flipped[u] as usize] > 0) as i32;
                delta += after - before;
            }
            if delta < 0 {
                flipped[v] = !f;
                for (u, counts) in scratch {
                    demand[u] = counts;
                }
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let mut n = Netlist::new(graph.name().to_owned());
    let mut base: Vec<Option<CompId>> = vec![None; graph.node_count()];
    let mut inverted: Vec<Option<CompId>> = vec![None; graph.node_count()];
    for (pos, &id) in graph.inputs().iter().enumerate() {
        base[id.index()] = Some(n.add_input(graph.input_name(pos).to_owned()));
    }

    // Resolve a signal `s` to a component computing node(s) ^ compl(s),
    // given that node(s)'s base component computes node(s) ^ flipped.
    let resolve = |n: &mut Netlist,
                   base: &[Option<CompId>],
                   inverted: &mut [Option<CompId>],
                   flipped: &[bool],
                   s: Signal|
     -> CompId {
        if s.is_const() {
            return n.add_const(s.is_complement());
        }
        let idx = s.node().index();
        let b = base[idx].expect("fan-ins mapped before consumers");
        if s.is_complement() == flipped[idx] {
            b
        } else if let Some(inv) = inverted[idx] {
            inv
        } else {
            let inv = n.add_inv(b);
            inverted[idx] = Some(inv);
            inv
        }
    };

    for id in graph.node_ids() {
        if let Node::Majority(fanins) = graph.node(id) {
            let flip = flipped[id.index()];
            let mut comps = [CompId::from_index(0); 3];
            for (i, &s) in fanins.iter().enumerate() {
                // Dual construction: a flipped gate majority-votes the
                // complements of its fan-ins.
                let want = s.complement_if(flip);
                comps[i] = resolve(&mut n, &base, &mut inverted, &flipped, want);
            }
            base[id.index()] = Some(n.add_maj(comps));
        }
    }

    for o in graph.outputs() {
        let driver = resolve(&mut n, &base, &mut inverted, &flipped, o.signal);
        n.add_output(o.name.clone(), driver);
    }
    n
}

/// Pipeline pass mapping the working MIG onto the working netlist
/// ([`netlist_from_mig`] / [`netlist_from_mig_min_inv`]). When rewrite
/// passes ran first, the optimized graph is what gets mapped.
///
/// Must be the first netlist pass of every [`crate::FlowPipeline`]
/// (only MIG rewrite passes may precede it); the builder enforces this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapPass {
    /// Use the polarity local search that minimizes materialized
    /// inverters.
    pub minimize_inverters: bool,
}

impl crate::pipeline::Pass for MapPass {
    fn name(&self) -> String {
        if self.minimize_inverters {
            "map(min_inv)".to_owned()
        } else {
            "map".to_owned()
        }
    }

    fn kind(&self) -> crate::pipeline::PassKind {
        crate::pipeline::PassKind::Map
    }

    fn run(
        &self,
        ctx: &mut crate::pipeline::FlowContext<'_>,
    ) -> Result<(), crate::pipeline::PassError> {
        let mapped = if self.minimize_inverters {
            netlist_from_mig_min_inv(ctx.working_graph())
        } else {
            netlist_from_mig(ctx.working_graph())
        };
        ctx.set_mapped(mapped);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Simulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The mapped netlist must compute the same function as the MIG.
    fn assert_functionally_equal(graph: &Mig, netlist: &Netlist, patterns: usize, seed: u64) {
        let sim = Simulator::new(graph);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..patterns {
            let bits: Vec<bool> = (0..graph.input_count()).map(|_| rng.gen()).collect();
            assert_eq!(sim.eval(&bits), netlist.eval(&bits));
        }
    }

    #[test]
    fn inverters_are_shared_per_node() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        // !a used by two gates: only one INV should be created. (Each
        // gate has exactly one complemented fan-in, so the MIG's
        // self-duality normalization leaves the polarities alone.)
        let m1 = g.add_maj(!a, b, c);
        let m2 = g.add_maj(!a, b, d);
        g.add_output("f", m1);
        g.add_output("g", m2);
        let n = netlist_from_mig(&g);
        assert_eq!(n.counts().inv, 1, "single shared INV for !a");
        assert_functionally_equal(&g, &n, 16, 1);
    }

    #[test]
    fn complemented_output_gets_inverter() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let m = g.add_maj(a, b, c);
        g.add_output("f", !m);
        let n = netlist_from_mig(&g);
        assert_eq!(n.counts().inv, 1);
        assert_functionally_equal(&g, &n, 8, 2);
    }

    #[test]
    fn constant_fanins_map_to_const_cells() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let and = g.add_and(a, b); // ⟨a b 0⟩
        let or = g.add_or(a, b); // ⟨a b 1⟩
        g.add_output("f", and);
        g.add_output("g", or);
        let n = netlist_from_mig(&g);
        assert_eq!(n.counts().consts, 2);
        assert_eq!(n.counts().inv, 0, "constant complement needs no INV");
        assert_functionally_equal(&g, &n, 4, 3);
    }

    #[test]
    fn sizes_match_structure() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let (s, cy) = g.add_full_adder(a, b, c);
        g.add_output("s", s);
        g.add_output("cy", cy);
        let n = netlist_from_mig(&g);
        assert_eq!(n.counts().maj, g.gate_count());
        assert_functionally_equal(&g, &n, 8, 4);
    }

    #[test]
    fn inverter_adds_a_level() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let m1 = g.add_maj(a, b, c);
        let m2 = g.add_maj(!m1, a, b);
        g.add_output("f", m2);
        assert_eq!(g.depth(), 2, "MIG depth ignores edge inverters");
        let n = netlist_from_mig(&g);
        assert_eq!(n.depth(), 3, "mapped depth includes the INV level");
    }

    #[test]
    fn random_graphs_map_correctly() {
        for seed in 0..4 {
            let g = mig::random_mig(mig::RandomMigConfig {
                inputs: 12,
                outputs: 6,
                gates: 300,
                depth: 12,
                seed,
            });
            let n = netlist_from_mig(&g);
            assert_functionally_equal(&g, &n, 32, seed);
            assert!(n.depth() >= g.depth());
        }
    }

    #[test]
    fn min_inv_mapping_is_functionally_identical() {
        for seed in 10..14 {
            let g = mig::random_mig(mig::RandomMigConfig {
                inputs: 12,
                outputs: 6,
                gates: 250,
                depth: 11,
                seed,
            });
            let n = netlist_from_mig_min_inv(&g);
            assert_functionally_equal(&g, &n, 32, seed);
            assert_eq!(n.counts().maj, g.gate_count());
        }
    }

    #[test]
    fn min_inv_mapping_flips_popular_complements() {
        // m's complemented form is consumed three times, its plain form
        // never: the dual gate should be materialized (zero INVs for m;
        // the dual's own fan-ins are plain inputs, so ¬a/¬b/¬c each cost
        // one INV only where actually demanded by the dual).
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let e = g.add_input("e");
        let m = g.add_maj(a, b, c);
        let u1 = g.add_maj(!m, d, e);
        let u2 = g.add_maj(!m, d, !e);
        g.add_output("f", u1);
        g.add_output("g", u2);
        g.add_output("h", !m);

        let plain = netlist_from_mig(&g);
        let opt = netlist_from_mig_min_inv(&g);
        assert!(
            opt.counts().inv <= plain.counts().inv,
            "min-inv {} vs plain {}",
            opt.counts().inv,
            plain.counts().inv
        );
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..16 {
            let bits: Vec<bool> = (0..5).map(|_| rng.gen()).collect();
            assert_eq!(plain.eval(&bits), opt.eval(&bits));
        }
    }

    #[test]
    fn min_inv_mapping_reduces_inverters_on_random_graphs() {
        // Not guaranteed per graph (greedy), but must win in aggregate.
        let mut plain_total = 0usize;
        let mut opt_total = 0usize;
        for seed in 20..30 {
            let g = mig::random_mig(mig::RandomMigConfig {
                inputs: 12,
                outputs: 8,
                gates: 300,
                depth: 10,
                seed,
            });
            plain_total += netlist_from_mig(&g).counts().inv;
            opt_total += netlist_from_mig_min_inv(&g).counts().inv;
        }
        assert!(
            opt_total < plain_total,
            "min-inv {opt_total} vs plain {plain_total} inverters in aggregate"
        );
    }
}
