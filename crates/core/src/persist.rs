//! Persistent on-disk result cache: versioned, checksummed JSON
//! snapshots of whole [`PipelineRun`]s under a cache root (by default
//! `results/cache/`), layered *under* the engine's in-memory LRU so
//! warm starts survive process restarts.
//!
//! ## Entry layout
//!
//! One file per cache key, named
//! `{scope}-{circuit:016x}-{pipeline:016x}-{technology:016x}.json`
//! (`scope` is `cell` for whole-circuit grid cells, `cone` for
//! per-output-cone runs, `spliced` for merged incremental results). The
//! file is a single JSON object:
//!
//! ```json
//! {"magic": "wavepipe-cache", "version": 1, "scope": "cell",
//!  "circuit": …, "pipeline": …, "technology": …,
//!  "checksum": …, "payload": { … }}
//! ```
//!
//! `checksum` is an FNV digest of the **canonical** payload tree — the
//! parse of the rendered text, not the in-memory tree, because the JSON
//! renderer prints integral floats without a fraction (they re-parse as
//! integers). Loads verify magic, version, key and checksum; *any*
//! mismatch, parse failure or I/O error logs one warning to stderr and
//! behaves as a cache miss — a corrupt or stale entry can cost a
//! recompute, never a crash. Stores write to a temp file and rename, so
//! concurrent processes sharing a cache directory never observe a
//! half-written entry.
//!
//! The run codec itself ([`run_to_json`] / [`run_from_json`]) is
//! hand-rolled and always available (the `serde` *feature* only gates
//! derive-based serialization of stats types): netlists are recorded as
//! an exact arena replay — component list in arena order, rebuilt
//! through the public construction API — so a decoded run is
//! byte-identical to the encoded one, which is what lets the engine's
//! warm-disk golden tests compare results bit-for-bit across processes.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{DeError, Deserialize, Value};

use crate::balance::BalanceReport;
use crate::buffer_insertion::BufferInsertion;
use crate::component::{CompId, Component};
use crate::cost::{PricedCost, PricedDelta};
use crate::fanout_restriction::FanoutRestriction;
use crate::flow::FlowResult;
use crate::fnv::Fnv;
use crate::netlist::{KindCounts, Netlist};
use crate::pipeline::{PassStats, PipelineRun};
use crate::spec::hash_value;
use crate::weighted::WeightedInsertion;

/// On-disk format version; bump on any payload-shape change so old
/// entries are skipped (with a warning) instead of misread.
pub const CACHE_VERSION: u64 = 1;

/// The magic tag every cache entry starts with.
pub const CACHE_MAGIC: &str = "wavepipe-cache";

/// Serializes a pipeline run to the canonical compact JSON payload.
pub fn run_to_json(run: &PipelineRun) -> String {
    serde_json::to_string(&run_to_value(run)).expect("value trees always render")
}

/// Rebuilds a pipeline run from [`run_to_json`] text.
///
/// # Errors
///
/// [`DeError`] on malformed JSON, a shape mismatch, or a payload that
/// does not replay to the exact netlists it claims (dangling fan-ins,
/// non-canonical constant sharing).
pub fn run_from_json(text: &str) -> Result<PipelineRun, DeError> {
    let value: Value = serde_json::from_str(text).map_err(|e| DeError(e.to_string()))?;
    run_from_value(&value)
}

// --- value codecs -------------------------------------------------------

fn object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn opt<T>(value: &Option<T>, encode: impl Fn(&T) -> Value) -> Value {
    value.as_ref().map_or(Value::Null, encode)
}

fn opt_from<T>(
    value: &Value,
    decode: impl Fn(&Value) -> Result<T, DeError>,
) -> Result<Option<T>, DeError> {
    match value {
        Value::Null => Ok(None),
        other => decode(other).map(Some),
    }
}

fn entries<'a>(value: &'a Value, what: &str) -> Result<&'a [(String, Value)], DeError> {
    value.as_object().ok_or_else(|| DeError::expected(what))
}

fn u64_field(fields: &[(String, Value)], name: &str) -> Result<u64, DeError> {
    Deserialize::from_value(serde::field(fields, name)?)
}

fn netlist_to_value(netlist: &Netlist) -> Value {
    let components: Vec<Value> = netlist
        .ids()
        .map(|id| match netlist.component(id) {
            Component::Input { .. } => Value::Str("i".to_owned()),
            Component::Const { value } => {
                Value::Array(vec![Value::Str("k".to_owned()), Value::Bool(*value)])
            }
            Component::Maj { fanins } => Value::Array(vec![
                Value::Str("m".to_owned()),
                Value::UInt(fanins[0].index() as u64),
                Value::UInt(fanins[1].index() as u64),
                Value::UInt(fanins[2].index() as u64),
            ]),
            Component::Inv { fanin } => Value::Array(vec![
                Value::Str("v".to_owned()),
                Value::UInt(fanin.index() as u64),
            ]),
            Component::Buf { fanin } => Value::Array(vec![
                Value::Str("b".to_owned()),
                Value::UInt(fanin.index() as u64),
            ]),
            Component::Fog { fanin } => Value::Array(vec![
                Value::Str("f".to_owned()),
                Value::UInt(fanin.index() as u64),
            ]),
        })
        .collect();
    object(vec![
        ("name", Value::Str(netlist.name().to_owned())),
        (
            "inputs",
            Value::Array(
                (0..netlist.inputs().len())
                    .map(|p| Value::Str(netlist.input_name(p).to_owned()))
                    .collect(),
            ),
        ),
        ("components", Value::Array(components)),
        (
            "outputs",
            Value::Array(
                netlist
                    .outputs()
                    .iter()
                    .map(|port| {
                        Value::Array(vec![
                            Value::Str(port.name.clone()),
                            Value::UInt(port.driver.index() as u64),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn fanin(value: &Value, len: usize) -> Result<CompId, DeError> {
    let index = usize::try_from(
        value
            .as_u64()
            .ok_or_else(|| DeError::expected("fan-in index"))?,
    )
    .map_err(|_| DeError::expected("in-range fan-in index"))?;
    if index >= len {
        return Err(DeError(format!(
            "dangling fan-in {index} in a {len}-component netlist"
        )));
    }
    Ok(CompId::from_index(index))
}

fn netlist_from_value(value: &Value) -> Result<Netlist, DeError> {
    let fields = entries(value, "object for Netlist")?;
    let name: String = Deserialize::from_value(serde::field(fields, "name")?)?;
    let input_names: Vec<String> = serde::field(fields, "inputs")?
        .as_array()
        .ok_or_else(|| DeError::expected("input name array"))?
        .iter()
        .map(Deserialize::from_value)
        .collect::<Result<_, _>>()?;
    let components = serde::field(fields, "components")?
        .as_array()
        .ok_or_else(|| DeError::expected("component array"))?;
    let outputs = serde::field(fields, "outputs")?
        .as_array()
        .ok_or_else(|| DeError::expected("output array"))?;

    // Exact arena replay: each component re-added in order must land on
    // its original index, otherwise the payload is not a canonical
    // netlist recording and the whole entry is rejected.
    let mut netlist = Netlist::new(name);
    let len = components.len();
    let mut next_input = 0usize;
    for (index, component) in components.iter().enumerate() {
        let id = match component {
            Value::Str(tag) if tag == "i" => {
                let name = input_names
                    .get(next_input)
                    .ok_or_else(|| DeError::expected("an input name per input component"))?;
                next_input += 1;
                netlist.add_input(name.clone())
            }
            Value::Array(items) => {
                let tag = items
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| DeError::expected("component tag"))?;
                let arity_err = || DeError(format!("malformed `{tag}` component"));
                match tag {
                    "k" => match items.get(1) {
                        Some(Value::Bool(v)) => netlist.add_const(*v),
                        _ => return Err(arity_err()),
                    },
                    "m" if items.len() == 4 => netlist.add_maj([
                        fanin(&items[1], len)?,
                        fanin(&items[2], len)?,
                        fanin(&items[3], len)?,
                    ]),
                    "v" if items.len() == 2 => netlist.add_inv(fanin(&items[1], len)?),
                    "b" if items.len() == 2 => netlist.add_buf(fanin(&items[1], len)?),
                    "f" if items.len() == 2 => netlist.add_fog(fanin(&items[1], len)?),
                    _ => return Err(arity_err()),
                }
            }
            _ => return Err(DeError::expected("component entry")),
        };
        if id.index() != index {
            return Err(DeError(format!(
                "non-canonical component recording at index {index}"
            )));
        }
    }
    if next_input != input_names.len() {
        return Err(DeError(format!(
            "{} input names for {next_input} input components",
            input_names.len()
        )));
    }
    for port in outputs {
        let items = port
            .as_array()
            .ok_or_else(|| DeError::expected("[name, driver] output pair"))?;
        match items {
            [Value::Str(name), driver] => {
                let driver = fanin(driver, len)?;
                netlist.add_output(name.clone(), driver);
            }
            _ => return Err(DeError::expected("[name, driver] output pair")),
        }
    }
    Ok(netlist)
}

fn counts_to_value(counts: &KindCounts) -> Value {
    Value::Array(
        [
            counts.inputs,
            counts.consts,
            counts.maj,
            counts.inv,
            counts.buf,
            counts.fog,
        ]
        .iter()
        .map(|&n| Value::UInt(n as u64))
        .collect(),
    )
}

fn counts_from_value(value: &Value) -> Result<KindCounts, DeError> {
    let items = value
        .as_array()
        .ok_or_else(|| DeError::expected("six-element count array"))?;
    let [inputs, consts, maj, inv, buf, fog] = items else {
        return Err(DeError::expected("six-element count array"));
    };
    Ok(KindCounts {
        inputs: Deserialize::from_value(inputs)?,
        consts: Deserialize::from_value(consts)?,
        maj: Deserialize::from_value(maj)?,
        inv: Deserialize::from_value(inv)?,
        buf: Deserialize::from_value(buf)?,
        fog: Deserialize::from_value(fog)?,
    })
}

fn priced_cost_to_value(cost: &PricedCost) -> Value {
    object(vec![
        ("area", Value::Float(cost.area)),
        ("energy", Value::Float(cost.energy)),
        ("latency", Value::Float(cost.latency)),
    ])
}

fn priced_cost_from_value(value: &Value) -> Result<PricedCost, DeError> {
    let fields = entries(value, "object for PricedCost")?;
    Ok(PricedCost {
        area: Deserialize::from_value(serde::field(fields, "area")?)?,
        energy: Deserialize::from_value(serde::field(fields, "energy")?)?,
        latency: Deserialize::from_value(serde::field(fields, "latency")?)?,
    })
}

fn stats_to_value(stats: &PassStats) -> Value {
    object(vec![
        ("pass", Value::Str(stats.pass.clone())),
        ("micros", Value::UInt(stats.micros)),
        ("counts_before", counts_to_value(&stats.counts_before)),
        ("counts_after", counts_to_value(&stats.counts_after)),
        ("added", counts_to_value(&stats.added)),
        ("depth_before", Value::UInt(u64::from(stats.depth_before))),
        ("depth_after", Value::UInt(u64::from(stats.depth_after))),
        (
            "priced",
            opt(&stats.priced, |p| {
                object(vec![
                    ("model", Value::Str(p.model.clone())),
                    ("before", priced_cost_to_value(&p.before)),
                    ("after", priced_cost_to_value(&p.after)),
                ])
            }),
        ),
    ])
}

fn stats_from_value(value: &Value) -> Result<PassStats, DeError> {
    let fields = entries(value, "object for PassStats")?;
    Ok(PassStats {
        pass: Deserialize::from_value(serde::field(fields, "pass")?)?,
        micros: u64_field(fields, "micros")?,
        counts_before: counts_from_value(serde::field(fields, "counts_before")?)?,
        counts_after: counts_from_value(serde::field(fields, "counts_after")?)?,
        added: counts_from_value(serde::field(fields, "added")?)?,
        depth_before: Deserialize::from_value(serde::field(fields, "depth_before")?)?,
        depth_after: Deserialize::from_value(serde::field(fields, "depth_after")?)?,
        priced: opt_from(serde::field(fields, "priced")?, |p| {
            let fields = entries(p, "object for PricedDelta")?;
            Ok(PricedDelta {
                model: Deserialize::from_value(serde::field(fields, "model")?)?,
                before: priced_cost_from_value(serde::field(fields, "before")?)?,
                after: priced_cost_from_value(serde::field(fields, "after")?)?,
            })
        })?,
    })
}

/// Encodes a run as the canonical payload value tree.
fn run_to_value(run: &PipelineRun) -> Value {
    object(vec![
        (
            "result",
            object(vec![
                ("original", netlist_to_value(&run.result.original)),
                ("pipelined", netlist_to_value(&run.result.pipelined)),
                (
                    "fanout",
                    opt(&run.result.fanout, |f| {
                        object(vec![
                            ("limit", Value::UInt(u64::from(f.limit))),
                            ("fogs_inserted", Value::UInt(f.fogs_inserted as u64)),
                            ("components_split", Value::UInt(f.components_split as u64)),
                            ("delayed_consumers", Value::UInt(f.delayed_consumers as u64)),
                            ("depth_before", Value::UInt(u64::from(f.depth_before))),
                            ("depth_after", Value::UInt(u64::from(f.depth_after))),
                        ])
                    }),
                ),
                (
                    "buffers",
                    opt(&run.result.buffers, |b| {
                        object(vec![
                            ("balancing_buffers", Value::UInt(b.balancing_buffers as u64)),
                            ("padding_buffers", Value::UInt(b.padding_buffers as u64)),
                            ("depth", Value::UInt(u64::from(b.depth))),
                        ])
                    }),
                ),
                (
                    "report",
                    opt(&run.result.report, |r| {
                        object(vec![
                            ("depth", Value::UInt(u64::from(r.depth))),
                            ("waves_in_flight", Value::UInt(u64::from(r.waves_in_flight))),
                            ("max_fanout", Value::UInt(u64::from(r.max_fanout))),
                        ])
                    }),
                ),
            ]),
        ),
        (
            "weighted",
            opt(&run.weighted, |w| {
                object(vec![
                    ("buffers", Value::UInt(w.buffers as u64)),
                    ("weighted_depth", Value::UInt(u64::from(w.weighted_depth))),
                ])
            }),
        ),
        (
            "trace",
            Value::Array(run.trace.iter().map(stats_to_value).collect()),
        ),
    ])
}

fn run_from_value(value: &Value) -> Result<PipelineRun, DeError> {
    let fields = entries(value, "object for PipelineRun")?;
    let result = entries(serde::field(fields, "result")?, "object for FlowResult")?;
    Ok(PipelineRun {
        result: FlowResult {
            original: netlist_from_value(serde::field(result, "original")?)?,
            pipelined: netlist_from_value(serde::field(result, "pipelined")?)?,
            fanout: opt_from(serde::field(result, "fanout")?, |f| {
                let fields = entries(f, "object for FanoutRestriction")?;
                Ok(FanoutRestriction {
                    limit: Deserialize::from_value(serde::field(fields, "limit")?)?,
                    fogs_inserted: Deserialize::from_value(serde::field(fields, "fogs_inserted")?)?,
                    components_split: Deserialize::from_value(serde::field(
                        fields,
                        "components_split",
                    )?)?,
                    delayed_consumers: Deserialize::from_value(serde::field(
                        fields,
                        "delayed_consumers",
                    )?)?,
                    depth_before: Deserialize::from_value(serde::field(fields, "depth_before")?)?,
                    depth_after: Deserialize::from_value(serde::field(fields, "depth_after")?)?,
                })
            })?,
            buffers: opt_from(serde::field(result, "buffers")?, |b| {
                let fields = entries(b, "object for BufferInsertion")?;
                Ok(BufferInsertion {
                    balancing_buffers: Deserialize::from_value(serde::field(
                        fields,
                        "balancing_buffers",
                    )?)?,
                    padding_buffers: Deserialize::from_value(serde::field(
                        fields,
                        "padding_buffers",
                    )?)?,
                    depth: Deserialize::from_value(serde::field(fields, "depth")?)?,
                })
            })?,
            report: opt_from(serde::field(result, "report")?, |r| {
                let fields = entries(r, "object for BalanceReport")?;
                Ok(BalanceReport {
                    depth: Deserialize::from_value(serde::field(fields, "depth")?)?,
                    waves_in_flight: Deserialize::from_value(serde::field(
                        fields,
                        "waves_in_flight",
                    )?)?,
                    max_fanout: Deserialize::from_value(serde::field(fields, "max_fanout")?)?,
                })
            })?,
        },
        weighted: opt_from(serde::field(fields, "weighted")?, |w| {
            let fields = entries(w, "object for WeightedInsertion")?;
            Ok(WeightedInsertion {
                buffers: Deserialize::from_value(serde::field(fields, "buffers")?)?,
                weighted_depth: Deserialize::from_value(serde::field(fields, "weighted_depth")?)?,
            })
        })?,
        trace: serde::field(fields, "trace")?
            .as_array()
            .ok_or_else(|| DeError::expected("trace array"))?
            .iter()
            .map(stats_from_value)
            .collect::<Result<_, _>>()?,
    })
}

// --- the disk tier ------------------------------------------------------

/// FNV digest of the canonical payload tree (see the module docs for
/// why the tree must come from a parse of the rendered text).
fn checksum(canonical_payload: &Value) -> u64 {
    let mut h = Fnv::new();
    h.write(CACHE_MAGIC.as_bytes());
    h.write_u64(CACHE_VERSION);
    hash_value(canonical_payload, &mut h);
    h.finish()
}

/// The on-disk cache tier the engine layers under its in-memory LRU.
/// All failures are soft: see the [module docs](self).
#[derive(Debug)]
pub(crate) struct DiskCache {
    root: PathBuf,
}

/// Distinguishes temp files of concurrent stores within one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Orphaned temp files older than this are garbage-collected when a
/// cache is opened. A crash between the temp write and the rename
/// leaves a `.tmp-*` behind; the committed entries are untouched (the
/// rename never happened), but the orphans would accumulate forever.
/// The generous age floor keeps a *live* writer in another process —
/// even one mid-multi-second store — safe from collection.
const ORPHAN_TMP_TTL: std::time::Duration = std::time::Duration::from_secs(600);

impl DiskCache {
    pub(crate) fn new(root: PathBuf) -> DiskCache {
        Self::sweep_orphans(&root);
        DiskCache { root }
    }

    /// Removes stale `.tmp-*` leftovers of crashed writers. Best-effort
    /// on every path: a missing root, unreadable metadata or a racing
    /// unlink are all fine.
    fn sweep_orphans(root: &Path) {
        let Ok(entries) = std::fs::read_dir(root) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            if !name.to_string_lossy().starts_with(".tmp-") {
                continue;
            }
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|modified| modified.elapsed().ok())
                .is_some_and(|age| age >= ORPHAN_TMP_TTL);
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    pub(crate) fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, scope: &str, (circuit, pipeline, technology): (u64, u64, u64)) -> PathBuf {
        self.root.join(format!(
            "{scope}-{circuit:016x}-{pipeline:016x}-{technology:016x}.json"
        ))
    }

    /// Loads and verifies one entry; `None` (after at most one stderr
    /// warning) on absence, I/O error, parse error, version or key
    /// mismatch, checksum mismatch, or a payload that fails to replay.
    pub(crate) fn load(&self, scope: &str, key: (u64, u64, u64)) -> Option<PipelineRun> {
        let path = self.entry_path(scope, key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                eprintln!(
                    "warning: cache read failed, recomputing: {}: {e}",
                    path.display()
                );
                return None;
            }
        };
        match Self::decode(&text, scope, key) {
            Ok(run) => Some(run),
            Err(reason) => {
                eprintln!(
                    "warning: ignoring unusable cache entry {} ({reason})",
                    path.display()
                );
                None
            }
        }
    }

    fn decode(text: &str, scope: &str, key: (u64, u64, u64)) -> Result<PipelineRun, DeError> {
        let value: Value = serde_json::from_str(text).map_err(|e| DeError(e.to_string()))?;
        let fields = entries(&value, "object for cache entry")?;
        let magic: String = Deserialize::from_value(serde::field(fields, "magic")?)?;
        if magic != CACHE_MAGIC {
            return Err(DeError(format!("bad magic `{magic}`")));
        }
        let version = u64_field(fields, "version")?;
        if version != CACHE_VERSION {
            return Err(DeError(format!(
                "stale format version {version}, expected {CACHE_VERSION}"
            )));
        }
        let stored_scope: String = Deserialize::from_value(serde::field(fields, "scope")?)?;
        let stored_key = (
            u64_field(fields, "circuit")?,
            u64_field(fields, "pipeline")?,
            u64_field(fields, "technology")?,
        );
        if stored_scope != scope || stored_key != key {
            return Err(DeError("entry key does not match its file name".to_owned()));
        }
        let payload = serde::field(fields, "payload")?;
        // The payload was just parsed from text, so it *is* canonical.
        let stored_checksum = u64_field(fields, "checksum")?;
        let actual = checksum(payload);
        if stored_checksum != actual {
            return Err(DeError(format!(
                "checksum mismatch (stored {stored_checksum:#018x}, computed {actual:#018x})"
            )));
        }
        run_from_value(payload)
    }

    /// Atomically writes one entry (temp file + rename). Failures warn
    /// and drop the entry — the in-memory tier still holds the run.
    pub(crate) fn store(&self, scope: &str, key: (u64, u64, u64), run: &PipelineRun) {
        let (circuit, pipeline, technology) = key;
        let payload_text = run_to_json(run);
        // Canonicalize through a parse so the checksum matches what a
        // future load will hash (integral floats re-parse as integers).
        let canonical: Value = match serde_json::from_str(&payload_text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("warning: cache entry not persisted (non-round-tripping payload: {e})");
                return;
            }
        };
        let digest = checksum(&canonical);
        let mut text = String::with_capacity(payload_text.len() + 256);
        text.push_str(&format!(
            "{{\"magic\":\"{CACHE_MAGIC}\",\"version\":{CACHE_VERSION},\"scope\":\"{scope}\",\
             \"circuit\":{circuit},\"pipeline\":{pipeline},\"technology\":{technology},\
             \"checksum\":{digest},\"payload\":"
        ));
        text.push_str(&payload_text);
        text.push('}');

        let path = self.entry_path(scope, key);
        let tmp = self.root.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        // Write the full entry to a private temp file, force it to
        // stable storage, then publish with an atomic rename: a crash
        // at any point (or a concurrent daemon process storing the same
        // key) can leave an orphaned temp file, never a torn entry
        // under the final name.
        let written = std::fs::create_dir_all(&self.root)
            .and_then(|()| {
                use std::io::Write as _;
                let mut file = std::fs::File::create(&tmp)?;
                file.write_all(text.as_bytes())?;
                file.sync_all()
            })
            .and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = written {
            let _ = std::fs::remove_file(&tmp);
            eprintln!(
                "warning: cache write failed, entry not persisted: {}: {e}",
                path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowConfig;
    use crate::pipeline::FlowPipeline;

    fn sample_run() -> PipelineRun {
        let graph = mig::random_mig(mig::RandomMigConfig {
            inputs: 6,
            outputs: 3,
            gates: 60,
            depth: 6,
            seed: 11,
        });
        FlowPipeline::for_config(FlowConfig::default())
            .run(&graph)
            .expect("sample flow verifies")
    }

    #[test]
    fn run_codec_round_trips_byte_identically() {
        let run = sample_run();
        let text = run_to_json(&run);
        let back = run_from_json(&text).expect("round trip");
        assert_eq!(run_to_json(&back), text, "codec is a bijection on runs");
        assert_eq!(back.trace, run.trace);
        assert_eq!(back.result.report, run.result.report);
        assert_eq!(
            back.result.pipelined.counts(),
            run.result.pipelined.counts()
        );
        // The netlists replay exactly: every component and port agrees.
        for (a, b) in run.result.pipelined.ids().zip(back.result.pipelined.ids()) {
            assert_eq!(
                run.result.pipelined.component(a),
                back.result.pipelined.component(b)
            );
        }
    }

    #[test]
    fn disk_round_trip_and_key_isolation() {
        let dir = std::env::temp_dir().join(format!("wavepipe-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(dir.clone());
        let run = sample_run();
        cache.store("cell", (1, 2, 3), &run);
        let loaded = cache.load("cell", (1, 2, 3)).expect("entry loads");
        assert_eq!(run_to_json(&loaded), run_to_json(&run));
        assert!(cache.load("cell", (1, 2, 4)).is_none(), "other key misses");
        assert!(
            cache.load("cone", (1, 2, 3)).is_none(),
            "other scope misses"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_truncated_and_stale_entries_fall_back_to_none() {
        let dir = std::env::temp_dir().join(format!("wavepipe-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(dir.clone());
        let run = sample_run();
        cache.store("cell", (7, 8, 9), &run);
        let path = cache.entry_path("cell", (7, 8, 9));
        let pristine = std::fs::read_to_string(&path).unwrap();

        // Truncated mid-payload.
        std::fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
        assert!(cache.load("cell", (7, 8, 9)).is_none());

        // Byte-flipped payload fails the checksum.
        let corrupt = pristine.replace("\"components\":[\"i\"", "\"components\":[\"k\"");
        assert_ne!(corrupt, pristine, "corruption applied");
        std::fs::write(&path, corrupt).unwrap();
        assert!(cache.load("cell", (7, 8, 9)).is_none());

        // Version-bumped entries are stale, not errors.
        let stale = pristine.replace("\"version\":1,", "\"version\":999,");
        assert_ne!(stale, pristine);
        std::fs::write(&path, stale).unwrap();
        assert!(cache.load("cell", (7, 8, 9)).is_none());

        // The pristine text still loads (the checks above were real).
        std::fs::write(&path, &pristine).unwrap();
        assert!(cache.load("cell", (7, 8, 9)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulated_partial_write_leaves_committed_entries_intact() {
        let dir = std::env::temp_dir().join(format!("wavepipe-partial-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(dir.clone());
        let run = sample_run();
        cache.store("cell", (1, 1, 1), &run);
        let pristine = std::fs::read_to_string(cache.entry_path("cell", (1, 1, 1))).unwrap();

        // Simulate a writer that crashed mid-store: a half-written temp
        // file sits in the cache dir, the rename never happened. The
        // committed entry must still load, and the orphan must not be
        // mistaken for an entry under any key.
        let orphan = dir.join(".tmp-99999-0");
        std::fs::write(&orphan, &pristine[..pristine.len() / 3]).unwrap();
        assert_eq!(
            run_to_json(
                &cache
                    .load("cell", (1, 1, 1))
                    .expect("committed entry intact")
            ),
            run_to_json(&run)
        );

        // A freshly-opened cache leaves the young orphan alone (it
        // could belong to a live writer in another process) ...
        let _reopened = DiskCache::new(dir.clone());
        assert!(orphan.exists(), "young temp files are not collected");

        // ... but collects it once it is older than the TTL.
        let aged = std::time::SystemTime::now() - (ORPHAN_TMP_TTL + ORPHAN_TMP_TTL);
        let file = std::fs::File::options().write(true).open(&orphan).unwrap();
        file.set_times(std::fs::FileTimes::new().set_modified(aged))
            .unwrap();
        drop(file);
        let _reopened = DiskCache::new(dir.clone());
        assert!(!orphan.exists(), "stale orphan garbage-collected");
        assert!(
            cache.load("cell", (1, 1, 1)).is_some(),
            "collection never touches committed entries"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_stores_of_one_key_never_tear_the_entry() {
        let dir = std::env::temp_dir().join(format!("wavepipe-racing-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = std::sync::Arc::new(DiskCache::new(dir.clone()));
        let run = std::sync::Arc::new(sample_run());
        let expected = run_to_json(&run);

        // Many writers race the same key (the daemon shape: coalescing
        // dedups identical in-flight specs, but distinct specs can
        // still collide on a shared cache cell). Readers interleave;
        // every successful load must be the complete entry.
        let writers: Vec<_> = (0..8)
            .map(|_| {
                let (cache, run) = (cache.clone(), run.clone());
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        cache.store("cell", (5, 5, 5), &run);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let (cache, expected) = (cache.clone(), expected.clone());
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        if let Some(loaded) = cache.load("cell", (5, 5, 5)) {
                            assert_eq!(run_to_json(&loaded), expected, "torn read");
                        }
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        assert_eq!(
            run_to_json(&cache.load("cell", (5, 5, 5)).expect("entry present")),
            expected
        );
        // No temp litter survives a clean run.
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(litter.is_empty(), "orphaned temp files after clean stores");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
