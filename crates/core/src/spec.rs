//! Declarative, serializable experiment descriptions.
//!
//! A [`FlowSpec`] is the engine-facade entry point of the whole flow:
//! it *names* — as plain data that round-trips through JSON — the
//! pipeline to run ([`PipelineSpec`]: pass list, [`BufferStrategy`],
//! cost-aware toggles), the technologies to price under (as
//! [`CostTable`]s), and the circuits to run on ([`CircuitSpec`]: a
//! `benchsuite` registry name resolved by the engine's resolver, an
//! inline netlist in the `mig` text format, or a seeded synthetic
//! generator request — a [`SynthSpec`]). [`crate::Engine::run`]
//! validates a spec, compiles it into a [`FlowPipeline`] and sweeps the
//! circuit × technology grid with content-hash keyed caching.
//!
//! Because a spec is data, an experiment is a checked-in JSON file
//! instead of a hand-assembled builder chain:
//!
//! ```
//! use wavepipe::{FlowConfig, FlowSpec, PipelineSpec};
//!
//! let spec = FlowSpec::new("fo3-buf")
//!     .with_pipeline(PipelineSpec::for_config(FlowConfig::default()))
//!     .circuit("SASC")
//!     .circuit("HAMMING");
//! let json = spec.to_json();
//! let back = FlowSpec::from_json(&json).expect("round-trips");
//! assert_eq!(spec, back);
//! assert_eq!(spec.content_hash(), back.content_hash());
//! ```

use std::fmt;

use mig::EquivalencePolicy;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::cost::CostTable;
use crate::flow::FlowConfig;
use crate::fnv::Fnv;
use crate::pipeline::{BufferStrategy, FlowPipeline, PipelineError};
use crate::weighted::DelayWeights;

/// Why a [`FlowSpec`] was rejected before (or while) resolving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The spec selects no circuits — the grid would be empty.
    EmptyCircuits,
    /// Two circuit entries share a name; results are keyed by name, so
    /// the duplicate would be unaddressable.
    DuplicateCircuit(String),
    /// A named circuit is not in the engine's registry.
    UnknownCircuit(String),
    /// The spec names registry circuits but the engine has no resolver.
    NoResolver(String),
    /// An inline circuit failed to parse as `mig` text.
    InlineCircuit {
        /// The circuit entry's name.
        name: String,
        /// The parse failure.
        error: String,
    },
    /// A synthetic circuit request is malformed (bad family or
    /// parameter identifier) — caught before the resolver ever sees it.
    Synthetic {
        /// The canonical `synth:*` name of the offending entry.
        name: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A fan-out restriction limit is outside the paper's §IV range.
    FanoutLimitOutOfRange(u32),
    /// The pipeline uses a cost-aware pass but the spec targets no
    /// technology, so there is no cost model to consult.
    CostAwareWithoutTechnology,
    /// The equivalence gate's exhaustive ceiling is beyond what a block
    /// sweep can realistically cover (cost doubles per input).
    EquivalenceCeilingTooHigh(u32),
    /// The equivalence gate has zero sampling rounds: any circuit above
    /// the exhaustive ceiling would "pass" after comparing zero
    /// patterns — a self-verifying sweep that verifies nothing.
    EquivalenceGateZeroRounds,
    /// The JSON text could not be parsed into a spec.
    Json(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyCircuits => write!(f, "spec selects no circuits"),
            SpecError::DuplicateCircuit(name) => {
                write!(f, "circuit `{name}` is selected more than once")
            }
            SpecError::UnknownCircuit(name) => {
                write!(f, "circuit `{name}` is not in the engine's registry")
            }
            SpecError::NoResolver(name) => write!(
                f,
                "circuit `{name}` is a registry name but the engine has no resolver"
            ),
            SpecError::InlineCircuit { name, error } => {
                write!(f, "inline circuit `{name}` does not parse: {error}")
            }
            SpecError::Synthetic { name, reason } => {
                write!(f, "synthetic circuit `{name}` is malformed: {reason}")
            }
            SpecError::FanoutLimitOutOfRange(limit) => write!(
                f,
                "fan-out limit {limit} is outside the feasible range 2..=5 (§IV)"
            ),
            SpecError::CostAwareWithoutTechnology => write!(
                f,
                "pipeline uses a cost-aware pass but the spec targets no technology"
            ),
            SpecError::EquivalenceCeilingTooHigh(inputs) => write!(
                f,
                "equivalence gate's exhaustive ceiling of {inputs} inputs is beyond the \
                 practical limit of {MAX_EXHAUSTIVE_GATE_INPUTS} (cost doubles per input)"
            ),
            SpecError::EquivalenceGateZeroRounds => write!(
                f,
                "equivalence gate has zero sampling rounds: circuits above the exhaustive \
                 ceiling would pass after comparing zero patterns"
            ),
            SpecError::Json(e) => write!(f, "spec JSON does not parse: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// One declaratively-named pass of a [`PipelineSpec`] — the data form
/// of the [`crate::FlowPipelineBuilder`] methods (the mapping pass is
/// implicit: it slots in right after any leading MIG rewrite passes,
/// which is also why the spec layer cannot express the builder's
/// `MapNotFirst` / `DuplicateMap` mistakes — though a rewrite listed
/// *after* a netlist pass still fails compilation with
/// [`PipelineError::RewriteAfterMap`]).
#[derive(Clone, Debug, PartialEq)]
pub enum PassSpec {
    /// Depth-oriented MIG rewrite (Ω.A/Ω.D, `mig::optimize_depth`);
    /// must precede every netlist pass.
    OptimizeDepth {
        /// Bound on full-graph rewrite rounds.
        max_rounds: usize,
    },
    /// Size-oriented MIG rewrite (Ω.D collapse, `mig::optimize_size`);
    /// must precede every netlist pass.
    OptimizeSize {
        /// Bound on full-graph collapse rounds.
        max_rounds: usize,
    },
    /// Cost-aware MIG rewrite: runs both objectives, keeps the one
    /// minimizing projected priced area × cycle-time under the run's
    /// cost model.
    OptimizeCostAware {
        /// Bound on rewrite rounds per objective.
        max_rounds: usize,
    },
    /// Fan-out restriction with the §IV limit `k ∈ 2..=5`.
    RestrictFanout {
        /// The fan-out limit.
        limit: u32,
    },
    /// Cost-aware fan-out restriction: picks `k` by projected priced
    /// area under the run's cost model.
    RestrictFanoutCostAware,
    /// Buffer insertion with the chosen strategy.
    InsertBuffers(BufferStrategy),
    /// Unit-delay balance verification (plus the fan-out bound when
    /// given).
    Verify {
        /// Fan-out bound to enforce alongside balance, if any.
        fanout_limit: Option<u32>,
    },
    /// Weighted-delay balance verification.
    VerifyWeighted(DelayWeights),
    /// Cost-aware balance verification against the run's cost model.
    VerifyCostAware {
        /// Fan-out bound to enforce alongside balance, if any.
        fanout_limit: Option<u32>,
    },
    /// Fan-out bound check without balance verification.
    CheckFanoutBound {
        /// The fan-out limit.
        limit: u32,
    },
}

impl PassSpec {
    /// `true` for passes that consult the run's cost model.
    fn is_cost_aware(&self) -> bool {
        matches!(
            self,
            PassSpec::RestrictFanoutCostAware
                | PassSpec::InsertBuffers(BufferStrategy::CostAware)
                | PassSpec::VerifyCostAware { .. }
                | PassSpec::OptimizeCostAware { .. }
        )
    }

    /// `true` for MIG rewrite passes, which run before mapping.
    fn is_rewrite(&self) -> bool {
        matches!(
            self,
            PassSpec::OptimizeDepth { .. }
                | PassSpec::OptimizeSize { .. }
                | PassSpec::OptimizeCostAware { .. }
        )
    }
}

/// The declarative pipeline of a [`FlowSpec`]: the implicit mapping
/// pass (flavored by `minimize_inverters`) followed by a pass list.
///
/// Compiles into an ordering-validated [`FlowPipeline`] via
/// [`PipelineSpec::build`]; two specs that compile to the same passes
/// share a [`PipelineSpec::content_hash`], which is the pipeline axis
/// of the engine's cache key.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineSpec {
    /// Map with inversion-count minimization instead of the reference
    /// mapping.
    pub minimize_inverters: bool,
    /// The passes after mapping, in execution order.
    pub passes: Vec<PassSpec>,
    /// Opt-in per-pass equivalence gating: when set, every pass
    /// boundary differentially re-checks the working netlist against
    /// the source MIG under this policy (see
    /// [`crate::differential::check`]); a pass that breaks the function
    /// fails the run with a counterexample naming it.
    pub equivalence_gate: Option<EquivalencePolicy>,
}

/// Largest exhaustive ceiling [`FlowSpec::validate`] accepts for the
/// equivalence gate — 2^24 patterns per pass boundary is already ~256k
/// block evaluations.
pub const MAX_EXHAUSTIVE_GATE_INPUTS: u32 = 24;

impl Default for PipelineSpec {
    /// The paper's default flow: FO3 + BUF + verify.
    fn default() -> PipelineSpec {
        PipelineSpec::for_config(FlowConfig::default())
    }
}

impl PipelineSpec {
    /// Starts an empty pipeline (just the mapping pass).
    pub fn map(minimize_inverters: bool) -> PipelineSpec {
        PipelineSpec {
            minimize_inverters,
            passes: Vec::new(),
            equivalence_gate: None,
        }
    }

    /// The declarative form of the default pipeline for a
    /// [`FlowConfig`] — the exact pass sequence the legacy `run_flow`
    /// hardcoded.
    pub fn for_config(config: FlowConfig) -> PipelineSpec {
        let mut spec = PipelineSpec::map(config.minimize_inverters);
        if let Some(limit) = config.fanout_limit {
            spec = spec.restrict_fanout(limit);
        }
        if config.insert_buffers {
            spec = spec
                .insert_buffers(BufferStrategy::Asap)
                .verify(config.fanout_limit);
        } else if let Some(limit) = config.fanout_limit {
            spec = spec.check_fanout_bound(limit);
        }
        spec
    }

    /// Appends a depth-oriented MIG rewrite pass. Rewrite passes must
    /// lead the pass list — [`PipelineSpec::build`] slots the mapping
    /// pass in after the leading rewrites, so a rewrite listed after
    /// any netlist pass fails compilation with
    /// [`PipelineError::RewriteAfterMap`].
    pub fn optimize_depth(mut self, max_rounds: usize) -> PipelineSpec {
        self.passes.push(PassSpec::OptimizeDepth { max_rounds });
        self
    }

    /// Appends a size-oriented MIG rewrite pass (same ordering rule as
    /// [`PipelineSpec::optimize_depth`]).
    pub fn optimize_size(mut self, max_rounds: usize) -> PipelineSpec {
        self.passes.push(PassSpec::OptimizeSize { max_rounds });
        self
    }

    /// Appends a cost-aware MIG rewrite pass (same ordering rule as
    /// [`PipelineSpec::optimize_depth`]; requires a cost model on the
    /// run).
    pub fn optimize_cost_aware(mut self, max_rounds: usize) -> PipelineSpec {
        self.passes.push(PassSpec::OptimizeCostAware { max_rounds });
        self
    }

    /// Appends a fan-out restriction pass.
    pub fn restrict_fanout(mut self, limit: u32) -> PipelineSpec {
        self.passes.push(PassSpec::RestrictFanout { limit });
        self
    }

    /// Appends a cost-aware fan-out restriction pass.
    pub fn restrict_fanout_cost_aware(mut self) -> PipelineSpec {
        self.passes.push(PassSpec::RestrictFanoutCostAware);
        self
    }

    /// Appends a buffer-insertion pass.
    pub fn insert_buffers(mut self, strategy: BufferStrategy) -> PipelineSpec {
        self.passes.push(PassSpec::InsertBuffers(strategy));
        self
    }

    /// Appends unit-delay balance verification.
    pub fn verify(mut self, fanout_limit: Option<u32>) -> PipelineSpec {
        self.passes.push(PassSpec::Verify { fanout_limit });
        self
    }

    /// Appends weighted-delay balance verification.
    pub fn verify_weighted(mut self, weights: DelayWeights) -> PipelineSpec {
        self.passes.push(PassSpec::VerifyWeighted(weights));
        self
    }

    /// Appends cost-aware balance verification.
    pub fn verify_cost_aware(mut self, fanout_limit: Option<u32>) -> PipelineSpec {
        self.passes.push(PassSpec::VerifyCostAware { fanout_limit });
        self
    }

    /// Appends a fan-out bound check.
    pub fn check_fanout_bound(mut self, limit: u32) -> PipelineSpec {
        self.passes.push(PassSpec::CheckFanoutBound { limit });
        self
    }

    /// Turns on per-pass equivalence gating under `policy` (see the
    /// [`PipelineSpec::equivalence_gate`] field).
    pub fn gate_equivalence(mut self, policy: EquivalencePolicy) -> PipelineSpec {
        self.equivalence_gate = Some(policy);
        self
    }

    /// `true` if any pass consults the run's cost model.
    pub fn uses_cost_aware_passes(&self) -> bool {
        self.passes.iter().any(PassSpec::is_cost_aware)
    }

    /// Spec-level validation: restriction limits must be in the
    /// feasible §IV range (the builder cannot know this — it never sees
    /// the limit semantics).
    ///
    /// # Errors
    ///
    /// [`SpecError::FanoutLimitOutOfRange`].
    pub fn validate(&self) -> Result<(), SpecError> {
        for pass in &self.passes {
            if let PassSpec::RestrictFanout { limit } | PassSpec::CheckFanoutBound { limit } = pass
            {
                if !(2..=5).contains(limit) {
                    return Err(SpecError::FanoutLimitOutOfRange(*limit));
                }
            }
        }
        if let Some(gate) = &self.equivalence_gate {
            if gate.exhaustive_inputs > MAX_EXHAUSTIVE_GATE_INPUTS {
                return Err(SpecError::EquivalenceCeilingTooHigh(gate.exhaustive_inputs));
            }
            // A gate must keep a sampling budget: the gate cannot know
            // circuit sizes at validation time, and with zero rounds any
            // circuit above the exhaustive ceiling would vacuously pass
            // after comparing zero patterns.
            if gate.rounds == 0 {
                return Err(SpecError::EquivalenceGateZeroRounds);
            }
        }
        Ok(())
    }

    /// Compiles the spec into an ordering-validated [`FlowPipeline`].
    ///
    /// # Errors
    ///
    /// The builder's [`PipelineError`] when the pass list is
    /// ill-ordered (e.g. fan-out restriction after buffer insertion).
    pub fn build(&self) -> Result<FlowPipeline, PipelineError> {
        let mut builder = FlowPipeline::builder();
        if let Some(policy) = self.equivalence_gate {
            builder = builder.gate_equivalence(policy);
        }
        // The mapping pass goes right after the leading rewrite prefix;
        // a rewrite listed later stays where the spec put it, so the
        // builder rejects the ordering (`RewriteAfterMap`) instead of
        // this method silently repairing it.
        let map_at = self.passes.iter().take_while(|p| p.is_rewrite()).count();
        for (i, pass) in self.passes.iter().enumerate() {
            if i == map_at {
                builder = builder.map(self.minimize_inverters);
            }
            builder = match pass {
                PassSpec::OptimizeDepth { max_rounds } => builder.optimize_depth(*max_rounds),
                PassSpec::OptimizeSize { max_rounds } => builder.optimize_size(*max_rounds),
                PassSpec::OptimizeCostAware { max_rounds } => {
                    builder.optimize_cost_aware(*max_rounds)
                }
                PassSpec::RestrictFanout { limit } => builder.restrict_fanout(*limit),
                PassSpec::RestrictFanoutCostAware => builder.restrict_fanout_cost_aware(),
                PassSpec::InsertBuffers(strategy) => builder.insert_buffers(*strategy),
                PassSpec::Verify { fanout_limit } => builder.verify(*fanout_limit),
                PassSpec::VerifyWeighted(weights) => builder.verify_weighted(*weights),
                PassSpec::VerifyCostAware { fanout_limit } => {
                    builder.verify_cost_aware(*fanout_limit)
                }
                PassSpec::CheckFanoutBound { limit } => builder.check_fanout_bound(*limit),
            };
        }
        if map_at == self.passes.len() {
            builder = builder.map(self.minimize_inverters);
        }
        builder.build()
    }

    /// Stable content hash — the pipeline axis of the engine cache key.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(b"pipeline");
        hash_value(&self.to_value(), &mut h);
        h.finish()
    }
}

/// A parameterized request for a *generated* circuit: a family name, a
/// seed and a (canonically sorted) list of `key = value` parameters.
///
/// A synthetic spec is pure data — the generator itself lives with the
/// circuit registry (the `benchsuite` crate's `synth` module, for the
/// stock resolver). The engine resolves the spec by formatting its
/// [`canonical name`](SynthSpec::name) (`synth:family:seed:k=v,…`) and
/// handing that to its circuit resolver, exactly like a
/// [`CircuitSpec::Named`] entry; the generated graph then participates
/// in the engine's content-hash cache key like any other circuit, so
/// the determinism contract (same `(family, seed, params)` → bit-identical
/// netlist → identical cache key) holds across runs and processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthSpec {
    /// Generator family name (lowercase `[a-z0-9_]`).
    pub family: String,
    /// RNG seed — the determinism axis.
    pub seed: u64,
    /// `key = value` parameters, kept sorted by key (canonical order).
    pub params: Vec<(String, u64)>,
}

/// `true` for identifiers the `synth:` name grammar can round-trip
/// (lowercase alphanumerics and underscores).
fn is_synth_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

impl SynthSpec {
    /// Starts a parameterless request for `family` with `seed`.
    pub fn new(family: impl Into<String>, seed: u64) -> SynthSpec {
        SynthSpec {
            family: family.into(),
            seed,
            params: Vec::new(),
        }
    }

    /// Sets one parameter, keeping the list sorted (re-setting a key
    /// replaces its value, so the canonical form stays canonical).
    pub fn param(mut self, key: impl Into<String>, value: u64) -> SynthSpec {
        let key = key.into();
        match self.params.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => self.params[i].1 = value,
            Err(i) => self.params.insert(i, (key, value)),
        }
        self
    }

    /// The canonical registry name: `synth:family:seed` with a trailing
    /// `:k=v,k=v` segment when parameters are set. This string is what
    /// the engine's resolver receives, and what `benchsuite::build_mig`
    /// parses back.
    pub fn name(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("synth:{}:{}", self.family, self.seed);
        for (i, (key, value)) in self.params.iter().enumerate() {
            out.push(if i == 0 { ':' } else { ',' });
            let _ = write!(out, "{key}={value}");
        }
        out
    }

    /// Structural validation: family and parameter keys must be
    /// round-trippable identifiers, keys unique and in canonical order.
    ///
    /// # Errors
    ///
    /// [`SpecError::Synthetic`].
    pub fn validate(&self) -> Result<(), SpecError> {
        let reject = |reason: String| {
            Err(SpecError::Synthetic {
                name: self.name(),
                reason,
            })
        };
        if !is_synth_ident(&self.family) {
            return reject(format!(
                "family `{}` is not a lowercase identifier",
                self.family
            ));
        }
        for (i, (key, _)) in self.params.iter().enumerate() {
            if !is_synth_ident(key) {
                return reject(format!(
                    "parameter key `{key}` is not a lowercase identifier"
                ));
            }
            if let Some((prev, _)) = i.checked_sub(1).map(|p| &self.params[p]) {
                if *prev >= *key {
                    return reject(format!(
                        "parameter keys must be unique and sorted (`{prev}` before `{key}`)"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// One circuit selection of a [`FlowSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitSpec {
    /// A name the engine's resolver looks up (the `benchsuite`
    /// registry, for the stock resolver).
    Named(String),
    /// An inline netlist in the `mig` text format
    /// ([`mig::write_mig`] / [`mig::parse_mig`]).
    Inline {
        /// Display name of the circuit.
        name: String,
        /// The `mig` text of the graph.
        mig: String,
    },
    /// A seeded synthetic circuit, generated on resolve (see
    /// [`SynthSpec`]).
    Synthetic(SynthSpec),
}

impl CircuitSpec {
    /// Captures an existing graph as an inline circuit.
    pub fn inline(name: impl Into<String>, graph: &mig::Mig) -> CircuitSpec {
        CircuitSpec::Inline {
            name: name.into(),
            mig: mig::write_mig(graph),
        }
    }

    /// The circuit's display name (the canonical `synth:*` name for
    /// synthetic entries).
    pub fn name(&self) -> String {
        match self {
            CircuitSpec::Named(name) | CircuitSpec::Inline { name, .. } => name.clone(),
            CircuitSpec::Synthetic(synth) => synth.name(),
        }
    }
}

/// Engine cache configuration a spec can carry — how a declarative
/// experiment opts into a bounded LRU or the persistent disk tier
/// without code. `None` fields keep the engine defaults; the
/// `WAVEPIPE_CACHE_CAPACITY` / `WAVEPIPE_CACHE_DIR` environment knobs
/// override both (see [`crate::Engine::for_spec`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheSpec {
    /// In-memory LRU entry bound; `Some(0)` disables caching.
    pub capacity: Option<usize>,
    /// Disk-cache root; the literal `default` means the engine's
    /// `results/cache/` default root.
    pub dir: Option<String>,
}

/// A complete, serializable experiment description: pipeline ×
/// technologies × circuits. See the [module docs](self) for the
/// round-trip guarantee and [`crate::Engine::run`] for execution.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowSpec {
    /// Experiment name (shows up in results and traces).
    pub name: String,
    /// The pipeline to run.
    pub pipeline: PipelineSpec,
    /// The technologies to price under; empty runs cost-blind (one
    /// unpriced cell per circuit).
    pub technologies: Vec<CostTable>,
    /// The circuits to run on.
    pub circuits: Vec<CircuitSpec>,
    /// Cache configuration for [`crate::Engine::for_spec`]; `None`
    /// keeps the engine defaults (and keeps the spec's JSON and content
    /// hash exactly as they were before this field existed).
    pub cache: Option<CacheSpec>,
}

impl FlowSpec {
    /// Starts a spec with the paper's default pipeline, no technologies
    /// and no circuits.
    pub fn new(name: impl Into<String>) -> FlowSpec {
        FlowSpec {
            name: name.into(),
            pipeline: PipelineSpec::default(),
            technologies: Vec::new(),
            circuits: Vec::new(),
            cache: None,
        }
    }

    /// Sets the cache configuration (see [`CacheSpec`]).
    pub fn with_cache(mut self, cache: CacheSpec) -> FlowSpec {
        self.cache = Some(cache);
        self
    }

    /// Replaces the pipeline.
    pub fn with_pipeline(mut self, pipeline: PipelineSpec) -> FlowSpec {
        self.pipeline = pipeline;
        self
    }

    /// Adds a target technology.
    pub fn technology(mut self, table: CostTable) -> FlowSpec {
        self.technologies.push(table);
        self
    }

    /// Adds a registry-named circuit.
    pub fn circuit(mut self, name: impl Into<String>) -> FlowSpec {
        self.circuits.push(CircuitSpec::Named(name.into()));
        self
    }

    /// Adds an inline circuit captured from an existing graph.
    pub fn inline_circuit(mut self, name: impl Into<String>, graph: &mig::Mig) -> FlowSpec {
        self.circuits.push(CircuitSpec::inline(name, graph));
        self
    }

    /// Adds a seeded synthetic circuit (resolved by the engine's
    /// registry under its canonical `synth:*` name).
    pub fn synthetic_circuit(mut self, synth: SynthSpec) -> FlowSpec {
        self.circuits.push(CircuitSpec::Synthetic(synth));
        self
    }

    /// Turns on per-pass equivalence gating for this spec's pipeline:
    /// every cell of the sweep differentially re-checks its netlist
    /// against the source MIG after each pass, so the whole experiment
    /// self-verifies (see [`PipelineSpec::gate_equivalence`]).
    pub fn with_equivalence_gating(mut self, policy: EquivalencePolicy) -> FlowSpec {
        self.pipeline.equivalence_gate = Some(policy);
        self
    }

    /// Structural validation, before any circuit is resolved or any
    /// pass runs. The engine calls this first on every run.
    ///
    /// # Errors
    ///
    /// [`SpecError::EmptyCircuits`], [`SpecError::DuplicateCircuit`],
    /// [`SpecError::Synthetic`], [`SpecError::FanoutLimitOutOfRange`]
    /// or [`SpecError::CostAwareWithoutTechnology`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.circuits.is_empty() {
            return Err(SpecError::EmptyCircuits);
        }
        let mut seen = std::collections::HashSet::with_capacity(self.circuits.len());
        for circuit in &self.circuits {
            if let CircuitSpec::Synthetic(synth) = circuit {
                synth.validate()?;
            }
            let name = circuit.name();
            if !seen.insert(name.clone()) {
                return Err(SpecError::DuplicateCircuit(name));
            }
        }
        self.pipeline.validate()?;
        if self.pipeline.uses_cost_aware_passes() && self.technologies.is_empty() {
            return Err(SpecError::CostAwareWithoutTechnology);
        }
        Ok(())
    }

    /// Serializes the spec to human-indented JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec values always serialize")
    }

    /// Parses a spec back from JSON text.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] on malformed JSON or a shape mismatch.
    pub fn from_json(text: &str) -> Result<FlowSpec, SpecError> {
        serde_json::from_str(text).map_err(|e| SpecError::Json(e.to_string()))
    }

    /// Stable content hash of the whole spec (pipeline, technologies
    /// and circuit selection).
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(b"flowspec");
        hash_value(&self.to_value(), &mut h);
        h.finish()
    }
}

/// Feeds a serialized value tree into a hasher, with discriminant tags
/// so differently-shaped values never collide structurally (also the
/// disk cache's payload-checksum primitive — see `crate::persist`).
pub(crate) fn hash_value(value: &Value, h: &mut Fnv) {
    match value {
        Value::Null => h.write(b"n"),
        Value::Bool(b) => {
            h.write(b"b");
            h.write(&[u8::from(*b)]);
        }
        Value::UInt(u) => {
            h.write(b"u");
            h.write_u64(*u);
        }
        Value::Int(i) => {
            h.write(b"i");
            h.write_u64(*i as u64);
        }
        Value::Float(f) => {
            h.write(b"f");
            h.write_f64(*f);
        }
        Value::Str(s) => {
            h.write(b"s");
            h.write_u64(s.len() as u64);
            h.write(s.as_bytes());
        }
        Value::Array(items) => {
            h.write(b"a");
            h.write_u64(items.len() as u64);
            for item in items {
                hash_value(item, h);
            }
        }
        Value::Object(entries) => {
            h.write(b"o");
            h.write_u64(entries.len() as u64);
            for (key, item) in entries {
                h.write_u64(key.len() as u64);
                h.write(key.as_bytes());
                hash_value(item, h);
            }
        }
    }
}

// --- serde: hand-rolled because the vendored mini-serde derive cannot
// --- express data-carrying enums (see vendor/serde_derive).

fn object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

impl Serialize for BufferStrategy {
    fn to_value(&self) -> Value {
        match self {
            BufferStrategy::Asap => Value::Str("asap".to_owned()),
            BufferStrategy::Retimed => Value::Str("retimed".to_owned()),
            BufferStrategy::CostAware => Value::Str("cost_aware".to_owned()),
            BufferStrategy::Weighted(weights) => object(vec![("weighted", weights.to_value())]),
        }
    }
}

impl Deserialize for BufferStrategy {
    fn from_value(value: &Value) -> Result<BufferStrategy, DeError> {
        match value {
            Value::Str(s) => match s.as_str() {
                "asap" => Ok(BufferStrategy::Asap),
                "retimed" => Ok(BufferStrategy::Retimed),
                "cost_aware" => Ok(BufferStrategy::CostAware),
                other => Err(DeError(format!("unknown buffer strategy `{other}`"))),
            },
            Value::Object(entries) => {
                let weights = serde::field(entries, "weighted")?;
                Ok(BufferStrategy::Weighted(Deserialize::from_value(weights)?))
            }
            _ => Err(DeError::expected("buffer strategy")),
        }
    }
}

impl Serialize for PassSpec {
    fn to_value(&self) -> Value {
        match self {
            PassSpec::OptimizeDepth { max_rounds } => object(vec![
                ("pass", Value::Str("optimize_depth".to_owned())),
                ("max_rounds", (*max_rounds as u64).to_value()),
            ]),
            PassSpec::OptimizeSize { max_rounds } => object(vec![
                ("pass", Value::Str("optimize_size".to_owned())),
                ("max_rounds", (*max_rounds as u64).to_value()),
            ]),
            PassSpec::OptimizeCostAware { max_rounds } => object(vec![
                ("pass", Value::Str("optimize_cost_aware".to_owned())),
                ("max_rounds", (*max_rounds as u64).to_value()),
            ]),
            PassSpec::RestrictFanout { limit } => object(vec![
                ("pass", Value::Str("restrict_fanout".to_owned())),
                ("limit", limit.to_value()),
            ]),
            PassSpec::RestrictFanoutCostAware => object(vec![(
                "pass",
                Value::Str("restrict_fanout_cost_aware".to_owned()),
            )]),
            PassSpec::InsertBuffers(strategy) => object(vec![
                ("pass", Value::Str("insert_buffers".to_owned())),
                ("strategy", strategy.to_value()),
            ]),
            PassSpec::Verify { fanout_limit } => object(vec![
                ("pass", Value::Str("verify".to_owned())),
                ("fanout_limit", fanout_limit.to_value()),
            ]),
            PassSpec::VerifyWeighted(weights) => object(vec![
                ("pass", Value::Str("verify_weighted".to_owned())),
                ("weights", weights.to_value()),
            ]),
            PassSpec::VerifyCostAware { fanout_limit } => object(vec![
                ("pass", Value::Str("verify_cost_aware".to_owned())),
                ("fanout_limit", fanout_limit.to_value()),
            ]),
            PassSpec::CheckFanoutBound { limit } => object(vec![
                ("pass", Value::Str("check_fanout_bound".to_owned())),
                ("limit", limit.to_value()),
            ]),
        }
    }
}

impl Deserialize for PassSpec {
    fn from_value(value: &Value) -> Result<PassSpec, DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| DeError::expected("object for PassSpec"))?;
        let tag: String = Deserialize::from_value(serde::field(entries, "pass")?)?;
        let max_rounds = |entries: &[(String, Value)]| -> Result<usize, DeError> {
            let rounds: u64 = Deserialize::from_value(serde::field(entries, "max_rounds")?)?;
            Ok(rounds as usize)
        };
        match tag.as_str() {
            "optimize_depth" => Ok(PassSpec::OptimizeDepth {
                max_rounds: max_rounds(entries)?,
            }),
            "optimize_size" => Ok(PassSpec::OptimizeSize {
                max_rounds: max_rounds(entries)?,
            }),
            "optimize_cost_aware" => Ok(PassSpec::OptimizeCostAware {
                max_rounds: max_rounds(entries)?,
            }),
            "restrict_fanout" => Ok(PassSpec::RestrictFanout {
                limit: Deserialize::from_value(serde::field(entries, "limit")?)?,
            }),
            "restrict_fanout_cost_aware" => Ok(PassSpec::RestrictFanoutCostAware),
            "insert_buffers" => Ok(PassSpec::InsertBuffers(Deserialize::from_value(
                serde::field(entries, "strategy")?,
            )?)),
            "verify" => Ok(PassSpec::Verify {
                fanout_limit: Deserialize::from_value(serde::field(entries, "fanout_limit")?)?,
            }),
            "verify_weighted" => Ok(PassSpec::VerifyWeighted(Deserialize::from_value(
                serde::field(entries, "weights")?,
            )?)),
            "verify_cost_aware" => Ok(PassSpec::VerifyCostAware {
                fanout_limit: Deserialize::from_value(serde::field(entries, "fanout_limit")?)?,
            }),
            "check_fanout_bound" => Ok(PassSpec::CheckFanoutBound {
                limit: Deserialize::from_value(serde::field(entries, "limit")?)?,
            }),
            other => Err(DeError(format!("unknown pass `{other}`"))),
        }
    }
}

/// Value form of an [`EquivalencePolicy`] (free functions instead of
/// trait impls: the policy type lives in the `mig` crate, so the orphan
/// rule forbids implementing the vendored serde traits for it here).
fn policy_to_value(policy: &EquivalencePolicy) -> Value {
    object(vec![
        ("exhaustive_inputs", policy.exhaustive_inputs.to_value()),
        ("rounds", (policy.rounds as u64).to_value()),
        ("seed", policy.seed.to_value()),
    ])
}

fn policy_from_value(value: &Value) -> Result<EquivalencePolicy, DeError> {
    let entries = value
        .as_object()
        .ok_or_else(|| DeError::expected("object for EquivalencePolicy"))?;
    let rounds: u64 = Deserialize::from_value(serde::field(entries, "rounds")?)?;
    Ok(EquivalencePolicy {
        exhaustive_inputs: Deserialize::from_value(serde::field(entries, "exhaustive_inputs")?)?,
        rounds: rounds as usize,
        seed: Deserialize::from_value(serde::field(entries, "seed")?)?,
    })
}

impl Serialize for PipelineSpec {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("minimize_inverters", self.minimize_inverters.to_value()),
            ("passes", self.passes.to_value()),
        ];
        // Omitted when off, so ungated specs (and their content hashes)
        // serialize exactly as they did before the gate existed.
        if let Some(policy) = &self.equivalence_gate {
            entries.push(("equivalence_gate", policy_to_value(policy)));
        }
        object(entries)
    }
}

impl Deserialize for PipelineSpec {
    fn from_value(value: &Value) -> Result<PipelineSpec, DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| DeError::expected("object for PipelineSpec"))?;
        let equivalence_gate = match serde::field(entries, "equivalence_gate") {
            Ok(Value::Null) | Err(_) => None,
            Ok(v) => Some(policy_from_value(v)?),
        };
        Ok(PipelineSpec {
            minimize_inverters: Deserialize::from_value(serde::field(
                entries,
                "minimize_inverters",
            )?)?,
            passes: Deserialize::from_value(serde::field(entries, "passes")?)?,
            equivalence_gate,
        })
    }
}

impl Serialize for SynthSpec {
    fn to_value(&self) -> Value {
        object(vec![
            ("family", self.family.to_value()),
            ("seed", self.seed.to_value()),
            (
                "params",
                Value::Object(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for SynthSpec {
    fn from_value(value: &Value) -> Result<SynthSpec, DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| DeError::expected("object for SynthSpec"))?;
        let mut params: Vec<(String, u64)> = Vec::new();
        for (key, item) in serde::field(entries, "params")?
            .as_object()
            .ok_or_else(|| DeError::expected("object for synth params"))?
        {
            params.push((key.clone(), Deserialize::from_value(item)?));
        }
        // Canonicalize here so a hand-edited JSON spec and its
        // round-tripped form compare (and hash) equal; duplicate keys
        // are a shape error, not a silent last-one-wins.
        params.sort_by(|(a, _), (b, _)| a.cmp(b));
        if params.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(DeError("duplicate synth parameter key".to_owned()));
        }
        Ok(SynthSpec {
            family: Deserialize::from_value(serde::field(entries, "family")?)?,
            seed: Deserialize::from_value(serde::field(entries, "seed")?)?,
            params,
        })
    }
}

impl Serialize for CircuitSpec {
    fn to_value(&self) -> Value {
        match self {
            CircuitSpec::Named(name) => name.to_value(),
            CircuitSpec::Inline { name, mig } => {
                object(vec![("name", name.to_value()), ("mig", mig.to_value())])
            }
            CircuitSpec::Synthetic(synth) => object(vec![("synth", synth.to_value())]),
        }
    }
}

impl Deserialize for CircuitSpec {
    fn from_value(value: &Value) -> Result<CircuitSpec, DeError> {
        match value {
            Value::Str(name) => Ok(CircuitSpec::Named(name.clone())),
            Value::Object(entries) => {
                if let Ok(synth) = serde::field(entries, "synth") {
                    return Ok(CircuitSpec::Synthetic(Deserialize::from_value(synth)?));
                }
                Ok(CircuitSpec::Inline {
                    name: Deserialize::from_value(serde::field(entries, "name")?)?,
                    mig: Deserialize::from_value(serde::field(entries, "mig")?)?,
                })
            }
            _ => Err(DeError::expected(
                "circuit name, inline object or synth object",
            )),
        }
    }
}

impl Serialize for CacheSpec {
    fn to_value(&self) -> Value {
        let mut entries = Vec::new();
        if let Some(capacity) = self.capacity {
            entries.push(("capacity", (capacity as u64).to_value()));
        }
        if let Some(dir) = &self.dir {
            entries.push(("dir", dir.to_value()));
        }
        object(entries)
    }
}

impl Deserialize for CacheSpec {
    fn from_value(value: &Value) -> Result<CacheSpec, DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| DeError::expected("object for CacheSpec"))?;
        let capacity = match serde::field(entries, "capacity") {
            Ok(Value::Null) | Err(_) => None,
            Ok(v) => Some(Deserialize::from_value(v)?),
        };
        let dir = match serde::field(entries, "dir") {
            Ok(Value::Null) | Err(_) => None,
            Ok(v) => Some(Deserialize::from_value(v)?),
        };
        Ok(CacheSpec { capacity, dir })
    }
}

impl Serialize for FlowSpec {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("name", self.name.to_value()),
            ("pipeline", self.pipeline.to_value()),
            ("technologies", self.technologies.to_value()),
            ("circuits", self.circuits.to_value()),
        ];
        // Omitted when unset, so cache-less specs (and their content
        // hashes) serialize exactly as they did before the knob existed.
        if let Some(cache) = &self.cache {
            entries.push(("cache", cache.to_value()));
        }
        object(entries)
    }
}

impl Deserialize for FlowSpec {
    fn from_value(value: &Value) -> Result<FlowSpec, DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| DeError::expected("object for FlowSpec"))?;
        let cache = match serde::field(entries, "cache") {
            Ok(Value::Null) | Err(_) => None,
            Ok(v) => Some(Deserialize::from_value(v)?),
        };
        Ok(FlowSpec {
            name: Deserialize::from_value(serde::field(entries, "name")?)?,
            pipeline: Deserialize::from_value(serde::field(entries, "pipeline")?)?,
            technologies: Deserialize::from_value(serde::field(entries, "technologies")?)?,
            circuits: Deserialize::from_value(serde::field(entries, "circuits")?)?,
            cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_spec() -> FlowSpec {
        let mut g = mig::Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let cin = g.add_input("cin");
        let (s, c) = g.add_full_adder(a, b, cin);
        g.add_output("s", s);
        g.add_output("c", c);
        FlowSpec::new("everything")
            .with_pipeline(
                PipelineSpec::map(true)
                    .restrict_fanout(3)
                    .insert_buffers(BufferStrategy::Weighted(DelayWeights::QCA))
                    .verify_weighted(DelayWeights::QCA),
            )
            .technology(crate::cost::CostTable::from_model(&Flat))
            .circuit("SASC")
            .inline_circuit("adder", &g)
    }

    /// Flat unit-cost model for spec tests.
    struct Flat;
    impl crate::cost::CostModel for Flat {
        fn cost_name(&self) -> &str {
            "FLAT"
        }
        fn area_of(&self, kind: crate::ComponentKind) -> f64 {
            if kind.is_priced() {
                1.0
            } else {
                0.0
            }
        }
        fn delay_of(&self, kind: crate::ComponentKind) -> f64 {
            self.area_of(kind)
        }
        fn energy_of(&self, kind: crate::ComponentKind) -> f64 {
            self.area_of(kind)
        }
        fn phase_delay(&self) -> f64 {
            1.0
        }
        fn output_sense_energy(&self) -> f64 {
            0.25
        }
    }

    #[test]
    fn every_pass_shape_round_trips_through_json() {
        let spec = FlowSpec::new("all-passes")
            .with_pipeline(
                PipelineSpec::map(false)
                    .optimize_depth(16)
                    .optimize_size(8)
                    .optimize_cost_aware(4)
                    .restrict_fanout(4)
                    .restrict_fanout_cost_aware()
                    .insert_buffers(BufferStrategy::Retimed)
                    .insert_buffers(BufferStrategy::CostAware)
                    .verify(Some(4))
                    .verify_cost_aware(None)
                    .check_fanout_bound(4),
            )
            .technology(crate::cost::CostTable::from_model(&Flat))
            .circuit("X");
        let back = FlowSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.content_hash(), back.content_hash());
    }

    #[test]
    fn cache_spec_round_trips_and_absence_preserves_the_content_hash() {
        let plain = full_spec();
        // A spec without a cache block serializes without the key …
        assert!(!plain.to_json().contains("\"cache\""));
        let cached = plain.clone().with_cache(CacheSpec {
            capacity: Some(64),
            dir: Some("default".to_owned()),
        });
        // … so pre-existing specs keep their identity …
        assert_eq!(
            plain.content_hash(),
            FlowSpec::from_json(&plain.to_json())
                .unwrap()
                .content_hash()
        );
        assert_ne!(plain.content_hash(), cached.content_hash());
        // … and a configured block round-trips field-for-field.
        let back = FlowSpec::from_json(&cached.to_json()).unwrap();
        assert_eq!(cached, back);
        assert_eq!(
            back.cache,
            Some(CacheSpec {
                capacity: Some(64),
                dir: Some("default".to_owned()),
            })
        );
        // Partial blocks keep unset fields unset.
        let partial = plain.with_cache(CacheSpec {
            capacity: None,
            dir: Some("/tmp/x".to_owned()),
        });
        let back = FlowSpec::from_json(&partial.to_json()).unwrap();
        assert_eq!(back.cache.as_ref().unwrap().capacity, None);
    }

    #[test]
    fn full_spec_round_trips_including_inline_circuits_and_tables() {
        let spec = full_spec();
        let back = FlowSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.content_hash(), back.content_hash());
    }

    #[test]
    fn content_hash_tracks_every_axis() {
        let spec = full_spec();
        let mut other = spec.clone();
        other.pipeline = other.pipeline.check_fanout_bound(3);
        assert_ne!(spec.content_hash(), other.content_hash());
        assert_ne!(spec.pipeline.content_hash(), other.pipeline.content_hash());

        let mut other = spec.clone();
        other.technologies.clear();
        assert_ne!(spec.content_hash(), other.content_hash());

        let mut other = spec.clone();
        other.circuits.pop();
        assert_ne!(spec.content_hash(), other.content_hash());
    }

    #[test]
    fn validation_rejects_structural_mistakes() {
        assert_eq!(
            FlowSpec::new("empty").validate(),
            Err(SpecError::EmptyCircuits)
        );
        assert_eq!(
            FlowSpec::new("dup").circuit("A").circuit("A").validate(),
            Err(SpecError::DuplicateCircuit("A".to_owned()))
        );
        assert_eq!(
            FlowSpec::new("k")
                .with_pipeline(PipelineSpec::map(false).restrict_fanout(1))
                .circuit("A")
                .validate(),
            Err(SpecError::FanoutLimitOutOfRange(1))
        );
        assert_eq!(
            FlowSpec::new("blind")
                .with_pipeline(PipelineSpec::map(false).restrict_fanout_cost_aware())
                .circuit("A")
                .validate(),
            Err(SpecError::CostAwareWithoutTechnology)
        );
        assert_eq!(full_spec().validate(), Ok(()));
    }

    #[test]
    fn equivalence_gate_round_trips_and_is_validated() {
        let policy = EquivalencePolicy {
            exhaustive_inputs: 12,
            rounds: 16,
            seed: 99,
        };
        let gated = FlowSpec::new("gated")
            .with_equivalence_gating(policy)
            .circuit("A");
        assert_eq!(gated.validate(), Ok(()));
        let back = FlowSpec::from_json(&gated.to_json()).unwrap();
        assert_eq!(gated, back);
        assert_eq!(back.pipeline.equivalence_gate, Some(policy));
        assert_eq!(gated.content_hash(), back.content_hash());

        // Gating is part of the pipeline's cache identity…
        let ungated = FlowSpec::new("gated").circuit("A");
        assert_ne!(
            gated.pipeline.content_hash(),
            ungated.pipeline.content_hash()
        );
        // …but an ungated spec serializes without the field, so specs
        // written before the gate existed still parse.
        assert!(!ungated.to_json().contains("equivalence_gate"));
        assert_eq!(FlowSpec::from_json(&ungated.to_json()).unwrap(), ungated);

        // An absurd exhaustive ceiling is rejected before anything runs.
        let absurd = FlowSpec::new("absurd")
            .with_equivalence_gating(EquivalencePolicy::exhaustive(40))
            .circuit("A");
        assert_eq!(
            absurd.validate(),
            Err(SpecError::EquivalenceCeilingTooHigh(40))
        );

        // So is a gate with no sampling budget — above the exhaustive
        // ceiling it would "verify" zero patterns.
        let vacuous = FlowSpec::new("vacuous")
            .with_equivalence_gating(EquivalencePolicy::sampled(0, 1))
            .circuit("A");
        assert_eq!(
            vacuous.validate(),
            Err(SpecError::EquivalenceGateZeroRounds)
        );
    }

    #[test]
    fn synth_specs_have_canonical_names_and_round_trip() {
        let synth = SynthSpec::new("dag", 7)
            .param("nodes", 500)
            .param("depth", 12)
            .param("nodes", 600); // re-set replaces, stays sorted
        assert_eq!(synth.name(), "synth:dag:7:depth=12,nodes=600");
        assert_eq!(SynthSpec::new("adder", 3).name(), "synth:adder:3");

        let spec = FlowSpec::new("synthetic")
            .synthetic_circuit(synth.clone())
            .synthetic_circuit(SynthSpec::new("parity", 1).param("width", 32));
        assert_eq!(spec.validate(), Ok(()));
        let back = FlowSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.to_json(), back.to_json(), "bit-identical round trip");
        assert_eq!(spec.content_hash(), back.content_hash());

        // Different seeds / params are different cache identities.
        let other = FlowSpec::new("synthetic")
            .synthetic_circuit(synth.clone().param("depth", 13))
            .synthetic_circuit(SynthSpec::new("parity", 2).param("width", 32));
        assert_ne!(spec.content_hash(), other.content_hash());
    }

    #[test]
    fn malformed_synth_specs_are_rejected() {
        let bad_family = FlowSpec::new("s").synthetic_circuit(SynthSpec::new("DAG!", 1));
        assert!(matches!(
            bad_family.validate(),
            Err(SpecError::Synthetic { .. })
        ));
        let bad_key =
            FlowSpec::new("s").synthetic_circuit(SynthSpec::new("dag", 1).param("Nodes", 10));
        assert!(matches!(
            bad_key.validate(),
            Err(SpecError::Synthetic { .. })
        ));
        // Hand-assembled unsorted params are caught too.
        let mut synth = SynthSpec::new("dag", 1);
        synth.params = vec![("b".to_owned(), 1), ("a".to_owned(), 2)];
        assert!(matches!(synth.validate(), Err(SpecError::Synthetic { .. })));
        // Duplicate params in JSON are a parse error, not last-one-wins.
        assert!(FlowSpec::from_json(
            r#"{"name":"x","pipeline":{"minimize_inverters":false,"passes":[]},
                "technologies":[],
                "circuits":[{"synth":{"family":"dag","seed":1,
                             "params":{"n":1,"n":2}}}]}"#
        )
        .is_err());
    }

    #[test]
    fn bad_json_is_an_error_not_a_panic() {
        assert!(matches!(FlowSpec::from_json("{"), Err(SpecError::Json(_))));
        assert!(matches!(
            FlowSpec::from_json(r#"{"name":"x"}"#),
            Err(SpecError::Json(_))
        ));
        assert!(FlowSpec::from_json(
            r#"{"name":"x","pipeline":{"minimize_inverters":false,
                "passes":[{"pass":"frobnicate"}]},"technologies":[],"circuits":["A"]}"#
        )
        .is_err());
    }

    #[test]
    fn for_config_matches_the_builder_wiring() {
        let spec = PipelineSpec::for_config(FlowConfig::default());
        let pipeline = spec.build().unwrap();
        assert_eq!(
            pipeline.pass_names(),
            FlowPipeline::for_config(FlowConfig::default()).pass_names()
        );

        let fo_only = PipelineSpec::for_config(FlowConfig {
            fanout_limit: Some(4),
            insert_buffers: false,
            minimize_inverters: false,
        });
        assert_eq!(fo_only.passes.len(), 2, "restrict + bound check");
    }

    #[test]
    fn ill_ordered_specs_fail_at_build_with_the_builder_error() {
        let spec = PipelineSpec::map(false)
            .insert_buffers(BufferStrategy::Asap)
            .restrict_fanout(3);
        assert_eq!(spec.build().unwrap_err(), PipelineError::FanoutAfterBuffers);

        // A rewrite listed after a netlist pass is the builder's error
        // too — build() never reorders the spec to repair it.
        let spec = PipelineSpec::map(false)
            .restrict_fanout(3)
            .optimize_depth(4);
        assert_eq!(spec.build().unwrap_err(), PipelineError::RewriteAfterMap);
    }

    #[test]
    fn rewrite_passes_compile_before_the_implicit_map() {
        let spec = PipelineSpec::map(false)
            .optimize_depth(16)
            .optimize_size(8)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(3));
        let pipeline = spec.build().unwrap();
        assert_eq!(
            pipeline.pass_names(),
            vec![
                "optimize_depth",
                "optimize_size",
                "map",
                "fanout_restriction(3)",
                "insert_buffers(asap)",
                "verify(fo≤3)",
            ]
        );

        // A rewrite-only spec still gets its implicit mapping pass.
        let pipeline = PipelineSpec::map(false).optimize_size(4).build().unwrap();
        assert_eq!(pipeline.pass_names(), vec!["optimize_size", "map"]);
    }

    #[test]
    fn rewrite_passes_are_cache_identity_axes() {
        let plain = PipelineSpec::map(false).restrict_fanout(3);
        let rewritten = PipelineSpec::map(false)
            .optimize_depth(16)
            .restrict_fanout(3);
        assert_ne!(plain.content_hash(), rewritten.content_hash());

        // The round bound is part of the identity too.
        let fewer_rounds = PipelineSpec::map(false)
            .optimize_depth(8)
            .restrict_fanout(3);
        assert_ne!(rewritten.content_hash(), fewer_rounds.content_hash());

        // And so is the objective.
        let by_size = PipelineSpec::map(false)
            .optimize_size(16)
            .restrict_fanout(3);
        assert_ne!(rewritten.content_hash(), by_size.content_hash());
    }

    #[test]
    fn cost_aware_rewrite_requires_a_technology() {
        let blind = FlowSpec::new("blind")
            .with_pipeline(PipelineSpec::map(false).optimize_cost_aware(8))
            .circuit("A");
        assert_eq!(blind.validate(), Err(SpecError::CostAwareWithoutTechnology));
        let priced = FlowSpec::new("priced")
            .with_pipeline(PipelineSpec::map(false).optimize_cost_aware(8))
            .technology(crate::cost::CostTable::from_model(&Flat))
            .circuit("A");
        assert_eq!(priced.validate(), Ok(()));
    }
}
